// The kernel API contract (docs/KERNELS.md): every variant of every
// kernel computes the same mathematical function as the scalar
// reference -- exactly on integer-representable inputs, and to tight
// relative tolerance on random doubles (the AVX2 cost-matrix kernel
// reassociates the dimension reduction, so bit-exactness is only
// guaranteed where every intermediate is exact). Plus the dispatch
// surface: ByName round-trips, VSIM_KERNELS is honored via ForceScalar
// CTest runs, and the sketch pre-filter is deterministic with monotone
// thresholds.
#include "vsim/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "vsim/common/rng.h"
#include "vsim/distance/centroid_filter.h"
#include "vsim/distance/min_matching.h"
#include "vsim/kernels/sketch.h"

namespace vsim::kernels {
namespace {

std::vector<const KernelSet*> AllVariants() {
  std::vector<const KernelSet*> variants = {&ForceScalar(), &Portable(),
                                            &BestAvailable()};
  if (const KernelSet* avx2 = ByName("avx2")) variants.push_back(avx2);
  return variants;
}

// Integer coordinates in a small range: squared differences, their sums
// and the square roots of perfect squares are all exactly
// representable, so every variant must agree bit-for-bit.
TEST(KernelEquivalenceTest, CentroidBatchExactOnIntegerGrid) {
  for (size_t dim : {1u, 2u, 3u, 6u, 7u, 13u}) {
    for (size_t count : {0u, 1u, 2u, 3u, 5u, 8u, 65u}) {
      std::vector<double> query(dim), block(count * dim);
      Rng rng(dim * 131 + count);
      for (double& x : query) x = static_cast<double>(rng.UniformInt(-8, 8));
      for (double& x : block) x = static_cast<double>(rng.UniformInt(-8, 8));
      std::vector<double> ref(count);
      ForceScalar().centroid_distance_batch(query.data(), block.data(),
                                             count, dim, ref.data());
      for (const KernelSet* ks : AllVariants()) {
        std::vector<double> out(count, -1.0);
        ks->centroid_distance_batch(query.data(), block.data(), count, dim,
                                    out.data());
        for (size_t i = 0; i < count; ++i) {
          EXPECT_EQ(out[i], ref[i])
              << ks->name << " dim=" << dim << " count=" << count
              << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, CentroidBatchRandomDoublesWithinUlps) {
  Rng rng(7);
  const size_t dim = 6, count = 257;
  std::vector<double> query(dim), block(count * dim);
  for (double& x : query) x = rng.Uniform(-3, 3);
  for (double& x : block) x = rng.Uniform(-3, 3);
  std::vector<double> ref(count);
  ForceScalar().centroid_distance_batch(query.data(), block.data(), count,
                                         dim, ref.data());
  for (const KernelSet* ks : AllVariants()) {
    std::vector<double> out(count);
    ks->centroid_distance_batch(query.data(), block.data(), count, dim,
                                out.data());
    for (size_t i = 0; i < count; ++i) {
      // sqrt of an FMA-reassociated 6-term sum: a handful of ulps.
      EXPECT_NEAR(out[i], ref[i], 8 * std::abs(ref[i]) *
                                      std::numeric_limits<double>::epsilon())
          << ks->name << " i=" << i;
    }
  }
}

TEST(KernelEquivalenceTest, CostMatrixExactOnIntegerGrid) {
  for (GroundKind ground : {GroundKind::kEuclidean,
                            GroundKind::kSquaredEuclidean,
                            GroundKind::kManhattan}) {
    for (size_t dim : {1u, 2u, 6u, 16u}) {
      const size_t m = 7, n = 5, stride = 7;
      std::vector<double> a(m * dim), b(n * dim);
      Rng rng(static_cast<uint64_t>(ground) * 977 + dim);
      for (double& x : a) x = static_cast<double>(rng.UniformInt(-6, 6));
      for (double& x : b) x = static_cast<double>(rng.UniformInt(-6, 6));
      std::vector<double> ref(m * stride, 0.0);
      ForceScalar().cost_matrix_build(ground, a.data(), m, b.data(), n, dim,
                                       ref.data(), stride);
      for (const KernelSet* ks : AllVariants()) {
        std::vector<double> out(m * stride, 0.0);
        ks->cost_matrix_build(ground, a.data(), m, b.data(), n, dim,
                              out.data(), stride);
        for (size_t i = 0; i < m; ++i) {
          for (size_t j = 0; j < n; ++j) {
            // Squared-Euclidean and Manhattan sums of small integers
            // are exact in any association; Euclidean additionally
            // takes sqrt of an exact integer, which both variants do
            // identically.
            EXPECT_EQ(out[i * stride + j], ref[i * stride + j])
                << ks->name << " ground=" << static_cast<int>(ground)
                << " dim=" << dim << " (" << i << "," << j << ")";
          }
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, CostMatrixRandomDoublesTightRelative) {
  Rng rng(41);
  const size_t m = 7, n = 7, dim = 6, stride = 7;
  std::vector<double> a(m * dim), b(n * dim);
  for (double& x : a) x = rng.Uniform(-2, 2);
  for (double& x : b) x = rng.Uniform(-2, 2);
  for (GroundKind ground : {GroundKind::kEuclidean,
                            GroundKind::kSquaredEuclidean,
                            GroundKind::kManhattan}) {
    std::vector<double> ref(m * stride, 0.0);
    ForceScalar().cost_matrix_build(ground, a.data(), m, b.data(), n, dim,
                                     ref.data(), stride);
    for (const KernelSet* ks : AllVariants()) {
      std::vector<double> out(m * stride, 0.0);
      ks->cost_matrix_build(ground, a.data(), m, b.data(), n, dim,
                            out.data(), stride);
      for (size_t i = 0; i < m * stride; ++i) {
        EXPECT_NEAR(out[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i])))
            << ks->name;
      }
    }
  }
}

TEST(KernelEquivalenceTest, CostMatrixStridePadLeftUntouched) {
  // out_stride > n: the surplus columns (min-matching dummy weights)
  // must not be written by the kernel.
  const size_t m = 3, n = 2, dim = 6, stride = 5;
  std::vector<double> a(m * dim, 1.0), b(n * dim, 2.0);
  for (const KernelSet* ks : AllVariants()) {
    std::vector<double> out(m * stride, -7.0);
    ks->cost_matrix_build(GroundKind::kEuclidean, a.data(), m, b.data(), n,
                          dim, out.data(), stride);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = n; j < stride; ++j) {
        EXPECT_EQ(out[i * stride + j], -7.0) << ks->name;
      }
    }
  }
}

TEST(KernelDispatchTest, ByNameRoundTripsAndRejectsUnknown) {
  EXPECT_STREQ(ForceScalar().name, "scalar");
  EXPECT_STREQ(Portable().name, "portable");
  EXPECT_EQ(ByName("scalar"), &ForceScalar());
  EXPECT_EQ(ByName("portable"), &Portable());
  EXPECT_EQ(ByName("no-such-kernel"), nullptr);
  EXPECT_EQ(ByName(nullptr), nullptr);
  // BestAvailable is one of the registered variants and executable on
  // this machine by construction.
  const KernelSet& best = BestAvailable();
  EXPECT_EQ(ByName(best.name), &best);
}

TEST(KernelDispatchTest, ActiveHonorsEnvironmentOverride) {
  // The CTest registration kernel_force_scalar runs this whole suite
  // with VSIM_KERNELS=scalar; in that configuration Active() must be
  // the scalar set, otherwise it must match BestAvailable().
  const char* env = std::getenv("VSIM_KERNELS");
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(&Active(), &ForceScalar());
  } else if (env == nullptr) {
    EXPECT_EQ(&Active(), &BestAvailable());
  }
}

TEST(KernelFilterBoundTest, MatchesScaledCentroidDistance) {
  Rng rng(3);
  FeatureVector a(6), b(6);
  for (double& x : a) x = rng.Uniform(-1, 1);
  for (double& x : b) x = rng.Uniform(-1, 1);
  double expect = 0.0;
  for (size_t d = 0; d < 6; ++d) expect += (a[d] - b[d]) * (a[d] - b[d]);
  expect = 7.0 * std::sqrt(expect);
  EXPECT_NEAR(CentroidFilterBound(a, b, 7.0), expect, 1e-12);
}

VectorSet RandomSet(Rng& rng, int count, int dim) {
  VectorSet s;
  for (int i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = rng.Uniform(-1, 1);
    s.vectors.push_back(std::move(v));
  }
  return s;
}

TEST(SketchTest, DeterministicAndSelfOverlapIsFull) {
  Rng rng(11);
  const VectorSet s = RandomSet(rng, 5, 6);
  const SetSketch a = SketchVectorSet(s);
  const SetSketch b = SketchVectorSet(s);
  EXPECT_EQ(a.words[0], b.words[0]);
  EXPECT_EQ(a.words[1], b.words[1]);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(SketchOverlap(a, b), kSketchActiveBits);
}

TEST(SketchTest, ExactlyActiveBitsSet) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const SetSketch s = SketchVectorSet(RandomSet(rng, 1 + trial % 7, 6));
    const int bits = SketchOverlap(s, s);
    EXPECT_EQ(bits, kSketchActiveBits);
  }
}

TEST(SketchTest, EmptySetSketchIsEmpty) {
  EXPECT_TRUE(SketchVectorSet(VectorSet{}).empty());
}

TEST(SketchTest, PermutationInvariant) {
  Rng rng(17);
  VectorSet s = RandomSet(rng, 6, 6);
  VectorSet reversed;
  for (auto it = s.vectors.rbegin(); it != s.vectors.rend(); ++it) {
    reversed.vectors.push_back(*it);
  }
  const SetSketch a = SketchVectorSet(s);
  const SetSketch b = SketchVectorSet(reversed);
  EXPECT_EQ(a.words[0], b.words[0]);
  EXPECT_EQ(a.words[1], b.words[1]);
}

TEST(SketchTest, ThresholdsMonotoneAndBounded) {
  int prev = -1;
  for (int level = 0; level <= kMaxApproxLevel; ++level) {
    const int t = SketchOverlapThreshold(level);
    EXPECT_GE(t, prev);
    EXPECT_GE(t, 0);
    EXPECT_LE(t, kSketchActiveBits);
    prev = t;
  }
  EXPECT_EQ(SketchOverlapThreshold(0), 0);
  // Out-of-range levels clamp instead of exploding.
  EXPECT_EQ(SketchOverlapThreshold(-3), SketchOverlapThreshold(0));
  EXPECT_EQ(SketchOverlapThreshold(99),
            SketchOverlapThreshold(kMaxApproxLevel));
}

TEST(SketchTest, PerturbedSetOverlapsMoreThanRandomPair) {
  // Statistical sanity of the locality property the prune relies on:
  // a slightly perturbed copy should share far more winners with the
  // original than an unrelated random set does (in expectation a
  // random pair shares 32*32/128 = 8 bits). Averaged over trials to
  // keep the assertion stable.
  Rng rng(23);
  double close_sum = 0.0, random_sum = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    VectorSet base = RandomSet(rng, 6, 6);
    VectorSet near = base;
    for (FeatureVector& v : near.vectors) {
      for (double& x : v) x += rng.Uniform(-0.01, 0.01);
    }
    const VectorSet other = RandomSet(rng, 6, 6);
    const SetSketch sb = SketchVectorSet(base);
    close_sum += SketchOverlap(sb, SketchVectorSet(near));
    random_sum += SketchOverlap(sb, SketchVectorSet(other));
  }
  EXPECT_GT(close_sum / trials, random_sum / trials + 8.0);
}

// The rewired min-matching still satisfies Lemma 2 end to end: the
// kernel-built cost matrix feeds the same assignment solver, and the
// kernel-computed filter bound must lower-bound its result -- under
// every variant, since the scalar CTest rerun forces VSIM_KERNELS.
TEST(KernelIntegrationTest, CentroidBoundStillLowerBoundsMatching) {
  Rng rng(29);
  const int k = 7;
  for (int trial = 0; trial < 25; ++trial) {
    VectorSet x = RandomSet(rng, 1 + static_cast<int>(rng.NextBounded(k)), 6);
    VectorSet y = RandomSet(rng, 1 + static_cast<int>(rng.NextBounded(k)), 6);
    MinMatchingOptions opt;
    const double exact = MinimalMatchingDistance(x, y, opt);
    const FeatureVector cx = vsim::ExtendedCentroid(x, k);
    const FeatureVector cy = vsim::ExtendedCentroid(y, k);
    const double bound = CentroidFilterBound(cx, cy, k);
    EXPECT_LE(bound, exact + 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace vsim::kernels
