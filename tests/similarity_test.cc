#include "vsim/core/similarity.h"

#include <gtest/gtest.h>

#include "vsim/data/dataset.h"
#include "vsim/distance/lp.h"
#include "vsim/geometry/primitives.h"

namespace vsim {
namespace {

ExtractionOptions FastOptions() {
  ExtractionOptions opt;
  opt.histogram_resolution = 12;
  opt.histogram_cells = 3;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  return opt;
}

TEST(ExtractObjectTest, ProducesAllRepresentations) {
  const ExtractionOptions opt = FastOptions();
  StatusOr<ObjectRepr> repr = ExtractObject({MakeTorus(1.0, 0.4, 24, 12)}, opt);
  ASSERT_TRUE(repr.ok()) << repr.status().ToString();
  EXPECT_EQ(repr->volume.size(), 27u);
  EXPECT_EQ(repr->solid_angle.size(), 27u);
  EXPECT_EQ(repr->cover_vector.size(), 30u);  // 6 * 5
  EXPECT_GE(repr->vector_set.size(), 1u);
  EXPECT_LE(repr->vector_set.size(), 5u);
  EXPECT_EQ(repr->centroid.size(), 6u);
  EXPECT_GT(repr->voxel_count, 0u);
  EXPECT_GT(repr->VectorSetBytes(), 0u);
}

TEST(ExtractObjectTest, HistogramsOnlyMode) {
  ExtractionOptions opt = FastOptions();
  opt.extract_covers = false;
  StatusOr<ObjectRepr> repr = ExtractObject({MakeBox({1, 2, 3})}, opt);
  ASSERT_TRUE(repr.ok());
  EXPECT_FALSE(repr->volume.empty());
  EXPECT_TRUE(repr->cover_vector.empty());
  EXPECT_TRUE(repr->vector_set.empty());
}

TEST(ExtractObjectTest, CoversOnlyMode) {
  ExtractionOptions opt = FastOptions();
  opt.extract_histograms = false;
  StatusOr<ObjectRepr> repr = ExtractObject({MakeBox({1, 2, 3})}, opt);
  ASSERT_TRUE(repr.ok());
  EXPECT_TRUE(repr->volume.empty());
  EXPECT_FALSE(repr->cover_vector.empty());
}

TEST(ExtractObjectTest, CentroidIsExtendedCentroidOfSet) {
  const ExtractionOptions opt = FastOptions();
  StatusOr<ObjectRepr> repr =
      ExtractObject({MakeCylinder(1.0, 2.0, 16)}, opt);
  ASSERT_TRUE(repr.ok());
  FeatureVector manual(6, 0.0);
  for (const FeatureVector& v : repr->vector_set.vectors) {
    for (int d = 0; d < 6; ++d) manual[d] += v[d];
  }
  for (int d = 0; d < 6; ++d) manual[d] /= opt.num_covers;
  for (int d = 0; d < 6; ++d) {
    EXPECT_NEAR(repr->centroid[d], manual[d], 1e-12);
  }
}

TEST(ModelTypeTest, NamesAreStable) {
  EXPECT_STREQ(ModelTypeName(ModelType::kVolume), "volume");
  EXPECT_STREQ(ModelTypeName(ModelType::kVectorSet), "vector-set");
  EXPECT_STREQ(ModelTypeName(ModelType::kCoverSequencePermutation),
               "cover-sequence-permutation");
}

class CadDatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset ds = MakeCarDataset(24, 7);
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new CadDatabase(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static CadDatabase* db_;
};

CadDatabase* CadDatabaseTest::db_ = nullptr;

TEST_F(CadDatabaseTest, SizeAndLabels) {
  EXPECT_EQ(db_->size(), 24u);
  EXPECT_EQ(db_->labels().size(), 24u);
}

TEST_F(CadDatabaseTest, SelfDistanceIsZeroForAllModels) {
  for (ModelType m : {ModelType::kVolume, ModelType::kSolidAngle,
                      ModelType::kCoverSequence,
                      ModelType::kCoverSequencePermutation,
                      ModelType::kVectorSet}) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(db_->Distance(m, i, i), 0.0, 1e-9) << ModelTypeName(m);
    }
  }
}

TEST_F(CadDatabaseTest, DistancesAreSymmetric) {
  for (ModelType m : {ModelType::kVolume, ModelType::kSolidAngle,
                      ModelType::kCoverSequence,
                      ModelType::kCoverSequencePermutation,
                      ModelType::kVectorSet}) {
    for (int i = 0; i < 6; ++i) {
      for (int j = i + 1; j < 6; ++j) {
        EXPECT_NEAR(db_->Distance(m, i, j), db_->Distance(m, j, i), 1e-9)
            << ModelTypeName(m);
      }
    }
  }
}

TEST_F(CadDatabaseTest, VectorSetNeverExceedsCoverSequenceDistance) {
  // The minimal matching (with free permutations) can only lower the
  // cost relative to the order-bound pairing -- but note the two use
  // different ground semantics (Euclid-of-blocks vs sum-of-Euclids), so
  // compare against the *permutation* variant which shares semantics
  // with the one-vector model.
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_LE(db_->Distance(ModelType::kCoverSequencePermutation, i, j),
                db_->Distance(ModelType::kCoverSequence, i, j) + 1e-9);
    }
  }
}

TEST_F(CadDatabaseTest, DistanceFunctionClosureAgrees) {
  const PairwiseDistanceFn fn = db_->DistanceFunction(ModelType::kVectorSet);
  EXPECT_NEAR(fn(1, 3), db_->Distance(ModelType::kVectorSet, 1, 3), 1e-12);
}

TEST_F(CadDatabaseTest, VectorSetTriangleInequalityOnRealObjects) {
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      for (int c = 0; c < 6; ++c) {
        EXPECT_LE(db_->Distance(ModelType::kVectorSet, a, c),
                  db_->Distance(ModelType::kVectorSet, a, b) +
                      db_->Distance(ModelType::kVectorSet, b, c) + 1e-9);
      }
    }
  }
}

TEST(CadDatabaseIncrementalTest, AddObjectAssignsSequentialIds) {
  CadDatabase db(FastOptions());
  StatusOr<int> id0 = db.AddObject({MakeBox({1, 1, 1})}, 5);
  StatusOr<int> id1 = db.AddObject({MakeSphere(1.0, 16, 8)}, 6);
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, 0);
  EXPECT_EQ(*id1, 1);
  EXPECT_EQ(db.labels()[1], 6);
  EXPECT_GT(db.Distance(ModelType::kVectorSet, 0, 1), 0.0);
}

}  // namespace
}  // namespace vsim
