// Allocation-freedom check for the observability record paths
// (registered as CTest `obs_alloc_check`): global operator new/delete
// are replaced with counting hooks, and the hot record paths --
// SpanArena build, RenderSpanTree, SpanRing::Record, and
// FlightRecorder::Record -- must execute with ZERO allocations. This
// is the "allocation asserted via counting hook" acceptance criterion:
// a future change that sneaks a std::string or vector resize into a
// record path fails this binary, not a profiler session in production.
//
// Deliberately a standalone binary (not part of vsim_tests): gtest
// allocates freely in its own machinery, which would force the hooks
// to discriminate call sites instead of counting globally.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "vsim/obs/flight_recorder.h"
#include "vsim/obs/query_trace.h"
#include "vsim/obs/span.h"

namespace {

// Counting is toggled only on the main thread between phases; the
// counter itself is plain (no other threads run in this binary).
bool g_counting = false;
unsigned long g_allocations = 0;

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

int failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void CheckNoAllocations(const char* phase) {
  if (g_allocations != 0) {
    std::fprintf(stderr, "FAIL: %s allocated %lu time(s)\n", phase,
                 g_allocations);
    ++failures;
  } else {
    std::printf("ok: %s is allocation-free\n", phase);
  }
  g_allocations = 0;
}

}  // namespace

int main() {
  using vsim::obs::FlightRecorder;
  using vsim::obs::kSpanArenaCapacity;
  using vsim::obs::MonotonicNowNs;
  using vsim::obs::QueryTrace;
  using vsim::obs::RenderSpanTree;
  using vsim::obs::SpanArena;
  using vsim::obs::SpanName;
  using vsim::obs::SpanRing;
  using vsim::obs::SpanTreeRecord;
  using vsim::obs::TraceContext;

  // Construction may allocate (ring storage); only the record paths
  // must not.
  SpanRing ring(64);
  FlightRecorder recorder(64, 0.100, 16);
  TraceContext context;
  context.trace_hi = 0x1234;
  context.trace_lo = 0x5678;

  // Warm the monotonic clock (first call may touch vDSO setup paths).
  (void)MonotonicNowNs();

  // --- span arena build + render + ring publish, including overflow --
  g_counting = true;
  {
    SpanArena arena(context, 99);
    const int root = arena.Start(SpanName::kRequest);
    for (size_t i = 0; i + 2 < kSpanArenaCapacity; ++i) {
      const int child =
          arena.Start(SpanName::kFilter, arena.span_id(root));
      arena.SetCounter(child, i);
      arena.End(child);
    }
    arena.End(root);
    // Overflow: the truncation path must count, never allocate.
    for (int i = 0; i < 64; ++i) {
      (void)arena.Start(SpanName::kRefine);
    }
    SpanTreeRecord record;
    RenderSpanTree(arena, 7, &record);
    for (int i = 0; i < 256; ++i) ring.Record(record);
    g_counting = false;
    Check(arena.dropped() > 0, "arena overflow counted");
  }
  CheckNoAllocations("span record path");

  // --- flight recorder record path (both rings: fast + slow) ---------
  QueryTrace trace{};
  trace.trace_id = 1;
  trace.total_seconds = 0.5;  // above the slow threshold: both rings
  g_counting = true;
  for (int i = 0; i < 256; ++i) recorder.Record(trace);
  g_counting = false;
  CheckNoAllocations("flight recorder record path");

  // Sanity: the rings actually recorded (snapshots allocate -- that is
  // their contract -- so they run outside the counting phases).
  Check(ring.recorded() == 256, "span ring recorded");
  Check(!ring.Snapshot(4).empty(), "span ring snapshot");
  Check(!recorder.Snapshot(4, true).empty(), "slow ring snapshot");

  if (failures == 0) {
    std::printf("obs_alloc_check: PASS\n");
    return 0;
  }
  return 1;
}
