// Tests for the runtime lock-order cycle detector
// (src/vsim/common/deadlock_detector.h): the pure order graph, the
// abort paths (AB/BA inversion, recursive acquisition, same-class
// nesting), the try-lock exemption, and -- the negative contract --
// that the real sharded buffer pool's shard -> file-meta acquisition
// hierarchy is clean under the detector.
#include "vsim/common/deadlock_detector.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "vsim/cache/page_cache.h"
#include "vsim/common/thread_annotations.h"
#include "vsim/storage/paged_file.h"

namespace vsim {
namespace {

using deadlock::LockNodeId;
using deadlock::LockOrderGraph;
using deadlock::ScopedDetectorForTesting;

// --- The pure order graph -------------------------------------------

TEST(LockOrderGraphTest, ConsistentEdgesReportNoCycle) {
  LockOrderGraph graph;
  EXPECT_FALSE(graph.AddEdge(1, 2).has_value());
  EXPECT_FALSE(graph.AddEdge(2, 3).has_value());
  EXPECT_FALSE(graph.AddEdge(1, 3).has_value());
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(2, 1));
}

TEST(LockOrderGraphTest, DuplicateEdgeIsIdempotent) {
  LockOrderGraph graph;
  EXPECT_FALSE(graph.AddEdge(1, 2).has_value());
  EXPECT_FALSE(graph.AddEdge(1, 2).has_value());
}

TEST(LockOrderGraphTest, DirectInversionReturnsEstablishedPath) {
  LockOrderGraph graph;
  ASSERT_FALSE(graph.AddEdge(1, 2).has_value());
  auto cycle = graph.AddEdge(2, 1);
  ASSERT_TRUE(cycle.has_value());
  // The pre-existing path 1 -> 2 that the new edge 2 -> 1 contradicts.
  EXPECT_EQ(*cycle, (std::vector<LockNodeId>{1, 2}));
}

TEST(LockOrderGraphTest, TransitiveCycleIsDetected) {
  LockOrderGraph graph;
  ASSERT_FALSE(graph.AddEdge(1, 2).has_value());
  ASSERT_FALSE(graph.AddEdge(2, 3).has_value());
  auto cycle = graph.AddEdge(3, 1);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<LockNodeId>{1, 2, 3}));
}

TEST(LockOrderGraphTest, SelfEdgeIsACycle) {
  LockOrderGraph graph;
  auto cycle = graph.AddEdge(7, 7);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<LockNodeId>{7}));
}

// --- Abort paths (death tests) --------------------------------------

TEST(DeadlockDetectorDeathTest, AbBaInversionAbortsNamingBothClasses) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto provoke = [] {
    ScopedDetectorForTesting on(true);
    Mutex a("test.lock_a");
    Mutex b("test.lock_b");
    {
      MutexLock la(&a);
      MutexLock lb(&b);  // establishes test.lock_a -> test.lock_b
    }
    {
      MutexLock lb(&b);
      MutexLock la(&a);  // inversion: must abort before deadlocking
    }
  };
  // The report must name the cycle AND both sites: the class acquired
  // and the class held (the two disagreeing acquisition orders).
  EXPECT_DEATH(provoke(),
               "lock-order cycle.*"
               "acquiring 'test\\.lock_a' while holding 'test\\.lock_b'.*"
               "'test\\.lock_a' -> 'test\\.lock_b'");
}

TEST(DeadlockDetectorDeathTest, ClassKeyingIndictsDistinctObjectPairs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The inversion happens on DIFFERENT objects of the same two
  // classes: class-keyed edges must still catch it.
  auto provoke = [] {
    ScopedDetectorForTesting on(true);
    Mutex a1("test.class_a"), a2("test.class_a");
    Mutex b1("test.class_b"), b2("test.class_b");
    {
      MutexLock la(&a1);
      MutexLock lb(&b1);
    }
    {
      MutexLock lb(&b2);
      MutexLock la(&a2);  // same class pair, opposite order
    }
  };
  EXPECT_DEATH(provoke(), "lock-order cycle.*test\\.class_a.*test\\.class_b");
}

TEST(DeadlockDetectorDeathTest, UnnamedMutexesParticipatePerObject) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto provoke = [] {
    ScopedDetectorForTesting on(true);
    Mutex a;  // unnamed: keyed by object address
    Mutex b;
    {
      MutexLock la(&a);
      MutexLock lb(&b);
    }
    {
      MutexLock lb(&b);
      MutexLock la(&a);
    }
  };
  EXPECT_DEATH(provoke(), "lock-order cycle.*unnamed mutex");
}

TEST(DeadlockDetectorDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto provoke = [] {
    ScopedDetectorForTesting on(true);
    Mutex mu("test.recursive");
    MutexLock outer(&mu);
    mu.Lock();  // self-deadlock: must abort, not hang
  };
  EXPECT_DEATH(provoke(), "recursive acquisition.*test\\.recursive");
}

TEST(DeadlockDetectorDeathTest, SameClassNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto provoke = [] {
    ScopedDetectorForTesting on(true);
    Mutex s1("test.shard");
    Mutex s2("test.shard");
    MutexLock l1(&s1);
    MutexLock l2(&s2);  // two holds of one class: order-ambiguous
  };
  EXPECT_DEATH(provoke(), "same-class nesting.*test\\.shard");
}

TEST(DeadlockDetectorDeathTest, SharedMutexOrderInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto provoke = [] {
    ScopedDetectorForTesting on(true);
    SharedMutex a("test.rw_a");
    Mutex b("test.rw_b");
    {
      ReaderMutexLock la(&a);  // shared holds feed the same order node
      MutexLock lb(&b);
    }
    {
      MutexLock lb(&b);
      WriterMutexLock la(&a);
    }
  };
  EXPECT_DEATH(provoke(), "lock-order cycle.*test\\.rw_a.*test\\.rw_b");
}

// --- Non-aborting behavior ------------------------------------------

TEST(DeadlockDetectorTest, ConsistentHierarchyStaysClean) {
  ScopedDetectorForTesting on(true);
  Mutex top("test.hier_top");
  Mutex bottom("test.hier_bottom");
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock lt(&top);
        MutexLock lb(&bottom);
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

TEST(DeadlockDetectorTest, TryLockDoesNotEstablishOrder) {
  ScopedDetectorForTesting on(true);
  Mutex a("test.try_a");
  Mutex b("test.try_b");
  {
    MutexLock la(&a);
    ASSERT_TRUE(b.TryLock());  // a held, b try-acquired: no edge a -> b
    b.Unlock();
  }
  {
    MutexLock lb(&b);
    MutexLock la(&a);  // would be an inversion if try-lock added edges
  }
  SUCCEED();
}

TEST(DeadlockDetectorTest, CondVarWaitReleasesHold) {
  // While blocked in CondVar::Wait the mutex is genuinely released;
  // the held-lock stack must reflect that, or the lock taken by the
  // waker's path would manufacture phantom edges. Regression shape: a
  // worker waits on (cv, mu); the main thread takes mu and notifies.
  ScopedDetectorForTesting on(true);
  Mutex mu("test.cv_mu");
  CondVar cv;
  bool go = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!go) cv.Wait(&mu);
  });
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  waiter.join();
  SUCCEED();
}

// --- The production hierarchy: pool shard -> file meta ---------------

// The sharded buffer pool's acquisition order is
// cache.shard -> storage.paged_file.meta (a miss holds the shard latch
// across the page read; Allocate extends the file under the shard
// latch). Drive real Fetch/Allocate traffic from several threads with
// the detector armed: any inversion or same-class shard nesting would
// abort the process.
TEST(DeadlockDetectorTest, BufferPoolShardHierarchyStaysClean) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      "vsim_deadlock_pool_test.pages";
  std::filesystem::remove(path);
  {
    StatusOr<PagedFile> file =
        PagedFile::Create(path.string(), 512);
    ASSERT_TRUE(file.ok()) << file.status().ToString();

    ScopedDetectorForTesting on(true);
    cache::ShardedBufferPool pool(&file.value(),
                                  cache::PoolOptions{/*capacity=*/16,
                                                     /*shards=*/4});
    // Seed pages to fetch (more than capacity: forces eviction sweeps,
    // which run under the exclusive shard latch).
    std::vector<PageId> pages;
    for (int i = 0; i < 32; ++i) {
      StatusOr<cache::PageHandle> handle = pool.Allocate();
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      pages.push_back(handle->page());
    }
    ASSERT_TRUE(pool.FlushAll().ok());

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          const PageId page =
              pages[static_cast<size_t>(i * 7 + t) % pages.size()];
          StatusOr<cache::PageHandle> handle = pool.Fetch(page);
          if (!handle.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(std::memory_order_seq_cst), 0);
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vsim
