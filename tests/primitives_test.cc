#include "vsim/geometry/primitives.h"

#include <gtest/gtest.h>

#include <cmath>

#include "vsim/common/math_util.h"

namespace vsim {
namespace {

// All primitives must be valid, closed and consistently outward
// oriented; we verify via the divergence-theorem volume, which matches
// the analytic solid volume only for watertight outward meshes.

TEST(PrimitivesTest, BoxVolumeExact) {
  const TriangleMesh box = MakeBox({2, 3, 4});
  EXPECT_TRUE(box.Validate().ok());
  EXPECT_NEAR(box.SignedVolume(), 24.0, 1e-12);
  EXPECT_EQ(box.triangle_count(), 12u);
}

TEST(PrimitivesTest, SphereVolumeConvergesFromBelow) {
  const double r = 1.5;
  const TriangleMesh sphere = MakeSphere(r, 48, 24);
  EXPECT_TRUE(sphere.Validate().ok());
  const double analytic = 4.0 / 3.0 * kPi * r * r * r;
  EXPECT_GT(sphere.SignedVolume(), 0.97 * analytic);
  EXPECT_LT(sphere.SignedVolume(), analytic);
}

TEST(PrimitivesTest, CylinderVolume) {
  const TriangleMesh cyl = MakeCylinder(1.0, 2.0, 64);
  EXPECT_TRUE(cyl.Validate().ok());
  const double analytic = kPi * 2.0;
  EXPECT_NEAR(cyl.SignedVolume(), analytic, 0.01 * analytic);
}

TEST(PrimitivesTest, PrismVolume) {
  // Hexagonal prism: area = 3*sqrt(3)/2 * R^2.
  const TriangleMesh prism = MakePrism(6, 1.0, 1.0);
  EXPECT_TRUE(prism.Validate().ok());
  EXPECT_NEAR(prism.SignedVolume(), 3.0 * std::sqrt(3.0) / 2.0, 1e-9);
}

TEST(PrimitivesTest, ConeVolume) {
  const TriangleMesh cone = MakeFrustum(1.0, 0.0, 3.0, 64);
  EXPECT_TRUE(cone.Validate().ok());
  const double analytic = kPi / 3.0 * 3.0;
  EXPECT_NEAR(cone.SignedVolume(), analytic, 0.01 * analytic);
}

TEST(PrimitivesTest, InvertedConeVolume) {
  const TriangleMesh cone = MakeFrustum(0.0, 1.0, 3.0, 64);
  EXPECT_TRUE(cone.Validate().ok());
  const double analytic = kPi / 3.0 * 3.0;
  EXPECT_NEAR(cone.SignedVolume(), analytic, 0.01 * analytic);
}

TEST(PrimitivesTest, FrustumVolume) {
  const double r1 = 2.0, r2 = 1.0, h = 3.0;
  const TriangleMesh f = MakeFrustum(r1, r2, h, 96);
  const double analytic = kPi * h / 3.0 * (r1 * r1 + r1 * r2 + r2 * r2);
  EXPECT_NEAR(f.SignedVolume(), analytic, 0.01 * analytic);
}

TEST(PrimitivesTest, TorusVolume) {
  const double R = 2.0, r = 0.5;
  const TriangleMesh torus = MakeTorus(R, r, 64, 32);
  EXPECT_TRUE(torus.Validate().ok());
  const double analytic = 2.0 * kPi * kPi * R * r * r;
  EXPECT_NEAR(torus.SignedVolume(), analytic, 0.02 * analytic);
}

TEST(PrimitivesTest, TubeVolume) {
  const double ro = 2.0, ri = 1.0, h = 0.5;
  const TriangleMesh tube = MakeTube(ro, ri, h, 96);
  EXPECT_TRUE(tube.Validate().ok());
  const double analytic = kPi * (ro * ro - ri * ri) * h;
  EXPECT_NEAR(tube.SignedVolume(), analytic, 0.01 * analytic);
}

TEST(PrimitivesTest, LatheCylinderMatchesAnalytic) {
  // A lathe of a rectangular profile is a cylinder.
  const TriangleMesh lathe =
      MakeLathe({{1.0, 0.0}, {1.0, 2.0}}, 64);
  EXPECT_TRUE(lathe.Validate().ok());
  EXPECT_NEAR(lathe.SignedVolume(), kPi * 2.0, 0.01 * kPi * 2.0);
}

TEST(PrimitivesTest, LatheWithPolesIsClosed) {
  // Double cone via poles at both ends.
  const TriangleMesh bicone =
      MakeLathe({{0.0, -1.0}, {1.0, 0.0}, {0.0, 1.0}}, 64);
  EXPECT_TRUE(bicone.Validate().ok());
  const double analytic = 2.0 * kPi / 3.0;
  EXPECT_NEAR(bicone.SignedVolume(), analytic, 0.01 * analytic);
}

TEST(PrimitivesTest, DeformedBlockIdentityIsUnitCube) {
  const TriangleMesh block = MakeDeformedBlock(
      [](double u, double v, double w) { return Vec3{u, v, w}; }, 3, 2, 4);
  EXPECT_TRUE(block.Validate().ok());
  EXPECT_NEAR(block.SignedVolume(), 1.0, 1e-12);
  const Aabb b = block.Bounds();
  EXPECT_EQ(b.min, (Vec3{0, 0, 0}));
  EXPECT_EQ(b.max, (Vec3{1, 1, 1}));
}

TEST(PrimitivesTest, CurvedPanelFlatIsBox) {
  const TriangleMesh panel = MakeCurvedPanel(2, 1, 0.1, 0.0);
  EXPECT_NEAR(panel.SignedVolume(), 0.2, 1e-12);
}

TEST(PrimitivesTest, CurvedPanelPreservesVolumeApproximately) {
  // Bending preserves volume of the neutral fiber to first order.
  const TriangleMesh panel = MakeCurvedPanel(2, 1, 0.1, 0.8, 32);
  EXPECT_TRUE(panel.Validate().ok());
  EXPECT_NEAR(panel.SignedVolume(), 0.2, 0.01);
}

TEST(PrimitivesTest, WingIsClosedAndPositive) {
  const TriangleMesh wing = MakeWing(1.5, 0.6, 3.0, 0.3, 0.5, 12);
  EXPECT_TRUE(wing.Validate().ok());
  EXPECT_GT(wing.SignedVolume(), 0.0);
}

// Parameterized watertightness sweep: Euler characteristic and edge
// manifoldness for a representative zoo of primitives.
class WatertightTest : public ::testing::TestWithParam<int> {};

TriangleMesh MakePrimitive(int which) {
  switch (which) {
    case 0: return MakeBox({1, 2, 3});
    case 1: return MakeSphere(1.0, 16, 8);
    case 2: return MakeCylinder(1.0, 2.0, 12);
    case 3: return MakePrism(6, 1.0, 0.5);
    case 4: return MakeFrustum(1.0, 0.4, 1.0, 10);
    case 5: return MakeTorus(2.0, 0.5, 16, 8);
    case 6: return MakeTube(2.0, 1.0, 1.0, 12);
    case 7: return MakeLathe({{0.0, 0.0}, {1.0, 0.3}, {0.8, 1.0}, {0.0, 1.4}}, 12);
    case 8: return MakeCurvedPanel(2, 1, 0.2, 0.6, 8);
    case 9: return MakeWing(1.0, 0.5, 2.0, 0.2, 0.3, 6);
    default: return MakeFrustum(0.0, 1.0, 1.0, 12);
  }
}

TEST_P(WatertightTest, EveryEdgeSharedByExactlyTwoTriangles) {
  const TriangleMesh mesh = MakePrimitive(GetParam());
  ASSERT_TRUE(mesh.Validate().ok());
  std::map<std::pair<uint32_t, uint32_t>, int> edge_count;
  for (const auto& t : mesh.triangle_indices()) {
    for (int e = 0; e < 3; ++e) {
      uint32_t a = t[e], b = t[(e + 1) % 3];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  }
  for (const auto& [edge, count] : edge_count) {
    EXPECT_EQ(count, 2) << "edge (" << edge.first << "," << edge.second
                        << ") shared by " << count << " triangles";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrimitives, WatertightTest,
                         ::testing::Range(0, 11));

}  // namespace
}  // namespace vsim
