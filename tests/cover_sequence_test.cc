#include "vsim/features/cover_sequence.h"

#include <gtest/gtest.h>

#include "vsim/common/rng.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

VoxelGrid CuboidGrid(int r, VoxelCoord lo, VoxelCoord hi) {
  VoxelGrid g(r);
  for (int z = lo.z; z <= hi.z; ++z)
    for (int y = lo.y; y <= hi.y; ++y)
      for (int x = lo.x; x <= hi.x; ++x) g.Set(x, y, z);
  return g;
}

TEST(CoverTest, VolumeAndContains) {
  const Cover c{{1, 2, 3}, {3, 4, 5}, true};
  EXPECT_EQ(c.Volume(), 27);
  EXPECT_TRUE(c.Contains(2, 3, 4));
  EXPECT_FALSE(c.Contains(0, 3, 4));
}

TEST(CoverToFeatureTest, CenteredPositionsAndExtents) {
  // Full-grid cover of an r = 10 grid: position 0, extent 1 per axis.
  const Cover full{{0, 0, 0}, {9, 9, 9}, true};
  const auto f = CoverToFeature(full, 10);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(f[i], 0.0, 1e-12);
  for (int i = 3; i < 6; ++i) EXPECT_NEAR(f[i], 1.0, 1e-12);
  // Single voxel at the low corner.
  const Cover corner{{0, 0, 0}, {0, 0, 0}, true};
  const auto g = CoverToFeature(corner, 10);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(g[i], (0.5 - 5.0) / 10.0, 1e-12);
  for (int i = 3; i < 6; ++i) EXPECT_NEAR(g[i], 0.1, 1e-12);
}

TEST(CoverSequenceTest, SingleCuboidRecoveredExactly) {
  const VoxelGrid object = CuboidGrid(8, {1, 2, 3}, {5, 6, 7});
  CoverSequenceOptions opt;
  opt.max_covers = 3;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(object, opt);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_EQ(seq->covers.size(), 1u);
  EXPECT_EQ(seq->covers[0].lo, (VoxelCoord{1, 2, 3}));
  EXPECT_EQ(seq->covers[0].hi, (VoxelCoord{5, 6, 7}));
  EXPECT_TRUE(seq->covers[0].positive);
  EXPECT_EQ(seq->final_error(), 0u);
  EXPECT_EQ(ReconstructApproximation(*seq), object);
}

TEST(CoverSequenceTest, BoxWithHoleUsesSubtraction) {
  // A cuboid with a cuboid hole: cover 1 = '+' outer, cover 2 = '-' hole.
  VoxelGrid object = CuboidGrid(10, {1, 1, 1}, {8, 8, 8});
  for (int z = 3; z <= 6; ++z)
    for (int y = 3; y <= 6; ++y)
      for (int x = 3; x <= 6; ++x) object.Set(x, y, z, false);
  CoverSequenceOptions opt;
  opt.max_covers = 4;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(object, opt);
  ASSERT_TRUE(seq.ok());
  ASSERT_GE(seq->covers.size(), 2u);
  EXPECT_TRUE(seq->covers[0].positive);
  EXPECT_FALSE(seq->covers[1].positive);
  EXPECT_EQ(seq->final_error(), 0u);
  EXPECT_EQ(ReconstructApproximation(*seq), object);
}

TEST(CoverSequenceTest, ErrorHistoryIsMonotoneNonIncreasing) {
  Rng rng(99);
  VoxelGrid object(10);
  // Random blobby object: several random cuboids unioned.
  for (int c = 0; c < 5; ++c) {
    const int x0 = static_cast<int>(rng.NextBounded(8));
    const int y0 = static_cast<int>(rng.NextBounded(8));
    const int z0 = static_cast<int>(rng.NextBounded(8));
    const int x1 = x0 + static_cast<int>(rng.NextBounded(3));
    const int y1 = y0 + static_cast<int>(rng.NextBounded(3));
    const int z1 = z0 + static_cast<int>(rng.NextBounded(3));
    for (int z = z0; z <= z1; ++z)
      for (int y = y0; y <= y1; ++y)
        for (int x = x0; x <= x1; ++x) object.Set(x, y, z);
  }
  CoverSequenceOptions opt;
  opt.max_covers = 7;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(object, opt);
  ASSERT_TRUE(seq.ok());
  ASSERT_GE(seq->error_history.size(), 2u);
  EXPECT_EQ(seq->error_history.front(), object.Count());
  for (size_t i = 1; i < seq->error_history.size(); ++i) {
    EXPECT_LT(seq->error_history[i], seq->error_history[i - 1]);
  }
  // Reconstruction error matches the recorded final error.
  EXPECT_EQ(object.XorCount(ReconstructApproximation(*seq)),
            seq->final_error());
}

TEST(CoverSequenceTest, ExhaustiveMatchesOrBeatsHillClimbPerStep) {
  Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    VoxelGrid object(6);
    for (int i = 0; i < 40; ++i) {
      object.Set(static_cast<int>(rng.NextBounded(6)),
                 static_cast<int>(rng.NextBounded(6)),
                 static_cast<int>(rng.NextBounded(6)));
    }
    CoverSequenceOptions greedy, exact;
    greedy.max_covers = exact.max_covers = 1;
    exact.search = CoverSequenceOptions::Search::kExhaustive;
    StatusOr<CoverSequence> g = ComputeCoverSequence(object, greedy);
    StatusOr<CoverSequence> e = ComputeCoverSequence(object, exact);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(e.ok());
    // The exhaustive first step reduces the error at least as much.
    EXPECT_LE(e->final_error(), g->final_error());
  }
}

TEST(CoverSequenceTest, HillClimbCloseToExhaustiveOnRealShape) {
  VoxelizerOptions vox;
  vox.resolution = 8;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeTorus(1.0, 0.4, 24, 12), vox);
  ASSERT_TRUE(model.ok());
  CoverSequenceOptions greedy, exact;
  greedy.max_covers = exact.max_covers = 5;
  greedy.restarts = 32;
  exact.search = CoverSequenceOptions::Search::kExhaustive;
  StatusOr<CoverSequence> g = ComputeCoverSequence(model->grid, greedy);
  StatusOr<CoverSequence> e = ComputeCoverSequence(model->grid, exact);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(e.ok());
  // Hill climbing must achieve at least 70% of the exact greedy error
  // reduction (in practice it is nearly identical).
  const double g_red = static_cast<double>(model->grid.Count() - g->final_error());
  const double e_red = static_cast<double>(model->grid.Count() - e->final_error());
  EXPECT_GE(g_red, 0.7 * e_red);
}

TEST(CoverSequenceTest, StopsAtMaxCovers) {
  Rng rng(77);
  VoxelGrid object(12);
  for (int i = 0; i < 400; ++i) {
    object.Set(static_cast<int>(rng.NextBounded(12)),
               static_cast<int>(rng.NextBounded(12)),
               static_cast<int>(rng.NextBounded(12)));
  }
  CoverSequenceOptions opt;
  opt.max_covers = 4;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(object, opt);
  ASSERT_TRUE(seq.ok());
  EXPECT_LE(seq->covers.size(), 4u);
}

TEST(CoverSequenceTest, RejectsEmptyAndNonCubic) {
  VoxelGrid empty(6);
  CoverSequenceOptions opt;
  EXPECT_FALSE(ComputeCoverSequence(empty, opt).ok());
  VoxelGrid flat(4, 4, 5);
  flat.Set(0, 0, 0);
  EXPECT_FALSE(ComputeCoverSequence(flat, opt).ok());
  VoxelGrid ok_grid(4);
  ok_grid.Set(1, 1, 1);
  opt.max_covers = 0;
  EXPECT_FALSE(ComputeCoverSequence(ok_grid, opt).ok());
}

TEST(CoverSequenceTest, FeatureVectorPadsWithDummies) {
  const VoxelGrid object = CuboidGrid(8, {2, 2, 2}, {5, 5, 5});
  CoverSequenceOptions opt;
  opt.max_covers = 3;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(object, opt);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(seq->covers.size(), 1u);
  const FeatureVector f = ToFeatureVector(*seq, 3);
  ASSERT_EQ(f.size(), 18u);
  // Covers 2 and 3 are dummy zeros.
  for (size_t i = 6; i < 18; ++i) EXPECT_DOUBLE_EQ(f[i], 0.0);
  // The vector set stores only the real cover.
  const VectorSet set = ToVectorSet(*seq, 3);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.dim(), 6u);
}

TEST(CoverSequenceTest, DeterministicForFixedSeed) {
  VoxelizerOptions vox;
  vox.resolution = 10;
  StatusOr<VoxelModel> model =
      VoxelizeMesh(MakeCylinder(1.0, 2.0, 16), vox);
  ASSERT_TRUE(model.ok());
  CoverSequenceOptions opt;
  opt.max_covers = 5;
  opt.seed = 42;
  StatusOr<CoverSequence> a = ComputeCoverSequence(model->grid, opt);
  StatusOr<CoverSequence> b = ComputeCoverSequence(model->grid, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->covers.size(), b->covers.size());
  for (size_t i = 0; i < a->covers.size(); ++i) {
    EXPECT_EQ(a->covers[i], b->covers[i]);
  }
}

}  // namespace
}  // namespace vsim
