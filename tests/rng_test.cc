#include "vsim/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace vsim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.5);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(23);
  int trues = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) trues += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.02);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  // Regression pin: SplitMix64(0) first output is a published constant.
  uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(s2), 0xe220a8397b1dcdafull);
}

}  // namespace
}  // namespace vsim
