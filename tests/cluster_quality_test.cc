#include "vsim/cluster/cluster_quality.h"

#include <gtest/gtest.h>

#include "vsim/common/rng.h"

namespace vsim {
namespace {

TEST(ClusterQualityTest, PerfectClusteringScoresOne) {
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const std::vector<int> pred = {2, 2, 2, 0, 0, 0, 1, 1, 1};  // renamed ids
  const ClusterQuality q = EvaluateClustering(pred, truth);
  EXPECT_DOUBLE_EQ(q.purity, 1.0);
  EXPECT_NEAR(q.adjusted_rand, 1.0, 1e-12);
  EXPECT_NEAR(q.nmi, 1.0, 1e-12);
  EXPECT_NEAR(q.pairwise_f1, 1.0, 1e-12);
  EXPECT_EQ(q.cluster_count, 3);
  EXPECT_DOUBLE_EQ(q.noise_fraction, 0.0);
}

TEST(ClusterQualityTest, AllInOneClusterHasLowArі) {
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<int> pred = {0, 0, 0, 0, 0, 0};
  const ClusterQuality q = EvaluateClustering(pred, truth);
  EXPECT_NEAR(q.adjusted_rand, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.purity, 0.5);
}

TEST(ClusterQualityTest, NoiseExcludedButReported) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {0, 0, -1, -1};
  const ClusterQuality q = EvaluateClustering(pred, truth);
  EXPECT_DOUBLE_EQ(q.noise_fraction, 0.5);
  EXPECT_DOUBLE_EQ(q.purity, 1.0);
  EXPECT_EQ(q.cluster_count, 1);
}

TEST(ClusterQualityTest, RandomLabelsScoreNearZeroAri) {
  Rng rng(55);
  std::vector<int> truth(400), pred(400);
  for (auto& t : truth) t = static_cast<int>(rng.NextBounded(4));
  for (auto& p : pred) p = static_cast<int>(rng.NextBounded(4));
  const ClusterQuality q = EvaluateClustering(pred, truth);
  EXPECT_NEAR(q.adjusted_rand, 0.0, 0.05);
  EXPECT_LT(q.nmi, 0.1);
}

TEST(ClusterQualityTest, SplitClustersKeepPurityLoseF1) {
  // Each true class split into two predicted clusters: purity perfect,
  // recall (and F1) suffers.
  const std::vector<int> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> pred = {0, 0, 1, 1, 2, 2, 3, 3};
  const ClusterQuality q = EvaluateClustering(pred, truth);
  EXPECT_DOUBLE_EQ(q.purity, 1.0);
  EXPECT_LT(q.pairwise_f1, 0.7);
}

TEST(ClusterQualityTest, DegenerateInputs) {
  EXPECT_EQ(EvaluateClustering({}, {}).cluster_count, 0);
  // Singleton truth classes are unclusterable: declaring them noise is
  // correct and does not count toward noise_fraction.
  const ClusterQuality q = EvaluateClustering({-1, -1}, {0, 1});
  EXPECT_DOUBLE_EQ(q.noise_fraction, 0.0);
  // Members of real (size >= 2) classes left unclustered do count.
  const ClusterQuality q2 = EvaluateClustering({-1, -1, 0, 0}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(q2.noise_fraction, 0.5);
}

TEST(LabelsByObjectTest, MapsOrderingPositionsBack) {
  OpticsResult r;
  r.ordering = {{2, 0, 0}, {0, 0, 0}, {1, 0, 0}};
  const std::vector<int> by_pos = {7, 8, 9};
  const std::vector<int> by_obj = LabelsByObject(r, by_pos, 3);
  EXPECT_EQ(by_obj, (std::vector<int>{8, 9, 7}));
}

TEST(BestCutQualityTest, FindsGoodCutOnSeparatedData) {
  // Reachability plot with two obvious valleys (values constructed by
  // hand): truth has two classes.
  OpticsResult r;
  const double inf = std::numeric_limits<double>::infinity();
  const double reach[] = {inf, 0.1, 0.15, 0.1, 5.0, 0.12, 0.09, 0.11};
  for (int i = 0; i < 8; ++i) {
    r.ordering.push_back({i, reach[i], 0.1});
  }
  const std::vector<int> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  const ClusterQuality q = BestCutQuality(r, truth, 16, 2);
  EXPECT_GT(q.adjusted_rand, 0.9);
  EXPECT_EQ(q.cluster_count, 2);
}

}  // namespace
}  // namespace vsim
