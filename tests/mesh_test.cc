#include "vsim/geometry/mesh.h"

#include <gtest/gtest.h>

#include "vsim/common/math_util.h"
#include "vsim/geometry/primitives.h"

namespace vsim {
namespace {

TriangleMesh UnitTetrahedron() {
  TriangleMesh mesh;
  const uint32_t a = mesh.AddVertex({0, 0, 0});
  const uint32_t b = mesh.AddVertex({1, 0, 0});
  const uint32_t c = mesh.AddVertex({0, 1, 0});
  const uint32_t d = mesh.AddVertex({0, 0, 1});
  // Outward-oriented faces.
  mesh.AddTriangle(a, c, b);
  mesh.AddTriangle(a, b, d);
  mesh.AddTriangle(a, d, c);
  mesh.AddTriangle(b, c, d);
  return mesh;
}

TEST(TriangleTest, NormalAreaCentroid) {
  const Triangle t{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}};
  EXPECT_EQ(t.Normal(), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(t.Area(), 2.0);
  EXPECT_NEAR(t.Centroid().x, 2.0 / 3, 1e-12);
  const Aabb b = t.Bounds();
  EXPECT_EQ(b.min, (Vec3{0, 0, 0}));
  EXPECT_EQ(b.max, (Vec3{2, 2, 0}));
}

TEST(MeshTest, TetrahedronVolumeAndArea) {
  const TriangleMesh tet = UnitTetrahedron();
  EXPECT_EQ(tet.triangle_count(), 4u);
  EXPECT_NEAR(tet.SignedVolume(), 1.0 / 6.0, 1e-12);
  // Surface area: 3 right triangles of area 1/2 plus sqrt(3)/2.
  EXPECT_NEAR(tet.SurfaceArea(), 1.5 + std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(MeshTest, ValidatePassesOnGoodMesh) {
  EXPECT_TRUE(UnitTetrahedron().Validate().ok());
}

TEST(MeshTest, ValidateRejectsEmptyMesh) {
  TriangleMesh mesh;
  EXPECT_FALSE(mesh.Validate().ok());
}

TEST(MeshTest, ValidateRejectsOutOfRangeIndex) {
  TriangleMesh mesh;
  mesh.AddVertex({0, 0, 0});
  mesh.AddVertex({1, 0, 0});
  mesh.AddVertex({0, 1, 0});
  mesh.AddTriangle(0, 1, 7);
  EXPECT_FALSE(mesh.Validate().ok());
}

TEST(MeshTest, ValidateRejectsDegenerateTriangle) {
  TriangleMesh mesh;
  mesh.AddTriangle(Vec3{0, 0, 0}, Vec3{1, 1, 1}, Vec3{2, 2, 2});
  EXPECT_FALSE(mesh.Validate().ok());
}

TEST(MeshTest, AppendRebasesIndices) {
  TriangleMesh a = UnitTetrahedron();
  const size_t verts = a.vertex_count();
  TriangleMesh b = UnitTetrahedron();
  b.ApplyTransform(Transform::Translate({10, 0, 0}));
  a.Append(b);
  EXPECT_EQ(a.triangle_count(), 8u);
  EXPECT_EQ(a.vertex_count(), 2 * verts);
  EXPECT_TRUE(a.Validate().ok());
  // Total signed volume doubles (disjoint solids).
  EXPECT_NEAR(a.SignedVolume(), 2.0 / 6.0, 1e-12);
}

TEST(MeshTest, ApplyTransformMovesBounds) {
  TriangleMesh tet = UnitTetrahedron();
  tet.ApplyTransform(Transform::Translate({5, 5, 5}));
  const Aabb b = tet.Bounds();
  EXPECT_EQ(b.min, (Vec3{5, 5, 5}));
  EXPECT_EQ(b.max, (Vec3{6, 6, 6}));
}

TEST(MeshTest, RotationPreservesVolume) {
  TriangleMesh tet = UnitTetrahedron();
  tet.ApplyTransform(Transform::Linear(Mat3::AxisAngle({1, 2, 3}, 0.83)));
  EXPECT_NEAR(tet.SignedVolume(), 1.0 / 6.0, 1e-12);
}

TEST(MeshTest, VertexCentroid) {
  const TriangleMesh tet = UnitTetrahedron();
  const Vec3 c = tet.VertexCentroid();
  EXPECT_NEAR(c.x, 0.25, 1e-12);
  EXPECT_NEAR(c.y, 0.25, 1e-12);
  EXPECT_NEAR(c.z, 0.25, 1e-12);
}

}  // namespace
}  // namespace vsim
