#include "vsim/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace vsim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

// Every code must survive code -> name -> code and code -> int -> code:
// status codes cross process boundaries (the wire protocol sends them
// as integers; logs and scripts match on the names), so the mapping is
// part of the public contract, exhaustively.
TEST(StatusTest, EveryCodeRoundTripsThroughItsName) {
  for (int i = 0; i <= kMaxStatusCode; ++i) {
    const StatusCode code = static_cast<StatusCode>(i);
    const char* name = StatusCodeName(code);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "Unknown") << "code " << i << " has no name";
    StatusCode back = StatusCode::kInternal;
    ASSERT_TRUE(StatusCodeFromName(name, &back))
        << "name '" << name << "' does not parse back";
    EXPECT_EQ(back, code);
  }
}

TEST(StatusTest, EveryCodeRoundTripsThroughItsInteger) {
  for (int i = 0; i <= kMaxStatusCode; ++i) {
    StatusCode code = StatusCode::kInternal;
    ASSERT_TRUE(StatusCodeFromInt(i, &code)) << "int " << i;
    EXPECT_EQ(static_cast<int>(code), i);
  }
}

TEST(StatusTest, UnknownNamesAndIntsAreRejected) {
  StatusCode code = StatusCode::kOk;
  EXPECT_FALSE(StatusCodeFromName("NoSuchCode", &code));
  EXPECT_FALSE(StatusCodeFromName("", &code));
  EXPECT_FALSE(StatusCodeFromName("ok", &code));  // names are exact
  EXPECT_FALSE(StatusCodeFromInt(-1, &code));
  EXPECT_FALSE(StatusCodeFromInt(kMaxStatusCode + 1, &code));
  EXPECT_EQ(code, StatusCode::kOk);  // rejected lookups leave *code alone
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacros(int x, int* out) {
  VSIM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  VSIM_RETURN_NOT_OK(Status::OK());
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status err = UseMacros(-1, &out);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vsim
