#include "vsim/cluster/optics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

// Three well-separated 2-D Gaussian blobs.
std::vector<FeatureVector> MakeBlobs(int per_blob, Rng& rng) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {5, 9}};
  std::vector<FeatureVector> pts;
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      pts.push_back({c[0] + rng.Gaussian(0, 0.5), c[1] + rng.Gaussian(0, 0.5)});
    }
  }
  return pts;
}

PairwiseDistanceFn DistanceOf(const std::vector<FeatureVector>& pts) {
  return [&pts](int i, int j) { return EuclideanDistance(pts[i], pts[j]); };
}

TEST(OpticsTest, EmptyAndTinyInputs) {
  OpticsOptions opt;
  StatusOr<OpticsResult> r = RunOptics(0, [](int, int) { return 0.0; }, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ordering.empty());

  opt.min_pts = 1;
  r = RunOptics(1, [](int, int) { return 0.0; }, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ordering.size(), 1u);
  EXPECT_TRUE(std::isinf(r->ordering[0].reachability));
}

TEST(OpticsTest, RejectsBadOptions) {
  OpticsOptions opt;
  opt.min_pts = 0;
  EXPECT_FALSE(RunOptics(3, [](int, int) { return 1.0; }, opt).ok());
  opt.min_pts = 2;
  EXPECT_FALSE(RunOptics(-1, [](int, int) { return 1.0; }, opt).ok());
}

TEST(OpticsTest, OrderingContainsEveryObjectOnce) {
  Rng rng(31);
  const auto pts = MakeBlobs(30, rng);
  OpticsOptions opt;
  opt.min_pts = 5;
  StatusOr<OpticsResult> r = RunOptics(static_cast<int>(pts.size()),
                                       DistanceOf(pts), opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->ordering.size(), pts.size());
  std::set<int> seen;
  for (const OpticsEntry& e : r->ordering) seen.insert(e.object);
  EXPECT_EQ(seen.size(), pts.size());
  EXPECT_TRUE(std::isinf(r->ordering.front().reachability));
}

TEST(OpticsTest, BlobsFormThreeValleys) {
  Rng rng(32);
  const auto pts = MakeBlobs(40, rng);
  OpticsOptions opt;
  opt.min_pts = 5;
  StatusOr<OpticsResult> r = RunOptics(static_cast<int>(pts.size()),
                                       DistanceOf(pts), opt);
  ASSERT_TRUE(r.ok());
  // Cut at a level separating intra-blob (<~1.5) from inter-blob (>~8).
  const std::vector<int> labels = ExtractClusters(*r, 2.5, 5);
  std::set<int> clusters;
  for (int l : labels) {
    if (l >= 0) clusters.insert(l);
  }
  EXPECT_EQ(clusters.size(), 3u);
  // Nearly all objects are clustered at this cut.
  size_t noise = 0;
  for (int l : labels) noise += l < 0 ? 1 : 0;
  EXPECT_LT(noise, 6u);
}

TEST(OpticsTest, ClustersArePureUnderTruth) {
  Rng rng(33);
  const int per_blob = 40;
  const auto pts = MakeBlobs(per_blob, rng);
  OpticsOptions opt;
  opt.min_pts = 5;
  StatusOr<OpticsResult> r = RunOptics(static_cast<int>(pts.size()),
                                       DistanceOf(pts), opt);
  ASSERT_TRUE(r.ok());
  const std::vector<int> labels = ExtractClusters(*r, 2.5, 5);
  // Check that no extracted cluster mixes blobs.
  for (size_t pos = 0; pos < r->ordering.size(); ++pos) {
    for (size_t pos2 = pos + 1; pos2 < r->ordering.size(); ++pos2) {
      if (labels[pos] >= 0 && labels[pos] == labels[pos2]) {
        const int blob1 = r->ordering[pos].object / per_blob;
        const int blob2 = r->ordering[pos2].object / per_blob;
        EXPECT_EQ(blob1, blob2);
      }
    }
  }
}

TEST(OpticsTest, HierarchicalCutsSplitClusters) {
  // A cluster with two sub-clusters: a coarse cut gives 1 cluster, a
  // fine cut gives 2 (the paper's Figure 5 illustration).
  Rng rng(34);
  std::vector<FeatureVector> pts;
  for (int i = 0; i < 30; ++i) pts.push_back({rng.Gaussian(0, 0.3), 0.0});
  for (int i = 0; i < 30; ++i) pts.push_back({rng.Gaussian(3, 0.3), 0.0});
  OpticsOptions opt;
  opt.min_pts = 4;
  StatusOr<OpticsResult> r = RunOptics(static_cast<int>(pts.size()),
                                       DistanceOf(pts), opt);
  ASSERT_TRUE(r.ok());
  auto count_clusters = [&](double eps) {
    std::set<int> c;
    for (int l : ExtractClusters(*r, eps, 4)) {
      if (l >= 0) c.insert(l);
    }
    return c.size();
  };
  EXPECT_EQ(count_clusters(2.9), 1u);  // coarse cut: one merged cluster
  EXPECT_EQ(count_clusters(0.8), 2u);  // fine cut: two sub-clusters
}

TEST(OpticsTest, EpsTruncationIncreasesInfiniteReachabilities) {
  Rng rng(35);
  const auto pts = MakeBlobs(20, rng);
  OpticsOptions unbounded, bounded;
  unbounded.min_pts = bounded.min_pts = 4;
  bounded.eps = 2.0;  // inter-blob jumps exceed eps
  StatusOr<OpticsResult> ru = RunOptics(static_cast<int>(pts.size()),
                                        DistanceOf(pts), unbounded);
  StatusOr<OpticsResult> rb = RunOptics(static_cast<int>(pts.size()),
                                        DistanceOf(pts), bounded);
  ASSERT_TRUE(ru.ok());
  ASSERT_TRUE(rb.ok());
  auto infinities = [](const OpticsResult& r) {
    size_t n = 0;
    for (const auto& e : r.ordering) n += std::isinf(e.reachability) ? 1 : 0;
    return n;
  };
  EXPECT_EQ(infinities(*ru), 1u);   // single connected run
  EXPECT_EQ(infinities(*rb), 3u);   // one per blob
}

TEST(OpticsTest, DistanceEvaluationsAreCounted) {
  Rng rng(36);
  const auto pts = MakeBlobs(10, rng);
  OpticsOptions opt;
  opt.min_pts = 3;
  StatusOr<OpticsResult> r = RunOptics(static_cast<int>(pts.size()),
                                       DistanceOf(pts), opt);
  ASSERT_TRUE(r.ok());
  const size_t n = pts.size();
  EXPECT_EQ(r->distance_evaluations, n * (n - 1));
}

TEST(OpticsOutputTest, CsvAndAsciiRender) {
  Rng rng(37);
  const auto pts = MakeBlobs(10, rng);
  OpticsOptions opt;
  opt.min_pts = 3;
  StatusOr<OpticsResult> r = RunOptics(static_cast<int>(pts.size()),
                                       DistanceOf(pts), opt);
  ASSERT_TRUE(r.ok());
  const std::string csv = ReachabilityCsv(*r, 99.0);
  EXPECT_NE(csv.find("position,object,reachability"), std::string::npos);
  EXPECT_NE(csv.find("99"), std::string::npos);  // capped infinity
  const std::string ascii = ReachabilityAscii(*r, 8, 60);
  EXPECT_GT(ascii.size(), 60u);
  EXPECT_NE(ascii.find('#'), std::string::npos);
}

}  // namespace
}  // namespace vsim
