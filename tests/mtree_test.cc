#include "vsim/index/mtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"

namespace vsim {
namespace {

using PointTree = MTree<FeatureVector>;

PointTree MakePointTree(size_t capacity = 8) {
  MTreeOptions opts;
  opts.node_capacity = capacity;
  return PointTree(
      [](const FeatureVector& a, const FeatureVector& b) {
        return EuclideanDistance(a, b);
      },
      opts);
}

std::vector<FeatureVector> RandomPoints(Rng& rng, int count, int dim) {
  std::vector<FeatureVector> pts(count, FeatureVector(dim));
  for (auto& p : pts) {
    for (double& v : p) v = rng.Uniform(0, 1);
  }
  return pts;
}

TEST(MTreeTest, EmptyTree) {
  PointTree tree = MakePointTree();
  EXPECT_TRUE(tree.RangeQuery({0.5, 0.5}, 10.0).empty());
  EXPECT_TRUE(tree.KnnQuery({0.5, 0.5}, 3).empty());
}

TEST(MTreeTest, RangeMatchesLinearScan) {
  Rng rng(21);
  const auto pts = RandomPoints(rng, 800, 4);
  PointTree tree = MakePointTree();
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<int>(i));
  }
  EXPECT_EQ(tree.size(), pts.size());
  for (int q = 0; q < 20; ++q) {
    FeatureVector query(4);
    for (double& v : query) v = rng.Uniform(0, 1);
    const double eps = rng.Uniform(0.05, 0.4);
    std::vector<int> got = tree.RangeQuery(query, eps);
    std::vector<int> expect;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (EuclideanDistance(pts[i], query) <= eps) {
        expect.push_back(static_cast<int>(i));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(MTreeTest, KnnMatchesLinearScan) {
  Rng rng(22);
  const auto pts = RandomPoints(rng, 600, 5);
  PointTree tree = MakePointTree(12);
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<int>(i));
  }
  for (int q = 0; q < 20; ++q) {
    FeatureVector query(5);
    for (double& v : query) v = rng.Uniform(0, 1);
    const int k = 1 + static_cast<int>(rng.NextBounded(8));
    const auto got = tree.KnnQuery(query, k);
    std::vector<double> expect;
    for (const auto& p : pts) expect.push_back(EuclideanDistance(p, query));
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].distance, expect[i], 1e-9);
    }
  }
}

TEST(MTreeTest, KnnPrunesDistanceEvaluations) {
  Rng rng(23);
  const auto pts = RandomPoints(rng, 2000, 3);
  PointTree tree = MakePointTree(16);
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<int>(i));
  }
  size_t evals = 0;
  IoStats io;
  tree.KnnQuery({0.5, 0.5, 0.5}, 5, &io, &evals);
  // Must evaluate far fewer distances than a full scan (within 2x of
  // the node entries visited).
  EXPECT_LT(evals, pts.size());
  EXPECT_GT(evals, 0u);
  EXPECT_GT(io.page_accesses(), 0u);
}

TEST(MTreeTest, WorksWithVectorSetsAndMatchingDistance) {
  Rng rng(24);
  MTreeOptions opts;
  opts.node_capacity = 8;
  MTree<VectorSet> tree(
      [](const VectorSet& a, const VectorSet& b) {
        return VectorSetDistance(a, b);
      },
      opts);
  std::vector<VectorSet> sets;
  for (int i = 0; i < 200; ++i) {
    VectorSet s;
    const int n = 1 + static_cast<int>(rng.NextBounded(5));
    for (int v = 0; v < n; ++v) {
      FeatureVector f(6);
      for (double& x : f) x = rng.Uniform(-1, 1);
      s.vectors.push_back(std::move(f));
    }
    sets.push_back(s);
    tree.Insert(std::move(s), i);
  }
  for (int q = 0; q < 5; ++q) {
    const int query = static_cast<int>(rng.NextBounded(200));
    const auto got = tree.KnnQuery(sets[query], 3);
    ASSERT_EQ(got.size(), 3u);
    // The query object itself is in the tree at distance 0.
    EXPECT_EQ(got[0].id, query);
    EXPECT_NEAR(got[0].distance, 0.0, 1e-12);
    // Verify against a scan.
    std::vector<double> all;
    for (const auto& s : sets) all.push_back(VectorSetDistance(sets[query], s));
    std::sort(all.begin(), all.end());
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(got[i].distance, all[i], 1e-9);
  }
}

TEST(MTreeTest, HeightIsLogarithmic) {
  Rng rng(25);
  const auto pts = RandomPoints(rng, 3000, 2);
  PointTree tree = MakePointTree(16);
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(pts[i], static_cast<int>(i));
  }
  EXPECT_LE(tree.height(), 5);
  EXPECT_GT(tree.node_count(), 1u);
}

}  // namespace
}  // namespace vsim
