#include "vsim/geometry/mesh_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "vsim/geometry/primitives.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ObjParseTest, MinimalTriangle) {
  const std::string obj =
      "v 0 0 0\n"
      "v 1 0 0\n"
      "v 0 1 0\n"
      "f 1 2 3\n";
  StatusOr<TriangleMesh> mesh = ParseObj(obj);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->vertex_count(), 3u);
  EXPECT_EQ(mesh->triangle_count(), 1u);
}

TEST(ObjParseTest, PolygonFacesAreFanTriangulated) {
  const std::string obj =
      "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\n"
      "f 1 2 3 4\n";
  StatusOr<TriangleMesh> mesh = ParseObj(obj);
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh->triangle_count(), 2u);
}

TEST(ObjParseTest, SlashedAndNegativeIndices) {
  const std::string obj =
      "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
      "vn 0 0 1\nvt 0 0\n"
      "f 1/1/1 2/1/1 -1/1/1\n";
  StatusOr<TriangleMesh> mesh = ParseObj(obj);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->triangle_count(), 1u);
}

TEST(ObjParseTest, IgnoresCommentsAndUnknownTags) {
  const std::string obj =
      "# comment\no thing\ng group\nusemtl steel\ns off\n"
      "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n";
  EXPECT_TRUE(ParseObj(obj).ok());
}

TEST(ObjParseTest, RejectsBadVertex) {
  EXPECT_FALSE(ParseObj("v 1 2\nf 1 1 1\n").ok());
}

TEST(ObjParseTest, RejectsOutOfRangeFace) {
  EXPECT_FALSE(ParseObj("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n").ok());
}

TEST(ObjParseTest, RejectsNoFaces) {
  EXPECT_FALSE(ParseObj("v 0 0 0\n").ok());
}

TEST(ObjParseTest, RejectsShortFace) {
  EXPECT_FALSE(ParseObj("v 0 0 0\nv 1 0 0\nf 1 2\n").ok());
}

TEST(MeshIoTest, ObjRoundTrip) {
  const TriangleMesh original = MakeSphere(1.0, 12, 6);
  const std::string path = TempPath("roundtrip.obj");
  ASSERT_TRUE(SaveObj(original, path).ok());
  StatusOr<TriangleMesh> loaded = LoadMesh(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->vertex_count(), original.vertex_count());
  EXPECT_EQ(loaded->triangle_count(), original.triangle_count());
  EXPECT_NEAR(loaded->SignedVolume(), original.SignedVolume(), 1e-6);
  std::remove(path.c_str());
}

TEST(MeshIoTest, StlBinaryRoundTrip) {
  const TriangleMesh original = MakeTorus(2.0, 0.5, 12, 6);
  const std::string path = TempPath("roundtrip.stl");
  ASSERT_TRUE(SaveStlBinary(original, path).ok());
  StatusOr<TriangleMesh> loaded = LoadMesh(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->triangle_count(), original.triangle_count());
  // STL stores floats; volume agrees to float precision.
  EXPECT_NEAR(loaded->SignedVolume(), original.SignedVolume(), 1e-4);
  std::remove(path.c_str());
}

TEST(MeshIoTest, StlAsciiParses) {
  const std::string stl =
      "solid test\n"
      " facet normal 0 0 1\n"
      "  outer loop\n"
      "   vertex 0 0 0\n"
      "   vertex 1 0 0\n"
      "   vertex 0 1 0\n"
      "  endloop\n"
      " endfacet\n"
      "endsolid test\n";
  const std::string path = TempPath("ascii.stl");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(stl.c_str(), f);
  std::fclose(f);
  StatusOr<TriangleMesh> mesh = LoadStl(path);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->triangle_count(), 1u);
  std::remove(path.c_str());
}

TEST(MeshIoTest, MissingFileIsIOError) {
  StatusOr<TriangleMesh> mesh = LoadMesh("/nonexistent/path/model.obj");
  ASSERT_FALSE(mesh.ok());
  EXPECT_EQ(mesh.status().code(), StatusCode::kIOError);
}

TEST(MeshIoTest, UnknownExtensionRejected) {
  StatusOr<TriangleMesh> mesh = LoadMesh("/tmp/model.step");
  ASSERT_FALSE(mesh.ok());
  EXPECT_EQ(mesh.status().code(), StatusCode::kInvalidArgument);
}

TEST(MeshIoTest, TruncatedBinaryStlRejected) {
  const std::string path = TempPath("broken.stl");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  char header[84] = {};
  uint32_t claimed = 100;  // claims 100 facets, provides none
  std::memcpy(header + 80, &claimed, 4);
  std::fwrite(header, 1, sizeof(header), f);
  std::fclose(f);
  EXPECT_FALSE(LoadStl(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsim
