#include "vsim/geometry/transform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "vsim/common/math_util.h"

namespace vsim {
namespace {

TEST(Mat3Test, IdentityLeavesVectorsUnchanged) {
  const Mat3 id = Mat3::Identity();
  const Vec3 v{1.5, -2.5, 3.5};
  EXPECT_EQ(id * v, v);
  EXPECT_DOUBLE_EQ(id.Determinant(), 1.0);
}

TEST(Mat3Test, RotationZQuarterTurn) {
  const Mat3 r = Mat3::RotationZ(kPi / 2);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Mat3Test, RotationsPreserveNorm) {
  const Vec3 v{1, 2, 3};
  for (const Mat3& m : {Mat3::RotationX(0.7), Mat3::RotationY(1.3),
                        Mat3::RotationZ(-2.1),
                        Mat3::AxisAngle({1, 1, 1}, 0.9)}) {
    EXPECT_NEAR((m * v).Norm(), v.Norm(), 1e-12);
    EXPECT_NEAR(m.Determinant(), 1.0, 1e-12);
  }
}

TEST(Mat3Test, AxisAngleMatchesAxisRotations) {
  const Mat3 a = Mat3::AxisAngle({0, 0, 1}, 0.8);
  const Mat3 b = Mat3::RotationZ(0.8);
  for (int i = 0; i < 9; ++i) EXPECT_NEAR(a.m[i], b.m[i], 1e-12);
}

TEST(Mat3Test, MultiplicationComposes) {
  const Mat3 a = Mat3::RotationX(0.5);
  const Mat3 b = Mat3::RotationY(0.25);
  const Vec3 v{1, 2, 3};
  const Vec3 lhs = (a * b) * v;
  const Vec3 rhs = a * (b * v);
  EXPECT_NEAR(lhs.x, rhs.x, 1e-12);
  EXPECT_NEAR(lhs.y, rhs.y, 1e-12);
  EXPECT_NEAR(lhs.z, rhs.z, 1e-12);
}

TEST(Mat3Test, TransposeOfRotationIsInverse) {
  const Mat3 r = Mat3::AxisAngle({1, -2, 0.5}, 1.1);
  const Mat3 should_be_id = r * r.Transposed();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(should_be_id(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(TransformTest, ApplyAndCompose) {
  const Transform t1{Mat3::RotationZ(kPi / 2), {1, 0, 0}};
  const Transform t2{Mat3::Identity(), {0, 5, 0}};
  const Vec3 p{1, 0, 0};
  // t1: rotate then translate.
  const Vec3 q = t1.Apply(p);
  EXPECT_NEAR(q.x, 1.0, 1e-12);
  EXPECT_NEAR(q.y, 1.0, 1e-12);
  // Composition: t2 after t1.
  const Vec3 r = t1.Then(t2).Apply(p);
  const Vec3 expect = t2.Apply(t1.Apply(p));
  EXPECT_NEAR(r.x, expect.x, 1e-12);
  EXPECT_NEAR(r.y, expect.y, 1e-12);
  EXPECT_NEAR(r.z, expect.z, 1e-12);
}

TEST(CubeGroupTest, RotationCountIs24) {
  EXPECT_EQ(CubeRotations().size(), 24u);
}

TEST(CubeGroupTest, FullGroupCountIs48) {
  EXPECT_EQ(CubeRotationsWithReflections().size(), 48u);
}

TEST(CubeGroupTest, FirstElementIsIdentity) {
  const Mat3& first = CubeRotations().front();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(first(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(CubeGroupTest, RotationsHaveDeterminantPlusOne) {
  for (const Mat3& m : CubeRotations()) {
    EXPECT_NEAR(m.Determinant(), 1.0, 1e-12);
  }
}

TEST(CubeGroupTest, FullGroupHas24Reflections) {
  int reflections = 0;
  for (const Mat3& m : CubeRotationsWithReflections()) {
    if (m.Determinant() < 0) ++reflections;
  }
  EXPECT_EQ(reflections, 24);
}

TEST(CubeGroupTest, ElementsAreDistinct) {
  std::set<std::array<int, 9>> seen;
  for (const Mat3& m : CubeRotationsWithReflections()) {
    std::array<int, 9> key;
    for (int i = 0; i < 9; ++i) key[i] = static_cast<int>(std::lround(m.m[i]));
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), 48u);
}

TEST(CubeGroupTest, GroupIsClosedUnderComposition) {
  const auto& group = CubeRotationsWithReflections();
  auto key_of = [](const Mat3& m) {
    std::array<int, 9> key;
    for (int i = 0; i < 9; ++i) key[i] = static_cast<int>(std::lround(m.m[i]));
    return key;
  };
  std::set<std::array<int, 9>> members;
  for (const Mat3& m : group) members.insert(key_of(m));
  // Spot-check closure on a sample of products.
  for (size_t i = 0; i < group.size(); i += 7) {
    for (size_t j = 0; j < group.size(); j += 5) {
      EXPECT_TRUE(members.count(key_of(group[i] * group[j])));
    }
  }
}

}  // namespace
}  // namespace vsim
