#include "vsim/distance/centroid_filter.h"
#include "vsim/kernels/kernels.h"

#include <gtest/gtest.h>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"

namespace vsim {
namespace {

VectorSet RandomSet(Rng& rng, int count, int dim) {
  VectorSet s;
  for (int i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = rng.Uniform(-1, 1);
    s.vectors.push_back(std::move(v));
  }
  return s;
}

TEST(ExtendedCentroidTest, FullSetIsPlainMean) {
  VectorSet s;
  s.vectors.push_back({2.0, 0.0});
  s.vectors.push_back({0.0, 4.0});
  const FeatureVector c = ExtendedCentroid(s, 2);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], 2.0, 1e-12);
}

TEST(ExtendedCentroidTest, MissingElementsPulledTowardOrigin) {
  VectorSet s;
  s.vectors.push_back({4.0, 0.0});
  // k = 4, one real vector, three virtual omega = 0 vectors.
  const FeatureVector c = ExtendedCentroid(s, 4);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], 0.0, 1e-12);
}

TEST(ExtendedCentroidTest, NonZeroOmega) {
  VectorSet s;
  s.vectors.push_back({4.0, 0.0});
  const FeatureVector omega = {2.0, 2.0};
  const FeatureVector c = ExtendedCentroid(s, 2, omega);
  EXPECT_NEAR(c[0], 3.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(CentroidFilterTest, LowerBoundHoldsOnRandomSets) {
  // Lemma 2: k * ||C(X) - C(Y)|| <= dist_mm(X, Y).
  Rng rng(4242);
  const int k = 7;
  int nontrivial = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const VectorSet x = RandomSet(rng, 1 + rng.NextBounded(k), 6);
    const VectorSet y = RandomSet(rng, 1 + rng.NextBounded(k), 6);
    const FeatureVector cx = ExtendedCentroid(x, k);
    const FeatureVector cy = ExtendedCentroid(y, k);
    const double filter = kernels::CentroidFilterBound(cx, cy, k);
    const double exact = VectorSetDistance(x, y);
    EXPECT_LE(filter, exact + 1e-9) << "trial " << trial;
    if (filter > 1e-6) ++nontrivial;
  }
  // The bound must not be vacuous (zero) everywhere.
  EXPECT_GT(nontrivial, 400);
}

TEST(CentroidFilterTest, TightForTranslatedSingletons) {
  // For singleton sets at full cardinality the bound is exact.
  VectorSet x, y;
  x.vectors.push_back({1.0, 2.0});
  y.vectors.push_back({4.0, 6.0});
  const double filter =
      kernels::CentroidFilterBound(ExtendedCentroid(x, 1), ExtendedCentroid(y, 1), 1);
  EXPECT_NEAR(filter, 5.0, 1e-12);
  EXPECT_NEAR(filter, VectorSetDistance(x, y), 1e-12);
}

TEST(CentroidFilterTest, TightForUniformlyTranslatedSets) {
  // X and X + t: matching pairs each element with its translate, and
  // centroids shift by exactly t, so bound = k*||t||/k * k = exact.
  Rng rng(7);
  const int k = 5;
  VectorSet x = RandomSet(rng, k, 3);
  VectorSet y = x;
  const FeatureVector t = {0.3, -0.2, 0.5};
  for (auto& v : y.vectors) {
    for (int d = 0; d < 3; ++d) v[d] += t[d];
  }
  const double filter =
      kernels::CentroidFilterBound(ExtendedCentroid(x, k), ExtendedCentroid(y, k), k);
  const double exact = VectorSetDistance(x, y);
  EXPECT_NEAR(filter, exact, 1e-9);
  EXPECT_NEAR(exact, k * EuclideanNorm(t), 1e-9);
}

TEST(CentroidFilterTest, FilterSelectivityIsReasonable) {
  // On clustered data the bound should prune: the filter distance
  // between far clusters stays large.
  Rng rng(11);
  VectorSet base = RandomSet(rng, 5, 6);
  VectorSet far = base;
  for (auto& v : far.vectors) v[0] += 100.0;
  const double filter = kernels::CentroidFilterBound(ExtendedCentroid(base, 7),
                                               ExtendedCentroid(far, 7), 7);
  EXPECT_GT(filter, 50.0);
}

}  // namespace
}  // namespace vsim
