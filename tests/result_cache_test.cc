#include "vsim/service/result_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace vsim {
namespace {

ResultCacheKey Key(uint64_t digest, int k = 10) {
  ResultCacheKey key;
  key.digest = digest;
  key.k = k;
  return key;
}

CachedResult Value(int id) {
  CachedResult value;
  value.neighbors.push_back({id, static_cast<double>(id)});
  return value;
}

TEST(ResultCacheTest, LookupMissThenHit) {
  ResultCache cache(1 << 20, 4);
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(Key(1), &out));
  cache.Insert(Key(1), Value(7));
  ASSERT_TRUE(cache.Lookup(Key(1), &out));
  ASSERT_EQ(out.neighbors.size(), 1u);
  EXPECT_EQ(out.neighbors[0].id, 7);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, KeyFieldsDisambiguate) {
  ResultCache cache(1 << 20, 1);
  cache.Insert(Key(1, 10), Value(1));
  CachedResult out;
  // Same digest, different k: distinct entry.
  EXPECT_FALSE(cache.Lookup(Key(1, 20), &out));
  ResultCacheKey range_key = Key(1, 0);
  range_key.eps = 0.5;
  EXPECT_FALSE(cache.Lookup(range_key, &out));
  ResultCacheKey strat_key = Key(1, 10);
  strat_key.strategy = 2;
  EXPECT_FALSE(cache.Lookup(strat_key, &out));
  EXPECT_TRUE(cache.Lookup(Key(1, 10), &out));
}

// Generation is part of the key: an entry inserted against snapshot
// generation g must never satisfy a lookup from generation g' != g.
// This is the mechanism that makes a snapshot swap a logical cache
// flush (see SnapshotSwapTest for the end-to-end regression).
TEST(ResultCacheTest, GenerationDisambiguates) {
  ResultCache cache(1 << 20, 1);
  ResultCacheKey gen0 = Key(1);
  gen0.generation = 0;
  cache.Insert(gen0, Value(7));
  ResultCacheKey gen1 = gen0;
  gen1.generation = 1;
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(gen1, &out));
  cache.Insert(gen1, Value(8));
  ASSERT_TRUE(cache.Lookup(gen0, &out));
  EXPECT_EQ(out.neighbors[0].id, 7);
  ASSERT_TRUE(cache.Lookup(gen1, &out));
  EXPECT_EQ(out.neighbors[0].id, 8);
}

TEST(ResultCacheTest, DeterministicLruEviction) {
  // Single shard so the LRU order is global and exact. Each entry is
  // ~sizeof(CachedResult) + 1 Neighbor; budget for about 4 of them.
  const size_t entry_bytes = Value(0).ApproxBytes();
  ResultCache cache(4 * entry_bytes, 1);
  for (int i = 0; i < 4; ++i) cache.Insert(Key(i), Value(i));
  EXPECT_EQ(cache.entries(), 4u);

  // Touch 0 so 1 becomes the LRU victim.
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(Key(0), &out));
  cache.Insert(Key(4), Value(4));
  EXPECT_FALSE(cache.Lookup(Key(1), &out));  // evicted
  EXPECT_TRUE(cache.Lookup(Key(0), &out));   // kept (recently used)
  EXPECT_TRUE(cache.Lookup(Key(4), &out));   // newest
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, ReinsertRefreshesValueWithoutDuplicates) {
  ResultCache cache(1 << 20, 1);
  cache.Insert(Key(1), Value(1));
  cache.Insert(Key(1), Value(2));
  EXPECT_EQ(cache.entries(), 1u);
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(Key(1), &out));
  EXPECT_EQ(out.neighbors[0].id, 2);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(Key(1), Value(1));
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(Key(1), &out));
  EXPECT_EQ(cache.entries(), 0u);
  // A disabled cache records no traffic either.
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ResultCacheTest, OversizedValueIsNotCached) {
  ResultCache cache(256, 1);
  CachedResult big;
  big.neighbors.resize(10000);
  cache.Insert(Key(1), big);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCacheTest, ClearEmptiesAllShards) {
  ResultCache cache(1 << 20, 8);
  for (int i = 0; i < 100; ++i) cache.Insert(Key(i), Value(i));
  EXPECT_GT(cache.entries(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.ApproxBytes(), 0u);
}

TEST(ResultCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ResultCache cache(1 << 20, 5);
  EXPECT_EQ(cache.num_shards(), 8);
}

TEST(ResultCacheTest, ConcurrentMixedTraffic) {
  ResultCache cache(1 << 18, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t]() {
      for (int i = 0; i < 2000; ++i) {
        const uint64_t digest = static_cast<uint64_t>((t * 37 + i) % 256);
        CachedResult out;
        if (!cache.Lookup(Key(digest), &out)) {
          cache.Insert(Key(digest), Value(static_cast<int>(digest)));
        } else {
          ASSERT_EQ(out.neighbors[0].id, static_cast<int>(digest));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 2000u);
}

TEST(DigestTest, DistinguishesQueryObjects) {
  ObjectRepr a;
  a.vector_set.vectors = {{1.0, 2.0}, {3.0, 4.0}};
  a.centroid = {2.0, 3.0};
  ObjectRepr b = a;
  EXPECT_EQ(DigestQueryObject(a), DigestQueryObject(b));
  b.vector_set.vectors[1][1] = 4.0000001;
  EXPECT_NE(DigestQueryObject(a), DigestQueryObject(b));
  // Moving a value across the vector boundary must change the digest
  // (lengths are folded in, not just the flat payload).
  ObjectRepr c;
  c.vector_set.vectors = {{1.0, 2.0, 3.0}, {4.0}};
  c.centroid = {2.0, 3.0};
  EXPECT_NE(DigestQueryObject(a), DigestQueryObject(c));
}

}  // namespace
}  // namespace vsim
