#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>

#include "vsim/common/rng.h"
#include "vsim/index/xtree.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(XTreeIoTest, RoundTripPreservesQueries) {
  Rng rng(808);
  const int dim = 6, count = 1200;
  XTreeOptions opts;
  opts.page_size_bytes = 512;
  XTree tree(dim, opts);
  std::vector<FeatureVector> pts(count, FeatureVector(dim));
  for (int i = 0; i < count; ++i) {
    for (double& v : pts[i]) v = rng.Uniform(-3, 3);
    ASSERT_TRUE(tree.Insert(pts[i], i).ok());
  }
  const std::string path = TempPath("tree.vsxt");
  ASSERT_TRUE(tree.Save(path).ok());
  StatusOr<XTree> loaded = XTree::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(loaded->node_count(), tree.node_count());
  EXPECT_EQ(loaded->height(), tree.height());
  EXPECT_EQ(loaded->supernode_count(), tree.supernode_count());
  EXPECT_TRUE(loaded->Validate().ok());

  for (int q = 0; q < 10; ++q) {
    FeatureVector query(dim);
    for (double& v : query) v = rng.Uniform(-3, 3);
    // Identical results AND identical charged I/O (same structure).
    IoStats io_a, io_b;
    const auto ka = tree.KnnQuery(query, 7, &io_a);
    const auto kb = loaded->KnnQuery(query, 7, &io_b);
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].id, kb[i].id);
      EXPECT_EQ(ka[i].distance, kb[i].distance);
    }
    EXPECT_EQ(io_a.page_accesses(), io_b.page_accesses());
    auto ra = tree.RangeQuery(query, 1.0);
    auto rb = loaded->RangeQuery(query, 1.0);
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    EXPECT_EQ(ra, rb);
  }
  // The loaded tree accepts further inserts.
  ASSERT_TRUE(loaded->Insert(FeatureVector(dim, 0.0), count).ok());
  EXPECT_TRUE(loaded->Validate().ok());
}

TEST(XTreeIoTest, EmptyTreeRoundTrips) {
  XTree tree(4);
  const std::string path = TempPath("empty.vsxt");
  ASSERT_TRUE(tree.Save(path).ok());
  StatusOr<XTree> loaded = XTree::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_TRUE(loaded->KnnQuery({0, 0, 0, 0}, 3).empty());
  std::remove(path.c_str());
}

TEST(XTreeIoTest, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(XTree::Load("/nonexistent.vsxt").ok());
  const std::string path = TempPath("garbage.vsxt");
  std::ofstream(path) << "not an xtree at all";
  EXPECT_FALSE(XTree::Load(path).ok());
  std::remove(path.c_str());

  // Truncate a valid file.
  Rng rng(1);
  XTree tree(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert({rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()}, i).ok());
  }
  const std::string full = TempPath("full.vsxt");
  ASSERT_TRUE(tree.Save(full).ok());
  std::ifstream in(full, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  content.resize(content.size() / 2);
  std::ofstream out(full, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  EXPECT_FALSE(XTree::Load(full).ok());
  std::remove(full.c_str());
}

}  // namespace
}  // namespace vsim
