#include "vsim/core/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "vsim/data/dataset.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"
#include "vsim/kernels/sketch.h"

namespace vsim {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.cover_resolution = 12;
    opt.num_covers = 5;
    const Dataset ds = MakeAircraftDataset(150, 11);
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new CadDatabase(std::move(db).value());
    engine_ = new QueryEngine(db_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static CadDatabase* db_;
  static QueryEngine* engine_;
};

CadDatabase* QueryEngineTest::db_ = nullptr;
QueryEngine* QueryEngineTest::engine_ = nullptr;

std::vector<Neighbor> BruteForceKnn(const CadDatabase& db, int query, int k) {
  std::vector<Neighbor> all;
  for (int i = 0; i < static_cast<int>(db.size()); ++i) {
    all.push_back({i, db.Distance(ModelType::kVectorSet, query, i)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  all.resize(k);
  return all;
}

TEST_F(QueryEngineTest, AllVectorSetStrategiesAgree) {
  for (int query : {0, 17, 42, 99}) {
    const auto expect = BruteForceKnn(*db_, query, 10);
    for (QueryStrategy strategy :
         {QueryStrategy::kVectorSetFilter, QueryStrategy::kVectorSetScan,
          QueryStrategy::kVectorSetMTree, QueryStrategy::kVectorSetVaFilter}) {
      const auto got = engine_->Knn(strategy, query, 10);
      ASSERT_EQ(got.size(), 10u) << QueryStrategyName(strategy);
      for (int i = 0; i < 10; ++i) {
        EXPECT_NEAR(got[i].distance, expect[i].distance, 1e-9)
            << QueryStrategyName(strategy) << " query " << query;
      }
    }
  }
}

TEST_F(QueryEngineTest, OneVectorStrategyMatchesEuclideanScan) {
  const int query = 23;
  const auto got = engine_->Knn(QueryStrategy::kOneVectorXTree, query, 5);
  std::vector<double> expect;
  for (int i = 0; i < static_cast<int>(db_->size()); ++i) {
    expect.push_back(db_->Distance(ModelType::kCoverSequence, query, i));
  }
  std::sort(expect.begin(), expect.end());
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(got[i].distance, expect[i], 1e-9);
  }
}

TEST_F(QueryEngineTest, FilterRefinesFewerCandidatesThanScan) {
  QueryCost filter_cost, scan_cost;
  engine_->Knn(QueryStrategy::kVectorSetFilter, 3, 10, &filter_cost);
  engine_->Knn(QueryStrategy::kVectorSetScan, 3, 10, &scan_cost);
  EXPECT_LT(filter_cost.candidates_refined, scan_cost.candidates_refined);
  EXPECT_EQ(scan_cost.candidates_refined, db_->size());
}

TEST_F(QueryEngineTest, CostAccountingIsPopulated) {
  QueryCost cost;
  engine_->Knn(QueryStrategy::kVectorSetFilter, 5, 10, &cost);
  EXPECT_GT(cost.io.page_accesses(), 0u);
  EXPECT_GT(cost.io.bytes_read(), 0u);
  EXPECT_GE(cost.cpu_seconds, 0.0);
  EXPECT_GT(cost.TotalSeconds(), 0.0);
  EXPECT_GT(cost.IoSeconds(), 0.0);
}

// Distance-based recall@k: an approximate neighbor counts as a hit if
// it is at least as close as the exact k-th neighbor (id matching would
// punish arbitrary orderings of exact ties).
double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<Neighbor>& approx) {
  if (exact.empty()) return 1.0;
  const double kth = exact.back().distance + 1e-9;
  int hits = 0;
  for (const Neighbor& a : approx) {
    if (a.distance <= kth) ++hits;
  }
  return static_cast<double>(hits) / exact.size();
}

TEST_F(QueryEngineTest, ApproxLevelOneMeetsRecallFloor) {
  // The contract the per-request knob sells: level 1 keeps mean
  // recall@10 at or above 0.95 on a paper-style workload (the same
  // floor BENCH_kernels.json reports on the CarLike/AircraftLike
  // sweeps). Exercised over every stored object, not a lucky sample.
  const int k = 10;
  const int n = static_cast<int>(db_->size());
  double recall_sum = 0.0;
  for (int query = 0; query < n; ++query) {
    const auto exact = engine_->Knn(QueryStrategy::kVectorSetFilter, query, k);
    const auto approx =
        engine_->Knn(QueryStrategy::kVectorSetFilter, query, k, nullptr, 1);
    ASSERT_EQ(approx.size(), exact.size()) << "query " << query;
    recall_sum += RecallAtK(exact, approx);
  }
  EXPECT_GE(recall_sum / n, 0.95);
}

TEST_F(QueryEngineTest, ApproxLevelZeroIsExactAndChainDegenerates) {
  QueryCost exact_cost, approx_cost;
  const auto exact =
      engine_->Knn(QueryStrategy::kVectorSetFilter, 7, 10, &exact_cost, 0);
  const auto at_zero =
      engine_->Knn(QueryStrategy::kVectorSetFilter, 7, 10, &approx_cost, 0);
  EXPECT_EQ(at_zero, exact);
  // Stage off: approx_pruned degenerates to filter_hits.
  EXPECT_EQ(exact_cost.approx_pruned, exact_cost.filter_hits);
}

TEST_F(QueryEngineTest, ApproxStageAccountingExtendsInvariantChain) {
  const int k = 10;
  for (int level = 1; level <= kernels::kMaxApproxLevel; ++level) {
    QueryCost cost;
    const auto got =
        engine_->Knn(QueryStrategy::kVectorSetFilter, 13, k, &cost, level);
    ASSERT_EQ(got.size(), static_cast<size_t>(k)) << "level " << level;
    // The stage examined the whole database, then the exact stages saw
    // only survivors: approx_pruned >= filter_hits >= refined >= k.
    EXPECT_EQ(cost.approx_pruned, db_->size()) << "level " << level;
    EXPECT_GE(cost.approx_pruned, cost.filter_hits) << "level " << level;
    EXPECT_GE(cost.filter_hits, cost.candidates_refined) << "level " << level;
    EXPECT_GE(cost.candidates_refined, static_cast<size_t>(k))
        << "level " << level;
  }
  // Higher levels prune at least as hard (thresholds are monotone), so
  // the exact filter sees monotonically non-increasing survivor sets.
  QueryCost c1, c3;
  engine_->Knn(QueryStrategy::kVectorSetFilter, 13, k, &c1, 1);
  engine_->Knn(QueryStrategy::kVectorSetFilter, 13, k, &c3, 3);
  EXPECT_LE(c3.filter_hits, c1.filter_hits);
}

TEST_F(QueryEngineTest, ApproxLevelIgnoredByNonFilterStrategies) {
  for (QueryStrategy strategy :
       {QueryStrategy::kVectorSetScan, QueryStrategy::kVectorSetMTree,
        QueryStrategy::kVectorSetVaFilter}) {
    QueryCost cost;
    const auto exact = engine_->Knn(strategy, 21, 5);
    const auto got = engine_->Knn(strategy, 21, 5, &cost, 2);
    EXPECT_EQ(got, exact) << QueryStrategyName(strategy);
    EXPECT_EQ(cost.approx_pruned, cost.filter_hits)
        << QueryStrategyName(strategy);
  }
}

TEST_F(QueryEngineTest, RangeQueriesAgreeAcrossStrategies) {
  const ObjectRepr& query = db_->object(31);
  // Pick an eps that catches some but not all objects.
  QueryCost c;
  auto scan = engine_->Range(QueryStrategy::kVectorSetScan, query, 0.4, &c);
  auto filter = engine_->Range(QueryStrategy::kVectorSetFilter, query, 0.4, &c);
  auto mtree = engine_->Range(QueryStrategy::kVectorSetMTree, query, 0.4, &c);
  auto vafile =
      engine_->Range(QueryStrategy::kVectorSetVaFilter, query, 0.4, &c);
  std::sort(scan.begin(), scan.end());
  std::sort(filter.begin(), filter.end());
  std::sort(mtree.begin(), mtree.end());
  std::sort(vafile.begin(), vafile.end());
  EXPECT_EQ(scan, filter);
  EXPECT_EQ(scan, mtree);
  EXPECT_EQ(scan, vafile);
  EXPECT_FALSE(scan.empty());  // the query object itself qualifies
  EXPECT_LT(scan.size(), db_->size());
}

TEST_F(QueryEngineTest, ExternalQueryObjectWorks) {
  // Query with an object not in the database.
  ExtractionOptions opt = db_->options();
  const Dataset extra = MakeAircraftDataset(3, 77);
  StatusOr<ObjectRepr> repr = ExtractObject(extra.objects[0].parts, opt);
  ASSERT_TRUE(repr.ok());
  const auto got = engine_->Knn(QueryStrategy::kVectorSetFilter, *repr, 5);
  ASSERT_EQ(got.size(), 5u);
  // Verify against a scan with the same query.
  std::vector<double> expect;
  for (int i = 0; i < static_cast<int>(db_->size()); ++i) {
    expect.push_back(
        VectorSetDistance(repr->vector_set, db_->object(i).vector_set));
  }
  std::sort(expect.begin(), expect.end());
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(got[i].distance, expect[i], 1e-9);
}

TEST_F(QueryEngineTest, KnnJoinMatchesPerObjectQueries) {
  QueryCost cost;
  const auto join = engine_->KnnJoin(QueryStrategy::kVectorSetFilter, 3, &cost);
  ASSERT_EQ(join.size(), db_->size());
  EXPECT_GT(cost.candidates_refined, 0u);
  for (int id : {0, 9, 77, 149}) {
    ASSERT_EQ(join[id].size(), 3u);
    // No self matches.
    for (const Neighbor& n : join[id]) EXPECT_NE(n.id, id);
    // Distances agree with a brute-force scan that skips the object.
    std::vector<double> expect;
    for (int j = 0; j < static_cast<int>(db_->size()); ++j) {
      if (j != id) expect.push_back(db_->Distance(ModelType::kVectorSet, id, j));
    }
    std::sort(expect.begin(), expect.end());
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(join[id][i].distance, expect[i], 1e-9) << id;
    }
  }
}

TEST_F(QueryEngineTest, StrategyNamesAreStable) {
  EXPECT_STREQ(QueryStrategyName(QueryStrategy::kOneVectorXTree),
               "1-vector X-tree");
  EXPECT_STREQ(QueryStrategyName(QueryStrategy::kVectorSetFilter),
               "vector set + filter");
  EXPECT_STREQ(QueryStrategyName(QueryStrategy::kVectorSetScan),
               "vector set seq. scan");
}

}  // namespace
}  // namespace vsim
