#include <gtest/gtest.h>

#include <cmath>

#include "vsim/cluster/optics.h"
#include "vsim/common/rng.h"
#include "vsim/core/query_engine.h"
#include "vsim/data/dataset.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

TEST(OpticsIndexedTest, RejectsInfiniteEps) {
  OpticsOptions opt;  // eps = inf by default
  StatusOr<OpticsResult> r = RunOpticsIndexed(
      3, [](int, double) { return std::vector<int>{}; },
      [](int, int) { return 1.0; }, opt);
  EXPECT_FALSE(r.ok());
}

TEST(OpticsIndexedTest, MatchesPlainOpticsWithBruteNeighborhoods) {
  Rng rng(61);
  std::vector<FeatureVector> pts;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 25; ++i) {
      pts.push_back({b * 8.0 + rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)});
    }
  }
  const auto distance = [&](int i, int j) {
    return EuclideanDistance(pts[i], pts[j]);
  };
  OpticsOptions opt;
  opt.eps = 2.0;
  opt.min_pts = 4;
  StatusOr<OpticsResult> plain =
      RunOptics(static_cast<int>(pts.size()), distance, opt);
  StatusOr<OpticsResult> indexed = RunOpticsIndexed(
      static_cast<int>(pts.size()),
      [&](int id, double eps) {
        std::vector<int> out;
        for (int j = 0; j < static_cast<int>(pts.size()); ++j) {
          if (j != id && distance(id, j) <= eps) out.push_back(j);
        }
        return out;
      },
      distance, opt);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(indexed.ok());
  ASSERT_EQ(plain->ordering.size(), indexed->ordering.size());
  for (size_t i = 0; i < plain->ordering.size(); ++i) {
    EXPECT_EQ(plain->ordering[i].object, indexed->ordering[i].object) << i;
    const double pr = plain->ordering[i].reachability;
    const double ir = indexed->ordering[i].reachability;
    if (std::isinf(pr)) {
      EXPECT_TRUE(std::isinf(ir));
    } else {
      EXPECT_NEAR(pr, ir, 1e-12);
    }
  }
}

TEST(OpticsIndexedTest, WorksWithQueryEngineRangeQueries) {
  // Full-stack integration: OPTICS neighborhoods served by the
  // extended-centroid filter + refinement pipeline.
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  const Dataset ds = MakeCarDataset(50, 17);
  StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
  ASSERT_TRUE(db.ok());
  QueryEngine engine(&*db);

  // Generating eps: the 10th percentile of pairwise distances (OPTICS
  // generating distances are chosen small; a huge eps would make every
  // neighborhood the whole database and no index could help).
  std::vector<double> sample;
  for (int i = 0; i < 30; ++i) {
    for (int j = i + 1; j < 30; ++j) {
      sample.push_back(db->Distance(ModelType::kVectorSet, i, j));
    }
  }
  std::nth_element(sample.begin(), sample.begin() + sample.size() / 10,
                   sample.end());
  const double eps = sample[sample.size() / 10];

  OpticsOptions optics;
  optics.eps = eps;
  optics.min_pts = 3;
  const PairwiseDistanceFn dist = db->DistanceFunction(ModelType::kVectorSet);
  size_t refined_total = 0;
  StatusOr<OpticsResult> indexed = RunOpticsIndexed(
      static_cast<int>(db->size()),
      [&](int id, double radius) {
        QueryCost cost;
        auto hits = engine.Range(QueryStrategy::kVectorSetFilter,
                                 db->object(id), radius, &cost);
        refined_total += cost.candidates_refined;
        return hits;
      },
      dist, optics);
  ASSERT_TRUE(indexed.ok());
  StatusOr<OpticsResult> plain =
      RunOptics(static_cast<int>(db->size()), dist, optics);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(indexed->ordering.size(), plain->ordering.size());
  for (size_t i = 0; i < plain->ordering.size(); ++i) {
    EXPECT_EQ(plain->ordering[i].object, indexed->ordering[i].object);
  }
  // The filter did less exact-distance work than n^2.
  const size_t n = db->size();
  EXPECT_LT(refined_total + indexed->distance_evaluations, n * (n - 1));
}

}  // namespace
}  // namespace vsim
