// End-to-end disk-backed serving: a QueryService over a
// DbSnapshot::CreateDiskBacked snapshot answers concurrent clients
// through the sharded buffer pool, matches the RAM-resident engine
// exactly, and exposes non-zero vsim_cache_pool_* series. This is the
// scenario the old architecture explicitly forbade (single-thread
// buffer pool => no concurrent disk-backed serving); the suite runs
// under TSan in CI (tools/check_tsan.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "vsim/data/dataset.h"
#include "vsim/service/db_snapshot.h"
#include "vsim/service/query_service.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

StatusOr<CadDatabase> BuildDb(int objects = 30) {
  const Dataset ds = MakeCarDataset(objects, 99);
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.cover_resolution = 10;
  opt.num_covers = 5;
  return CadDatabase::FromDataset(ds, opt, 0);
}

TEST(DiskServingTest, DiskBackedSnapshotMatchesRamResidentEngine) {
  StatusOr<CadDatabase> ram_db = BuildDb();
  ASSERT_TRUE(ram_db.ok());
  const QueryEngine ram_engine(&*ram_db);

  StatusOr<CadDatabase> disk_db = BuildDb();
  ASSERT_TRUE(disk_db.ok());
  // Tiny pool (8 frames) so refinement actually churns pages. This test
  // drives the engine's stored-id overloads directly (no service in
  // front to hydrate queries from the store), so it opts out of the
  // default RAM demotion.
  StatusOr<std::shared_ptr<const DbSnapshot>> snap =
      DbSnapshot::CreateDiskBacked(std::move(*disk_db),
                                   TempPath("ds_match.vsstore"), 1,
                                   IoCostParams{}, 8,
                                   /*keep_ram_sets=*/true);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_NE((*snap)->store(), nullptr);
  EXPECT_GT((*snap)->db().VectorSetResidentBytes(), 0u);

  const int n = static_cast<int>(ram_db->size());
  for (int id = 0; id < n; ++id) {
    const auto expected = ram_engine.Knn(QueryStrategy::kVectorSetFilter, id, 5);
    const auto got = (*snap)->engine().Knn(QueryStrategy::kVectorSetFilter, id, 5);
    EXPECT_EQ(got, expected) << "id=" << id;
  }
  // The refinement path really went through the pool.
  EXPECT_GT((*snap)->store()->pool().Stats().hits() +
                (*snap)->store()->pool().Stats().misses,
            0u);
}

TEST(DiskServingTest, ConcurrentClientsOverDiskBackedSnapshot) {
  // 120 objects so the store spans many more pages than the pool: a
  // 2-frame pool over a multi-page store means every client's
  // refinement churns pages, and the scrape below must show both hits
  // and misses.
  StatusOr<CadDatabase> db = BuildDb(120);
  ASSERT_TRUE(db.ok());
  StatusOr<std::shared_ptr<const DbSnapshot>> snap =
      DbSnapshot::CreateDiskBacked(std::move(*db),
                                   TempPath("ds_serve.vsstore"), 1,
                                   IoCostParams{}, 2);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // The default disk-backed build demotes the RAM vector-set copies:
  // the store is now the only full copy of each set.
  const int n = static_cast<int>((*snap)->db().size());
  for (int id = 0; id < n; ++id) {
    EXPECT_TRUE((*snap)->db().object(id).vector_set.empty()) << "id=" << id;
  }
  EXPECT_EQ((*snap)->db().VectorSetResidentBytes(), 0u);

  // Serial ground truth off an identically-built RAM-resident engine
  // (BuildDb is deterministic); the service must hydrate stored-id
  // queries from the store and still answer exactly, concurrently.
  StatusOr<CadDatabase> ram_db = BuildDb(120);
  ASSERT_TRUE(ram_db.ok());
  const QueryEngine ram_engine(&*ram_db);
  const int k = 5;
  std::vector<std::vector<Neighbor>> expected(n);
  for (int id = 0; id < n; ++id) {
    expected[id] = ram_engine.Knn(QueryStrategy::kVectorSetFilter, id, k);
  }

  QueryServiceOptions options;
  options.num_threads = 4;
  options.cache_bytes = 0;  // every request must hit the disk path
  QueryService service(*snap, options);

  constexpr int kClients = 8;
  constexpr int kPerClient = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kPerClient; ++q) {
        const int id = (c * 13 + q * 5) % n;
        ServiceRequest request;
        request.object_id = id;
        request.kind = QueryKind::kKnn;
        request.options.k = k;
        StatusOr<ServiceResponse> response = service.Execute(request);
        if (!response.ok() || response->neighbors != expected[id]) {
          mismatches.fetch_add(1, std::memory_order_seq_cst);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(std::memory_order_seq_cst), 0);

  // The service's metrics scrape must now carry the pool's series with
  // real traffic in them: hits in at least one tier, and misses (the
  // 8-frame pool cannot hold the whole store).
  const cache::PoolStatsSnapshot stats = (*snap)->store()->pool().Stats();
  EXPECT_GT(stats.hits(), 0u);
  EXPECT_GT(stats.misses, 0u);
  const std::string text = service.metrics().TextExposition();
  EXPECT_NE(text.find("vsim_cache_pool_hits_total"), std::string::npos);
  EXPECT_NE(text.find("vsim_cache_pool_misses_total"), std::string::npos);
  EXPECT_NE(text.find("vsim_cache_pool_resident_pages"), std::string::npos);
  // The demotion gauge reads zero: no duplicated RAM copies remain.
  EXPECT_NE(text.find("vsim_cache_pool_resident_bytes 0\n"),
            std::string::npos);
  // At least one tier's hit counter is non-zero in the exposition.
  const bool nonzero_hot =
      text.find("vsim_cache_pool_hits_total{tier=\"hot\"} 0\n") ==
      std::string::npos;
  const bool nonzero_cold =
      text.find("vsim_cache_pool_hits_total{tier=\"cold\"} 0\n") ==
      std::string::npos;
  EXPECT_TRUE(nonzero_hot || nonzero_cold);
}

TEST(DiskServingTest, KeepRamSetsRetainsCopiesAndReportsGaugeNonZero) {
  // Opting out of demotion keeps the duplicated copies and the gauge
  // reports their true footprint, so capacity dashboards can see the
  // doubled residency.
  StatusOr<CadDatabase> db = BuildDb();
  ASSERT_TRUE(db.ok());
  StatusOr<std::shared_ptr<const DbSnapshot>> snap =
      DbSnapshot::CreateDiskBacked(std::move(*db),
                                   TempPath("ds_keep.vsstore"), 1,
                                   IoCostParams{}, 8,
                                   /*keep_ram_sets=*/true);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const size_t resident = (*snap)->db().VectorSetResidentBytes();
  EXPECT_GT(resident, 0u);
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(*snap, options);
  ServiceRequest request;
  request.object_id = 0;
  request.options.k = 3;
  ASSERT_TRUE(service.Execute(request).ok());
  const std::string text = service.metrics().TextExposition();
  EXPECT_NE(text.find("vsim_cache_pool_resident_bytes " +
                      std::to_string(resident) + "\n"),
            std::string::npos);
}

TEST(DiskServingTest, DemotedSnapshotAnswersStoredIdQueriesExactly) {
  // Demotion must be invisible to service clients: every stored-id
  // query over the demoted snapshot (the query hydrated back from the
  // store) matches the RAM-resident reference, for both exact and
  // approximate levels.
  StatusOr<CadDatabase> ram_db = BuildDb();
  ASSERT_TRUE(ram_db.ok());
  const QueryEngine ram_engine(&*ram_db);

  StatusOr<CadDatabase> disk_db = BuildDb();
  ASSERT_TRUE(disk_db.ok());
  StatusOr<std::shared_ptr<const DbSnapshot>> snap =
      DbSnapshot::CreateDiskBacked(std::move(*disk_db),
                                   TempPath("ds_demote.vsstore"), 1,
                                   IoCostParams{}, 8);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;
  QueryService service(*snap, options);

  const int n = static_cast<int>(ram_db->size());
  const int k = 5;
  for (int id = 0; id < n; ++id) {
    for (int level : {0, 1}) {
      ServiceRequest request;
      request.object_id = id;
      request.strategy = QueryStrategy::kVectorSetFilter;
      request.options.k = k;
      request.options.approx_level = level;
      StatusOr<ServiceResponse> response = service.Execute(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      QueryCost cost;
      const std::vector<Neighbor> want = ram_engine.Knn(
          QueryStrategy::kVectorSetFilter, id, k, &cost, level);
      EXPECT_EQ(response->neighbors, want) << "id=" << id
                                           << " level=" << level;
    }
  }
}

TEST(DiskServingTest, RamResidentSnapshotExposesNoPoolSeries) {
  StatusOr<CadDatabase> db = BuildDb();
  ASSERT_TRUE(db.ok());
  std::shared_ptr<const DbSnapshot> snap = DbSnapshot::Create(std::move(*db), 1);
  ASSERT_EQ(snap->store(), nullptr);
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(snap, options);
  ServiceRequest request;
  request.object_id = 0;
  request.options.k = 3;
  ASSERT_TRUE(service.Execute(request).ok());
  const std::string text = service.metrics().TextExposition();
  EXPECT_EQ(text.find("vsim_cache_pool_"), std::string::npos);
}

}  // namespace
}  // namespace vsim
