#include <gtest/gtest.h>

#include <cstdio>

#include "vsim/geometry/mesh.h"
#include "vsim/geometry/mesh_io.h"
#include "vsim/geometry/primitives.h"
#include "vsim/index/mtree.h"

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

TEST(WeldTest, StlRoundTripRestoresSharedTopology) {
  // STL triplicates vertices; welding restores the original counts.
  const TriangleMesh original = MakeSphere(1.0, 16, 8);
  const std::string path = ::testing::TempDir() + "/weld.stl";
  ASSERT_TRUE(SaveStlBinary(original, path).ok());
  StatusOr<TriangleMesh> loaded = LoadStl(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vertex_count(), 3 * loaded->triangle_count());
  EXPECT_FALSE(loaded->IsWatertight());  // no shared edges at all
  const TriangleMesh welded = WeldVertices(*loaded, 1e-6);
  EXPECT_EQ(welded.vertex_count(), original.vertex_count());
  EXPECT_EQ(welded.triangle_count(), original.triangle_count());
  EXPECT_TRUE(welded.IsWatertight());
  EXPECT_NEAR(welded.SignedVolume(), original.SignedVolume(), 1e-4);
  std::remove(path.c_str());
}

TEST(WeldTest, PrimitivesAreWatertightLoadedStlIsNot) {
  EXPECT_TRUE(MakeBox({1, 2, 3}).IsWatertight());
  EXPECT_TRUE(MakeTorus(1.0, 0.3, 12, 6).IsWatertight());
  TriangleMesh soup;
  soup.AddTriangle(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0});
  EXPECT_FALSE(soup.IsWatertight());
}

TEST(WeldTest, DegeneratedTrianglesDropped) {
  TriangleMesh mesh;
  // Two vertices within tolerance collapse; the triangle vanishes.
  const uint32_t a = mesh.AddVertex({0, 0, 0});
  const uint32_t b = mesh.AddVertex({1e-12, 0, 0});
  const uint32_t c = mesh.AddVertex({1, 1, 0});
  mesh.AddTriangle(a, b, c);
  const uint32_t d = mesh.AddVertex({2, 0, 0});
  mesh.AddTriangle(a, c, d);
  const TriangleMesh welded = WeldVertices(mesh, 1e-6);
  EXPECT_EQ(welded.triangle_count(), 1u);
  EXPECT_EQ(welded.vertex_count(), 3u);
}

TEST(WeldTest, LooseToleranceMergesNearbyVertices) {
  TriangleMesh mesh = MakeBox({1, 1, 1});
  // Perturb vertices slightly; a loose weld undoes the jitter-induced
  // duplication when appending a shifted copy.
  TriangleMesh copy = mesh;
  copy.ApplyTransform(Transform::Translate({1e-7, -1e-7, 0}));
  mesh.Append(copy);
  const TriangleMesh welded = WeldVertices(mesh, 1e-3);
  EXPECT_EQ(welded.vertex_count(), 8u);
}

TEST(MTreeValidateTest, InvariantsHoldForPointsAndVectorSets) {
  Rng rng(71);
  MTreeOptions opts;
  opts.node_capacity = 8;
  MTree<FeatureVector> tree(
      [](const FeatureVector& a, const FeatureVector& b) {
        return EuclideanDistance(a, b);
      },
      opts);
  EXPECT_TRUE(tree.Validate().ok());
  for (int i = 0; i < 500; ++i) {
    FeatureVector p(4);
    for (double& v : p) v = rng.Uniform(0, 1);
    tree.Insert(std::move(p), i);
    if (i % 100 == 99) {
      ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
    }
  }
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

}  // namespace
}  // namespace vsim
