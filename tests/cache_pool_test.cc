// Concurrency and tiering tests for the sharded buffer pool
// (src/vsim/cache/page_cache.h) -- the positive half of what used to be
// the ThreadContractChecker abort test: the pool and everything above
// it (VectorSetStore::Get) is now *expected* to survive concurrent use
// under forced eviction churn, with pins blocking eviction and hot
// frames outliving cold ones. All suites here run under TSan in CI
// (tools/check_tsan.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "vsim/cache/page_cache.h"
#include "vsim/common/rng.h"
#include "vsim/features/feature_vector.h"
#include "vsim/index/io_stats.h"
#include "vsim/storage/paged_file.h"
#include "vsim/storage/vector_set_store.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Writes `count` pages whose every byte identifies the page, so a
// reader can detect a frame serving the wrong page's bytes.
std::vector<PageId> FillIdentifiablePages(PagedFile* file, int count) {
  std::vector<PageId> pages;
  std::vector<char> data(file->page_size());
  for (int i = 0; i < count; ++i) {
    StatusOr<PageId> p = file->Allocate();
    EXPECT_TRUE(p.ok());
    std::fill(data.begin(), data.end(), static_cast<char>(i % 251));
    EXPECT_TRUE(file->Write(*p, data.data()).ok());
    pages.push_back(*p);
  }
  return pages;
}

bool PageBytesMatch(const cache::PageHandle& h, int i, size_t page_size) {
  const char want = static_cast<char>(i % 251);
  return h.data()[0] == want && h.data()[page_size / 2] == want &&
         h.data()[page_size - 1] == want;
}

// --- concurrent fetch/evict/pin stress --------------------------------

TEST(CachePoolStressTest, ConcurrentFetchWithForcedEvictionChurn) {
  const std::string path = TempPath("cp_stress.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  constexpr int kPages = 64;
  const std::vector<PageId> pages = FillIdentifiablePages(&*file, kPages);

  // 6 frames for 64 pages: nearly every fetch evicts something.
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{6, 2});
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  std::atomic<int> wrong_bytes{0};
  std::atomic<int> fetch_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kItersPerThread; ++i) {
        const int idx = static_cast<int>(rng.NextBounded(kPages));
        StatusOr<cache::PageHandle> h = pool.Fetch(pages[idx]);
        if (!h.ok()) {
          // With 8 threads and 6 frames a shard can transiently have
          // every frame pinned -- that is the documented contract, not
          // corruption. Count it; it must stay rare.
          fetch_errors.fetch_add(1, std::memory_order_seq_cst);
          continue;
        }
        if (!PageBytesMatch(*h, idx, file->page_size())) {
          wrong_bytes.fetch_add(1, std::memory_order_seq_cst);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong_bytes.load(std::memory_order_seq_cst), 0);
  const cache::PoolStatsSnapshot stats = pool.Stats();
  const uint64_t served = kThreads * static_cast<uint64_t>(kItersPerThread) -
                          static_cast<uint64_t>(fetch_errors.load(std::memory_order_seq_cst));
  EXPECT_EQ(stats.hits() + stats.misses, served);
  EXPECT_GT(stats.evictions(), 0u);  // the churn actually churned
  EXPECT_EQ(stats.pinned_frames, 0u);
  EXPECT_LE(stats.resident_hot + stats.resident_cold, 6u);
  std::remove(path.c_str());
}

TEST(CachePoolStressTest, HandlesMoveAndUnpinAcrossThreads) {
  const std::string path = TempPath("cp_move.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  const std::vector<PageId> pages = FillIdentifiablePages(&*file, 8);
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{8, 4});

  // Pin on one thread, hand the handle to another, unpin there: the
  // pin count must come back to zero (verified via Stats) and the
  // frames must stay evictable afterwards.
  std::vector<cache::PageHandle> parked;
  for (int i = 0; i < 8; ++i) {
    StatusOr<cache::PageHandle> h = pool.Fetch(pages[i]);
    ASSERT_TRUE(h.ok());
    parked.push_back(std::move(*h));
  }
  EXPECT_EQ(pool.Stats().pinned_frames, 8u);
  std::thread unpinner([&] { parked.clear(); });
  unpinner.join();
  EXPECT_EQ(pool.Stats().pinned_frames, 0u);
  std::remove(path.c_str());
}

// --- pin-count-prevents-eviction regression ---------------------------

TEST(CachePoolTest, PinnedPageSurvivesEvictionChurn) {
  const std::string path = TempPath("cp_pin.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  constexpr int kPages = 32;
  const std::vector<PageId> pages = FillIdentifiablePages(&*file, kPages);
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{4, 1});

  StatusOr<cache::PageHandle> pinned = pool.Fetch(pages[0]);
  ASSERT_TRUE(pinned.ok());
  const char* pinned_data = pinned->data();

  // Churn every other page through the remaining 3 frames, many laps.
  for (int lap = 0; lap < 4; ++lap) {
    for (int i = 1; i < kPages; ++i) {
      StatusOr<cache::PageHandle> h = pool.Fetch(pages[i]);
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      EXPECT_TRUE(PageBytesMatch(*h, i, file->page_size()));
    }
  }
  EXPECT_GT(pool.Stats().evictions(), 0u);
  // The pinned frame was never recycled: same buffer, same bytes, and
  // refetching the page is a hit, not a reload.
  EXPECT_TRUE(PageBytesMatch(*pinned, 0, file->page_size()));
  pool.ResetStats();
  {
    StatusOr<cache::PageHandle> again = pool.Fetch(pages[0]);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->data(), pinned_data);
  }
  EXPECT_EQ(pool.Stats().hits(), 1u);
  EXPECT_EQ(pool.Stats().misses, 0u);
  std::remove(path.c_str());
}

// --- tier accounting --------------------------------------------------

TEST(CachePoolTierTest, HotPagesNeverEvictedWhileColdAreAvailable) {
  const std::string path = TempPath("cp_tier.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  constexpr int kPages = 48;
  const std::vector<PageId> pages = FillIdentifiablePages(&*file, kPages);
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{6, 1});

  // Two hot pages (the "inner node" working set)...
  { auto h = pool.Fetch(pages[0], cache::PageTier::kHot); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(pages[1], cache::PageTier::kHot); ASSERT_TRUE(h.ok()); }
  // ...then heavy cold churn through the other 4 frames.
  for (int lap = 0; lap < 4; ++lap) {
    for (int i = 2; i < kPages; ++i) {
      StatusOr<cache::PageHandle> h = pool.Fetch(pages[i]);
      ASSERT_TRUE(h.ok());
    }
  }
  const cache::PoolStatsSnapshot stats = pool.Stats();
  EXPECT_GT(stats.cold_evictions, 0u);
  EXPECT_EQ(stats.hot_evictions, 0u);  // cold victims always existed
  EXPECT_EQ(stats.resident_hot, 2u);
  // Both hot pages are still resident: refetching them is hits only.
  pool.ResetStats();
  { auto h = pool.Fetch(pages[0]); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.Stats().hot_hits, 2u);
  EXPECT_EQ(pool.Stats().misses, 0u);
  std::remove(path.c_str());
}

TEST(CachePoolTierTest, HotFramesReclaimedOnlyWhenNoColdVictimExists) {
  const std::string path = TempPath("cp_tier2.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  const std::vector<PageId> pages = FillIdentifiablePages(&*file, 4);
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{2, 1});

  // Fill the whole pool with hot pages, then demand a third page: the
  // hot pass must reclaim one rather than fail.
  { auto h = pool.Fetch(pages[0], cache::PageTier::kHot); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(pages[1], cache::PageTier::kHot); ASSERT_TRUE(h.ok()); }
  StatusOr<cache::PageHandle> third = pool.Fetch(pages[2]);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(pool.Stats().hot_evictions, 1u);
  std::remove(path.c_str());
}

TEST(CachePoolTierTest, RetierAndPromotionCountersTrackTierFlow) {
  const std::string path = TempPath("cp_tier3.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  const std::vector<PageId> pages = FillIdentifiablePages(&*file, 4);
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{4, 1});

  // First fetch: cold miss. Second fetch: the repeat hit proves re-use
  // and promotes the page into the hot tier.
  { auto h = pool.Fetch(pages[0]); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.Stats().promotions, 0u);
  EXPECT_EQ(pool.Stats().resident_cold, 1u);
  { auto h = pool.Fetch(pages[0]); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.Stats().promotions, 1u);
  EXPECT_EQ(pool.Stats().resident_hot, 1u);
  // Further hits land in the hot column and promote nothing new.
  { auto h = pool.Fetch(pages[0]); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.Stats().promotions, 1u);
  EXPECT_EQ(pool.Stats().hot_hits, 1u);

  // Retier flips a resident page's tier without a pin (how DiskXTree
  // marks inner-node pages hot up front, before any repeat hit).
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }
  pool.Retier(pages[1], cache::PageTier::kHot);
  pool.ResetStats();
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.Stats().hot_hits, 1u);
  EXPECT_EQ(pool.Stats().cold_hits, 0u);
  // Retier of a non-resident page is a silent no-op.
  pool.Retier(pages[3], cache::PageTier::kHot);
  EXPECT_EQ(pool.Stats().resident_hot, 2u);
  std::remove(path.c_str());
}

// --- the flipped thread-contract test ---------------------------------
// The old ThreadContractCheckerDeathTest asserted that concurrent entry
// into the BufferPool ABORTS. This is its positive replacement: the
// whole disk read path (VectorSetStore::Get through pool and file) now
// serves concurrent readers correctly.

TEST(CachePoolConcurrentStoreTest, StoreGetIsConcurrentlySafe) {
  const std::string path = TempPath("cp_store.vspg");
  // 2-frame pool over dozens of pages: constant eviction while many
  // threads read.
  StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 512, 2);
  ASSERT_TRUE(store.ok());
  Rng rng(77);
  std::vector<VectorSet> originals;
  for (int i = 0; i < 120; ++i) {
    VectorSet s;
    const int n = 1 + static_cast<int>(rng.NextBounded(7));
    for (int v = 0; v < n; ++v) {
      FeatureVector f(6);
      for (double& x : f) x = rng.Uniform(-1, 1);
      s.vectors.push_back(std::move(f));
    }
    originals.push_back(s);
    ASSERT_TRUE(store->Append(s).ok());
  }
  ASSERT_TRUE(store->Flush().ok());

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      IoStats stats;  // per-thread: charging must not race
      Rng trng(500 + t);
      for (int i = 0; i < 400; ++i) {
        const int id = static_cast<int>(trng.NextBounded(120));
        StatusOr<VectorSet> got = store->Get(id, &stats);
        if (!got.ok() || got->size() != originals[id].size()) {
          mismatches.fetch_add(1, std::memory_order_seq_cst);
          continue;
        }
        for (size_t v = 0; v < got->size(); ++v) {
          if (got->vectors[v] != originals[id].vectors[v]) {
            mismatches.fetch_add(1, std::memory_order_seq_cst);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(std::memory_order_seq_cst), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsim
