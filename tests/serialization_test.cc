#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

ExtractionOptions SmallOptions() {
  ExtractionOptions opt;
  opt.histogram_resolution = 12;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  return opt;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  const Dataset ds = MakeCarDataset(20, 13);
  StatusOr<CadDatabase> built = CadDatabase::FromDataset(ds, SmallOptions());
  ASSERT_TRUE(built.ok());

  const std::string path = TempPath("roundtrip.vsimdb");
  ASSERT_TRUE(built->Save(path).ok());
  StatusOr<CadDatabase> loaded = CadDatabase::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  ASSERT_EQ(loaded->size(), built->size());
  EXPECT_EQ(loaded->labels(), built->labels());
  EXPECT_EQ(loaded->options().num_covers, built->options().num_covers);
  EXPECT_EQ(loaded->options().cover_resolution,
            built->options().cover_resolution);
  for (size_t i = 0; i < built->size(); ++i) {
    const ObjectRepr& a = built->object(static_cast<int>(i));
    const ObjectRepr& b = loaded->object(static_cast<int>(i));
    EXPECT_EQ(a.volume, b.volume);
    EXPECT_EQ(a.solid_angle, b.solid_angle);
    EXPECT_EQ(a.cover_vector, b.cover_vector);
    EXPECT_EQ(a.centroid, b.centroid);
    EXPECT_EQ(a.voxel_count, b.voxel_count);
    EXPECT_EQ(a.original_extent, b.original_extent);
    ASSERT_EQ(a.vector_set.size(), b.vector_set.size());
    for (size_t v = 0; v < a.vector_set.size(); ++v) {
      EXPECT_EQ(a.vector_set.vectors[v], b.vector_set.vectors[v]);
    }
    ASSERT_EQ(a.cover_sequence.covers.size(), b.cover_sequence.covers.size());
    for (size_t c = 0; c < a.cover_sequence.covers.size(); ++c) {
      EXPECT_EQ(a.cover_sequence.covers[c], b.cover_sequence.covers[c]);
    }
    EXPECT_EQ(a.cover_sequence.error_history, b.cover_sequence.error_history);
  }
  // Distances agree bit-for-bit.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      for (ModelType m : {ModelType::kVolume, ModelType::kVectorSet,
                          ModelType::kCoverSequence}) {
        EXPECT_EQ(built->Distance(m, i, j), loaded->Distance(m, i, j));
      }
    }
  }
}

TEST(SerializationTest, MissingFileFails) {
  StatusOr<CadDatabase> db = CadDatabase::Load("/nonexistent/file.vsimdb");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.vsimdb");
  std::ofstream out(path, std::ios::binary);
  out << "NOTVSIMDBx and some garbage";
  out.close();
  StatusOr<CadDatabase> db = CadDatabase::Load(path);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileFails) {
  // Write a valid database, then truncate it in the middle.
  const Dataset ds = MakeCarDataset(6, 3);
  StatusOr<CadDatabase> built = CadDatabase::FromDataset(ds, SmallOptions());
  ASSERT_TRUE(built.ok());
  const std::string path = TempPath("truncated.vsimdb");
  ASSERT_TRUE(built->Save(path).ok());
  // Read, truncate to 60%, rewrite.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  content.resize(content.size() * 3 / 5);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  StatusOr<CadDatabase> db = CadDatabase::Load(path);
  EXPECT_FALSE(db.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyDatabaseRoundTrips) {
  CadDatabase db(SmallOptions());
  const std::string path = TempPath("empty.vsimdb");
  ASSERT_TRUE(db.Save(path).ok());
  StatusOr<CadDatabase> loaded = CadDatabase::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsim
