#include <gtest/gtest.h>

#include "vsim/common/math_util.h"
#include "vsim/common/stopwatch.h"
#include "vsim/common/table_printer.h"
#include "vsim/distance/lp.h"
#include "vsim/index/io_stats.h"

namespace vsim {
namespace {

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.01));
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_TRUE(AlmostEqual(0.0, 1e-12));
}

TEST(MathUtilTest, ClampAndCeilDiv) {
  EXPECT_EQ(Clamp(5, 0, 3), 3);
  EXPECT_EQ(Clamp(-1, 0, 3), 0);
  EXPECT_EQ(Clamp(2, 0, 3), 2);
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(w.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(w.ElapsedMillis(), w.ElapsedSeconds() * 1e3, 1.0);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 0.1);
}

TEST(IoStatsTest, AccumulatesAndSimulates) {
  IoStats stats;
  stats.AddPageAccesses(10);
  stats.AddBytesRead(1000);
  // Paper constants: 8 ms per page, 200 ns per byte.
  EXPECT_NEAR(stats.SimulatedSeconds(), 10 * 0.008 + 1000 * 200e-9, 1e-12);
  IoStats more;
  more.AddPageAccesses(5);
  stats += more;
  EXPECT_EQ(stats.page_accesses(), 15u);
  stats.Reset();
  EXPECT_EQ(stats.page_accesses(), 0u);
  EXPECT_EQ(stats.bytes_read(), 0u);
}

TEST(IoStatsTest, CustomCostParams) {
  IoStats stats;
  stats.AddPageAccesses(2);
  IoCostParams params;
  params.seconds_per_page_access = 1.0;
  params.seconds_per_byte = 0.0;
  EXPECT_DOUBLE_EQ(stats.SimulatedSeconds(params), 2.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"model", "time"});
  t.AddRow({"scan", "1.5"});
  t.AddRow({"filter+refine", "0.3"});
  // Render to a temp file and inspect.
  const std::string path = ::testing::TempDir() + "/table.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  t.Print(f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "r");
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = 0;
  const std::string out = buf;
  EXPECT_NE(out.find("| model"), std::string::npos);
  EXPECT_NE(out.find("filter+refine"), std::string::npos);
  EXPECT_NE(out.find("+-"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/table.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  t.PrintCsv(f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "r");
  char buf[256];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = 0;
  EXPECT_STREQ(buf, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(10.0, 0), "10");
  EXPECT_EQ(TablePrinter::Num(0.125, 3), "0.125");
}

TEST(LpDistanceTest, BasicIdentities) {
  const FeatureVector a = {1, 2, 3};
  const FeatureVector b = {4, 6, 3};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(ChebyshevDistance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(MinkowskiDistance(a, b, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(MinkowskiDistance(a, b, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(EuclideanNorm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanNorm({3, 4}), 25.0);
}

}  // namespace
}  // namespace vsim
