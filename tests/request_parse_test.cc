// The name <-> enum maps in request_parse.h are shared by the CLI flag
// parsers, the wire protocol's human-readable side and the docs; these
// tests sweep every enumerator through its round trip so adding an enum
// value without its spelling (or vice versa) fails here instead of
// silently parsing to a default somewhere downstream.
#include "vsim/service/request_parse.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace vsim {
namespace {

std::vector<std::string> Split(const std::string& spellings) {
  std::istringstream in(spellings);
  std::vector<std::string> out;
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

TEST(RequestParseTest, EveryQueryKindRoundTrips) {
  for (QueryKind kind :
       {QueryKind::kKnn, QueryKind::kRange, QueryKind::kInvariantKnn,
        QueryKind::kInvariantRange}) {
    StatusOr<QueryKind> parsed = ParseQueryKind(QueryKindName(kind));
    ASSERT_TRUE(parsed.ok()) << QueryKindName(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
}

TEST(RequestParseTest, EveryQueryStrategyRoundTrips) {
  for (QueryStrategy strategy :
       {QueryStrategy::kVectorSetFilter, QueryStrategy::kVectorSetScan,
        QueryStrategy::kVectorSetMTree, QueryStrategy::kVectorSetVaFilter,
        QueryStrategy::kOneVectorXTree}) {
    const char* name = QueryStrategyFlagName(strategy);
    StatusOr<QueryStrategy> parsed = ParseQueryStrategy(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), strategy);
  }
}

TEST(RequestParseTest, EveryCoverSearchRoundTrips) {
  for (CoverSequenceOptions::Search search :
       {CoverSequenceOptions::Search::kHillClimb,
        CoverSequenceOptions::Search::kExhaustive,
        CoverSequenceOptions::Search::kBeam}) {
    const char* name = CoverSearchFlagName(search);
    StatusOr<CoverSequenceOptions::Search> parsed = ParseCoverSearch(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), search);
  }
}

TEST(RequestParseTest, EveryModelTypeRoundTrips) {
  for (ModelType model :
       {ModelType::kVolume, ModelType::kSolidAngle,
        ModelType::kCoverSequence, ModelType::kCoverSequencePermutation,
        ModelType::kVectorSet}) {
    StatusOr<ModelType> parsed = ParseModelType(ModelTypeName(model));
    ASSERT_TRUE(parsed.ok()) << ModelTypeName(model);
    EXPECT_EQ(parsed.value(), model);
  }
}

// The *Names() usage strings must list exactly the spellings the
// parsers accept -- they are printed in error messages and --help text.
TEST(RequestParseTest, NameListsMatchTheParsers) {
  for (const std::string& name : Split(QueryKindNames())) {
    EXPECT_TRUE(ParseQueryKind(name).ok()) << name;
  }
  for (const std::string& name : Split(QueryStrategyNames())) {
    EXPECT_TRUE(ParseQueryStrategy(name).ok()) << name;
  }
  for (const std::string& name : Split(CoverSearchNames())) {
    EXPECT_TRUE(ParseCoverSearch(name).ok()) << name;
  }
  for (const std::string& name : Split(ModelTypeNames())) {
    EXPECT_TRUE(ParseModelType(name).ok()) << name;
  }
  EXPECT_EQ(Split(QueryKindNames()).size(), 4u);
  EXPECT_EQ(Split(QueryStrategyNames()).size(), 5u);
  EXPECT_EQ(Split(CoverSearchNames()).size(), 3u);
  EXPECT_EQ(Split(ModelTypeNames()).size(), 5u);
}

TEST(RequestParseTest, UnknownNamesFailWithValidSpellings) {
  for (const Status& status :
       {ParseQueryKind("nearest").status(),
        ParseQueryStrategy("xtree").status(),
        ParseCoverSearch("greedy").status(),
        ParseModelType("voxel").status()}) {
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    // The error must teach the right spelling, not just reject.
    EXPECT_NE(status.message().find("valid:"), std::string::npos)
        << status.ToString();
  }
}

}  // namespace
}  // namespace vsim
