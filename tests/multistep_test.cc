#include "vsim/index/multistep.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "vsim/common/rng.h"
#include "vsim/distance/centroid_filter.h"
#include "vsim/kernels/kernels.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"

namespace vsim {
namespace {

// Test world: random vector sets with centroids indexed in an X-tree.
struct World {
  std::vector<VectorSet> sets;
  std::vector<FeatureVector> centroids;
  std::unique_ptr<XTree> index;
  int k = 5;  // max cardinality

  ExactDistanceFn ExactFor(const VectorSet& query) const {
    return [this, &query](int id, IoStats* stats) {
      if (stats != nullptr) stats->AddPageAccesses(1);
      return VectorSetDistance(query, sets[id]);
    };
  }
};

World MakeWorld(int count, uint64_t seed) {
  Rng rng(seed);
  World w;
  w.index = std::make_unique<XTree>(4);
  for (int i = 0; i < count; ++i) {
    VectorSet s;
    const int n = 1 + static_cast<int>(rng.NextBounded(w.k));
    for (int v = 0; v < n; ++v) {
      FeatureVector f(4);
      for (double& x : f) x = rng.Uniform(-1, 1);
      s.vectors.push_back(std::move(f));
    }
    w.centroids.push_back(ExtendedCentroid(s, w.k));
    w.sets.push_back(std::move(s));
    EXPECT_TRUE(w.index->Insert(w.centroids.back(), i).ok());
  }
  return w;
}

TEST(MultiStepKnnTest, MatchesExactScan) {
  World w = MakeWorld(400, 101);
  Rng rng(5);
  for (int q = 0; q < 15; ++q) {
    const int qi = static_cast<int>(rng.NextBounded(w.sets.size()));
    const int k = 1 + static_cast<int>(rng.NextBounded(10));
    const auto got =
        MultiStepKnn(*w.index, w.centroids[qi], w.k, k, w.ExactFor(w.sets[qi]));
    // Reference: exact distances to everything.
    std::vector<double> all;
    for (const auto& s : w.sets) {
      all.push_back(VectorSetDistance(w.sets[qi], s));
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].distance, all[i], 1e-9);
    }
  }
}

TEST(MultiStepKnnTest, RefinesFewerThanScan) {
  World w = MakeWorld(600, 102);
  MultiStepStats ms;
  IoStats io;
  const auto got = MultiStepKnn(*w.index, w.centroids[0], w.k, 10,
                                w.ExactFor(w.sets[0]), &io, &ms);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_LT(ms.candidates_refined, w.sets.size());
  EXPECT_GE(ms.candidates_refined, 10u);
}

TEST(MultiStepKnnTest, OptimalityNeverRefinesBeyondBound) {
  // Optimal multi-step property: every refined candidate had a filter
  // distance strictly below the final k-th exact distance (up to ties).
  World w = MakeWorld(500, 103);
  const int k = 5;
  MultiStepStats ms;
  const auto got = MultiStepKnn(*w.index, w.centroids[7], w.k, k,
                                w.ExactFor(w.sets[7]), nullptr, &ms);
  const double kth = got.back().distance;
  // Count objects whose filter bound is <= kth: the refined count can
  // not exceed that.
  size_t within_bound = 0;
  for (size_t i = 0; i < w.sets.size(); ++i) {
    const double bound =
        kernels::CentroidFilterBound(w.centroids[7], w.centroids[i], w.k);
    if (bound <= kth + 1e-9) ++within_bound;
  }
  EXPECT_LE(ms.candidates_refined, within_bound);
}

TEST(MultiStepRangeTest, MatchesExactScan) {
  World w = MakeWorld(400, 104);
  Rng rng(6);
  for (int q = 0; q < 15; ++q) {
    const int qi = static_cast<int>(rng.NextBounded(w.sets.size()));
    const double eps = rng.Uniform(0.3, 1.5);
    auto got = MultiStepRange(*w.index, w.centroids[qi], w.k, eps,
                              w.ExactFor(w.sets[qi]));
    std::vector<int> expect;
    for (size_t i = 0; i < w.sets.size(); ++i) {
      if (VectorSetDistance(w.sets[qi], w.sets[i]) <= eps) {
        expect.push_back(static_cast<int>(i));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(ScanBaselineTest, KnnAndRangeMatchReference) {
  World w = MakeWorld(300, 105);
  const auto exact = w.ExactFor(w.sets[3]);
  IoStats io;
  const auto knn = ScanKnn(static_cast<int>(w.sets.size()), 7, 4096 * 10, 4096,
                           exact, &io);
  EXPECT_EQ(knn.size(), 7u);
  EXPECT_EQ(io.page_accesses(), 10u);  // sequential pages charged once
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_GE(knn[i].distance, knn[i - 1].distance);
  }
  EXPECT_EQ(knn[0].id, 3);  // self-distance zero

  IoStats io2;
  const auto range = ScanRange(static_cast<int>(w.sets.size()), 0.5,
                               4096 * 10, 4096, exact, &io2);
  for (int id : range) {
    EXPECT_LE(VectorSetDistance(w.sets[3], w.sets[id]), 0.5 + 1e-12);
  }
}

TEST(MultiStepKnnTest, KLargerThanDatabase) {
  World w = MakeWorld(5, 106);
  const auto got = MultiStepKnn(*w.index, w.centroids[0], w.k, 10,
                                w.ExactFor(w.sets[0]));
  EXPECT_EQ(got.size(), 5u);
}

}  // namespace
}  // namespace vsim
