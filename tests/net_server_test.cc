// End-to-end tests for the TCP serving front-end: loopback parity with
// the in-process QueryService for all four query kinds, pipelining,
// connection limits, hostile/malformed bytes (the server must never
// crash or hang, mirroring the protocol corpus), graceful
// shutdown-with-drain, and snapshot swaps under live remote load
// (RemoteSwapTest runs under TSan via tools/check_tsan.sh).
//
// Every test is parameterized over both transports (threads / epoll):
// they implement one documented contract (docs/PROTOCOL.md §11), so
// every behavioral claim here must hold for either. The reactor's
// transport-specific hostile-client suite is tests/net_hostile_test.cc.
#include "vsim/net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "vsim/data/dataset.h"
#include "vsim/net/client.h"
#include "vsim/net/protocol.h"
#include "vsim/net/socket_util.h"
#include "vsim/service/db_snapshot.h"

namespace vsim::net {
namespace {

class NetServerTest : public ::testing::TestWithParam<Transport> {
 protected:
  static void SetUpTestSuite() {
    const Dataset ds = MakeCarDataset(30, 99);
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.cover_resolution = 10;
    opt.num_covers = 5;
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt, 0);
    ASSERT_TRUE(db.ok());
    db_ = new CadDatabase(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  // A service over an owning snapshot of a *copy* of the fixture
  // database, so swap tests can publish further copies.
  static std::unique_ptr<QueryService> MakeService(
      QueryServiceOptions options = {}) {
    return std::make_unique<QueryService>(
        DbSnapshot::Create(CadDatabase(*db_), 0), options);
  }

  // Server options with the transport under test applied.
  ServerOptions Opts(ServerOptions options = {}) const {
    options.transport = GetParam();
    return options;
  }

  static CadDatabase* db_;
};

CadDatabase* NetServerTest::db_ = nullptr;

// A helper bundling service + started server + one connected client.
struct Loopback {
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  explicit Loopback(std::unique_ptr<QueryService> svc,
                    ServerOptions options = {}) {
    service = std::move(svc);
    server = std::make_unique<Server>(service.get(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  Client Connect() {
    StatusOr<Client> client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }
};

// The tentpole acceptance claim: every query kind answered over the
// loopback socket is byte-identical to the in-process Execute on the
// same snapshot -- results, cost accounting, and generation.
TEST_P(NetServerTest, LoopbackParityForAllQueryKinds) {
  // Cache off: a warm cache returns zero-cost hits, which would hide a
  // wire codec that drops the cost fields.
  QueryServiceOptions sopts;
  sopts.cache_bytes = 0;
  Loopback loop(MakeService(sopts), Opts());
  Client client = loop.Connect();

  const double eps =
      loop.service->snapshot()->engine()
          .Knn(QueryStrategy::kVectorSetScan, 0, 5)
          .back()
          .distance;
  std::vector<ServiceRequest> requests;
  {
    ServiceRequest req;
    req.kind = QueryKind::kKnn;
    req.object_id = 3;
    req.options.k = 5;
    requests.push_back(req);
    req.kind = QueryKind::kRange;
    req.options.eps = eps * 1.5;
    requests.push_back(req);
    req.kind = QueryKind::kInvariantKnn;
    req.options.k = 4;
    requests.push_back(req);
    req.kind = QueryKind::kInvariantRange;
    req.options.eps = eps * 2;
    requests.push_back(req);
    // External-representation query (the --mesh path): same fields the
    // wire carries, no stored id.
    req.kind = QueryKind::kKnn;
    req.object_id = -1;
    req.query = db_->object(7);
    req.options.k = 5;
    requests.push_back(req);
  }

  for (const ServiceRequest& req : requests) {
    StatusOr<ServiceResponse> local = loop.service->Execute(req);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    StatusOr<ServiceResponse> remote = client.Execute(req);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote->neighbors, local->neighbors)
        << "kind " << static_cast<int>(req.kind);
    EXPECT_EQ(remote->ids, local->ids);
    EXPECT_EQ(remote->generation, local->generation);
    EXPECT_EQ(remote->cost.io.page_accesses(),
              local->cost.io.page_accesses());
    EXPECT_EQ(remote->cost.candidates_refined,
              local->cost.candidates_refined);
  }
}

TEST_P(NetServerTest, PipelinedRequestsCompleteInOrder) {
  Loopback loop(MakeService(), Opts());
  Client client = loop.Connect();

  constexpr int kWindow = 24;
  std::vector<uint64_t> sent_ids;
  for (int i = 0; i < kWindow; ++i) {
    ServiceRequest req;
    req.object_id = i % static_cast<int>(db_->size());
    req.options.k = 3;
    uint64_t id = 0;
    ASSERT_TRUE(client.Send(req, &id).ok());
    sent_ids.push_back(id);
  }
  for (int i = 0; i < kWindow; ++i) {
    uint64_t id = 0;
    StatusOr<ServiceResponse> response = client.Receive(&id);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(id, sent_ids[i]) << "completion out of order";
    EXPECT_EQ(response->neighbors.size(), 3u);
  }
}

TEST_P(NetServerTest, ChunkedResponsesReassembleAcrossTinyFrames) {
  // Force multi-frame streaming: 2 results per frame, a range query
  // wide enough to return many ids.
  ServerOptions options;
  options.results_per_frame = 2;
  Loopback loop(MakeService(), Opts(options));
  Client client = loop.Connect();

  ServiceRequest req;
  req.kind = QueryKind::kRange;
  req.object_id = 0;
  req.options.eps = 1e9;  // everything
  StatusOr<ServiceResponse> local = loop.service->Execute(req);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(local->ids.size(), db_->size());
  StatusOr<ServiceResponse> remote = client.Execute(req);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->ids, local->ids);
}

TEST_P(NetServerTest, ServiceErrorsPropagateAsWireStatuses) {
  Loopback loop(MakeService(), Opts());
  Client client = loop.Connect();

  // Validation error: stored id out of range for the snapshot.
  ServiceRequest req;
  req.object_id = 1 << 20;
  StatusOr<ServiceResponse> response = client.Execute(req);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kOutOfRange);

  // The connection survives a per-request error.
  req.object_id = 1;
  response = client.Execute(req);
  EXPECT_TRUE(response.ok()) << response.status().ToString();

  // Deadline already expired when a worker picks it up.
  req.options.timeout_seconds = 1e-9;
  bool saw_deadline = false;
  for (int i = 0; i < 50 && !saw_deadline; ++i) {
    response = client.Execute(req);
    if (!response.ok()) {
      EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
      saw_deadline = true;
    }
  }
  EXPECT_TRUE(saw_deadline);
}

TEST_P(NetServerTest, ConnectionLimitRejectsWithUnavailable) {
  ServerOptions options;
  options.max_connections = 1;
  Loopback loop(MakeService(), Opts(options));
  Client first = loop.Connect();
  ServiceRequest req;
  req.object_id = 0;
  ASSERT_TRUE(first.Execute(req).ok());

  Client second = loop.Connect();
  StatusOr<ServiceResponse> rejected = second.Execute(req);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // The first connection keeps working; after it closes, a new one is
  // admitted (the acceptor reaps finished connections).
  ASSERT_TRUE(first.Execute(req).ok());
  first.Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    Client retry = loop.Connect();
    admitted = retry.Execute(req).ok();
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
  EXPECT_GE(loop.server->stats().connections_rejected, 1u);
}

TEST_P(NetServerTest, InfoReportsSnapshotAndExtractionOptions) {
  Loopback loop(MakeService(), Opts());
  Client client = loop.Connect();
  StatusOr<ServerInfo> info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->object_count, db_->size());
  EXPECT_EQ(info->generation, 0u);
  EXPECT_EQ(info->num_covers, db_->options().num_covers);
  EXPECT_EQ(info->cover_resolution, db_->options().cover_resolution);
  EXPECT_EQ(info->extract_histograms, db_->options().extract_histograms);
}

// Hostile peers: truncated frames, bit-flipped frames, raw garbage and
// protocol misuse must never crash or wedge the server. After the whole
// corpus, a well-behaved client still gets correct answers.
TEST_P(NetServerTest, MalformedFramesNeverCrashOrHangTheServer) {
  Loopback loop(MakeService(), Opts());

  ServiceRequest valid_req;
  valid_req.object_id = 2;
  valid_req.options.k = 3;
  std::string valid_frame;
  AppendRequestFrame(1, valid_req, &valid_frame);

  auto send_raw = [&](const std::string& bytes) {
    StatusOr<ScopedFd> fd = ConnectTcp("127.0.0.1", loop.server->port());
    ASSERT_TRUE(fd.ok());
    (void)WriteAll(fd->get(), bytes.data(), bytes.size());
    // Closing mid-frame exercises the EOF-inside-payload path too.
  };

  // Truncations at stride through the frame, including header cuts.
  for (size_t len = 0; len < valid_frame.size(); len += 3) {
    send_raw(valid_frame.substr(0, len));
  }
  // Bit flips across the whole frame (header corruption, enum bytes,
  // length fields, payload doubles).
  for (size_t pos = 0; pos < valid_frame.size(); pos += 2) {
    std::string mutated = valid_frame;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x41);
    send_raw(mutated);
  }
  // Raw garbage that never was a frame.
  send_raw(std::string(64, '\xff'));
  send_raw("GET / HTTP/1.1\r\n\r\n");
  // A server->client frame type from a client is protocol misuse.
  {
    std::string status_frame;
    AppendStatusFrame(9, Status::Internal("i am the server now"),
                      &status_frame);
    send_raw(status_frame);
  }

  // A malformed *payload* on a healthy connection only fails that one
  // request; the connection then serves valid requests.
  {
    Client client = loop.Connect();
    std::string bad_payload_frame;
    {
      // kind byte 200: framing is fine, payload decode fails.
      std::string payload(valid_frame.begin() + kFrameHeaderBytes,
                          valid_frame.end());
      payload[0] = static_cast<char>(200);
      AppendFrame(FrameType::kRequest, kFlagFinal, 77, payload,
                  &bad_payload_frame);
    }
    // Reach into the client's socket via a parallel raw connection
    // instead: simpler -- send bad then good on one raw socket.
    StatusOr<ScopedFd> fd = ConnectTcp("127.0.0.1", loop.server->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteAll(fd->get(), bad_payload_frame.data(),
                         bad_payload_frame.size())
                    .ok());
    ASSERT_TRUE(
        WriteAll(fd->get(), valid_frame.data(), valid_frame.size()).ok());
    // First completion: the decode error for request 77.
    FrameHeader header;
    std::string payload;
    bool clean_eof = false;
    ASSERT_TRUE(
        ReadFrame(fd->get(), &header, &payload, &clean_eof).ok());
    ASSERT_FALSE(clean_eof);
    EXPECT_EQ(header.type, FrameType::kStatus);
    EXPECT_EQ(header.request_id, 77u);
    // Second completion: the valid request's response.
    ASSERT_TRUE(
        ReadFrame(fd->get(), &header, &payload, &clean_eof).ok());
    ASSERT_FALSE(clean_eof);
    EXPECT_EQ(header.type, FrameType::kResponse);
    EXPECT_EQ(header.request_id, 1u);
  }

  // The server survived the whole corpus and still answers correctly.
  Client client = loop.Connect();
  StatusOr<ServiceResponse> local = loop.service->Execute(valid_req);
  StatusOr<ServiceResponse> remote = client.Execute(valid_req);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->neighbors, local->neighbors);
  EXPECT_GT(loop.server->stats().protocol_errors, 0u);
}

TEST_P(NetServerTest, GracefulStopDrainsInFlightRequests) {
  // Slow the service down (simulated I/O wait) so requests are still in
  // flight when Stop() lands.
  QueryServiceOptions sopts;
  sopts.num_threads = 2;
  sopts.cache_bytes = 0;
  sopts.simulate_io_wait = true;
  sopts.io_params.seconds_per_page_access = 2e-4;
  Loopback loop(MakeService(sopts), Opts());
  Client client = loop.Connect();

  constexpr int kInFlight = 12;
  for (int i = 0; i < kInFlight; ++i) {
    ServiceRequest req;
    req.object_id = i % static_cast<int>(db_->size());
    req.options.k = 5;
    uint64_t id = 0;
    ASSERT_TRUE(client.Send(req, &id).ok());
  }
  // Wait until the server has *accepted* every request -- frames still
  // in the kernel buffer at Stop() are legitimately dropped by the
  // read-side shutdown; the drain guarantee covers admitted work.
  while (loop.server->stats().requests_received <
         static_cast<uint64_t>(kInFlight)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Stop while the pipeline is full: every accepted request must still
  // complete and reach the client before the socket closes.
  loop.server->Stop();
  for (int i = 0; i < kInFlight; ++i) {
    StatusOr<ServiceResponse> response = client.Receive();
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status().ToString();
  }
  // After the drain, the server is gone: the next receive sees EOF.
  StatusOr<ServiceResponse> after = client.Receive();
  EXPECT_FALSE(after.ok());
}

// Snapshot swaps under live remote load: generation-tagged responses
// stay consistent, no request fails, and later requests observe the new
// generation. Named RemoteSwapTest so tools/check_tsan.sh picks it up.
class RemoteSwapTest : public NetServerTest {};

TEST_P(RemoteSwapTest, SwapUnderRemoteLoad) {
  Loopback loop(MakeService(), Opts());
  constexpr int kClients = 4;
  constexpr int kSwaps = 3;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> regressions{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      StatusOr<Client> client =
          Client::Connect("127.0.0.1", loop.server->port());
      if (!client.ok()) {
        failures.fetch_add(1, std::memory_order_seq_cst);
        return;
      }
      uint64_t last_generation = 0;
      int q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ServiceRequest req;
        req.object_id = (c * 13 + ++q) % 30;
        req.options.k = 3;
        StatusOr<ServiceResponse> response = client->Execute(req);
        if (!response.ok()) {
          failures.fetch_add(1, std::memory_order_seq_cst);
          continue;
        }
        served.fetch_add(1, std::memory_order_seq_cst);
        // In-order pipelining on one connection: generations observed
        // by a single client can only move forward.
        if (response->generation < last_generation) {
          regressions.fetch_add(1, std::memory_order_seq_cst);
        }
        last_generation = response->generation;
      }
    });
  }

  for (uint64_t gen = 1; gen <= kSwaps; ++gen) {
    while (served.load(std::memory_order_seq_cst) < gen * 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Status swapped = loop.service->SwapSnapshot(
        DbSnapshot::Create(CadDatabase(*db_), gen));
    ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  }
  while (served.load(std::memory_order_seq_cst) < (kSwaps + 1) * 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_seq_cst);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(std::memory_order_seq_cst), 0u);
  EXPECT_EQ(regressions.load(std::memory_order_seq_cst), 0u);
  EXPECT_EQ(loop.service->generation(), static_cast<uint64_t>(kSwaps));

  // A fresh request observes the final generation.
  Client client = loop.Connect();
  ServiceRequest req;
  req.object_id = 0;
  StatusOr<ServiceResponse> response = client.Execute(req);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->generation, static_cast<uint64_t>(kSwaps));
}

// The observability acceptance claim: after one remote 10-NN query, a
// `vsim stats`-style scrape over the same wire fully attributes it --
// the metrics text shows the request and its paper counters, and the
// flight recorder returns the request's trace.
TEST_P(NetServerTest, StatsScrapeAttributesRemoteQuery) {
  QueryServiceOptions sopts;
  sopts.cache_bytes = 0;
  Loopback loop(MakeService(sopts), Opts());
  Client client = loop.Connect();

  // The server advertises the stats frames as a feature flag.
  StatusOr<ServerInfo> info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_NE(info->feature_flags & kFeatureStats, 0u);

  const int k = 10;
  ServiceRequest req;
  req.object_id = 4;
  req.options.k = k;
  StatusOr<ServiceResponse> response = client.Execute(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->neighbors.size(), static_cast<size_t>(k));

  StatusOr<StatsResponse> stats = client.Stats(/*max_traces=*/8);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Metrics: the whole stack is visible in one scrape -- service
  // counters, the per-strategy breakdown, and the server's own
  // vsim_net_* connection counters (collector-fed).
  const std::string& text = stats->metrics_text;
  EXPECT_NE(text.find("vsim_requests_completed_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_queries_total{strategy=\"filter\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vsim_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_net_requests_received_total"),
            std::string::npos);

  // Trace: the query's span came back over the wire with the paper's
  // pipeline ordering intact.
  ASSERT_FALSE(stats->traces.empty());
  const obs::QueryTrace& t = stats->traces.front();
  EXPECT_EQ(t.kind, static_cast<uint8_t>(QueryKind::kKnn));
  EXPECT_EQ(t.k, k);
  EXPECT_EQ(t.status_code, 0);
  EXPECT_EQ(t.generation, response->generation);
  EXPECT_GE(t.filter_hits, t.candidates_refined);
  EXPECT_GE(t.candidates_refined, static_cast<uint64_t>(k));
  EXPECT_GT(t.total_seconds, 0.0);

  // The connection survives a stats exchange: a follow-up query works.
  StatusOr<ServiceResponse> again = client.Execute(req);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(client.ok());
}

// An empty recorder and the slow_only filter behave over the wire.
TEST_P(NetServerTest, StatsSlowOnlyFiltersFastQueries) {
  QueryServiceOptions sopts;
  sopts.cache_bytes = 0;
  sopts.slow_trace_seconds = 3600.0;  // nothing qualifies as slow
  Loopback loop(MakeService(sopts), Opts());
  Client client = loop.Connect();
  ServiceRequest req;
  req.object_id = 0;
  ASSERT_TRUE(client.Execute(req).ok());
  StatusOr<StatsResponse> slow = client.Stats(8, /*slow_only=*/true);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_TRUE(slow->traces.empty());
  StatusOr<StatsResponse> all = client.Stats(8, /*slow_only=*/false);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->traces.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, NetServerTest,
    ::testing::Values(Transport::kThreads, Transport::kEpoll),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return std::string(TransportName(info.param));
    });
INSTANTIATE_TEST_SUITE_P(
    Transports, RemoteSwapTest,
    ::testing::Values(Transport::kThreads, Transport::kEpoll),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return std::string(TransportName(info.param));
    });

}  // namespace
}  // namespace vsim::net
