// Edge cases across modules: degenerate geometry, pathological grids,
// and symmetric inputs where tie-breaking must still produce valid
// (if arbitrary) answers.
#include <gtest/gtest.h>

#include "vsim/common/rng.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/features/solid_angle_model.h"
#include "vsim/features/volume_model.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/normalizer.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

TEST(EdgeCaseTest, PcaOnSphereStaysProperRotation) {
  // A sphere has three equal principal values; the eigenvectors are
  // arbitrary but the result must still be a proper rotation.
  const TriangleMesh sphere = MakeSphere(1.0, 24, 12);
  const Mat3 rot = PrincipalAxisRotation(sphere);
  EXPECT_NEAR(rot.Determinant(), 1.0, 1e-9);
  const Mat3 should_be_id = rot * rot.Transposed();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(should_be_id(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(EdgeCaseTest, AsymmetricGridHas48DistinctOrientations) {
  // Three non-collinear, non-symmetric voxels: every group element
  // produces a different grid.
  VoxelGrid g(5);
  g.Set(0, 0, 0);
  g.Set(1, 0, 0);
  g.Set(0, 2, 1);
  const auto all = AllOrientations(g, true);
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]) << i << " vs " << j;
    }
  }
}

TEST(EdgeCaseTest, SingleVoxelCoverSequence) {
  VoxelGrid g(6);
  g.Set(3, 2, 4);
  CoverSequenceOptions opt;
  opt.max_covers = 5;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(g, opt);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(seq->covers.size(), 1u);
  EXPECT_EQ(seq->covers[0].lo, (VoxelCoord{3, 2, 4}));
  EXPECT_EQ(seq->covers[0].hi, (VoxelCoord{3, 2, 4}));
  EXPECT_EQ(seq->final_error(), 0u);
}

TEST(EdgeCaseTest, CheckerboardGridCoverSearchTerminates) {
  // Worst case for rectangular covers: a 3-D checkerboard. The greedy
  // search must terminate with positive-gain covers only.
  VoxelGrid g(8);
  for (int z = 0; z < 8; ++z)
    for (int y = 0; y < 8; ++y)
      for (int x = 0; x < 8; ++x)
        if ((x + y + z) % 2 == 0) g.Set(x, y, z);
  CoverSequenceOptions opt;
  opt.max_covers = 9;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(g, opt);
  ASSERT_TRUE(seq.ok());
  for (size_t i = 1; i < seq->error_history.size(); ++i) {
    EXPECT_LT(seq->error_history[i], seq->error_history[i - 1]);
  }
  EXPECT_EQ(g.XorCount(ReconstructApproximation(*seq)), seq->final_error());
}

TEST(EdgeCaseTest, FullGridHistograms) {
  // Completely solid grid: volume histogram all ones; solid-angle
  // histogram: border cells carry surface means, the center cell is 1.
  VoxelGrid g(6);
  for (int z = 0; z < 6; ++z)
    for (int y = 0; y < 6; ++y)
      for (int x = 0; x < 6; ++x) g.Set(x, y, z);
  VolumeModelOptions vol;
  vol.cells_per_dim = 2;
  StatusOr<FeatureVector> vf = ExtractVolumeFeatures(g, vol);
  ASSERT_TRUE(vf.ok());
  for (double v : *vf) EXPECT_DOUBLE_EQ(v, 1.0);
  SolidAngleModelOptions sa;
  sa.cells_per_dim = 2;
  sa.kernel_radius = 2;
  StatusOr<FeatureVector> sf = ExtractSolidAngleFeatures(g, sa);
  ASSERT_TRUE(sf.ok());
  for (double v : *sf) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(EdgeCaseTest, MatchingWithManyIdenticalVectors) {
  // Multiset semantics: five identical vectors against five identical
  // vectors at another point.
  VectorSet a, b;
  for (int i = 0; i < 5; ++i) {
    a.vectors.push_back({0.0, 0.0});
    b.vectors.push_back({3.0, 4.0});
  }
  EXPECT_NEAR(VectorSetDistance(a, b), 25.0, 1e-12);  // 5 pairs x 5
  // Against a single copy: one pair (5) + four unmatched (0 each, the
  // zero vector has zero norm weight).
  VectorSet single;
  single.vectors.push_back({3.0, 4.0});
  EXPECT_NEAR(VectorSetDistance(a, single), 5.0, 1e-12);
}

TEST(EdgeCaseTest, TinyMeshVoxelizesAtHighResolution) {
  // A very small mesh far from the origin must still normalize and fill
  // the grid (translation + scale invariance).
  TriangleMesh tiny = MakeSphere(1e-4, 12, 6);
  tiny.ApplyTransform(Transform::Translate({1e5, -2e5, 3e5}));
  VoxelizerOptions opt;
  opt.resolution = 16;
  StatusOr<VoxelModel> model = VoxelizeMesh(tiny, opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const double fraction = static_cast<double>(model->grid.Count()) /
                          static_cast<double>(model->grid.size());
  EXPECT_GT(fraction, 0.3);  // sphere-ish fill, not empty or one voxel
}

TEST(EdgeCaseTest, HillClimbSeedCountExtremes) {
  VoxelizerOptions vox;
  vox.resolution = 10;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeTorus(1.0, 0.4, 16, 8), vox);
  ASSERT_TRUE(model.ok());
  // restarts = 1 must still work (single-seed hill climbing).
  CoverSequenceOptions opt;
  opt.max_covers = 4;
  opt.restarts = 1;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(model->grid, opt);
  ASSERT_TRUE(seq.ok());
  EXPECT_GE(seq->covers.size(), 1u);
  // Huge restart count is clamped by available seeds, not an error.
  opt.restarts = 1000000;
  EXPECT_TRUE(ComputeCoverSequence(model->grid, opt).ok());
}

}  // namespace
}  // namespace vsim
