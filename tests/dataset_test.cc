#include "vsim/data/dataset.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

TEST(DatasetTest, CarDatasetHasRequestedSizeAndClasses) {
  const Dataset ds = MakeCarDataset(200, 42);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.num_classes(), 11);  // 10 part families + misc
  std::set<int> labels;
  for (const CadObject& o : ds.objects) {
    ASSERT_GE(o.label, 0);
    ASSERT_LT(o.label, ds.num_classes());
    labels.insert(o.label);
    EXPECT_FALSE(o.parts.empty());
  }
  EXPECT_EQ(labels.size(), 11u);  // every class represented
}

TEST(DatasetTest, EvaluationLabelsSingletonizeMisc) {
  const Dataset ds = MakeCarDataset(100, 42);
  ASSERT_GE(ds.noise_class, 0);
  const std::vector<int> eval = ds.EvaluationLabels();
  std::set<int> misc_labels;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.objects[i].label == ds.noise_class) {
      EXPECT_GE(eval[i], ds.num_classes());
      misc_labels.insert(eval[i]);
    } else {
      EXPECT_EQ(eval[i], ds.objects[i].label);
    }
  }
  // Every misc object got a distinct singleton label.
  size_t misc_count = 0;
  for (const CadObject& o : ds.objects) {
    misc_count += o.label == ds.noise_class ? 1 : 0;
  }
  EXPECT_EQ(misc_labels.size(), misc_count);
}

TEST(DatasetTest, AircraftDatasetIsSkewed) {
  const Dataset ds = MakeAircraftDataset(600, 7);
  EXPECT_EQ(ds.size(), 600u);
  std::map<int, int> counts;
  for (const CadObject& o : ds.objects) ++counts[o.label];
  // Fasteners (rivet = index 3) dominate large parts (wing = index 9).
  EXPECT_GT(counts[3], 4 * std::max(1, counts[9]));
}

TEST(DatasetTest, DeterministicForSeed) {
  const Dataset a = MakeCarDataset(50, 99);
  const Dataset b = MakeCarDataset(50, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.objects[i].label, b.objects[i].label);
    ASSERT_EQ(a.objects[i].parts.size(), b.objects[i].parts.size());
    EXPECT_EQ(a.objects[i].parts[0].vertex_count(),
              b.objects[i].parts[0].vertex_count());
  }
  const Dataset c = MakeCarDataset(50, 100);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a.objects[i].label != c.objects[i].label;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, LabelsAccessorMatchesObjects) {
  const Dataset ds = MakeCarDataset(30, 1);
  const std::vector<int> labels = ds.Labels();
  ASSERT_EQ(labels.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(labels[i], ds.objects[i].label);
  }
}

TEST(DatasetTest, ObjectOrderIsShuffled) {
  const Dataset ds = MakeCarDataset(100, 42);
  // Labels must not be sorted (generation is per class, then shuffled).
  bool sorted = true;
  for (size_t i = 1; i < ds.size(); ++i) {
    sorted &= ds.objects[i - 1].label <= ds.objects[i].label;
  }
  EXPECT_FALSE(sorted);
}

TEST(DatasetTest, EveryCarObjectVoxelizes) {
  const Dataset ds = MakeCarDataset(60, 4242);
  VoxelizerOptions opt;
  opt.resolution = 15;
  for (size_t i = 0; i < ds.size(); ++i) {
    StatusOr<VoxelModel> m = VoxelizeParts(ds.objects[i].parts, opt);
    ASSERT_TRUE(m.ok()) << "object " << i << " (" << ds.objects[i].class_name
                        << "): " << m.status().ToString();
    EXPECT_GT(m->grid.Count(), 8u) << ds.objects[i].class_name;
  }
}

TEST(DatasetTest, EveryAircraftFamilyVoxelizes) {
  const Dataset ds = MakeAircraftDataset(120, 4243);
  VoxelizerOptions opt;
  opt.resolution = 15;
  std::set<int> checked;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (checked.count(ds.objects[i].label)) continue;
    checked.insert(ds.objects[i].label);
    StatusOr<VoxelModel> m = VoxelizeParts(ds.objects[i].parts, opt);
    ASSERT_TRUE(m.ok()) << ds.objects[i].class_name;
    EXPECT_GT(m->grid.Count(), 8u) << ds.objects[i].class_name;
  }
  EXPECT_EQ(checked.size(), 13u);  // 12 families + misc
}

TEST(DatasetTest, PartsAreValidMeshes) {
  const Dataset ds = MakeAircraftDataset(60, 5);
  for (const CadObject& o : ds.objects) {
    for (const TriangleMesh& m : o.parts) {
      EXPECT_TRUE(m.Validate().ok()) << o.class_name;
    }
  }
}

}  // namespace
}  // namespace vsim
