#include "vsim/index/xtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

std::vector<FeatureVector> RandomPoints(Rng& rng, int count, int dim,
                                        double lo = 0.0, double hi = 1.0) {
  std::vector<FeatureVector> pts(count, FeatureVector(dim));
  for (auto& p : pts) {
    for (double& v : p) v = rng.Uniform(lo, hi);
  }
  return pts;
}

std::vector<int> LinearRange(const std::vector<FeatureVector>& pts,
                             const FeatureVector& q, double eps) {
  std::vector<int> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (EuclideanDistance(pts[i], q) <= eps) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<Neighbor> LinearKnn(const std::vector<FeatureVector>& pts,
                                const FeatureVector& q, int k) {
  std::vector<Neighbor> all;
  for (size_t i = 0; i < pts.size(); ++i) {
    all.push_back({static_cast<int>(i), EuclideanDistance(pts[i], q)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  all.resize(std::min<size_t>(k, all.size()));
  return all;
}

TEST(XTreeTest, EmptyTreeQueries) {
  XTree tree(3);
  EXPECT_TRUE(tree.RangeQuery({0, 0, 0}, 1.0).empty());
  EXPECT_TRUE(tree.KnnQuery({0, 0, 0}, 5).empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(XTreeTest, RejectsDimensionMismatch) {
  XTree tree(3);
  EXPECT_FALSE(tree.Insert({1.0, 2.0}, 0).ok());
}

TEST(XTreeTest, SinglePoint) {
  XTree tree(2);
  ASSERT_TRUE(tree.Insert({0.5, 0.5}, 7).ok());
  const auto range = tree.RangeQuery({0.5, 0.5}, 0.001);
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0], 7);
  const auto knn = tree.KnnQuery({0, 0}, 3);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, 7);
}

class XTreeRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(XTreeRandomTest, RangeQueryMatchesLinearScan) {
  const auto [dim, count] = GetParam();
  Rng rng(1000 + dim * 17 + count);
  const auto pts = RandomPoints(rng, count, dim);
  XTreeOptions opts;
  opts.page_size_bytes = 512;  // small pages force deep trees
  XTree tree(dim, opts);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree.Insert(pts[i], static_cast<int>(i)).ok());
  }
  EXPECT_EQ(tree.size(), pts.size());
  for (int q = 0; q < 20; ++q) {
    FeatureVector query(dim);
    for (double& v : query) v = rng.Uniform(0, 1);
    const double eps = rng.Uniform(0.05, 0.5);
    std::vector<int> got = tree.RangeQuery(query, eps);
    std::vector<int> expect = LinearRange(pts, query, eps);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << "dim=" << dim << " count=" << count;
  }
}

TEST_P(XTreeRandomTest, KnnMatchesLinearScan) {
  const auto [dim, count] = GetParam();
  Rng rng(2000 + dim * 31 + count);
  const auto pts = RandomPoints(rng, count, dim);
  XTreeOptions opts;
  opts.page_size_bytes = 512;
  XTree tree(dim, opts);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree.Insert(pts[i], static_cast<int>(i)).ok());
  }
  for (int q = 0; q < 20; ++q) {
    FeatureVector query(dim);
    for (double& v : query) v = rng.Uniform(0, 1);
    const int k = 1 + static_cast<int>(rng.NextBounded(10));
    const auto got = tree.KnnQuery(query, k);
    const auto expect = LinearKnn(pts, query, k);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i) {
      // Ids may differ on exact ties; distances must agree.
      EXPECT_NEAR(got[i].distance, expect[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, XTreeRandomTest,
    ::testing::Values(std::make_tuple(2, 100), std::make_tuple(2, 1000),
                      std::make_tuple(6, 500), std::make_tuple(6, 2000),
                      std::make_tuple(16, 400), std::make_tuple(42, 300)));

TEST(XTreeTest, RankingCursorYieldsAscendingDistances) {
  Rng rng(3);
  const auto pts = RandomPoints(rng, 300, 4);
  XTree tree(4);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree.Insert(pts[i], static_cast<int>(i)).ok());
  }
  const FeatureVector query = {0.5, 0.5, 0.5, 0.5};
  auto cursor = tree.Rank(query);
  double last = 0.0;
  int count = 0;
  std::set<int> seen;
  while (cursor.HasNext()) {
    EXPECT_NEAR(cursor.NextDistance(), cursor.NextDistance(), 0.0);
    const Neighbor n = cursor.Next();
    EXPECT_GE(n.distance, last - 1e-12);
    last = n.distance;
    seen.insert(n.id);
    ++count;
  }
  EXPECT_EQ(count, 300);
  EXPECT_EQ(seen.size(), 300u);  // every point exactly once
}

TEST(XTreeTest, DuplicatePointsAllRetrieved) {
  XTree tree(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert({0.5, 0.5}, i).ok());
  }
  const auto hits = tree.RangeQuery({0.5, 0.5}, 1e-9);
  EXPECT_EQ(hits.size(), 50u);
}

TEST(XTreeTest, IoStatsChargedOnQueries) {
  Rng rng(4);
  const auto pts = RandomPoints(rng, 500, 6);
  XTreeOptions opts;
  opts.page_size_bytes = 512;
  XTree tree(6, opts);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree.Insert(pts[i], static_cast<int>(i)).ok());
  }
  IoStats stats;
  tree.KnnQuery({0.5, 0.5, 0.5, 0.5, 0.5, 0.5}, 10, &stats);
  EXPECT_GT(stats.page_accesses(), 0u);
  EXPECT_GT(stats.bytes_read(), 0u);
  // The k-NN search must touch far fewer pages than the whole index.
  EXPECT_LT(stats.page_accesses(), tree.total_pages());
}

TEST(XTreeTest, HighDimensionalDataCreatesSupernodes) {
  // Clustered high-dimensional points provoke high-overlap splits,
  // which the X-tree resolves with supernodes.
  Rng rng(5);
  XTreeOptions opts;
  opts.page_size_bytes = 1024;
  XTree tree(16, opts);
  int id = 0;
  for (int cluster = 0; cluster < 10; ++cluster) {
    FeatureVector center(16);
    for (double& v : center) v = rng.Uniform(0, 1);
    for (int i = 0; i < 60; ++i) {
      FeatureVector p = center;
      for (double& v : p) v += rng.Gaussian(0, 0.02);
      ASSERT_TRUE(tree.Insert(p, id++).ok());
    }
  }
  EXPECT_GT(tree.node_count(), 1u);
  // Structure stats are exposed and consistent.
  EXPECT_GE(tree.total_pages(), tree.node_count());
  EXPECT_GE(tree.height(), 1);
}

TEST(XTreeTest, StructureGrowsLogarithmically) {
  Rng rng(6);
  const auto pts = RandomPoints(rng, 4000, 3);
  XTree tree(3);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(tree.Insert(pts[i], static_cast<int>(i)).ok());
  }
  EXPECT_LE(tree.height(), 6);
  EXPECT_GE(tree.height(), 2);
}

}  // namespace
}  // namespace vsim
