#include "vsim/service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

namespace vsim {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter]() { counter.fetch_add(1, std::memory_order_seq_cst); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(std::memory_order_seq_cst), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10000;
  std::vector<std::atomic<int>> touched(n);
  pool.ParallelFor(n, [&](size_t i) { touched[i].fetch_add(1, std::memory_order_seq_cst); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(std::memory_order_seq_cst), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1, std::memory_order_seq_cst);
      });
    }
  }  // destructor joins after running everything queued
  EXPECT_EQ(ran.load(std::memory_order_seq_cst), 20);
}

TEST(ThreadPoolTest, PauseHoldsTasksUntilResume) {
  ThreadPool pool(2);
  pool.Pause();
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(pool.Submit([&ran]() { ran.fetch_add(1, std::memory_order_seq_cst); }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(pool.QueuedTasks(), 5u);
  pool.Resume();
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(std::memory_order_seq_cst), 5);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_LE(pool.num_threads(), 64);
}

}  // namespace
}  // namespace vsim
