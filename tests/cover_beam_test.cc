#include <gtest/gtest.h>

#include "vsim/common/rng.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

void FillBox(VoxelGrid* g, VoxelCoord lo, VoxelCoord hi) {
  for (int z = lo.z; z <= hi.z; ++z)
    for (int y = lo.y; y <= hi.y; ++y)
      for (int x = lo.x; x <= hi.x; ++x) g->Set(x, y, z);
}

// Two large slabs connected by a tiny bridge. The enclosing box is the
// best first cover (+272 beats each slab's +192), but greedy recovers
// via a '-' cover over the whole middle slab (+112): both searches end
// at error 8. Documents the power of subtraction covers.
TEST(BeamSearchTest, SubtractionRescuesGreedyOnBridgedSlabs) {
  VoxelGrid object(8);
  FillBox(&object, {0, 0, 0}, {2, 7, 7});  // slab A, 192 voxels
  FillBox(&object, {5, 0, 0}, {7, 7, 7});  // slab B, 192 voxels
  FillBox(&object, {3, 3, 3}, {4, 4, 4});  // bridge, 8 voxels
  CoverSequenceOptions greedy;
  greedy.max_covers = 2;
  greedy.search = CoverSequenceOptions::Search::kExhaustive;
  StatusOr<CoverSequence> g = ComputeCoverSequence(object, greedy);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->final_error(), 8u);
  CoverSequenceOptions beam = greedy;
  beam.search = CoverSequenceOptions::Search::kBeam;
  StatusOr<CoverSequence> b = ComputeCoverSequence(object, beam);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->final_error(), 8u);
}

// A pinned random composite (found by deterministic search) where the
// greedy chain is strictly suboptimal and the beam escapes: with k = 3
// covers greedy leaves 2 mismatched voxels, the beam reaches 0.
TEST(BeamSearchTest, EscapesGreedyTrap) {
  Rng rng(5);
  VoxelGrid object(7);
  for (int c = 0; c < 4; ++c) {
    const int x0 = static_cast<int>(rng.NextBounded(5));
    const int y0 = static_cast<int>(rng.NextBounded(5));
    const int z0 = static_cast<int>(rng.NextBounded(5));
    FillBox(&object, {x0, y0, z0},
            {x0 + static_cast<int>(rng.NextBounded(3)),
             y0 + static_cast<int>(rng.NextBounded(3)),
             z0 + static_cast<int>(rng.NextBounded(3))});
  }
  CoverSequenceOptions greedy;
  greedy.max_covers = 3;
  greedy.search = CoverSequenceOptions::Search::kExhaustive;
  CoverSequenceOptions beam = greedy;
  beam.search = CoverSequenceOptions::Search::kBeam;
  beam.beam_width = 4;
  beam.branch_factor = 3;
  StatusOr<CoverSequence> g = ComputeCoverSequence(object, greedy);
  StatusOr<CoverSequence> b = ComputeCoverSequence(object, beam);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(g->final_error(), 2u);
  EXPECT_EQ(b->final_error(), 0u);
  EXPECT_EQ(ReconstructApproximation(*b), object);
}

TEST(BeamSearchTest, NeverWorseThanExhaustiveGreedy) {
  Rng rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    VoxelGrid object(7);
    for (int c = 0; c < 4; ++c) {
      const int x0 = static_cast<int>(rng.NextBounded(5));
      const int y0 = static_cast<int>(rng.NextBounded(5));
      const int z0 = static_cast<int>(rng.NextBounded(5));
      FillBox(&object, {x0, y0, z0},
              {x0 + static_cast<int>(rng.NextBounded(3)),
               y0 + static_cast<int>(rng.NextBounded(3)),
               z0 + static_cast<int>(rng.NextBounded(3))});
    }
    for (int k : {2, 4}) {
      CoverSequenceOptions greedy;
      greedy.max_covers = k;
      greedy.search = CoverSequenceOptions::Search::kExhaustive;
      CoverSequenceOptions beam = greedy;
      beam.search = CoverSequenceOptions::Search::kBeam;
      StatusOr<CoverSequence> g = ComputeCoverSequence(object, greedy);
      StatusOr<CoverSequence> b = ComputeCoverSequence(object, beam);
      ASSERT_TRUE(g.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_LE(b->final_error(), g->final_error());
      // History is consistent with the covers.
      EXPECT_EQ(b->error_history.back(),
                object.XorCount(ReconstructApproximation(*b)));
    }
  }
}

TEST(BeamSearchTest, RealPartShapes) {
  VoxelizerOptions vox;
  vox.resolution = 10;
  for (const TriangleMesh& mesh :
       {MakeTorus(1.0, 0.4, 16, 8), MakeFrustum(1.0, 0.4, 1.5, 12)}) {
    StatusOr<VoxelModel> model = VoxelizeMesh(mesh, vox);
    ASSERT_TRUE(model.ok());
    CoverSequenceOptions beam;
    beam.max_covers = 5;
    beam.search = CoverSequenceOptions::Search::kBeam;
    beam.beam_width = 3;
    beam.branch_factor = 2;
    StatusOr<CoverSequence> b = ComputeCoverSequence(model->grid, beam);
    ASSERT_TRUE(b.ok());
    CoverSequenceOptions greedy = beam;
    greedy.search = CoverSequenceOptions::Search::kExhaustive;
    StatusOr<CoverSequence> g = ComputeCoverSequence(model->grid, greedy);
    ASSERT_TRUE(g.ok());
    EXPECT_LE(b->final_error(), g->final_error());
  }
}

TEST(BeamSearchTest, RejectsBadParameters) {
  VoxelGrid object(4);
  object.Set(1, 1, 1);
  CoverSequenceOptions opt;
  opt.search = CoverSequenceOptions::Search::kBeam;
  opt.beam_width = 0;
  EXPECT_FALSE(ComputeCoverSequence(object, opt).ok());
  opt.beam_width = 2;
  opt.branch_factor = 0;
  EXPECT_FALSE(ComputeCoverSequence(object, opt).ok());
}

}  // namespace
}  // namespace vsim
