#include "vsim/distance/permutation_distance.h"

#include <gtest/gtest.h>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

FeatureVector RandomVector(Rng& rng, int dim, double scale = 1.0) {
  FeatureVector v(dim);
  for (double& x : v) x = rng.Uniform(-scale, scale);
  return v;
}

VectorSet SplitIntoBlocks(const FeatureVector& v, int d) {
  VectorSet s;
  for (size_t i = 0; i < v.size(); i += d) {
    s.vectors.emplace_back(v.begin() + i, v.begin() + i + d);
  }
  return s;
}

TEST(BruteForceTest, IdentityPermutationWhenAligned) {
  const FeatureVector a = {1, 2, 3, 4};
  const FeatureVector b = {1, 2, 3, 4};
  StatusOr<double> d = MinEuclideanUnderPermutationBruteForce(a, b, 2);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-12);
}

TEST(BruteForceTest, FindsCrossPermutation) {
  // Blocks of b are swapped relative to a.
  const FeatureVector a = {0, 0, 5, 5};
  const FeatureVector b = {5, 5, 0, 0};
  StatusOr<double> d = MinEuclideanUnderPermutationBruteForce(a, b, 2);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-12);
  // Plain Euclidean distance without permutation is sqrt(4 * 25) = 10.
  EXPECT_NEAR(EuclideanDistance(a, b), 10.0, 1e-12);
}

TEST(BruteForceTest, RejectsBadInput) {
  EXPECT_FALSE(MinEuclideanUnderPermutationBruteForce({1, 2}, {1, 2, 3}, 1).ok());
  EXPECT_FALSE(MinEuclideanUnderPermutationBruteForce({1, 2, 3}, {1, 2, 3}, 2).ok());
  EXPECT_FALSE(MinEuclideanUnderPermutationBruteForce({1}, {1}, 0).ok());
}

TEST(PermutationReductionTest, MatchesBruteForceOnRandomInputs) {
  // Section 4.2: the minimal matching distance with squared Euclidean
  // ground distance + squared-norm weights, square-rooted, equals the
  // minimum Euclidean distance under permutation.
  Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 2 + static_cast<int>(rng.NextBounded(4));  // 2..5 blocks
    const int d = 1 + static_cast<int>(rng.NextBounded(3));  // 1..3 dims
    const FeatureVector a = RandomVector(rng, k * d);
    const FeatureVector b = RandomVector(rng, k * d);
    StatusOr<double> brute = MinEuclideanUnderPermutationBruteForce(a, b, d);
    ASSERT_TRUE(brute.ok());
    const double reduced = MinEuclideanUnderPermutation(SplitIntoBlocks(a, d),
                                                        SplitIntoBlocks(b, d));
    EXPECT_NEAR(reduced, *brute, 1e-9)
        << "k=" << k << " d=" << d << " trial=" << trial;
  }
}

TEST(PermutationReductionTest, DummyPaddingEquivalence) {
  // A set with fewer than k vectors behaves exactly like the one-vector
  // representation padded with zero dummy covers.
  Rng rng(99);
  const int d = 3, k = 4;
  for (int trial = 0; trial < 40; ++trial) {
    const int real_vectors = 1 + static_cast<int>(rng.NextBounded(k));
    FeatureVector padded_b(k * d, 0.0);
    VectorSet set_b;
    for (int i = 0; i < real_vectors; ++i) {
      FeatureVector block = RandomVector(rng, d);
      std::copy(block.begin(), block.end(), padded_b.begin() + i * d);
      set_b.vectors.push_back(std::move(block));
    }
    const FeatureVector a = RandomVector(rng, k * d);
    StatusOr<double> brute = MinEuclideanUnderPermutationBruteForce(a, padded_b, d);
    ASSERT_TRUE(brute.ok());
    const double reduced =
        MinEuclideanUnderPermutation(SplitIntoBlocks(a, d), set_b);
    EXPECT_NEAR(reduced, *brute, 1e-9);
  }
}

TEST(PermutationReductionTest, LowerBoundsPlainEuclidean) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const FeatureVector a = RandomVector(rng, 12);
    const FeatureVector b = RandomVector(rng, 12);
    const double permuted = MinEuclideanUnderPermutation(SplitIntoBlocks(a, 6),
                                                         SplitIntoBlocks(b, 6));
    EXPECT_LE(permuted, EuclideanDistance(a, b) + 1e-9);
  }
}

}  // namespace
}  // namespace vsim
