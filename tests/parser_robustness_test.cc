// Robustness sweeps for the external-input parsers (OBJ, STL, database
// and index files): random garbage, truncations and pathological inputs
// must produce Status errors, never crashes or runaway allocations.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "vsim/common/rng.h"
#include "vsim/core/similarity.h"
#include "vsim/geometry/mesh_io.h"
#include "vsim/index/xtree.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ParserRobustnessTest, RandomGarbageObjNeverCrashes) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.NextBounded(400);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    (void)ParseObj(garbage);  // must return, any status
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, ObjLikeGarbageNeverCrashes) {
  // Structured garbage: valid-looking tags with broken payloads.
  Rng rng(17);
  const char* tags[] = {"v", "f", "vn", "vt", "o", "#", "usemtl", "s"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string content;
    const int lines = 1 + static_cast<int>(rng.NextBounded(30));
    for (int l = 0; l < lines; ++l) {
      content += tags[rng.NextBounded(8)];
      const int tokens = static_cast<int>(rng.NextBounded(5));
      for (int t = 0; t < tokens; ++t) {
        switch (rng.NextBounded(4)) {
          case 0: content += " " + std::to_string(rng.UniformInt(-99, 99)); break;
          case 1: content += " " + std::to_string(rng.NextDouble()); break;
          case 2: content += " 1/2/3"; break;
          default: content += " nan"; break;
        }
      }
      content += "\n";
    }
    (void)ParseObj(content);
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, HugeFaceIndexRejectedNotAllocated) {
  // A face referencing vertex 2^31 must be rejected cleanly.
  const std::string obj = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 2147483647\n";
  StatusOr<TriangleMesh> mesh = ParseObj(obj);
  EXPECT_FALSE(mesh.ok());
}

TEST(ParserRobustnessTest, RandomGarbageStlFiles) {
  Rng rng(19);
  const std::string path = TempPath("garbage.stl");
  for (int trial = 0; trial < 60; ++trial) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const size_t len = rng.NextBounded(300);
    for (size_t i = 0; i < len; ++i) {
      out.put(static_cast<char>(rng.NextBounded(256)));
    }
    out.close();
    (void)LoadStl(path);  // must not crash
  }
  std::remove(path.c_str());
  SUCCEED();
}

TEST(ParserRobustnessTest, RandomGarbageDatabaseFiles) {
  Rng rng(23);
  const std::string path = TempPath("garbage.vsimdb");
  for (int trial = 0; trial < 60; ++trial) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    // Half the trials start with the valid magic to reach deeper code.
    if (trial % 2 == 0) out.write("VSIMDB01", 8);
    const size_t len = rng.NextBounded(300);
    for (size_t i = 0; i < len; ++i) {
      out.put(static_cast<char>(rng.NextBounded(256)));
    }
    out.close();
    StatusOr<CadDatabase> db = CadDatabase::Load(path);
    EXPECT_FALSE(db.ok());
  }
  std::remove(path.c_str());
}

TEST(ParserRobustnessTest, RandomGarbageXTreeFiles) {
  Rng rng(29);
  const std::string path = TempPath("garbage.vsxt");
  for (int trial = 0; trial < 60; ++trial) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (trial % 2 == 0) out.write("VSXTRE01", 8);
    const size_t len = rng.NextBounded(300);
    for (size_t i = 0; i < len; ++i) {
      out.put(static_cast<char>(rng.NextBounded(256)));
    }
    out.close();
    StatusOr<XTree> tree = XTree::Load(path);
    EXPECT_FALSE(tree.ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsim
