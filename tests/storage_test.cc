#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "vsim/cache/page_cache.h"
#include "vsim/common/rng.h"
#include "vsim/storage/paged_file.h"
#include "vsim/storage/vector_set_store.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- PagedFile ----------------------------------------------------------

TEST(PagedFileTest, CreateAllocateReadWrite) {
  const std::string path = TempPath("pf1.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->page_count(), 0u);
  StatusOr<PageId> p1 = file->Allocate();
  StatusOr<PageId> p2 = file->Allocate();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(*p2, 2u);

  std::vector<char> data(512, 'x');
  std::memcpy(data.data(), "hello", 5);
  ASSERT_TRUE(file->Write(*p1, data.data()).ok());
  std::vector<char> back(512, 0);
  ASSERT_TRUE(file->Read(*p1, back.data()).ok());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 512), 0);
  // The other page stays zeroed.
  ASSERT_TRUE(file->Read(*p2, back.data()).ok());
  EXPECT_EQ(back[0], 0);
  std::remove(path.c_str());
}

TEST(PagedFileTest, PersistsAcrossReopen) {
  const std::string path = TempPath("pf2.vspg");
  {
    StatusOr<PagedFile> file = PagedFile::Create(path, 512);
    ASSERT_TRUE(file.ok());
    StatusOr<PageId> p = file->Allocate();
    ASSERT_TRUE(p.ok());
    std::vector<char> data(512, 7);
    ASSERT_TRUE(file->Write(*p, data.data()).ok());
    ASSERT_TRUE(file->Sync().ok());
  }  // destructor persists the header
  StatusOr<PagedFile> reopened = PagedFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->page_size(), 512u);
  EXPECT_EQ(reopened->page_count(), 1u);
  std::vector<char> back(512, 0);
  ASSERT_TRUE(reopened->Read(1, back.data()).ok());
  EXPECT_EQ(back[100], 7);
  std::remove(path.c_str());
}

TEST(PagedFileTest, RejectsBadInput) {
  EXPECT_FALSE(PagedFile::Create(TempPath("pf3.vspg"), 100).ok());
  EXPECT_FALSE(PagedFile::Open("/nonexistent/file.vspg").ok());
  // Non-paged file content.
  const std::string junk = TempPath("junk.vspg");
  std::FILE* f = std::fopen(junk.c_str(), "wb");
  std::fputs("this is not a paged file at all, not even close", f);
  std::fclose(f);
  EXPECT_FALSE(PagedFile::Open(junk).ok());
  std::remove(junk.c_str());

  StatusOr<PagedFile> file = PagedFile::Create(TempPath("pf4.vspg"), 512);
  ASSERT_TRUE(file.ok());
  std::vector<char> buf(512);
  EXPECT_FALSE(file->Read(0, buf.data()).ok());   // header not readable
  EXPECT_FALSE(file->Read(99, buf.data()).ok());  // out of range
  std::remove(TempPath("pf4.vspg").c_str());
}

// --- PagedFile concurrency ----------------------------------------------

TEST(PagedFileTest, ConcurrentPositionedIo) {
  const std::string path = TempPath("pf5.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  constexpr int kPages = 16;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) {
    StatusOr<PageId> p = file->Allocate();
    ASSERT_TRUE(p.ok());
    std::vector<char> data(512, static_cast<char>('a' + i));
    ASSERT_TRUE(file->Write(*p, data.data()).ok());
    pages.push_back(*p);
  }
  // pread/pwrite have no shared stream cursor: concurrent readers on
  // distinct pages must each see their own page's fill byte, and
  // concurrent Allocate calls must hand out distinct ids.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      std::vector<char> buf(512);
      for (int round = 0; round < 200; ++round) {
        const int i = (t * 7 + round) % kPages;
        if (!file->Read(pages[i], buf.data()).ok() ||
            buf[0] != static_cast<char>('a' + i) ||
            buf[511] != static_cast<char>('a' + i)) {
          failures.fetch_add(1, std::memory_order_seq_cst);
        }
      }
    });
  }
  std::vector<std::thread> allocators;
  std::array<PageId, 4> allocated{};
  for (int t = 0; t < 4; ++t) {
    allocators.emplace_back([&, t] {
      StatusOr<PageId> p = file->Allocate();
      allocated[t] = p.ok() ? *p : 0;
    });
  }
  for (auto& th : threads) th.join();
  for (auto& th : allocators) th.join();
  EXPECT_EQ(failures.load(std::memory_order_seq_cst), 0);
  std::sort(allocated.begin(), allocated.end());
  for (size_t i = 0; i < allocated.size(); ++i) {
    EXPECT_EQ(allocated[i], static_cast<PageId>(kPages + 1 + i));
  }
  EXPECT_EQ(file->page_count(), static_cast<uint64_t>(kPages + 4));
  std::remove(path.c_str());
}

// --- ShardedBufferPool ---------------------------------------------------
// Single-shard, deterministic behavior; the concurrent stress suites
// live in cache_pool_test.cc. PoolOptions{N, 1} forces one shard so the
// clock sweep order is predictable.

TEST(BufferPoolTest, HitsAndMisses) {
  const std::string path = TempPath("bp1.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    StatusOr<PageId> p = file->Allocate();
    ASSERT_TRUE(p.ok());
    pages.push_back(*p);
  }
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{2, 1});
  {
    StatusOr<cache::PageHandle> h = pool.Fetch(pages[0]);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.misses(), 1u);
  {
    StatusOr<cache::PageHandle> h = pool.Fetch(pages[0]);  // cached
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.hits(), 1u);
  // Fill beyond capacity: the clock evicts page 1 (page 0's repeat hit
  // set its reference bit, buying it a second chance).
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(pages[2]); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.evictions(), 1u);
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }  // miss again
  EXPECT_EQ(pool.misses(), 4u);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  const std::string path = TempPath("bp2.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  StatusOr<PageId> p1 = file->Allocate();
  StatusOr<PageId> p2 = file->Allocate();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{1, 1});
  {
    StatusOr<cache::PageHandle> h = pool.Fetch(*p1);
    ASSERT_TRUE(h.ok());
    h->data()[0] = 'Z';
    h->MarkDirty();
  }
  { auto h = pool.Fetch(*p2); ASSERT_TRUE(h.ok()); }  // evicts p1
  std::vector<char> back(512, 0);
  ASSERT_TRUE(file->Read(*p1, back.data()).ok());
  EXPECT_EQ(back[0], 'Z');
  std::remove(path.c_str());
}

TEST(BufferPoolTest, AllFramesPinnedFails) {
  const std::string path = TempPath("bp3.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  StatusOr<PageId> p1 = file->Allocate();
  StatusOr<PageId> p2 = file->Allocate();
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{1, 1});
  StatusOr<cache::PageHandle> pinned = pool.Fetch(*p1);
  ASSERT_TRUE(pinned.ok());
  StatusOr<cache::PageHandle> second = pool.Fetch(*p2);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, ClockEvictsUnreferencedPage) {
  const std::string path = TempPath("bp4.vspg");
  StatusOr<PagedFile> file = PagedFile::Create(path, 512);
  ASSERT_TRUE(file.ok());
  std::vector<PageId> pages;
  for (int i = 0; i < 3; ++i) pages.push_back(*file->Allocate());
  cache::ShardedBufferPool pool(&*file, cache::PoolOptions{2, 1});
  { auto h = pool.Fetch(pages[0]); }
  { auto h = pool.Fetch(pages[1]); }
  { auto h = pool.Fetch(pages[0]); }  // page 0's reference bit is set
  { auto h = pool.Fetch(pages[2]); }  // sweep skips page 0, evicts page 1
  pool.ResetStats();
  { auto h = pool.Fetch(pages[0]); }
  EXPECT_EQ(pool.hits(), 1u);  // page 0 survived
  { auto h = pool.Fetch(pages[1]); }
  EXPECT_EQ(pool.misses(), 1u);  // page 1 was the victim
  std::remove(path.c_str());
}

// --- VectorSetStore -------------------------------------------------------

VectorSet RandomSet(Rng& rng, int max_vectors = 7, int dim = 6) {
  VectorSet s;
  const int n = 1 + static_cast<int>(rng.NextBounded(max_vectors));
  for (int i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = rng.Uniform(-1, 1);
    s.vectors.push_back(std::move(v));
  }
  return s;
}

TEST(VectorSetStoreTest, AppendGetRoundTrip) {
  const std::string path = TempPath("store1.vspg");
  StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 512, 4);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Rng rng(7);
  std::vector<VectorSet> originals;
  for (int i = 0; i < 100; ++i) {
    originals.push_back(RandomSet(rng));
    StatusOr<int> id = store->Append(originals.back());
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ(store->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    StatusOr<VectorSet> got = store->Get(i);
    ASSERT_TRUE(got.ok()) << i;
    ASSERT_EQ(got->size(), originals[i].size());
    for (size_t v = 0; v < got->size(); ++v) {
      EXPECT_EQ(got->vectors[v], originals[i].vectors[v]);
    }
  }
  std::remove(path.c_str());
}

TEST(VectorSetStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("store2.vspg");
  Rng rng(9);
  std::vector<VectorSet> originals;
  {
    StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 512, 4);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 40; ++i) {
      originals.push_back(RandomSet(rng));
      ASSERT_TRUE(store->Append(originals.back()).ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  StatusOr<VectorSetStore> reopened = VectorSetStore::Open(path, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(reopened->size(), 40u);
  for (int i = 0; i < 40; ++i) {
    StatusOr<VectorSet> got = reopened->Get(i);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), originals[i].size());
    for (size_t v = 0; v < got->size(); ++v) {
      EXPECT_EQ(got->vectors[v], originals[i].vectors[v]);
    }
  }
  std::remove(path.c_str());
}

TEST(VectorSetStoreTest, CacheMissesChargedHitsFree) {
  const std::string path = TempPath("store3.vspg");
  // Tiny pool: 2 frames; small pages so objects spread across pages.
  StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 512, 2);
  ASSERT_TRUE(store.ok());
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(store->Append(RandomSet(rng)).ok());
  }
  // Repeatedly fetch the same object: only the first access misses.
  IoStats stats;
  ASSERT_TRUE(store->Get(5, &stats).ok());
  const size_t first = stats.page_accesses();
  EXPECT_GE(first, 1u);
  ASSERT_TRUE(store->Get(5, &stats).ok());
  EXPECT_EQ(stats.page_accesses(), first);  // hit: no page charged
  EXPECT_GT(stats.bytes_read(), 0u);
  std::remove(path.c_str());
}

TEST(VectorSetStoreTest, RejectsOversizedRecordAndBadIds) {
  const std::string path = TempPath("store4.vspg");
  StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 256, 2);
  ASSERT_TRUE(store.ok());
  VectorSet huge;
  for (int i = 0; i < 20; ++i) {
    huge.vectors.push_back(FeatureVector(6, 1.0));
  }
  EXPECT_FALSE(store->Append(huge).ok());  // 20*48+4 > 256-4
  EXPECT_FALSE(store->Get(0).ok());
  EXPECT_FALSE(store->Get(-1).ok());
  std::remove(path.c_str());
}

TEST(VectorSetStoreTest, EmptySetRoundTrips) {
  const std::string path = TempPath("store5.vspg");
  StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 512, 2);
  ASSERT_TRUE(store.ok());
  VectorSet empty;
  StatusOr<int> id = store->Append(empty);
  ASSERT_TRUE(id.ok());
  StatusOr<VectorSet> got = store->Get(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsim
