#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"
#include "vsim/index/xtree.h"

namespace vsim {
namespace {

std::vector<FeatureVector> RandomPoints(Rng& rng, int count, int dim) {
  std::vector<FeatureVector> pts(count, FeatureVector(dim));
  for (auto& p : pts) {
    for (double& v : p) v = rng.Uniform(0, 1);
  }
  return pts;
}

std::vector<int> Iota(int n) {
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(XTreeBulkTest, RejectsMisuse) {
  XTree tree(3);
  ASSERT_TRUE(tree.Insert({0, 0, 0}, 0).ok());
  EXPECT_FALSE(tree.BulkLoad({{1, 1, 1}}, {1}).ok());  // non-empty tree
  XTree tree2(3);
  EXPECT_FALSE(tree2.BulkLoad({{1, 1, 1}}, {1, 2}).ok());  // size mismatch
  EXPECT_FALSE(tree2.BulkLoad({{1, 1}}, {1}).ok());        // bad dim
}

TEST(XTreeBulkTest, EmptyLoadIsNoop) {
  XTree tree(2);
  ASSERT_TRUE(tree.BulkLoad({}, {}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.KnnQuery({0, 0}, 3).empty());
}

TEST(XTreeBulkTest, SinglePoint) {
  XTree tree(2);
  ASSERT_TRUE(tree.BulkLoad({{0.5, 0.5}}, {42}).ok());
  const auto nn = tree.KnnQuery({0, 0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 42);
}

class XTreeBulkParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(XTreeBulkParamTest, QueriesMatchInsertBuiltTree) {
  const auto [dim, count] = GetParam();
  Rng rng(900 + dim + count);
  const auto pts = RandomPoints(rng, count, dim);
  XTreeOptions opts;
  opts.page_size_bytes = 512;
  XTree bulk(dim, opts);
  ASSERT_TRUE(bulk.BulkLoad(pts, Iota(count)).ok());
  EXPECT_EQ(bulk.size(), static_cast<size_t>(count));

  XTree incremental(dim, opts);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(incremental.Insert(pts[i], i).ok());
  }

  for (int q = 0; q < 15; ++q) {
    FeatureVector query(dim);
    for (double& v : query) v = rng.Uniform(0, 1);
    const double eps = rng.Uniform(0.1, 0.4);
    std::vector<int> a = bulk.RangeQuery(query, eps);
    std::vector<int> b = incremental.RangeQuery(query, eps);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    const auto ka = bulk.KnnQuery(query, 8);
    const auto kb = incremental.KnnQuery(query, 8);
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
      EXPECT_NEAR(ka[i].distance, kb[i].distance, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndSizes, XTreeBulkParamTest,
                         ::testing::Values(std::make_tuple(2, 500),
                                           std::make_tuple(6, 1000),
                                           std::make_tuple(42, 300)));

TEST(XTreeBulkTest, PackedTreeIsMoreCompactAndCheaperToQuery) {
  Rng rng(77);
  const int count = 3000;
  const auto pts = RandomPoints(rng, count, 6);
  XTreeOptions opts;
  opts.page_size_bytes = 512;
  XTree bulk(6, opts);
  ASSERT_TRUE(bulk.BulkLoad(pts, Iota(count)).ok());
  XTree incremental(6, opts);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(incremental.Insert(pts[i], i).ok());
  }
  // Simulated storage footprint: packing at ~90% fill must not exceed
  // the incrementally grown tree's page count (which carries split
  // slack and supernodes).
  EXPECT_LE(bulk.total_pages(), incremental.total_pages());
  // Average k-NN I/O of the packed tree is no worse.
  IoStats bulk_io, inc_io;
  for (int q = 0; q < 20; ++q) {
    FeatureVector query(6);
    for (double& v : query) v = rng.Uniform(0, 1);
    bulk.KnnQuery(query, 10, &bulk_io);
    incremental.KnnQuery(query, 10, &inc_io);
  }
  EXPECT_LE(bulk_io.page_accesses(), inc_io.page_accesses() * 11 / 10);
}

TEST(XTreeBulkTest, DuplicatePointsSurvivePacking) {
  XTree tree(2);
  std::vector<FeatureVector> pts(40, FeatureVector{0.5, 0.5});
  ASSERT_TRUE(tree.BulkLoad(pts, Iota(40)).ok());
  EXPECT_EQ(tree.RangeQuery({0.5, 0.5}, 1e-12).size(), 40u);
}

}  // namespace
}  // namespace vsim
