#include <gtest/gtest.h>

#include <algorithm>

#include "vsim/core/query_engine.h"
#include "vsim/data/dataset.h"
#include "vsim/distance/centroid_filter.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/orientation.h"

namespace vsim {
namespace {

class InvariantKnnTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.cover_resolution = 12;
    opt.num_covers = 5;
    Dataset ds = MakeCarDataset(60, 29);
    // Objects stored in arbitrary poses.
    ApplyRandomOrientations(&ds, 777, true);
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
    ASSERT_TRUE(db.ok());
    db_ = new CadDatabase(std::move(db).value());
    engine_ = new QueryEngine(db_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static CadDatabase* db_;
  static QueryEngine* engine_;
};

CadDatabase* InvariantKnnTest::db_ = nullptr;
QueryEngine* InvariantKnnTest::engine_ = nullptr;

TEST_F(InvariantKnnTest, MatchesBruteForceInvariantDistance) {
  for (int query : {0, 13, 37}) {
    const auto got = engine_->InvariantKnn(QueryStrategy::kVectorSetFilter,
                                           db_->object(query), 5, true);
    std::vector<double> expect;
    for (int i = 0; i < static_cast<int>(db_->size()); ++i) {
      expect.push_back(db_->InvariantDistance(ModelType::kVectorSet, i,
                                              query, true));
    }
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(got[i].distance, expect[i], 1e-9) << "query " << query;
    }
  }
}

TEST_F(InvariantKnnTest, FindsRotatedTwinThatPlainKnnMisses) {
  // Query with a rotated copy of a stored object: the invariant query
  // puts the original at distance ~0.
  const int target = 21;
  ObjectRepr rotated;
  rotated.vector_set = TransformVectorSet(db_->object(target).vector_set,
                                          CubeRotations()[9]);
  rotated.centroid = ExtendedCentroid(rotated.vector_set, 5);
  const auto inv = engine_->InvariantKnn(QueryStrategy::kVectorSetFilter,
                                         rotated, 5, false);
  ASSERT_GE(inv.size(), 1u);
  EXPECT_NEAR(inv[0].distance, 0.0, 1e-9);
  // The original is among the zero-distance hits (other objects may tie
  // when their quantized covers coincide).
  bool found = false;
  for (const Neighbor& n : inv) {
    found |= n.id == target && n.distance < 1e-9;
  }
  EXPECT_TRUE(found);
}

TEST_F(InvariantKnnTest, StrategiesAgree) {
  const auto filter = engine_->InvariantKnn(QueryStrategy::kVectorSetFilter,
                                            db_->object(7), 5, true);
  const auto scan = engine_->InvariantKnn(QueryStrategy::kVectorSetScan,
                                          db_->object(7), 5, true);
  ASSERT_EQ(filter.size(), scan.size());
  for (size_t i = 0; i < filter.size(); ++i) {
    EXPECT_NEAR(filter[i].distance, scan[i].distance, 1e-9);
  }
}

TEST_F(InvariantKnnTest, ReflectionTogglesMatter) {
  // Mirror a stored object's covers: with reflections the twin is at
  // distance 0, without it generally is not.
  const int target = 5;
  ObjectRepr mirrored;
  mirrored.vector_set = TransformVectorSet(db_->object(target).vector_set,
                                           Mat3::Scale(-1, 1, 1));
  mirrored.centroid = ExtendedCentroid(mirrored.vector_set, 5);
  const auto with = engine_->InvariantKnn(QueryStrategy::kVectorSetFilter,
                                          mirrored, 5, true);
  ASSERT_GE(with.size(), 1u);
  EXPECT_NEAR(with[0].distance, 0.0, 1e-9);
  bool found = false;
  for (const Neighbor& n : with) {
    found |= n.id == target && n.distance < 1e-9;
  }
  EXPECT_TRUE(found);
  const auto without = engine_->InvariantKnn(QueryStrategy::kVectorSetFilter,
                                             mirrored, 1, false);
  EXPECT_GE(without[0].distance, with[0].distance);
}

TEST_F(InvariantKnnTest, InvariantRangeMatchesBruteForce) {
  const ObjectRepr& query = db_->object(11);
  const double eps = 1.2;
  auto got = engine_->InvariantRange(QueryStrategy::kVectorSetFilter, query,
                                     eps, true);
  std::vector<int> expect;
  for (int i = 0; i < static_cast<int>(db_->size()); ++i) {
    if (db_->InvariantDistance(ModelType::kVectorSet, i, 11, true) <= eps) {
      expect.push_back(i);
    }
  }
  EXPECT_EQ(got, expect);
  EXPECT_FALSE(got.empty());  // the query object itself qualifies
}

}  // namespace
}  // namespace vsim
