#include "vsim/common/binary_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>

#include "vsim/common/rng.h"

namespace vsim {
namespace {

TEST(BinaryIoTest, IntegerRoundTrips) {
  std::stringstream ss;
  PutU32(ss, 0);
  PutU32(ss, 0xdeadbeef);
  PutU64(ss, 0x0123456789abcdefull);
  PutI32(ss, -42);
  uint32_t a, b;
  uint64_t c;
  int32_t d;
  EXPECT_TRUE(GetU32(ss, &a));
  EXPECT_TRUE(GetU32(ss, &b));
  EXPECT_TRUE(GetU64(ss, &c));
  EXPECT_TRUE(GetI32(ss, &d));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_EQ(d, -42);
}

TEST(BinaryIoTest, DoubleRoundTripsExactly) {
  std::stringstream ss;
  const double values[] = {0.0, -0.0, 1.5, -3.14159,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           1e300};
  for (double v : values) PutDouble(ss, v);
  for (double expected : values) {
    double got;
    ASSERT_TRUE(GetDouble(ss, &got));
    EXPECT_EQ(std::memcmp(&got, &expected, 8), 0);  // bit-exact
  }
}

TEST(BinaryIoTest, StringAndVectorRoundTrip) {
  std::stringstream ss;
  PutString(ss, "hello\0world");
  PutString(ss, "");
  PutDoubleVector(ss, {1.0, 2.0, 3.0});
  PutDoubleVector(ss, {});
  std::string s1, s2;
  std::vector<double> v1, v2;
  EXPECT_TRUE(GetString(ss, &s1));
  EXPECT_TRUE(GetString(ss, &s2));
  EXPECT_TRUE(GetDoubleVector(ss, &v1));
  EXPECT_TRUE(GetDoubleVector(ss, &v2));
  EXPECT_EQ(s1, "hello");  // C-string literal stops at NUL
  EXPECT_TRUE(s2.empty());
  EXPECT_EQ(v1, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(v2.empty());
}

TEST(BinaryIoTest, ShortReadsFail) {
  std::stringstream ss;
  PutU32(ss, 7);
  uint64_t v;
  EXPECT_FALSE(GetU64(ss, &v));  // only 4 bytes available
  std::stringstream empty;
  uint32_t u;
  double d;
  std::string s;
  std::vector<double> vec;
  EXPECT_FALSE(GetU32(empty, &u));
  EXPECT_FALSE(GetDouble(empty, &d));
  EXPECT_FALSE(GetString(empty, &s));
  EXPECT_FALSE(GetDoubleVector(empty, &vec));
}

TEST(BinaryIoTest, LengthCapsRejectHugeClaims) {
  // A declared length beyond the cap must fail instead of allocating.
  std::stringstream ss;
  PutU32(ss, 0xffffffffu);
  std::string s;
  EXPECT_FALSE(GetString(ss, &s, 1024));
  std::stringstream ss2;
  PutU32(ss2, 0x7fffffffu);
  std::vector<double> v;
  EXPECT_FALSE(GetDoubleVector(ss2, &v, 1024));
}

TEST(BinaryIoTest, RandomizedRoundTrips) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::stringstream ss;
    const uint64_t u = rng.NextU64();
    const double d = rng.Uniform(-1e6, 1e6);
    std::vector<double> vec(rng.NextBounded(20));
    for (double& x : vec) x = rng.NextDouble();
    PutU64(ss, u);
    PutDouble(ss, d);
    PutDoubleVector(ss, vec);
    uint64_t u2;
    double d2;
    std::vector<double> vec2;
    ASSERT_TRUE(GetU64(ss, &u2));
    ASSERT_TRUE(GetDouble(ss, &d2));
    ASSERT_TRUE(GetDoubleVector(ss, &vec2));
    EXPECT_EQ(u2, u);
    EXPECT_EQ(d2, d);
    EXPECT_EQ(vec2, vec);
  }
}

}  // namespace
}  // namespace vsim
