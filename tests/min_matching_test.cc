#include "vsim/distance/min_matching.h"

#include <gtest/gtest.h>

#include <cmath>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

VectorSet RandomSet(Rng& rng, int count, int dim, double scale = 1.0) {
  VectorSet s;
  for (int i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = rng.Uniform(-scale, scale);
    s.vectors.push_back(std::move(v));
  }
  return s;
}

TEST(MinMatchingTest, IdenticalSetsHaveZeroDistance) {
  Rng rng(5);
  const VectorSet s = RandomSet(rng, 5, 6);
  EXPECT_NEAR(VectorSetDistance(s, s), 0.0, 1e-12);
}

TEST(MinMatchingTest, SymmetricInArguments) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const VectorSet a = RandomSet(rng, 1 + rng.NextBounded(6), 4);
    const VectorSet b = RandomSet(rng, 1 + rng.NextBounded(6), 4);
    EXPECT_NEAR(VectorSetDistance(a, b), VectorSetDistance(b, a), 1e-10);
  }
}

TEST(MinMatchingTest, TriangleInequalityHolds) {
  // Lemma 1: with Euclidean ground distance and norm weights the
  // minimal matching distance is a metric.
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const VectorSet a = RandomSet(rng, 1 + rng.NextBounded(5), 3);
    const VectorSet b = RandomSet(rng, 1 + rng.NextBounded(5), 3);
    const VectorSet c = RandomSet(rng, 1 + rng.NextBounded(5), 3);
    const double ab = VectorSetDistance(a, b);
    const double bc = VectorSetDistance(b, c);
    const double ac = VectorSetDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(MinMatchingTest, SingletonSetsReduceToGroundDistance) {
  VectorSet a, b;
  a.vectors.push_back({1.0, 2.0});
  b.vectors.push_back({4.0, 6.0});
  EXPECT_NEAR(VectorSetDistance(a, b), 5.0, 1e-12);
}

TEST(MinMatchingTest, UnmatchedElementsPayTheirNorm) {
  VectorSet a, b;
  a.vectors.push_back({3.0, 4.0});   // matches b's single vector
  a.vectors.push_back({6.0, 8.0});   // unmatched: pays ||x|| = 10
  b.vectors.push_back({3.0, 4.0});
  EXPECT_NEAR(VectorSetDistance(a, b), 10.0, 1e-12);
}

TEST(MinMatchingTest, EmptySetCostsSumOfWeights) {
  VectorSet a, empty;
  a.vectors.push_back({3.0, 4.0});
  a.vectors.push_back({0.0, 1.0});
  EXPECT_NEAR(VectorSetDistance(a, empty), 6.0, 1e-12);
  EXPECT_NEAR(VectorSetDistance(empty, a), 6.0, 1e-12);
  EXPECT_NEAR(VectorSetDistance(empty, empty), 0.0, 1e-12);
}

TEST(MinMatchingTest, OptimalMatchingBeatsIdentityPairing) {
  // Two swapped vectors: identity pairing is expensive, the optimal
  // matching crosses.
  VectorSet a, b;
  a.vectors.push_back({0.0, 0.0});
  a.vectors.push_back({10.0, 0.0});
  b.vectors.push_back({10.0, 0.0});
  b.vectors.push_back({0.0, 0.0});
  const MatchingDistanceResult r =
      MinimalMatchingDistanceDetailed(a, b, MinMatchingOptions{});
  EXPECT_NEAR(r.distance, 0.0, 1e-12);
  EXPECT_NEAR(r.identity_cost, 20.0, 1e-12);
  EXPECT_TRUE(r.permutation_used);
  EXPECT_EQ(r.assignment[0], 1);
  EXPECT_EQ(r.assignment[1], 0);
}

TEST(MinMatchingTest, IdentityOptimalIsNotCountedAsPermutation) {
  VectorSet a, b;
  a.vectors.push_back({0.0, 0.0});
  a.vectors.push_back({10.0, 0.0});
  b.vectors.push_back({0.1, 0.0});
  b.vectors.push_back({10.1, 0.0});
  const MatchingDistanceResult r =
      MinimalMatchingDistanceDetailed(a, b, MinMatchingOptions{});
  EXPECT_FALSE(r.permutation_used);
  EXPECT_NEAR(r.distance, 0.2, 1e-12);
}

TEST(MinMatchingTest, WeightOmegaShiftsUnmatchedCost) {
  VectorSet a, b;
  a.vectors.push_back({5.0, 0.0});
  a.vectors.push_back({7.0, 0.0});
  b.vectors.push_back({5.0, 0.0});
  MinMatchingOptions opt;
  opt.omega = {7.0, 0.0};  // unmatched (7,0) now costs 0
  EXPECT_NEAR(MinimalMatchingDistance(a, b, opt), 0.0, 1e-12);
}

TEST(MinMatchingTest, ManhattanGroundDistance) {
  VectorSet a, b;
  a.vectors.push_back({0.0, 0.0});
  b.vectors.push_back({1.0, 2.0});
  MinMatchingOptions opt;
  opt.ground = GroundDistance::kManhattan;
  EXPECT_NEAR(MinimalMatchingDistance(a, b, opt), 3.0, 1e-12);
}

TEST(MinMatchingTest, DistanceNeverExceedsSumOfAllWeights) {
  // Routing everything through omega upper-bounds the matching cost
  // only when w satisfies the triangle property -- sanity check that
  // the optimum is never absurd.
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const VectorSet a = RandomSet(rng, 1 + rng.NextBounded(6), 5);
    const VectorSet b = RandomSet(rng, 1 + rng.NextBounded(6), 5);
    double weight_sum = 0.0;
    for (const auto& v : a.vectors) weight_sum += EuclideanNorm(v);
    for (const auto& v : b.vectors) weight_sum += EuclideanNorm(v);
    EXPECT_LE(VectorSetDistance(a, b), weight_sum + 1e-9);
  }
}

TEST(MinMatchingTest, SquaredEuclideanWithSqrtObeysDefinition) {
  VectorSet a, b;
  a.vectors.push_back({0.0, 0.0});
  a.vectors.push_back({2.0, 0.0});
  b.vectors.push_back({0.0, 1.0});
  b.vectors.push_back({2.0, 1.0});
  MinMatchingOptions opt;
  opt.ground = GroundDistance::kSquaredEuclidean;
  opt.sqrt_of_total = true;
  // Optimal pairing: both pairs at squared distance 1 -> sqrt(2).
  EXPECT_NEAR(MinimalMatchingDistance(a, b, opt), std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace vsim
