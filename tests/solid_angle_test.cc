#include "vsim/features/solid_angle_model.h"

#include <gtest/gtest.h>

#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

TEST(SphereKernelTest, SizesGrowWithRadius) {
  EXPECT_EQ(SphereKernelOffsets(1).size(), 7u);   // center + 6 neighbors
  const auto k2 = SphereKernelOffsets(2);
  EXPECT_GT(k2.size(), 7u);
  for (const VoxelCoord& c : k2) {
    EXPECT_LE(c.x * c.x + c.y * c.y + c.z * c.z, 4);
  }
}

TEST(SolidAngleValueTest, FlatHalfSpaceIsOneHalf) {
  // Fill the half-space z <= 7 of a 15^3 grid; a surface voxel in the
  // middle of the plane sees ~half of its kernel inside the object.
  VoxelGrid g(15);
  for (int z = 0; z <= 7; ++z)
    for (int y = 0; y < 15; ++y)
      for (int x = 0; x < 15; ++x) g.Set(x, y, z);
  const auto kernel = SphereKernelOffsets(3);
  const double sa = SolidAngleValue(g, {7, 7, 7}, kernel);
  // The kernel layer dz = 0 lies inside the solid, so the flat-surface
  // value is ((|K| + N0) / 2) / |K| where N0 = |{dz = 0 offsets}|,
  // slightly above 1/2.
  size_t n0 = 0;
  for (const VoxelCoord& c : kernel) n0 += c.z == 0 ? 1 : 0;
  const double expected =
      (static_cast<double>(kernel.size()) + n0) / 2.0 / kernel.size();
  EXPECT_NEAR(sa, expected, 1e-12);
  EXPECT_GT(sa, 0.5);
  EXPECT_LT(sa, 0.7);
}

TEST(SolidAngleValueTest, ConvexCornerBelowConcaveNotchAbove) {
  VoxelGrid g(15);
  for (int z = 0; z <= 7; ++z)
    for (int y = 0; y < 15; ++y)
      for (int x = 0; x < 15; ++x) g.Set(x, y, z);
  const auto kernel = SphereKernelOffsets(3);
  const double flat = SolidAngleValue(g, {7, 7, 7}, kernel);
  // Convex spike on top of the plane: kernel sees mostly empty space.
  VoxelGrid spike = g;
  spike.Set(7, 7, 8);
  spike.Set(7, 7, 9);
  const double convex = SolidAngleValue(spike, {7, 7, 9}, kernel);
  EXPECT_LT(convex, flat);
  // Concave pit: remove a column from the solid; the voxel at the pit
  // bottom sees mostly solid.
  VoxelGrid pit = g;
  pit.Set(7, 7, 7, false);
  pit.Set(7, 7, 6, false);
  const double concave = SolidAngleValue(pit, {7, 7, 5}, kernel);
  EXPECT_GT(concave, flat);
}

TEST(SolidAngleModelTest, CellTypesProduceExpectedBins) {
  // 6^3 grid, p = 2: fill one octant fully and leave the rest empty.
  VoxelGrid g(6);
  for (int z = 0; z < 3; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 3; ++x) g.Set(x, y, z);
  SolidAngleModelOptions opt;
  opt.cells_per_dim = 2;
  opt.kernel_radius = 2;
  StatusOr<FeatureVector> f = ExtractSolidAngleFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 8u);
  // Cell 0 contains surface voxels: value in (0, 1).
  EXPECT_GT((*f)[0], 0.0);
  EXPECT_LT((*f)[0], 1.0);
  // All other cells are empty -> 0.
  for (size_t i = 1; i < 8; ++i) EXPECT_DOUBLE_EQ((*f)[i], 0.0);
}

TEST(SolidAngleModelTest, InteriorOnlyCellGetsOne) {
  // Fill everything: with p = 3 on a 9^3 grid the center cell contains
  // only interior voxels.
  VoxelGrid g(9);
  for (int z = 0; z < 9; ++z)
    for (int y = 0; y < 9; ++y)
      for (int x = 0; x < 9; ++x) g.Set(x, y, z);
  SolidAngleModelOptions opt;
  opt.cells_per_dim = 3;
  opt.kernel_radius = 2;
  StatusOr<FeatureVector> f = ExtractSolidAngleFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 27u);
  // Center cell index: (z=1*3 + y=1)*3 + x=1 = 13.
  EXPECT_DOUBLE_EQ((*f)[13], 1.0);
}

TEST(SolidAngleModelTest, RejectsBadParameters) {
  VoxelGrid g(10);
  SolidAngleModelOptions opt;
  opt.cells_per_dim = 3;
  EXPECT_FALSE(ExtractSolidAngleFeatures(g, opt).ok());
  opt.cells_per_dim = 2;
  opt.kernel_radius = 0;
  EXPECT_FALSE(ExtractSolidAngleFeatures(g, opt).ok());
  VoxelGrid bad(4, 5, 6);
  opt.kernel_radius = 2;
  EXPECT_FALSE(ExtractSolidAngleFeatures(bad, opt).ok());
}

TEST(SolidAngleModelTest, DistinguishesSphereFromBox) {
  // A box is flat/convex at the surface; a concave part (tube interior)
  // carries larger solid-angle values. The histograms must differ more
  // than two jittered spheres do.
  VoxelizerOptions vox;
  vox.resolution = 30;
  SolidAngleModelOptions opt;
  opt.cells_per_dim = 3;
  auto features = [&](const TriangleMesh& m) {
    StatusOr<VoxelModel> model = VoxelizeMesh(m, vox);
    EXPECT_TRUE(model.ok());
    StatusOr<FeatureVector> f = ExtractSolidAngleFeatures(model->grid, opt);
    EXPECT_TRUE(f.ok());
    return *f;
  };
  const FeatureVector sphere1 = features(MakeSphere(1.0, 32, 16));
  const FeatureVector sphere2 = features(MakeSphere(1.1, 28, 14));
  const FeatureVector tube = features(MakeTube(1.0, 0.55, 0.8, 24));
  auto dist = [](const FeatureVector& a, const FeatureVector& b) {
    double s = 0;
    for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
    return s;
  };
  EXPECT_LT(dist(sphere1, sphere2), dist(sphere1, tube));
}

}  // namespace
}  // namespace vsim
