#include "vsim/voxel/voxelizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "vsim/common/math_util.h"
#include "vsim/geometry/primitives.h"

namespace vsim {
namespace {

TEST(TriangleBoxOverlapTest, TriangleInsideBox) {
  const Triangle t{{-0.1, -0.1, 0}, {0.1, -0.1, 0}, {0, 0.1, 0}};
  EXPECT_TRUE(TriangleBoxOverlap(t, {0, 0, 0}, {1, 1, 1}));
}

TEST(TriangleBoxOverlapTest, TriangleFarAway) {
  const Triangle t{{10, 10, 10}, {11, 10, 10}, {10, 11, 10}};
  EXPECT_FALSE(TriangleBoxOverlap(t, {0, 0, 0}, {1, 1, 1}));
}

TEST(TriangleBoxOverlapTest, LargeTriangleSpanningBox) {
  const Triangle t{{-10, -10, 0}, {10, -10, 0}, {0, 20, 0}};
  EXPECT_TRUE(TriangleBoxOverlap(t, {0, 0, 0}, {0.5, 0.5, 0.5}));
}

TEST(TriangleBoxOverlapTest, PlaneMissesBoxAbove) {
  const Triangle t{{-10, -10, 2}, {10, -10, 2}, {0, 20, 2}};
  EXPECT_FALSE(TriangleBoxOverlap(t, {0, 0, 0}, {1, 1, 1}));
}

TEST(TriangleBoxOverlapTest, EdgeClipsCorner) {
  // Triangle whose plane passes near the box corner.
  const Triangle t{{0.9, 1.5, 0}, {1.5, 0.9, 0}, {1.5, 1.5, 1}};
  EXPECT_TRUE(TriangleBoxOverlap(t, {0.5, 0.5, 0.25}, {0.5, 0.5, 0.25}) ||
              !TriangleBoxOverlap(t, {0.5, 0.5, 0.25}, {0.5, 0.5, 0.25}));
  // Separating-axis result must at least be consistent with an AABB check.
  const Triangle far_t{{5, 5, 5}, {6, 5, 5}, {5, 6, 5}};
  EXPECT_FALSE(TriangleBoxOverlap(far_t, {0, 0, 0}, {1, 1, 1}));
}

TEST(VoxelizerTest, SolidBoxFillsGridFully) {
  // A box voxelized anisotropically at full fill occupies ~the whole grid.
  VoxelizerOptions opt;
  opt.resolution = 8;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeBox({2, 1, 0.5}), opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->grid.Count(), 8u * 8 * 8);
  EXPECT_EQ(model->original_extent, (Vec3{2, 1, 0.5}));
}

TEST(VoxelizerTest, SphereVolumeFraction) {
  // Sphere in a cube: pi/6 of the volume (~0.5236). The conservative
  // surface voxelization overestimates by a shell of ~1 voxel, so the
  // fraction must lie in [pi/6, pi/6 + shell] and shrink toward pi/6 as
  // the resolution grows.
  auto fraction_at = [](int r) {
    VoxelizerOptions opt;
    opt.resolution = r;
    StatusOr<VoxelModel> model = VoxelizeMesh(MakeSphere(1.0, 64, 32), opt);
    EXPECT_TRUE(model.ok());
    return static_cast<double>(model->grid.Count()) /
           static_cast<double>(model->grid.size());
  };
  const double f24 = fraction_at(24);
  const double f48 = fraction_at(48);
  EXPECT_GE(f24, kPi / 6.0 - 0.01);
  EXPECT_LE(f24, kPi / 6.0 + 0.12);
  EXPECT_LT(std::fabs(f48 - kPi / 6.0), std::fabs(f24 - kPi / 6.0));
}

TEST(VoxelizerTest, TorusHasHole) {
  VoxelizerOptions opt;
  opt.resolution = 16;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeTorus(1.0, 0.35, 32, 16), opt);
  ASSERT_TRUE(model.ok());
  // Center voxel must be empty (the donut hole).
  EXPECT_FALSE(model->grid.At(8, 8, 8));
  EXPECT_GT(model->grid.Count(), 0u);
}

TEST(VoxelizerTest, ShellOnlyWhenSolidDisabled) {
  VoxelizerOptions solid, shell;
  solid.resolution = shell.resolution = 16;
  shell.solid = false;
  StatusOr<VoxelModel> s = VoxelizeMesh(MakeSphere(1.0, 32, 16), solid);
  StatusOr<VoxelModel> h = VoxelizeMesh(MakeSphere(1.0, 32, 16), shell);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(h.ok());
  EXPECT_LT(h->grid.Count(), s->grid.Count());
  // The shell is a subset of the solid.
  VoxelGrid inter = h->grid;
  inter.IntersectWith(s->grid);
  EXPECT_EQ(inter.Count(), h->grid.Count());
}

TEST(VoxelizerTest, InteriorFillMatchesAnalyticOnThickWalledCube) {
  // The solid interior of a box must be present, not only its shell.
  VoxelizerOptions opt;
  opt.resolution = 10;
  opt.solid = false;
  StatusOr<VoxelModel> shell = VoxelizeMesh(MakeBox({1, 1, 1}), opt);
  ASSERT_TRUE(shell.ok());
  // Shell leaves the strict interior empty.
  EXPECT_FALSE(shell->grid.At(5, 5, 5));
}

TEST(VoxelizerTest, UniformFitPreservesAspectRatio) {
  VoxelizerOptions opt;
  opt.resolution = 16;
  opt.anisotropic_fit = false;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeBox({2.0, 1.0, 0.5}), opt);
  ASSERT_TRUE(model.ok());
  VoxelCoord lo, hi;
  ASSERT_TRUE(model->grid.TightBounds(&lo, &hi));
  const int ex = hi.x - lo.x + 1;
  const int ey = hi.y - lo.y + 1;
  const int ez = hi.z - lo.z + 1;
  EXPECT_GT(ex, ey);
  EXPECT_GT(ey, ez);
  EXPECT_NEAR(static_cast<double>(ex) / ey, 2.0, 0.35);
}

TEST(VoxelizerTest, UnionOfPartsAvoidsParityCancellation) {
  // Two overlapping boxes: a merged mesh would XOR the overlap away with
  // parity filling; VoxelizeParts must union them instead.
  TriangleMesh a = MakeBox({1.2, 1.2, 1.2});
  TriangleMesh b = MakeBox({1.2, 1.2, 1.2});
  b.ApplyTransform(Transform::Translate({0.5, 0, 0}));
  VoxelizerOptions opt;
  opt.resolution = 12;
  StatusOr<VoxelModel> model = VoxelizeParts({a, b}, opt);
  ASSERT_TRUE(model.ok());
  // The overlap region center must be set.
  EXPECT_TRUE(model->grid.At(6, 6, 6));
  // Essentially the whole fitted grid is solid.
  const double fraction = static_cast<double>(model->grid.Count()) /
                          static_cast<double>(model->grid.size());
  EXPECT_GT(fraction, 0.9);
}

TEST(VoxelizerTest, SurfaceIsSubsetOfObjectAndNonEmpty) {
  VoxelizerOptions opt;
  opt.resolution = 15;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeCylinder(1.0, 2.0, 24), opt);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->grid.SurfaceVoxels().empty());
  EXPECT_LE(model->grid.SurfaceVoxels().size(), model->grid.Count());
}

TEST(VoxelizerTest, RejectsBadOptions) {
  VoxelizerOptions opt;
  opt.resolution = 1;
  EXPECT_FALSE(VoxelizeMesh(MakeBox({1, 1, 1}), opt).ok());
  opt.resolution = 8;
  opt.fill_fraction = 0.0;
  EXPECT_FALSE(VoxelizeMesh(MakeBox({1, 1, 1}), opt).ok());
  opt.fill_fraction = 1.5;
  EXPECT_FALSE(VoxelizeMesh(MakeBox({1, 1, 1}), opt).ok());
}

TEST(VoxelizerTest, RejectsEmptyInput) {
  VoxelizerOptions opt;
  EXPECT_FALSE(VoxelizeParts({}, opt).ok());
  TriangleMesh empty;
  EXPECT_FALSE(VoxelizeMesh(empty, opt).ok());
}

TEST(VoxelizerTest, FlatObjectGetsDegenerateAxisGuard) {
  // A plate with tiny thickness must still voxelize without dividing by
  // zero and fill the full grid in its flat dimension when anisotropic.
  VoxelizerOptions opt;
  opt.resolution = 8;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeBox({2, 2, 0.001}), opt);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->grid.Count(), 0u);
}

TEST(VoxelizerTest, TranslationInvarianceOfNormalizedGrid) {
  // The voxel grid must be identical wherever the object sits in space
  // (Section 3.2: translation invariance).
  TriangleMesh a = MakeTorus(1.0, 0.4, 24, 12);
  TriangleMesh b = a;
  b.ApplyTransform(Transform::Translate({123.0, -45.0, 6.0}));
  VoxelizerOptions opt;
  opt.resolution = 15;
  StatusOr<VoxelModel> ma = VoxelizeMesh(a, opt);
  StatusOr<VoxelModel> mb = VoxelizeMesh(b, opt);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(ma->grid, mb->grid);
}

TEST(VoxelizerTest, ScaleInvarianceOfNormalizedGrid) {
  // Uniform scaling must not change the anisotropically fitted grid.
  TriangleMesh a = MakeCylinder(1.0, 2.0, 24);
  TriangleMesh b = a;
  b.ApplyTransform(Transform::Linear(Mat3::Scale(3.0, 3.0, 3.0)));
  VoxelizerOptions opt;
  opt.resolution = 12;
  StatusOr<VoxelModel> ma = VoxelizeMesh(a, opt);
  StatusOr<VoxelModel> mb = VoxelizeMesh(b, opt);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(ma->grid, mb->grid);
  EXPECT_NEAR(mb->original_extent.x, 3.0 * ma->original_extent.x, 1e-9);
}

}  // namespace
}  // namespace vsim
