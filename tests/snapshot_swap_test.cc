// Snapshot-swap online reindex: DbSnapshot publication, generation
// tagging, Rebuilder, and the serving-consistency contract under
// concurrent load (every response carries results from exactly one
// snapshot that was live between its admission and completion).
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "vsim/data/dataset.h"
#include "vsim/service/query_service.h"
#include "vsim/service/rebuilder.h"

namespace vsim {
namespace {

// Four databases over the same parts, extracted with different cover
// counts: distances (and therefore k-NN payloads) differ per variant,
// so a response that mixed generations anywhere in the pipeline --
// engine, validation, result cache -- produces detectably wrong
// neighbors, not just a wrong tag.
class SnapshotSwapTest : public ::testing::Test {
 protected:
  static constexpr int kVariants = 4;
  static constexpr int kK = 4;

  static void SetUpTestSuite() {
    const Dataset ds = MakeCarDataset(24, 7);
    databases_ = new std::vector<CadDatabase>();
    expected_ = new std::vector<std::vector<std::vector<Neighbor>>>();
    for (int v = 0; v < kVariants; ++v) {
      ExtractionOptions opt;
      opt.extract_histograms = false;
      opt.cover_resolution = 10;
      opt.num_covers = 4 + v;
      StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt, 0);
      ASSERT_TRUE(db.ok());
      databases_->push_back(std::move(db).value());
      // Serial ground truth per variant, via a throwaway engine.
      const CadDatabase& built = databases_->back();
      const QueryEngine engine(&built);
      std::vector<std::vector<Neighbor>> per_object(built.size());
      for (size_t id = 0; id < built.size(); ++id) {
        per_object[id] = engine.Knn(QueryStrategy::kVectorSetFilter,
                                    static_cast<int>(id), kK);
      }
      expected_->push_back(std::move(per_object));
    }
  }

  static void TearDownTestSuite() {
    delete expected_;
    expected_ = nullptr;
    delete databases_;
    databases_ = nullptr;
  }

  // A self-contained snapshot of variant `v` tagged with `generation`.
  static std::shared_ptr<const DbSnapshot> Snapshot(int v,
                                                    uint64_t generation) {
    return DbSnapshot::Create(CadDatabase((*databases_)[v]), generation);
  }

  static std::vector<CadDatabase>* databases_;
  // expected_[variant][object_id] = serial kK-NN ground truth.
  static std::vector<std::vector<std::vector<Neighbor>>>* expected_;
};

std::vector<CadDatabase>* SnapshotSwapTest::databases_ = nullptr;
std::vector<std::vector<std::vector<Neighbor>>>* SnapshotSwapTest::expected_ =
    nullptr;

TEST_F(SnapshotSwapTest, SwapRequiresNewerGeneration) {
  QueryService service(Snapshot(0, 5));
  EXPECT_EQ(service.generation(), 5u);
  EXPECT_EQ(service.SwapSnapshot(nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SwapSnapshot(Snapshot(1, 5)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.SwapSnapshot(Snapshot(1, 4)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.SwapSnapshot(Snapshot(1, 6)).ok());
  EXPECT_EQ(service.generation(), 6u);
  EXPECT_EQ(service.Stats().snapshot_swaps, 1u);
}

TEST_F(SnapshotSwapTest, ResponsesCarryTheServingGeneration) {
  QueryService service(Snapshot(0, 0));
  ServiceRequest request;
  request.object_id = 1;
  request.options.k = kK;
  StatusOr<ServiceResponse> before = service.Execute(request);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->generation, 0u);
  EXPECT_EQ(before->neighbors, (*expected_)[0][1]);

  ASSERT_TRUE(service.SwapSnapshot(Snapshot(1, 1)).ok());
  StatusOr<ServiceResponse> after = service.Execute(request);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 1u);
  EXPECT_EQ(after->neighbors, (*expected_)[1][1]);
}

// Regression for the pre-generation-tagging bug: with the cache on,
// rebuilding the database behind the service silently replayed
// stale gen-0 payloads to post-swap requests. The generation in the
// cache key makes the old entry unreachable without any flush.
TEST_F(SnapshotSwapTest, SwapInvalidatesCachedResultsWithoutFlush) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 4 << 20;
  QueryService service(Snapshot(0, 0), options);

  ServiceRequest request;
  request.object_id = 2;
  request.options.k = kK;
  ASSERT_TRUE(service.Execute(request).ok());          // populate gen 0
  StatusOr<ServiceResponse> warm = service.Execute(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->neighbors, (*expected_)[0][2]);

  ASSERT_TRUE(service.SwapSnapshot(Snapshot(1, 1)).ok());
  StatusOr<ServiceResponse> fresh = service.Execute(request);
  ASSERT_TRUE(fresh.ok());
  // Must be recomputed against the new snapshot, not a stale replay.
  EXPECT_FALSE(fresh->cache_hit);
  EXPECT_EQ(fresh->generation, 1u);
  EXPECT_EQ(fresh->neighbors, (*expected_)[1][2]);
  ASSERT_NE((*expected_)[0][2], (*expected_)[1][2])
      << "variants too similar for the regression to bite";

  // The new generation memoizes independently.
  StatusOr<ServiceResponse> warm2 = service.Execute(request);
  ASSERT_TRUE(warm2.ok());
  EXPECT_TRUE(warm2->cache_hit);
  EXPECT_EQ(warm2->neighbors, (*expected_)[1][2]);
}

// Acceptance stress: 8 clients hammer the service while the main thread
// publishes >= 3 swaps mid-workload. Zero tolerance for (a) a response
// generation outside its [admission, completion] window and (b) a
// payload that is not that generation's serial ground truth.
TEST_F(SnapshotSwapTest, EightClientStressSurvivesSwapsUnderLoad) {
  constexpr int kClients = 8;
  constexpr int kSwaps = 4;
  QueryServiceOptions options;
  options.num_threads = 4;
  options.cache_bytes = 4 << 20;
  QueryService service(Snapshot(0, 0), options);

  const size_t n = (*databases_)[0].size();
  std::atomic<bool> stop{false};
  std::atomic<int> issued{0};
  std::atomic<int> wrong_window{0};
  std::atomic<int> wrong_payload{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      int q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int id = static_cast<int>((c * 31 + q * 7) % n);
        ++q;
        issued.fetch_add(1, std::memory_order_seq_cst);
        ServiceRequest request;
        request.object_id = id;
        request.options.k = kK;
        const uint64_t admission_gen = service.generation();
        StatusOr<ServiceResponse> response = service.Execute(request);
        const uint64_t completion_gen = service.generation();
        if (!response.ok()) {
          failures.fetch_add(1, std::memory_order_seq_cst);
          continue;
        }
        if (response->generation < admission_gen ||
            response->generation > completion_gen) {
          wrong_window.fetch_add(1, std::memory_order_seq_cst);
        }
        const int variant = static_cast<int>(response->generation) % kVariants;
        if (response->neighbors != (*expected_)[variant][id]) {
          wrong_payload.fetch_add(1, std::memory_order_seq_cst);
        }
      }
    });
  }

  // Publish kSwaps generations, each while traffic is demonstrably in
  // flight (wait for fresh admissions between swaps).
  for (int g = 1; g <= kSwaps; ++g) {
    const int before = issued.load(std::memory_order_seq_cst);
    while (issued.load(std::memory_order_seq_cst) < before + 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(service.SwapSnapshot(
                    Snapshot(g % kVariants, static_cast<uint64_t>(g)))
                    .ok());
  }
  const int after_last_swap = issued.load(std::memory_order_seq_cst);
  while (issued.load(std::memory_order_seq_cst) < after_last_swap + 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(wrong_window.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(wrong_payload.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(failures.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(service.Stats().snapshot_swaps, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(service.generation(), static_cast<uint64_t>(kSwaps));
}

TEST_F(SnapshotSwapTest, RebuilderPublishesMonotonicGenerations) {
  QueryService service(Snapshot(0, 0));
  int builds = 0;
  Rebuilder rebuilder(&service, [&]() -> StatusOr<CadDatabase> {
    ++builds;  // rebuilder thread only; no lock needed
    return CadDatabase((*databases_)[builds % kVariants]);
  });
  ASSERT_TRUE(rebuilder.Trigger().get().ok());
  EXPECT_EQ(service.generation(), 1u);
  ASSERT_TRUE(rebuilder.Trigger().get().ok());
  EXPECT_EQ(service.generation(), 2u);
  const Rebuilder::Stats stats = rebuilder.stats();
  EXPECT_EQ(stats.triggered, 2u);
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.last_build_seconds, 0.0);
}

TEST_F(SnapshotSwapTest, RebuilderFactoryErrorLeavesServiceUntouched) {
  QueryService service(Snapshot(0, 0));
  Rebuilder rebuilder(&service, []() -> StatusOr<CadDatabase> {
    return Status::Internal("synthetic build failure");
  });
  const Status status = rebuilder.Trigger().get();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(service.Stats().snapshot_swaps, 0u);
  EXPECT_EQ(rebuilder.stats().failed, 1u);

  // The service still serves correct gen-0 results afterwards.
  ServiceRequest request;
  request.object_id = 0;
  request.options.k = kK;
  StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors, (*expected_)[0][0]);
}

TEST_F(SnapshotSwapTest, RebuilderDrainWaitsForAllTriggers) {
  QueryService service(Snapshot(0, 0));
  Rebuilder rebuilder(&service, [&]() -> StatusOr<CadDatabase> {
    return CadDatabase((*databases_)[1]);
  });
  for (int i = 0; i < 3; ++i) rebuilder.Trigger();
  rebuilder.Drain();
  const Rebuilder::Stats stats = rebuilder.stats();
  EXPECT_EQ(stats.published, 3u);
  EXPECT_EQ(service.generation(), 3u);
}

TEST_F(SnapshotSwapTest, DestroyedRebuilderResolvesPendingTriggers) {
  QueryService service(Snapshot(0, 0));
  std::vector<std::future<Status>> futures;
  std::atomic<bool> first_build_started{false};
  {
    Rebuilder rebuilder(&service, [&]() -> StatusOr<CadDatabase> {
      first_build_started.store(true, std::memory_order_seq_cst);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return CadDatabase((*databases_)[1]);
    });
    for (int i = 0; i < 4; ++i) futures.push_back(rebuilder.Trigger());
    while (!first_build_started.load(std::memory_order_seq_cst)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Destruction stops after the in-progress rebuild; every future must
  // still resolve -- either published or kUnavailable, never a hang.
  int published = 0, unavailable = 0;
  for (std::future<Status>& f : futures) {
    const Status status = f.get();
    status.ok() ? ++published : ++unavailable;
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    }
  }
  EXPECT_EQ(published + unavailable, 4);
  EXPECT_GE(published, 1);  // the first rebuild was already running
}

// The owning snapshot keeps database + engine alive for exactly as long
// as any reference exists: the service's swap drops one reference, the
// in-flight request holds the other.
TEST_F(SnapshotSwapTest, DisplacedSnapshotOutlivesInFlightRequests) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;
  QueryService service(Snapshot(0, 0), options);
  service.Pause();
  ServiceRequest request;
  request.object_id = 3;
  request.options.k = kK;
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok());
  // Swap while the request is queued: it must execute on one coherent
  // snapshot (the new one -- acquisition happens at execution).
  ASSERT_TRUE(service.SwapSnapshot(Snapshot(1, 1)).ok());
  service.Resume();
  StatusOr<ServiceResponse> response = submitted.value().get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->generation, 1u);
  EXPECT_EQ(response->neighbors, (*expected_)[1][3]);
}

}  // namespace
}  // namespace vsim
