// Hostile-client suite for the serving transports (docs/PROTOCOL.md
// §11): adversarial *connection behavior*, complementing the malformed
// *byte* corpus in tests/net_server_test.cc. A slow-loris peer
// dribbling one byte at a time must not starve well-behaved clients; a
// peer that vanishes mid-frame must cost nothing but its own
// connection; a pipelined burst past the service's admission queue must
// come back as in-order kUnavailable completions, not a wedged or
// killed connection; a tiny pipeline window must throttle the reader
// (backpressure) without reordering or dropping responses; and a header
// announcing an absurd payload length must be refused before any
// allocation.
//
// Every test runs against both transports -- the documented contract
// does not depend on the concurrency model -- and the suite is part of
// the TSan sweep (tools/check_tsan.sh): the reactor's worker-callback /
// event-loop handoff is exactly the kind of code TSan exists for.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "vsim/data/dataset.h"
#include "vsim/net/client.h"
#include "vsim/net/protocol.h"
#include "vsim/net/server.h"
#include "vsim/net/socket_util.h"
#include "vsim/service/db_snapshot.h"

namespace vsim::net {
namespace {

class NetHostileTest : public ::testing::TestWithParam<Transport> {
 protected:
  static void SetUpTestSuite() {
    const Dataset ds = MakeCarDataset(30, 99);
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.cover_resolution = 10;
    opt.num_covers = 5;
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt, 0);
    ASSERT_TRUE(db.ok());
    db_ = new CadDatabase(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static std::unique_ptr<QueryService> MakeService(
      QueryServiceOptions options = {}) {
    return std::make_unique<QueryService>(
        DbSnapshot::Create(CadDatabase(*db_), 0), options);
  }

  ServerOptions Opts(ServerOptions options = {}) const {
    options.transport = GetParam();
    return options;
  }

  static CadDatabase* db_;
};

CadDatabase* NetHostileTest::db_ = nullptr;

struct Loopback {
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  explicit Loopback(std::unique_ptr<QueryService> svc,
                    ServerOptions options = {}) {
    service = std::move(svc);
    server = std::make_unique<Server>(service.get(), options);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  Client Connect() {
    StatusOr<Client> client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  StatusOr<ScopedFd> ConnectRaw() {
    return ConnectTcp("127.0.0.1", server->port());
  }
};

std::string EncodedRequest(uint64_t request_id, int object_id, int k = 3) {
  ServiceRequest req;
  req.object_id = object_id;
  req.options.k = k;
  std::string frame;
  AppendRequestFrame(request_id, req, &frame);
  return frame;
}

// A slow-loris peer trickles a valid request one byte at a time. The
// server must keep answering well-behaved clients at full speed the
// whole time (the dribbler may pin at most its own connection), and
// when the frame finally completes it is served normally.
TEST_P(NetHostileTest, SlowLorisDribbleDoesNotStarveOtherClients) {
  Loopback loop(MakeService(), Opts());
  StatusOr<ScopedFd> loris = loop.ConnectRaw();
  ASSERT_TRUE(loris.ok());

  const std::string frame = EncodedRequest(/*request_id=*/42, /*object_id=*/2);
  Client client = loop.Connect();
  ServiceRequest probe;
  probe.object_id = 1;
  probe.options.k = 3;

  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(WriteAll(loris->get(), frame.data() + i, 1).ok());
    // Interleave: a healthy client is served while the dribble crawls.
    if (i % 4 == 0) {
      StatusOr<ServiceResponse> served = client.Execute(probe);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The completed dribble is just a request; it gets its response.
  FrameHeader header;
  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(loris->get(), &header, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  EXPECT_EQ(header.type, FrameType::kResponse);
  EXPECT_EQ(header.request_id, 42u);
}

// With read_timeout_seconds set, a peer that stalls mid-frame is
// reaped: the server closes the connection instead of letting a
// dribbler pin it forever (threads: SO_RCVTIMEO on the reader; epoll:
// the idle sweep).
TEST_P(NetHostileTest, ReadTimeoutReapsMidFrameStall) {
  ServerOptions options;
  options.read_timeout_seconds = 0.2;
  Loopback loop(MakeService(), Opts(options));

  StatusOr<ScopedFd> staller = loop.ConnectRaw();
  ASSERT_TRUE(staller.ok());
  const std::string frame = EncodedRequest(1, 0);
  // Half a header, then silence.
  ASSERT_TRUE(WriteAll(staller->get(), frame.data(), 10).ok());

  // The server must close us well before this deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool closed = false;
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    char byte = 0;
    const ssize_t n = ::recv(staller->get(), &byte, 1, MSG_DONTWAIT);
    if (n == 0) {
      closed = true;  // orderly close from the server
    } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      closed = true;  // reset also counts as reaped
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(closed);

  // A live, well-behaved connection is not reaped while it keeps
  // talking, and the server still answers.
  Client client = loop.Connect();
  ServiceRequest req;
  req.object_id = 2;
  req.options.k = 3;
  StatusOr<ServiceResponse> response = client.Execute(req);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
}

// Peers that disconnect mid-frame (header cut, payload cut, or right
// after the header) are expected churn: no protocol error storm, no
// leaked connection slots, and the server keeps serving.
TEST_P(NetHostileTest, MidFrameDisconnectLeavesNothingBehind) {
  Loopback loop(MakeService(), Opts());
  const std::string frame = EncodedRequest(7, 3);

  constexpr int kRounds = 16;
  for (int i = 0; i < kRounds; ++i) {
    StatusOr<ScopedFd> fd = loop.ConnectRaw();
    ASSERT_TRUE(fd.ok());
    // Cut points sweep the header (incl. zero bytes) and the payload.
    const size_t cut = (i * frame.size()) / kRounds;
    if (cut > 0) {
      ASSERT_TRUE(WriteAll(fd->get(), frame.data(), cut).ok());
    }
    fd->Reset();  // abrupt close, possibly mid-frame
  }

  // Every aborted connection is eventually reaped from the gauge.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (loop.server->stats().open_connections > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(loop.server->stats().open_connections, 0u);

  Client client = loop.Connect();
  ServiceRequest req;
  req.object_id = 3;
  req.options.k = 3;
  StatusOr<ServiceResponse> remote = client.Execute(req);
  StatusOr<ServiceResponse> local = loop.service->Execute(req);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(remote->neighbors, local->neighbors);
}

// A pipelined burst far past the service's admission queue: the
// overflow comes back as per-request kUnavailable completions, in
// request order, on a connection that stays healthy. This is the
// wire-level face of the service's bounded-queue contract -- load
// shedding, not connection death (docs/PROTOCOL.md §11.3).
TEST_P(NetHostileTest, PipelinedBurstPastAdmissionQueueShedsLoad) {
  QueryServiceOptions sopts;
  sopts.num_threads = 1;
  sopts.max_queue = 2;
  sopts.cache_bytes = 0;
  // Slow each executed query to multi-millisecond wall time so the
  // burst decisively outruns the single worker.
  sopts.simulate_io_wait = true;
  sopts.io_params.seconds_per_page_access = 2e-4;
  Loopback loop(MakeService(sopts), Opts());
  Client client = loop.Connect();

  constexpr int kBurst = 64;
  std::vector<uint64_t> sent_ids;
  for (int i = 0; i < kBurst; ++i) {
    ServiceRequest req;
    req.object_id = i % static_cast<int>(db_->size());
    req.options.k = 3;
    uint64_t id = 0;
    ASSERT_TRUE(client.Send(req, &id).ok());
    sent_ids.push_back(id);
  }

  int ok_count = 0;
  int shed_count = 0;
  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    StatusOr<ServiceResponse> response = client.Receive(&id);
    EXPECT_EQ(id, sent_ids[static_cast<size_t>(i)]);  // strict order
    if (response.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(response.status().code(), StatusCode::kUnavailable)
          << response.status().ToString();
      ++shed_count;
    }
  }
  EXPECT_GT(ok_count, 0);    // the queue's worth of work was done
  EXPECT_GT(shed_count, 0);  // and the overflow was shed

  // Shedding is per-request: the connection serves the next query.
  ServiceRequest req;
  req.object_id = 0;
  req.options.k = 3;
  StatusOr<ServiceResponse> after = client.Execute(req);
  EXPECT_TRUE(after.ok()) << after.status().ToString();

  if (GetParam() == Transport::kEpoll) {
    // The rejected tail completes instantly behind an executing head,
    // so the reactor's flush merges responses into coalesced writes.
    EXPECT_GT(loop.server->stats().coalesced_writes, 0u);
  }
}

// A tiny pipeline window under a deep burst: the server throttles its
// *reading* (backpressure) instead of buffering without bound or
// dropping requests -- every response still arrives, in order. Under
// the reactor the pause is observable as read-stall time.
TEST_P(NetHostileTest, TinyPipelineWindowBackpressuresWithoutLoss) {
  QueryServiceOptions sopts;
  sopts.num_threads = 2;
  sopts.cache_bytes = 0;
  sopts.simulate_io_wait = true;
  sopts.io_params.seconds_per_page_access = 5e-5;
  ServerOptions options;
  options.max_pipeline = 4;
  Loopback loop(MakeService(sopts), Opts(options));
  Client client = loop.Connect();

  constexpr int kBurst = 32;
  std::vector<uint64_t> sent_ids;
  for (int i = 0; i < kBurst; ++i) {
    ServiceRequest req;
    req.object_id = i % static_cast<int>(db_->size());
    req.options.k = 3;
    uint64_t id = 0;
    ASSERT_TRUE(client.Send(req, &id).ok());
    sent_ids.push_back(id);
  }
  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    StatusOr<ServiceResponse> response = client.Receive(&id);
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status().ToString();
    EXPECT_EQ(id, sent_ids[static_cast<size_t>(i)]);
  }

  if (GetParam() == Transport::kEpoll) {
    // 32 requests through a window of 4 must have paused the reader.
    EXPECT_GT(loop.server->stats().read_stall_seconds, 0.0);
  }
}

// A header announcing an absurd payload length is refused up front
// (bounds check before any allocation): connection-level status frame
// (request id 0), then close -- on both transports.
TEST_P(NetHostileTest, OversizedPayloadLengthIsRefusedBeforeAllocation) {
  Loopback loop(MakeService(), Opts());
  StatusOr<ScopedFd> fd = loop.ConnectRaw();
  ASSERT_TRUE(fd.ok());

  // Hand-build a header whose length field far exceeds
  // kMaxFramePayloadBytes (layout: docs/PROTOCOL.md §3).
  uint8_t header[kFrameHeaderBytes] = {};
  const uint32_t magic = kWireMagic;
  const uint16_t version = kWireVersion;
  const uint64_t request_id = 5;
  const uint32_t payload_bytes = 0xF0000000u;  // ~3.75 GiB
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &version, 2);
  header[6] = static_cast<uint8_t>(FrameType::kRequest);
  header[7] = kFlagFinal;
  std::memcpy(header + 8, &request_id, 8);
  std::memcpy(header + 16, &payload_bytes, 4);
  ASSERT_TRUE(WriteAll(fd->get(), header, sizeof(header)).ok());

  FrameHeader reply;
  std::string payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  EXPECT_EQ(reply.type, FrameType::kStatus);
  EXPECT_EQ(reply.request_id, 0u);  // connection-level error
  // ... then the server closes.
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);

  EXPECT_GE(loop.server->stats().protocol_errors, 1u);
  Client client = loop.Connect();
  ServiceRequest req;
  req.object_id = 1;
  req.options.k = 3;
  EXPECT_TRUE(client.Execute(req).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Transports, NetHostileTest,
    ::testing::Values(Transport::kThreads, Transport::kEpoll),
    [](const ::testing::TestParamInfo<Transport>& info) {
      return std::string(TransportName(info.param));
    });

}  // namespace
}  // namespace vsim::net
