// Observability-layer tests: metrics registry exposition, histogram
// bucket boundaries / overflow / the p=0 percentile contract, the
// flight recorder's rings (newest-first, wraparound, slow-query
// retention) under single- and multi-threaded recording, and the
// IoStats counters under concurrent mutation (the latter two run under
// TSan via tools/check_tsan.sh -- the record paths must be data-race
// free by construction, not by luck).
#include "vsim/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "vsim/index/io_stats.h"
#include "vsim/obs/flight_recorder.h"
#include "vsim/obs/query_trace.h"

namespace vsim::obs {
namespace {

// --- counters and gauges ---------------------------------------------

TEST(ObsCounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsGaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.Value(), 3.5);
  g.Set(-7.0);
  EXPECT_EQ(g.Value(), -7.0);
}

// --- histogram -------------------------------------------------------

TEST(ObsHistogramTest, BucketBoundaries) {
  // Buckets cover [2^(b-1), 2^b) us for b >= 1; bucket 0 absorbs
  // sub-microsecond samples. Exercise the exact boundary values.
  Histogram h;
  h.Record(0.5e-6);  // < 1 us -> bucket 0
  EXPECT_EQ(h.BucketCount(0), 1u);
  h.Record(1.0e-6);  // [1, 2) us -> bucket 1
  EXPECT_EQ(h.BucketCount(1), 1u);
  h.Record(1.99e-6);  // still bucket 1
  EXPECT_EQ(h.BucketCount(1), 2u);
  h.Record(2.0e-6);  // [2, 4) us -> bucket 2
  h.Record(3.0e-6);
  EXPECT_EQ(h.BucketCount(2), 2u);
  h.Record(4.0e-6);  // [4, 8) us -> bucket 3
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 6u);
  // Bucket upper bound b is 2^b us.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundSeconds(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundSeconds(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBoundSeconds(10), 1024e-6);
}

TEST(ObsHistogramTest, OverflowLandsInLastBucket) {
  Histogram h;
  h.Record(1e6);  // ~11.5 days, far past the last bucket boundary
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(
      h.PercentileSeconds(1.0),
      Histogram::BucketUpperBoundSeconds(Histogram::kBuckets - 1));
}

TEST(ObsHistogramTest, PercentileZeroIsZero) {
  // Regression: p = 0 used to report the first non-empty bucket's upper
  // bound. The 0th percentile bounds no sample from above; it must be 0.
  Histogram h;
  h.Record(0.010);
  h.Record(0.020);
  EXPECT_EQ(h.PercentileSeconds(0.0), 0.0);
  EXPECT_GT(h.PercentileSeconds(0.5), 0.0);
}

TEST(ObsHistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1e-5);
  double prev = 0.0;
  for (const double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.PercentileSeconds(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  // p50 of a uniform 10us..1ms sweep sits near the middle, and the
  // bucket upper bound may overstate by at most 2x.
  EXPECT_GE(h.PercentileSeconds(0.5), 50e-5 * 0.5);
  EXPECT_LE(h.PercentileSeconds(0.5), 50e-5 * 2.0);
}

TEST(ObsHistogramTest, SumAndMeanTrackRecordedTime) {
  Histogram h;
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  h.Record(0.001);
  h.Record(0.003);
  EXPECT_NEAR(h.SumSeconds(), 0.004, 1e-6);
  EXPECT_NEAR(h.MeanSeconds(), 0.002, 1e-6);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.SumSeconds(), 0.0);
}

// --- registry exposition ---------------------------------------------

TEST(ObsRegistryTest, CounterExpositionWithHelpTypeAndLabels) {
  MetricsRegistry registry;
  Counter* plain = registry.RegisterCounter("test_requests_total",
                                            "Requests handled.");
  Counter* filter = registry.RegisterCounter(
      "test_queries_total", "Per-strategy queries.", "strategy=\"filter\"");
  Counter* scan = registry.RegisterCounter(
      "test_queries_total", "Per-strategy queries.", "strategy=\"scan\"");
  plain->Increment(3);
  filter->Increment(5);
  scan->Increment(7);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# HELP test_requests_total Requests handled.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_queries_total{strategy=\"filter\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_queries_total{strategy=\"scan\"} 7\n"),
            std::string::npos);
  // One HELP/TYPE block per family, not per labeled instrument.
  size_t help_count = 0;
  for (size_t pos = text.find("# HELP test_queries_total");
       pos != std::string::npos;
       pos = text.find("# HELP test_queries_total", pos + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
}

TEST(ObsRegistryTest, DuplicateRegistrationReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("dup_total", "x");
  Counter* b = registry.RegisterCounter("dup_total", "x");
  EXPECT_EQ(a, b);
  Counter* other = registry.RegisterCounter("dup_total", "x", "l=\"1\"");
  EXPECT_NE(a, other);
  Gauge* g1 = registry.RegisterGauge("dup_gauge", "x");
  Gauge* g2 = registry.RegisterGauge("dup_gauge", "x");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.RegisterHistogram("dup_seconds", "x");
  Histogram* h2 = registry.RegisterHistogram("dup_seconds", "x");
  EXPECT_EQ(h1, h2);
}

TEST(ObsRegistryTest, GaugeExposition) {
  MetricsRegistry registry;
  Gauge* g = registry.RegisterGauge("test_generation", "Snapshot gen.");
  g->Set(4);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE test_generation gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_generation 4\n"), std::string::npos);
}

TEST(ObsRegistryTest, HistogramExpositionIsCumulative) {
  MetricsRegistry registry;
  Histogram* h =
      registry.RegisterHistogram("test_latency_seconds", "Latency.");
  h->Record(1.5e-6);  // bucket 1 (le 2e-06)
  h->Record(1.5e-6);
  h->Record(3.0e-6);  // bucket 2 (le 4e-06)
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE test_latency_seconds histogram\n"),
            std::string::npos);
  // Cumulative: the le="4e-06" bucket includes the two earlier samples.
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"2e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"4e-06\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_sum"), std::string::npos);
}

TEST(ObsRegistryTest, CollectorSamplesAppearUntilUnregistered) {
  MetricsRegistry registry;
  std::atomic<uint64_t> external{9};
  const int id = registry.RegisterCollector(
      [&external](std::vector<MetricSample>* out) {
        MetricSample s;
        s.name = "external_total";
        s.help = "Externally owned.";
        s.value = static_cast<double>(external.load(std::memory_order_seq_cst));
        out->push_back(std::move(s));
      });
  EXPECT_NE(registry.TextExposition().find("external_total 9\n"),
            std::string::npos);
  external.store(11, std::memory_order_seq_cst);
  EXPECT_NE(registry.TextExposition().find("external_total 11\n"),
            std::string::npos);
  registry.UnregisterCollector(id);
  EXPECT_EQ(registry.TextExposition().find("external_total"),
            std::string::npos);
}

TEST(ObsRegistryTest, ConcurrentRecordingDuringExposition) {
  // The record path must stay valid while scrapes run: hammer a
  // counter and a histogram from several threads while another thread
  // repeatedly formats the exposition. TSan-checked.
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("race_total", "x");
  Histogram* h = registry.RegisterHistogram("race_seconds", "x");
  std::atomic<bool> stop{false};
  std::thread scraper([&]() {
    while (!stop.load(std::memory_order_seq_cst)) {
      const std::string text = registry.TextExposition();
      EXPECT_NE(text.find("race_total"), std::string::npos);
    }
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(1e-5);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_seq_cst);
  scraper.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->TotalCount(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- flight recorder -------------------------------------------------

// A trace whose fields are all derived from `id`, so a torn read (a
// mix of two writes) is detectable.
QueryTrace DerivedTrace(uint64_t id, double total_seconds = 0.001) {
  QueryTrace t{};
  t.trace_id = id;
  t.generation = id * 3 + 1;
  t.k = static_cast<int32_t>(id % 97);
  t.total_seconds = total_seconds;
  t.filter_hits = id + 1000;
  t.candidates_refined = id + 500;
  t.hungarian_invocations = id + 500;
  t.page_accesses = id * 7;
  t.bytes_read = id * 11;
  return t;
}

void ExpectDerived(const QueryTrace& t) {
  const uint64_t id = t.trace_id;
  EXPECT_EQ(t.generation, id * 3 + 1);
  EXPECT_EQ(t.k, static_cast<int32_t>(id % 97));
  EXPECT_EQ(t.filter_hits, id + 1000);
  EXPECT_EQ(t.candidates_refined, id + 500);
  EXPECT_EQ(t.page_accesses, id * 7);
  EXPECT_EQ(t.bytes_read, id * 11);
}

TEST(FlightRecorderTest, SnapshotReturnsNewestFirst) {
  FlightRecorder recorder(8, 1.0, 4);
  for (uint64_t i = 0; i < 5; ++i) recorder.Record(DerivedTrace(i));
  const std::vector<QueryTrace> traces = recorder.Snapshot(16);
  ASSERT_EQ(traces.size(), 5u);
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].trace_id, 4 - i);
    ExpectDerived(traces[i]);
  }
  EXPECT_EQ(recorder.Snapshot(2).size(), 2u);
  EXPECT_EQ(recorder.Snapshot(2)[0].trace_id, 4u);
}

TEST(FlightRecorderTest, WraparoundKeepsTheMostRecentCapacity) {
  FlightRecorder recorder(4, 1.0, 4);
  for (uint64_t i = 0; i < 10; ++i) recorder.Record(DerivedTrace(i));
  const std::vector<QueryTrace> traces = recorder.Snapshot(16);
  ASSERT_EQ(traces.size(), 4u);
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].trace_id, 9 - i);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, SlowRingRetainsSlowTracesPastFastBursts) {
  // One slow query, then a burst of fast ones large enough to evict it
  // from the main ring: the slow ring must still hold it.
  FlightRecorder recorder(8, 0.100, 4);
  recorder.Record(DerivedTrace(1, 0.250));
  for (uint64_t i = 10; i < 30; ++i) {
    recorder.Record(DerivedTrace(i, 0.001));
  }
  const std::vector<QueryTrace> recent = recorder.Snapshot(64);
  for (const QueryTrace& t : recent) EXPECT_NE(t.trace_id, 1u);
  const std::vector<QueryTrace> slow =
      recorder.Snapshot(64, /*slow_only=*/true);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].trace_id, 1u);
  EXPECT_EQ(slow[0].total_seconds, 0.250);
}

TEST(FlightRecorderTest, ThresholdBoundaryIsInclusive) {
  FlightRecorder recorder(8, 0.100, 4);
  recorder.Record(DerivedTrace(1, 0.100));   // exactly at threshold
  recorder.Record(DerivedTrace(2, 0.0999));  // just under
  const std::vector<QueryTrace> slow = recorder.Snapshot(64, true);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].trace_id, 1u);
}

TEST(FlightRecorderTest, ConcurrentRecordAndSnapshotNeverTear) {
  FlightRecorder recorder(64, 1.0, 4);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed{0};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_seq_cst)) {
      for (const QueryTrace& t : recorder.Snapshot(64)) {
        ExpectDerived(t);  // any mix of two writes would fail here
        observed.fetch_add(1, std::memory_order_seq_cst);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(DerivedTrace(t * kPerThread + i));
      }
    });
  }
  for (auto& w : writers) w.join();
  // Writers can finish before the reader thread is even scheduled;
  // keep the reader alive until it has seen at least one coherent
  // trace (the ring is full now, so one more pass suffices).
  while (observed.load(std::memory_order_seq_cst) == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_seq_cst);
  reader.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);
  // The ring is lossy by design: a writer whose claimed slot is still
  // mid-write drops instead of spinning. That needs another writer to
  // stall for a full ring revolution and wrap onto the same slot, so
  // drops are rare -- but nonzero is legal under scheduling jitter
  // (TSan routinely deschedules a writer long enough).
  EXPECT_LT(recorder.dropped(), kThreads * kPerThread / 10);
  EXPECT_GT(observed.load(std::memory_order_seq_cst), 0u);
  const std::vector<QueryTrace> final_traces = recorder.Snapshot(64);
  EXPECT_EQ(final_traces.size(), 64u);
  for (const QueryTrace& t : final_traces) ExpectDerived(t);
}

TEST(FlightRecorderTest, WraparoundAndSlowRetentionUnderConcurrentWriters) {
  // Concurrent writers mixing fast and slow traces: after the dust
  // settles the main ring holds exactly its capacity of coherent
  // traces (wraparound), and the slow ring retains only slow ones --
  // fast bursts from other threads must never evict or corrupt them.
  // Runs under TSan via tools/check_tsan.sh.
  FlightRecorder recorder(16, 0.100, 8);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 4000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i;
        // Every 16th trace is slow (0.25s); the rest are fast (1ms).
        recorder.Record(DerivedTrace(id, (id % 16 == 0) ? 0.250 : 0.001));
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);

  const std::vector<QueryTrace> recent = recorder.Snapshot(64);
  EXPECT_EQ(recent.size(), 16u);  // wraparound: capacity, no more
  for (const QueryTrace& t : recent) ExpectDerived(t);

  const std::vector<QueryTrace> slow = recorder.Snapshot(64, true);
  EXPECT_EQ(slow.size(), 8u);  // slow ring full after 1000 slow records
  for (const QueryTrace& t : slow) {
    ExpectDerived(t);
    EXPECT_EQ(t.trace_id % 16, 0u);  // only slow traces land here
    EXPECT_EQ(t.total_seconds, 0.250);
  }
}

// --- IoStats under concurrency ---------------------------------------

TEST(IoStatsConcurrencyTest, ConcurrentChargesAndReadsAreExact) {
  // Regression for a data race: concurrent refinement paths charge one
  // IoStats while other threads snapshot it (the stats read in
  // QueryService::Submit). Counters are relaxed atomics now; totals
  // must come out exact and TSan must stay quiet.
  IoStats stats;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_seq_cst)) {
      const IoStats snapshot = stats;  // copy takes a relaxed snapshot
      EXPECT_LE(snapshot.page_accesses(),
                static_cast<size_t>(kThreads) * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        stats.AddPageAccesses(1);
        stats.AddBytesRead(2);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_seq_cst);
  reader.join();
  EXPECT_EQ(stats.page_accesses(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.bytes_read(),
            static_cast<size_t>(kThreads) * kPerThread * 2);
}

}  // namespace
}  // namespace vsim::obs
