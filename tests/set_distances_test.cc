#include "vsim/distance/set_distances.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"

namespace vsim {
namespace {

VectorSet Points(std::vector<std::vector<double>> pts) {
  VectorSet s;
  for (auto& p : pts) s.vectors.push_back(std::move(p));
  return s;
}

VectorSet RandomSet(Rng& rng, int count, int dim) {
  VectorSet s;
  for (int i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = rng.Uniform(-2, 2);
    s.vectors.push_back(std::move(v));
  }
  return s;
}

// Brute-force surjection oracle: enumerate all mappings large -> small
// and keep those covering every small element.
double BruteForceSurjection(const VectorSet& large, const VectorSet& small,
                            bool fair) {
  const int m = static_cast<int>(large.size());
  const int n = static_cast<int>(small.size());
  std::vector<int> map(m, 0);
  double best = std::numeric_limits<double>::infinity();
  const int base = m / n;
  for (;;) {
    std::vector<int> hits(n, 0);
    double cost = 0.0;
    for (int i = 0; i < m; ++i) {
      ++hits[map[i]];
      cost += EuclideanDistance(large.vectors[i], small.vectors[map[i]]);
    }
    bool valid = *std::min_element(hits.begin(), hits.end()) >= 1;
    if (fair && valid) {
      for (int h : hits) valid &= h == base || h == base + 1;
    }
    if (valid) best = std::min(best, cost);
    // Increment the odometer.
    int pos = 0;
    while (pos < m && ++map[pos] == n) map[pos++] = 0;
    if (pos == m) break;
  }
  return best;
}

// Brute-force link (edge cover) oracle over all edge subsets.
double BruteForceLink(const VectorSet& a, const VectorSet& b) {
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  const int edges = m * n;
  double best = std::numeric_limits<double>::infinity();
  for (int mask = 1; mask < (1 << edges); ++mask) {
    std::vector<int> ca(m, 0), cb(n, 0);
    double cost = 0.0;
    for (int e = 0; e < edges; ++e) {
      if (!(mask >> e & 1)) continue;
      const int i = e / n, j = e % n;
      ++ca[i];
      ++cb[j];
      cost += EuclideanDistance(a.vectors[i], b.vectors[j]);
    }
    if (*std::min_element(ca.begin(), ca.end()) >= 1 &&
        *std::min_element(cb.begin(), cb.end()) >= 1) {
      best = std::min(best, cost);
    }
  }
  return best;
}

TEST(HausdorffTest, KnownConfiguration) {
  const VectorSet a = Points({{0, 0}, {1, 0}});
  const VectorSet b = Points({{0, 0}, {5, 0}});
  // Directed a->b: max(0, 1) = 1 (1 is closer to 0 than to 5... min(1,4)=1).
  // Directed b->a: max(0, 4) = 4.
  EXPECT_NEAR(HausdorffDistance(a, b), 4.0, 1e-12);
}

TEST(HausdorffTest, MetricProperties) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const VectorSet a = RandomSet(rng, 1 + rng.NextBounded(4), 3);
    const VectorSet b = RandomSet(rng, 1 + rng.NextBounded(4), 3);
    const VectorSet c = RandomSet(rng, 1 + rng.NextBounded(4), 3);
    EXPECT_NEAR(HausdorffDistance(a, a), 0.0, 1e-12);
    EXPECT_NEAR(HausdorffDistance(a, b), HausdorffDistance(b, a), 1e-12);
    EXPECT_LE(HausdorffDistance(a, c),
              HausdorffDistance(a, b) + HausdorffDistance(b, c) + 1e-9);
  }
}

TEST(SumOfMinimumTest, KnownConfiguration) {
  const VectorSet a = Points({{0, 0}, {1, 0}});
  const VectorSet b = Points({{0, 0}});
  // a->b: 0 + 1; b->a: 0.
  EXPECT_NEAR(SumOfMinimumDistances(a, b), 1.0, 1e-12);
}

TEST(SumOfMinimumTest, ViolatesTriangleInequalitySometimes) {
  // Eiter-Mannila: SMD is not a metric. Witness: duplicated elements in
  // A and C are all served by one hub element each, so the detour via
  // the hub is far cheaper than the direct distance.
  const VectorSet a = Points({{0.0}, {0.0}, {0.0}});
  const VectorSet c = Points({{10.0}, {10.0}, {10.0}});
  const VectorSet hub = Points({{0.0}, {10.0}});
  const double ab = SumOfMinimumDistances(a, hub);
  const double bc = SumOfMinimumDistances(hub, c);
  const double ac = SumOfMinimumDistances(a, c);
  EXPECT_GT(ac, ab + bc);  // triangle inequality broken
}

TEST(SurjectionTest, EqualSizesReduceToPerfectMatching) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(4));
    const VectorSet a = RandomSet(rng, n, 2);
    const VectorSet b = RandomSet(rng, n, 2);
    StatusOr<double> surj = SurjectionDistance(a, b);
    ASSERT_TRUE(surj.ok());
    // With equal cardinalities the surjection is a bijection = the
    // minimal matching with no unmatched elements.
    const double matching = VectorSetDistance(a, b);
    EXPECT_NEAR(*surj, matching, 1e-9);
  }
}

TEST(SurjectionTest, MatchesBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(3));  // small
    const int m = n + static_cast<int>(rng.NextBounded(3));
    const VectorSet large = RandomSet(rng, m, 2);
    const VectorSet small = RandomSet(rng, n, 2);
    StatusOr<double> surj = SurjectionDistance(large, small);
    ASSERT_TRUE(surj.ok());
    EXPECT_NEAR(*surj, BruteForceSurjection(large, small, false), 1e-9)
        << "m=" << m << " n=" << n;
  }
}

TEST(FairSurjectionTest, MatchesBruteForce) {
  Rng rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(3));
    const int m = n + static_cast<int>(rng.NextBounded(4));
    const VectorSet large = RandomSet(rng, m, 2);
    const VectorSet small = RandomSet(rng, n, 2);
    StatusOr<double> fair = FairSurjectionDistance(large, small);
    ASSERT_TRUE(fair.ok());
    EXPECT_NEAR(*fair, BruteForceSurjection(large, small, true), 1e-9)
        << "m=" << m << " n=" << n;
  }
}

TEST(FairSurjectionTest, AtLeastAsExpensiveAsSurjection) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const VectorSet large = RandomSet(rng, 5, 3);
    const VectorSet small = RandomSet(rng, 2, 3);
    StatusOr<double> fair = FairSurjectionDistance(large, small);
    StatusOr<double> surj = SurjectionDistance(large, small);
    ASSERT_TRUE(fair.ok());
    ASSERT_TRUE(surj.ok());
    EXPECT_GE(*fair, *surj - 1e-9);
  }
}

TEST(LinkTest, MatchesBruteForce) {
  Rng rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    const int m = 1 + static_cast<int>(rng.NextBounded(3));
    const int n = 1 + static_cast<int>(rng.NextBounded(3));
    const VectorSet a = RandomSet(rng, m, 2);
    const VectorSet b = RandomSet(rng, n, 2);
    StatusOr<double> link = LinkDistance(a, b);
    ASSERT_TRUE(link.ok());
    EXPECT_NEAR(*link, BruteForceLink(a, b), 1e-9) << "m=" << m << " n=" << n;
  }
}

TEST(LinkTest, NeverExceedsSurjection) {
  // Every surjection is an edge cover, so link <= surjection.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const VectorSet large = RandomSet(rng, 4, 2);
    const VectorSet small = RandomSet(rng, 2, 2);
    StatusOr<double> link = LinkDistance(large, small);
    StatusOr<double> surj = SurjectionDistance(large, small);
    ASSERT_TRUE(link.ok());
    ASSERT_TRUE(surj.ok());
    EXPECT_LE(*link, *surj + 1e-9);
  }
}

TEST(NetflowTest, EqualsMatchingWhenWeightsDominate) {
  // When w(x) + w(y) >= d(x, y) for all pairs (true for norm weights by
  // the triangle inequality), the netflow optimum never routes through
  // omega for matched pairs, so it equals the minimal matching distance.
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const VectorSet a = RandomSet(rng, 1 + rng.NextBounded(4), 3);
    const VectorSet b = RandomSet(rng, 1 + rng.NextBounded(4), 3);
    StatusOr<double> net = NetflowDistance(a, b);
    ASSERT_TRUE(net.ok());
    EXPECT_NEAR(*net, VectorSetDistance(a, b), 1e-9);
  }
}

TEST(NetflowTest, EmptySets) {
  const VectorSet empty;
  const VectorSet a = Points({{3, 4}});
  StatusOr<double> d = NetflowDistance(a, empty);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 5.0, 1e-12);
  StatusOr<double> d2 = NetflowDistance(empty, a);
  ASSERT_TRUE(d2.ok());
  EXPECT_NEAR(*d2, 5.0, 1e-12);
  StatusOr<double> d3 = NetflowDistance(empty, empty);
  ASSERT_TRUE(d3.ok());
  EXPECT_NEAR(*d3, 0.0, 1e-12);
}

TEST(SetDistancesTest, EmptySetHandling) {
  const VectorSet empty;
  const VectorSet a = Points({{1, 1}});
  EXPECT_FALSE(SurjectionDistance(a, empty).ok());
  EXPECT_FALSE(FairSurjectionDistance(empty, a).ok());
  EXPECT_FALSE(LinkDistance(a, empty).ok());
  EXPECT_TRUE(std::isinf(HausdorffDistance(a, empty)));
  EXPECT_NEAR(HausdorffDistance(empty, empty), 0.0, 1e-12);
}

}  // namespace
}  // namespace vsim
