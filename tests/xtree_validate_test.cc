#include <gtest/gtest.h>

#include <numeric>

#include "vsim/common/rng.h"
#include "vsim/index/xtree.h"

namespace vsim {
namespace {

TEST(XTreeValidateTest, EmptyAndSingle) {
  XTree tree(3);
  EXPECT_TRUE(tree.Validate().ok());
  ASSERT_TRUE(tree.Insert({1, 2, 3}, 0).ok());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(XTreeValidateTest, HoldsThroughIncrementalGrowth) {
  Rng rng(3131);
  XTreeOptions opts;
  opts.page_size_bytes = 512;
  for (int dim : {2, 6, 20}) {
    XTree tree(dim, opts);
    for (int i = 0; i < 1500; ++i) {
      FeatureVector p(dim);
      for (double& v : p) v = rng.Uniform(0, 1);
      ASSERT_TRUE(tree.Insert(p, i).ok());
      if (i % 250 == 249) {
        ASSERT_TRUE(tree.Validate().ok())
            << "dim " << dim << " after " << i + 1 << " inserts: "
            << tree.Validate().ToString();
      }
    }
    EXPECT_TRUE(tree.Validate().ok());
  }
}

TEST(XTreeValidateTest, HoldsAfterBulkLoad) {
  Rng rng(3232);
  XTree tree(6);
  std::vector<FeatureVector> pts(4000, FeatureVector(6));
  for (auto& p : pts) {
    for (double& v : p) v = rng.Uniform(-5, 5);
  }
  std::vector<int> ids(pts.size());
  std::iota(ids.begin(), ids.end(), 0);
  ASSERT_TRUE(tree.BulkLoad(pts, ids).ok());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

TEST(XTreeValidateTest, HoldsWithClusteredSupernodeData) {
  // Clustered high-dim data provokes supernodes; the invariants must
  // survive them.
  Rng rng(3333);
  XTreeOptions opts;
  opts.page_size_bytes = 1024;
  XTree tree(16, opts);
  int id = 0;
  for (int cluster = 0; cluster < 8; ++cluster) {
    FeatureVector center(16);
    for (double& v : center) v = rng.Uniform(0, 1);
    for (int i = 0; i < 80; ++i) {
      FeatureVector p = center;
      for (double& v : p) v += rng.Gaussian(0, 0.01);
      ASSERT_TRUE(tree.Insert(p, id++).ok());
    }
  }
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

}  // namespace
}  // namespace vsim
