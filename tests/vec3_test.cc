#include "vsim/geometry/vec3.h"

#include <gtest/gtest.h>

#include "vsim/geometry/aabb.h"

namespace vsim {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3Test, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.Dot(y), 0.0);
  EXPECT_EQ(x.Cross(y), z);
  EXPECT_EQ(y.Cross(z), x);
  EXPECT_EQ(z.Cross(x), y);
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 3}).Dot(Vec3{4, 5, 6}), 32.0);
}

TEST(Vec3Test, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  const Vec3 n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_EQ((Vec3{}).Normalized(), (Vec3{}));
}

TEST(Vec3Test, IndexingAndSet) {
  Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
  v.Set(1, -2);
  EXPECT_DOUBLE_EQ(v.y, -2);
}

TEST(Vec3Test, MinMaxComponents) {
  const Vec3 a{1, 5, 3}, b{2, 0, 4};
  EXPECT_EQ(a.Min(b), (Vec3{1, 0, 3}));
  EXPECT_EQ(a.Max(b), (Vec3{2, 5, 4}));
  EXPECT_DOUBLE_EQ(a.MaxComponent(), 5);
  EXPECT_DOUBLE_EQ(a.MinComponent(), 1);
}

TEST(Vec3Test, DistanceHelpers) {
  EXPECT_DOUBLE_EQ(Distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1, 1}, {2, 2, 2}), 3.0);
}

TEST(AabbTest, EmptyByDefault) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
}

TEST(AabbTest, ExtendByPoints) {
  Aabb box;
  box.Extend({1, 2, 3});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  box.Extend({-1, 0, 5});
  EXPECT_EQ(box.min, (Vec3{-1, 0, 3}));
  EXPECT_EQ(box.max, (Vec3{1, 2, 5}));
  EXPECT_DOUBLE_EQ(box.Volume(), 2 * 2 * 2);
  EXPECT_EQ(box.Center(), (Vec3{0, 1, 4}));
}

TEST(AabbTest, ContainsAndIntersects) {
  const Aabb a({0, 0, 0}, {2, 2, 2});
  const Aabb b({1, 1, 1}, {3, 3, 3});
  const Aabb c({5, 5, 5}, {6, 6, 6});
  EXPECT_TRUE(a.Contains({1, 1, 1}));
  EXPECT_FALSE(a.Contains({3, 1, 1}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(AabbTest, ExtendByBox) {
  Aabb a({0, 0, 0}, {1, 1, 1});
  a.Extend(Aabb({2, -1, 0}, {3, 0, 4}));
  EXPECT_EQ(a.min, (Vec3{0, -1, 0}));
  EXPECT_EQ(a.max, (Vec3{3, 1, 4}));
}

}  // namespace
}  // namespace vsim
