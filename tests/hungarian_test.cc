#include "vsim/distance/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "vsim/common/rng.h"

namespace vsim {
namespace {

// Brute-force assignment oracle for small instances.
double BruteForce(const std::vector<double>& cost, int rows, int cols) {
  std::vector<int> columns(cols);
  std::iota(columns.begin(), columns.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (int i = 0; i < rows; ++i) total += cost[i * cols + columns[i]];
    best = std::min(best, total);
  } while (std::next_permutation(columns.begin(), columns.end()));
  return best;
}

TEST(HungarianTest, TrivialSingleCell) {
  const AssignmentResult r = SolveAssignment({7.0}, 1, 1);
  EXPECT_EQ(r.column_of[0], 0);
  EXPECT_DOUBLE_EQ(r.total_cost, 7.0);
}

TEST(HungarianTest, KnownThreeByThree) {
  // Classic example; optimal assignment cost is 5 (1+3+1? verify below
  // against the brute force).
  const std::vector<double> cost = {4, 1, 3,
                                    2, 0, 5,
                                    3, 2, 2};
  const AssignmentResult r = SolveAssignment(cost, 3, 3);
  EXPECT_DOUBLE_EQ(r.total_cost, BruteForce(cost, 3, 3));
  std::set<int> used(r.column_of.begin(), r.column_of.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(HungarianTest, IdentityIsOptimalForDiagonalZeros) {
  std::vector<double> cost(16, 5.0);
  for (int i = 0; i < 4; ++i) cost[i * 4 + i] = 0.0;
  const AssignmentResult r = SolveAssignment(cost, 4, 4);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.column_of[i], i);
}

TEST(HungarianTest, RectangularLeavesColumnsUnused) {
  // 2 rows, 4 columns.
  const std::vector<double> cost = {9, 1, 9, 9,
                                    9, 9, 9, 2};
  const AssignmentResult r = SolveAssignment(cost, 2, 4);
  EXPECT_DOUBLE_EQ(r.total_cost, 3.0);
  EXPECT_EQ(r.column_of[0], 1);
  EXPECT_EQ(r.column_of[1], 3);
}

TEST(HungarianTest, HandlesNegativeCosts) {
  const std::vector<double> cost = {-5, 2,
                                    3, -7};
  const AssignmentResult r = SolveAssignment(cost, 2, 2);
  EXPECT_DOUBLE_EQ(r.total_cost, -12.0);
}

TEST(HungarianTest, RandomizedAgainstBruteForceSquare) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(5));  // 2..6
    std::vector<double> cost(n * n);
    for (double& c : cost) c = rng.Uniform(-10, 10);
    const AssignmentResult r = SolveAssignment(cost, n, n);
    EXPECT_NEAR(r.total_cost, BruteForce(cost, n, n), 1e-9);
    std::set<int> used(r.column_of.begin(), r.column_of.end());
    EXPECT_EQ(static_cast<int>(used.size()), n);
  }
}

TEST(HungarianTest, RandomizedAgainstBruteForceRectangular) {
  Rng rng(4711);
  for (int trial = 0; trial < 30; ++trial) {
    const int rows = 1 + static_cast<int>(rng.NextBounded(4));  // 1..4
    const int cols = rows + static_cast<int>(rng.NextBounded(3));
    std::vector<double> cost(rows * cols);
    for (double& c : cost) c = rng.Uniform(0, 100);
    const AssignmentResult r = SolveAssignment(cost, rows, cols);
    EXPECT_NEAR(r.total_cost, BruteForce(cost, rows, cols), 1e-9);
  }
}

TEST(HungarianTest, TiedCostsStillProduceValidAssignment) {
  const std::vector<double> cost(9, 1.0);
  const AssignmentResult r = SolveAssignment(cost, 3, 3);
  EXPECT_DOUBLE_EQ(r.total_cost, 3.0);
  std::set<int> used(r.column_of.begin(), r.column_of.end());
  EXPECT_EQ(used.size(), 3u);
}

}  // namespace
}  // namespace vsim
