#include "vsim/features/volume_model.h"

#include <gtest/gtest.h>

#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

TEST(VolumeModelTest, SingleCellFullGrid) {
  VoxelGrid g(4);
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) g.Set(x, y, z);
  VolumeModelOptions opt;
  opt.cells_per_dim = 1;
  StatusOr<FeatureVector> f = ExtractVolumeFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 1u);
  EXPECT_DOUBLE_EQ((*f)[0], 1.0);
}

TEST(VolumeModelTest, EmptyGridIsZeroVector) {
  VoxelGrid g(6);
  VolumeModelOptions opt;
  opt.cells_per_dim = 2;
  StatusOr<FeatureVector> f = ExtractVolumeFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  for (double v : *f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(VolumeModelTest, OctantPartitioning) {
  // Fill exactly the low-corner octant of a 4^3 grid with p = 2.
  VoxelGrid g(4);
  for (int z = 0; z < 2; ++z)
    for (int y = 0; y < 2; ++y)
      for (int x = 0; x < 2; ++x) g.Set(x, y, z);
  VolumeModelOptions opt;
  opt.cells_per_dim = 2;
  StatusOr<FeatureVector> f = ExtractVolumeFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 8u);
  EXPECT_DOUBLE_EQ((*f)[0], 1.0);  // cell (0,0,0) is full
  for (size_t i = 1; i < 8; ++i) EXPECT_DOUBLE_EQ((*f)[i], 0.0);
}

TEST(VolumeModelTest, BinOrderIsXFastest) {
  // One voxel in cell (x=1, y=0, z=0) of a p=2 partition -> bin index 1.
  VoxelGrid g(4);
  g.Set(3, 0, 0);
  VolumeModelOptions opt;
  opt.cells_per_dim = 2;
  StatusOr<FeatureVector> f = ExtractVolumeFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ((*f)[1], 1.0 / 8.0);
}

TEST(VolumeModelTest, NormalizationByCellVolume) {
  // Half-filled cell: K = (4/2)^3 = 8 voxels per cell; 4 voxels -> 0.5.
  VoxelGrid g(4);
  g.Set(0, 0, 0);
  g.Set(1, 0, 0);
  g.Set(0, 1, 0);
  g.Set(1, 1, 0);
  VolumeModelOptions opt;
  opt.cells_per_dim = 2;
  StatusOr<FeatureVector> f = ExtractVolumeFeatures(g, opt);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ((*f)[0], 0.5);
}

TEST(VolumeModelTest, RejectsNonDivisibleResolution) {
  VoxelGrid g(10);
  VolumeModelOptions opt;
  opt.cells_per_dim = 3;
  EXPECT_FALSE(ExtractVolumeFeatures(g, opt).ok());
}

TEST(VolumeModelTest, RejectsNonCubicGrid) {
  VoxelGrid g(4, 6, 4);
  VolumeModelOptions opt;
  opt.cells_per_dim = 2;
  EXPECT_FALSE(ExtractVolumeFeatures(g, opt).ok());
}

TEST(VolumeModelTest, SumEqualsTotalVolumeFraction) {
  VoxelizerOptions vox;
  vox.resolution = 12;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeSphere(1.0, 24, 12), vox);
  ASSERT_TRUE(model.ok());
  VolumeModelOptions opt;
  opt.cells_per_dim = 3;
  StatusOr<FeatureVector> f = ExtractVolumeFeatures(model->grid, opt);
  ASSERT_TRUE(f.ok());
  double sum = 0.0;
  for (double v : *f) sum += v;
  const double cell_volume = 4.0 * 4 * 4;  // (12/3)^3
  EXPECT_NEAR(sum * cell_volume, static_cast<double>(model->grid.Count()),
              1e-9);
}

}  // namespace
}  // namespace vsim
