#include <gtest/gtest.h>

#include "vsim/core/similarity.h"
#include "vsim/distance/min_matching.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/normalizer.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

VectorSet Points(std::vector<std::vector<double>> pts) {
  VectorSet s;
  for (auto& p : pts) s.vectors.push_back(std::move(p));
  return s;
}

TEST(PartialMatchingTest, SinglePairPicksCheapest) {
  const VectorSet a = Points({{0, 0}, {10, 0}});
  const VectorSet b = Points({{0, 1}, {50, 0}});
  StatusOr<double> d = PartialMatchingDistance(a, b, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 1.0, 1e-12);
}

TEST(PartialMatchingTest, FullCardinalityEqualsMatchingWithoutPenalty) {
  const VectorSet a = Points({{0, 0}, {4, 0}});
  const VectorSet b = Points({{4, 3}, {0, 3}});
  StatusOr<double> d = PartialMatchingDistance(a, b, 2);
  ASSERT_TRUE(d.ok());
  // Equal cardinalities: same as minimal matching (no unmatched).
  EXPECT_NEAR(*d, VectorSetDistance(a, b), 1e-12);
  EXPECT_NEAR(*d, 6.0, 1e-12);
}

TEST(PartialMatchingTest, MonotoneInPairCount) {
  const VectorSet a = Points({{0, 0}, {5, 0}, {9, 9}});
  const VectorSet b = Points({{0, 1}, {5, 2}, {0, 9}});
  double prev = 0.0;
  for (int pairs = 1; pairs <= 3; ++pairs) {
    StatusOr<double> d = PartialMatchingDistance(a, b, pairs);
    ASSERT_TRUE(d.ok());
    EXPECT_GE(*d, prev - 1e-12);
    prev = *d;
  }
}

TEST(PartialMatchingTest, SubShapeMatchesDespiteExtraParts) {
  // A part that "contains" another part: the shared covers match at
  // near-zero cost while the full matching pays for the extras.
  const VectorSet shared = Points({{0, 0, 0}, {1, 1, 1}});
  VectorSet composite = shared;
  composite.vectors.push_back({9, 9, 9});
  composite.vectors.push_back({-9, 4, 2});
  StatusOr<double> partial = PartialMatchingDistance(shared, composite, 2);
  ASSERT_TRUE(partial.ok());
  EXPECT_NEAR(*partial, 0.0, 1e-12);
  EXPECT_GT(VectorSetDistance(shared, composite), 10.0);
}

TEST(PartialMatchingTest, RejectsBadPairCounts) {
  const VectorSet a = Points({{0, 0}});
  const VectorSet b = Points({{1, 1}, {2, 2}});
  EXPECT_FALSE(PartialMatchingDistance(a, b, 0).ok());
  EXPECT_FALSE(PartialMatchingDistance(a, b, 2).ok());
}

TEST(InvariantDistanceTest, RotatedObjectHasNearZeroDistance) {
  // The same part voxelized in a rotated pose: plain vector set distance
  // is large, the Definition-2 invariant distance is ~0.
  VoxelizerOptions vox;
  vox.resolution = 12;
  TriangleMesh mesh = MakeBox({3, 1.5, 0.7});
  // Append a bump so the shape is not symmetric under the rotation.
  TriangleMesh bump = MakeBox({0.5, 0.5, 0.7});
  bump.ApplyTransform(Transform::Translate({1.2, 0.5, 0.4}));

  StatusOr<VoxelModel> a = VoxelizeParts({mesh, bump}, vox);
  ASSERT_TRUE(a.ok());
  // Rotate the grid directly by a 90-degree element (exact).
  const Mat3& rot = CubeRotations()[7];
  StatusOr<VoxelGrid> rotated = a->grid.Transformed(rot);
  ASSERT_TRUE(rotated.ok());

  ExtractionOptions opt;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  StatusOr<double> inv =
      InvariantVectorSetDistance(a->grid, *rotated, opt, false);
  ASSERT_TRUE(inv.ok());
  EXPECT_NEAR(*inv, 0.0, 1e-9);
}

TEST(InvariantDistanceTest, ReflectionRequiresFullGroup) {
  VoxelizerOptions vox;
  vox.resolution = 12;
  // A chiral object: L-shaped bracket (not mirror-symmetric).
  TriangleMesh leg1 = MakeBox({2.0, 0.4, 0.4});
  TriangleMesh leg2 = MakeBox({0.4, 1.2, 0.4});
  leg2.ApplyTransform(Transform::Translate({0.8, 0.6, 0.4}));
  StatusOr<VoxelModel> a = VoxelizeParts({leg1, leg2}, vox);
  ASSERT_TRUE(a.ok());
  // Mirror the grid.
  Mat3 mirror = Mat3::Scale(-1, 1, 1);
  StatusOr<VoxelGrid> mirrored = a->grid.Transformed(mirror);
  ASSERT_TRUE(mirrored.ok());

  ExtractionOptions opt;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  StatusOr<double> with_reflections =
      InvariantVectorSetDistance(a->grid, *mirrored, opt, true);
  ASSERT_TRUE(with_reflections.ok());
  EXPECT_NEAR(*with_reflections, 0.0, 1e-9);
  // Without reflections the mirrored part stays at some distance
  // (design-similar but production-different, Section 3.2).
  StatusOr<double> rotations_only =
      InvariantVectorSetDistance(a->grid, *mirrored, opt, false);
  ASSERT_TRUE(rotations_only.ok());
  EXPECT_GE(*rotations_only, *with_reflections);
}

}  // namespace
}  // namespace vsim
