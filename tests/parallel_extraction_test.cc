#include <gtest/gtest.h>

#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"

namespace vsim {
namespace {

TEST(ParallelExtractionTest, ThreadCountDoesNotChangeResults) {
  const Dataset ds = MakeAircraftDataset(40, 23);
  ExtractionOptions opt;
  opt.histogram_resolution = 12;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  StatusOr<CadDatabase> serial = CadDatabase::FromDataset(ds, opt, 1);
  StatusOr<CadDatabase> parallel = CadDatabase::FromDataset(ds, opt, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  EXPECT_EQ(serial->labels(), parallel->labels());
  for (size_t i = 0; i < serial->size(); ++i) {
    const ObjectRepr& a = serial->object(static_cast<int>(i));
    const ObjectRepr& b = parallel->object(static_cast<int>(i));
    EXPECT_EQ(a.volume, b.volume) << i;
    EXPECT_EQ(a.cover_vector, b.cover_vector) << i;
    EXPECT_EQ(a.centroid, b.centroid) << i;
  }
}

TEST(ParallelExtractionTest, DefaultThreadCountWorks) {
  const Dataset ds = MakeCarDataset(12, 5);
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.cover_resolution = 10;
  StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);  // 0 = auto
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 12u);
}

}  // namespace
}  // namespace vsim
