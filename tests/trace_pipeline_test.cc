// End-to-end acceptance test for wire-propagated span tracing
// (docs/OBSERVABILITY.md "Tracing", docs/PROTOCOL.md §12): a remote
// query carries a client-generated 16-byte trace id over the wire; the
// server publishes net-layer (accept/decode/encode/flush) and
// service-layer (request/queue/filter/refine) span trees under that
// id; `vsim stats`-style pulls return them; and the Chrome trace-event
// export nests the full pipeline for that trace id. Parameterized over
// both transports -- one wire contract.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "vsim/data/dataset.h"
#include "vsim/net/client.h"
#include "vsim/net/protocol.h"
#include "vsim/net/server.h"
#include "vsim/obs/span.h"
#include "vsim/obs/trace_export.h"
#include "vsim/service/db_snapshot.h"

namespace vsim::net {
namespace {

class TracePipelineTest : public ::testing::TestWithParam<Transport> {
 protected:
  static void SetUpTestSuite() {
    const Dataset ds = MakeCarDataset(20, 7);
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.cover_resolution = 10;
    opt.num_covers = 5;
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt, 0);
    ASSERT_TRUE(db.ok());
    db_ = new CadDatabase(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static CadDatabase* db_;
};

CadDatabase* TracePipelineTest::db_ = nullptr;

// Collects the spans of every tree carrying `trace` into one set of
// span names (the cross-layer view the exporter renders).
std::set<uint8_t> SpanNamesForTrace(
    const std::vector<obs::SpanTreeRecord>& trees,
    const obs::TraceContext& trace) {
  std::set<uint8_t> names;
  for (const obs::SpanTreeRecord& tree : trees) {
    if (tree.trace_hi != trace.trace_hi || tree.trace_lo != trace.trace_lo) {
      continue;
    }
    const uint32_t count =
        std::min<uint32_t>(tree.span_count, obs::kSpanArenaCapacity);
    for (uint32_t i = 0; i < count; ++i) names.insert(tree.spans[i].name);
  }
  return names;
}

TEST_P(TracePipelineTest, RemoteQueryPropagatesTraceAcrossAllLayers) {
  QueryServiceOptions sopts;
  sopts.cache_bytes = 0;  // a cache hit would skip the engine spans
  auto service = std::make_unique<QueryService>(
      DbSnapshot::Create(CadDatabase(*db_), 0), sopts);
  ServerOptions nopts;
  nopts.transport = GetParam();
  Server server(service.get(), nopts);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ServiceRequest req;
  req.kind = QueryKind::kKnn;
  req.object_id = 2;
  req.options.k = 5;
  StatusOr<ServiceResponse> response = client->Execute(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->neighbors.size(), 5u);

  // The client minted the trace id (the request carried none) and the
  // server echoed it on the final response chunk.
  const obs::TraceContext trace = client->last_trace();
  ASSERT_TRUE(trace.valid());
  EXPECT_EQ(response->trace_hi, trace.trace_hi);
  EXPECT_EQ(response->trace_lo, trace.trace_lo);

  // The service-layer tree is published at completion; the net-layer
  // tree at flush, which can land just after the response reaches the
  // client -- pull stats until both layers are visible.
  StatsRequest stats_request;
  stats_request.max_traces = 8;
  stats_request.include_spans = true;
  std::set<uint8_t> names;
  StatusOr<StatsResponse> stats = Status::Internal("unset");
  for (int attempt = 0; attempt < 200; ++attempt) {
    stats = client->Stats(stats_request);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    names = SpanNamesForTrace(stats->span_trees, trace);
    if (names.count(static_cast<uint8_t>(obs::SpanName::kFlush)) > 0 &&
        names.count(static_cast<uint8_t>(obs::SpanName::kRequest)) > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The full pipeline, across both layers, under the one trace id.
  for (const obs::SpanName expected :
       {obs::SpanName::kRequest, obs::SpanName::kQueue,
        obs::SpanName::kFilter, obs::SpanName::kRefine,
        obs::SpanName::kAccept, obs::SpanName::kDecode,
        obs::SpanName::kEncode, obs::SpanName::kFlush}) {
    EXPECT_EQ(names.count(static_cast<uint8_t>(expected)), 1u)
        << "missing span " << obs::SpanNameString(expected);
  }

  // The flight-recorder trace of this query carries the same id, so
  // QueryTrace rows and span trees cross-reference.
  bool trace_row_found = false;
  for (const obs::QueryTrace& t : stats->traces) {
    if (t.trace_hi == trace.trace_hi && t.trace_lo == trace.trace_lo) {
      trace_row_found = true;
      EXPECT_EQ(t.kind, static_cast<uint8_t>(QueryKind::kKnn));
    }
  }
  EXPECT_TRUE(trace_row_found);

  // The Chrome export nests the pipeline for that trace id: the trace's
  // synthetic thread appears once, and every span name above renders as
  // a complete ("ph":"X") event.
  std::vector<obs::SpanTreeRecord> ours;
  for (const obs::SpanTreeRecord& tree : stats->span_trees) {
    if (tree.trace_hi == trace.trace_hi && tree.trace_lo == trace.trace_lo) {
      ours.push_back(tree);
    }
  }
  ASSERT_GE(ours.size(), 2u);  // net-layer + service-layer trees
  const std::string json = obs::RenderChromeTrace(ours);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* name : {"request", "queue", "filter", "refine",
                           "accept", "decode", "encode", "flush"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << "export missing span " << name;
  }

  server.Stop();
}

TEST_P(TracePipelineTest, CallerProvidedTraceContextIsPreserved) {
  auto service = std::make_unique<QueryService>(
      DbSnapshot::Create(CadDatabase(*db_), 0), QueryServiceOptions{});
  ServerOptions nopts;
  nopts.transport = GetParam();
  Server server(service.get(), nopts);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ServiceRequest req;
  req.kind = QueryKind::kKnn;
  req.object_id = 1;
  req.options.k = 3;
  req.trace.trace_hi = 0xabcdef0102030405ULL;
  req.trace.trace_lo = 0x060708090a0b0c0dULL;
  req.trace.parent_span_id = 0x1234;
  StatusOr<ServiceResponse> response = client->Execute(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // No minting when the caller supplied a context: the wire echo and
  // last_trace() both carry the caller's id (distributed-trace
  // continuation, not a fresh root).
  EXPECT_EQ(client->last_trace().trace_hi, req.trace.trace_hi);
  EXPECT_EQ(response->trace_hi, req.trace.trace_hi);
  EXPECT_EQ(response->trace_lo, req.trace.trace_lo);
  server.Stop();
}

TEST_P(TracePipelineTest, SpansDisabledKeepsWireContractIntact) {
  QueryServiceOptions sopts;
  sopts.enable_spans = false;
  auto service = std::make_unique<QueryService>(
      DbSnapshot::Create(CadDatabase(*db_), 0), sopts);
  ServerOptions nopts;
  nopts.transport = GetParam();
  Server server(service.get(), nopts);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ServiceRequest req;
  req.kind = QueryKind::kKnn;
  req.object_id = 0;
  req.options.k = 3;
  StatusOr<ServiceResponse> response = client->Execute(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->trace_hi, client->last_trace().trace_hi);

  StatsRequest stats_request;
  stats_request.include_spans = true;
  StatusOr<StatsResponse> stats = client->Stats(stats_request);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->span_trees.empty());
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TracePipelineTest,
                         ::testing::Values(Transport::kThreads,
                                           Transport::kEpoll),
                         [](const ::testing::TestParamInfo<Transport>& info) {
                           return TransportName(info.param);
                         });

}  // namespace
}  // namespace vsim::net
