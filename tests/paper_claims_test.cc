// End-to-end regression tests for the paper's headline claims on a
// fixed-seed reduced workload. If a refactor silently breaks the
// science (not just the plumbing), these tests catch it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "vsim/cluster/cluster_quality.h"
#include "vsim/cluster/optics.h"
#include "vsim/core/query_engine.h"
#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"

namespace vsim {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.num_covers = 9;  // prefix-stable: every k <= 9 by truncation
    const Dataset ds = MakeAircraftDataset(220, 7);
    StatusOr<CadDatabase> built = CadDatabase::FromDataset(ds, opt);
    ASSERT_TRUE(built.ok());
    db_ = new CadDatabase(std::move(built).value());
    labels_ = new std::vector<int>(ds.EvaluationLabels());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete labels_;
  }

  static std::vector<VectorSet> SetsForK(int k) {
    std::vector<VectorSet> sets;
    for (size_t i = 0; i < db_->size(); ++i) {
      sets.push_back(
          ToVectorSet(db_->object(static_cast<int>(i)).cover_sequence, k));
    }
    return sets;
  }

  static double PermutationRate(const std::vector<VectorSet>& sets) {
    size_t permutations = 0, computations = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      for (size_t j = i + 1; j < sets.size(); ++j) {
        permutations += MinimalMatchingDistanceDetailed(sets[i], sets[j],
                                                        MinMatchingOptions{})
                                .permutation_used
                            ? 1
                            : 0;
        ++computations;
      }
    }
    return static_cast<double>(permutations) /
           static_cast<double>(computations);
  }

  static CadDatabase* db_;
  static std::vector<int>* labels_;
};

CadDatabase* PaperClaimsTest::db_ = nullptr;
std::vector<int>* PaperClaimsTest::labels_ = nullptr;

// Table 1: the permutation rate grows with k and is near-total by k=7.
TEST_F(PaperClaimsTest, PermutationRateGrowsWithCoverCount) {
  const double r3 = PermutationRate(SetsForK(3));
  const double r5 = PermutationRate(SetsForK(5));
  const double r7 = PermutationRate(SetsForK(7));
  EXPECT_LT(r3, r5);
  EXPECT_LE(r5, r7);
  // The paper's Table 1 (Car set) reaches 99% at k=7; the aircraft set
  // is dominated by simple fasteners whose sequences stop well below 7
  // covers, so the rate saturates lower. The bench reproduces the Car
  // numbers; here we pin the qualitative claim.
  EXPECT_GT(r7, 0.75);
  EXPECT_GT(r3, 0.2);
}

// Section 5.3: the vector set model beats the order-bound one-vector
// model on cluster agreement with the part families.
TEST_F(PaperClaimsTest, VectorSetBeatsCoverSequenceOnClusterQuality) {
  OpticsOptions opt;
  opt.min_pts = 4;
  const int n = static_cast<int>(db_->size());
  StatusOr<OpticsResult> vs = RunOptics(
      n, db_->DistanceFunction(ModelType::kVectorSet), opt);
  StatusOr<OpticsResult> cs = RunOptics(
      n, db_->DistanceFunction(ModelType::kCoverSequence), opt);
  ASSERT_TRUE(vs.ok());
  ASSERT_TRUE(cs.ok());
  const ClusterQuality q_vs = BestCutQuality(*vs, *labels_, 32, 3);
  const ClusterQuality q_cs = BestCutQuality(*cs, *labels_, 32, 3);
  EXPECT_GT(q_vs.Score(), q_cs.Score());
}

// Section 5.3: permutation distance == vector set model, near enough
// that their pairwise orderings coincide (Spearman > 0.95).
TEST_F(PaperClaimsTest, PermutationDistanceTracksMatchingDistance) {
  const int n = std::min<int>(80, static_cast<int>(db_->size()));
  std::vector<double> a, b;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      a.push_back(
          db_->Distance(ModelType::kCoverSequencePermutation, i, j));
      b.push_back(db_->Distance(ModelType::kVectorSet, i, j));
    }
  }
  // Spearman via rank arrays.
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> order(v.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(v.size());
    for (size_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
    return rank;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  double ma = 0, mb = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= ra.size();
  mb /= rb.size();
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  EXPECT_GT(cov / std::sqrt(va * vb), 0.95);
}

// Section 5.4 / Table 2: the centroid filter prunes most refinements
// while returning exactly the scan's answers.
TEST_F(PaperClaimsTest, FilterPrunesAtLeastHalfTheDatabase) {
  QueryEngine engine(&*db_);
  size_t refined = 0;
  const int queries = 20;
  for (int q = 0; q < queries; ++q) {
    QueryCost cost;
    const int id = (q * 11) % static_cast<int>(db_->size());
    const auto filtered =
        engine.Knn(QueryStrategy::kVectorSetFilter, id, 10, &cost);
    refined += cost.candidates_refined;
    const auto scanned = engine.Knn(QueryStrategy::kVectorSetScan, id, 10);
    ASSERT_EQ(filtered.size(), scanned.size());
    for (size_t i = 0; i < filtered.size(); ++i) {
      EXPECT_NEAR(filtered[i].distance, scanned[i].distance, 1e-9);
    }
  }
  EXPECT_LT(refined, queries * db_->size() / 2);
}

// Figure 9: more covers help (up to saturation) -- 1-NN accuracy with
// 7 covers is at least that of 2 covers.
TEST_F(PaperClaimsTest, MoreCoversDoNotHurtClassification) {
  const int n = static_cast<int>(db_->size());
  const auto sets2 = SetsForK(2);
  const auto sets7 = SetsForK(7);
  const double acc2 = LeaveOneOutKnnAccuracy(
      n, [&](int a, int b) { return VectorSetDistance(sets2[a], sets2[b]); },
      *labels_, 1);
  const double acc7 = LeaveOneOutKnnAccuracy(
      n, [&](int a, int b) { return VectorSetDistance(sets7[a], sets7[b]); },
      *labels_, 1);
  EXPECT_GE(acc7 + 1e-12, acc2);
  EXPECT_GT(acc7, 0.9);
}

}  // namespace
}  // namespace vsim
