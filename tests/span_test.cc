// Span-tracing tests (docs/OBSERVABILITY.md "Tracing"): the
// fixed-capacity SpanArena (including the counted-truncation contract
// -- overflow must never allocate or crash, only count), the SpanRing
// seqlock under concurrent writers, trace-context minting, the Chrome
// trace-event export, and the SIGPROF sampling profiler. The Span* and
// Profiler* suites run under TSan via tools/check_tsan.sh.
#include "vsim/obs/span.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "vsim/obs/profiler.h"
#include "vsim/obs/trace_export.h"

namespace vsim::obs {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TraceContext TestContext() {
  TraceContext context;
  context.trace_hi = 0x0123456789abcdefULL;
  context.trace_lo = 0xfedcba9876543210ULL;
  return context;
}

// --- SpanArena -------------------------------------------------------

TEST(SpanArenaTest, StartEndRecordsMonotoneTimestamps) {
  SpanArena arena(TestContext(), 7);
  const int root = arena.Start(SpanName::kRequest);
  ASSERT_GE(root, 0);
  const int child = arena.Start(SpanName::kFilter, arena.span_id(root));
  ASSERT_GE(child, 0);
  arena.End(child);
  arena.End(root);
  EXPECT_EQ(arena.count(), 2u);
  EXPECT_EQ(arena.dropped(), 0u);
  const SpanRecord& r = arena.span(static_cast<size_t>(root));
  const SpanRecord& c = arena.span(static_cast<size_t>(child));
  EXPECT_GT(r.span_id, 0u);
  EXPECT_EQ(r.parent_span_id, 0u);
  EXPECT_EQ(c.parent_span_id, r.span_id);
  EXPECT_LE(r.start_ns, c.start_ns);
  EXPECT_LE(c.end_ns, r.end_ns);
  EXPECT_GE(c.end_ns, c.start_ns);
  EXPECT_EQ(c.name, static_cast<uint8_t>(SpanName::kFilter));
}

TEST(SpanArenaTest, SpanIdsAreUniqueAndNonZero) {
  SpanArena arena(TestContext(), 42);
  std::set<uint64_t> ids;
  for (size_t i = 0; i < kSpanArenaCapacity; ++i) {
    const int index = arena.Add(SpanName::kRefine, 0, 10, 20, i);
    ASSERT_GE(index, 0);
    const uint64_t id = arena.span_id(index);
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), kSpanArenaCapacity);
}

TEST(SpanArenaTest, OverflowCountsDroppedAndNeverGrows) {
  // The truncation contract: a request that outgrows the arena keeps
  // the first kSpanArenaCapacity spans and counts the rest -- no
  // allocation, no reindexing, kInvalidSpan for every overflow Add.
  SpanArena arena(TestContext(), 3);
  for (size_t i = 0; i < kSpanArenaCapacity; ++i) {
    ASSERT_GE(arena.Add(SpanName::kQueue, 0, i, i + 1, 0), 0);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(arena.Add(SpanName::kQueue, 0, 100, 200, 0),
              SpanArena::kInvalidSpan);
    EXPECT_EQ(arena.Start(SpanName::kFlush), SpanArena::kInvalidSpan);
  }
  EXPECT_EQ(arena.count(), kSpanArenaCapacity);
  EXPECT_EQ(arena.dropped(), 20u);
  // End / SetCounter / span_id on the invalid index are harmless no-ops.
  arena.End(SpanArena::kInvalidSpan);
  arena.SetCounter(SpanArena::kInvalidSpan, 99);
  EXPECT_EQ(arena.span_id(SpanArena::kInvalidSpan), 0u);

  SpanTreeRecord record;
  RenderSpanTree(arena, 17, &record);
  EXPECT_EQ(record.span_count, kSpanArenaCapacity);
  EXPECT_EQ(record.spans_dropped, 20u);
  EXPECT_EQ(record.query_trace_id, 17u);
  EXPECT_EQ(record.trace_hi, TestContext().trace_hi);
}

TEST(SpanArenaTest, SetCounterUpdatesOpenSpan) {
  SpanArena arena(TestContext(), 1);
  const int index = arena.Start(SpanName::kRefine);
  arena.SetCounter(index, 123);
  arena.End(index);
  EXPECT_EQ(arena.span(static_cast<size_t>(index)).counter, 123u);
}

// --- MintTraceContext ------------------------------------------------

TEST(SpanMintTest, MintedContextsAreValidAndDistinct) {
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext context = MintTraceContext();
    EXPECT_TRUE(context.valid());
    EXPECT_EQ(context.parent_span_id, 0u);
    seen.insert({context.trace_hi, context.trace_lo});
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SpanMintTest, MintIsThreadSafe) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<TraceContext>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&minted, t] {
      minted[static_cast<size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        minted[static_cast<size_t>(t)].push_back(MintTraceContext());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& batch : minted) {
    for (const TraceContext& context : batch) {
      EXPECT_TRUE(context.valid());
      seen.insert({context.trace_hi, context.trace_lo});
    }
  }
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

// --- SpanRing --------------------------------------------------------

SpanTreeRecord MakeTree(uint64_t tag) {
  SpanArena arena(TestContext(), tag);
  const int root = arena.Add(SpanName::kRequest, 0, tag, tag + 100, tag);
  arena.Add(SpanName::kFilter, arena.span_id(root), tag + 10, tag + 50, 3);
  SpanTreeRecord record;
  RenderSpanTree(arena, tag, &record);
  return record;
}

TEST(SpanRingTest, SnapshotReturnsNewestFirst) {
  SpanRing ring(8);
  for (uint64_t i = 1; i <= 5; ++i) ring.Record(MakeTree(i));
  const std::vector<SpanTreeRecord> trees = ring.Snapshot(16);
  ASSERT_EQ(trees.size(), 5u);
  for (size_t i = 0; i < trees.size(); ++i) {
    EXPECT_EQ(trees[i].query_trace_id, 5 - i);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpanRingTest, WraparoundKeepsMostRecentCapacity) {
  SpanRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) ring.Record(MakeTree(i));
  const std::vector<SpanTreeRecord> trees = ring.Snapshot(16);
  ASSERT_EQ(trees.size(), 4u);
  for (size_t i = 0; i < trees.size(); ++i) {
    EXPECT_EQ(trees[i].query_trace_id, 10 - i);
  }
}

TEST(SpanRingTest, ConcurrentRecordAndSnapshotNeverTear) {
  // The seqlock contract: a snapshot taken while writers hammer the
  // ring yields only fully consistent records (every span's timestamps
  // derived from its tag), never a torn mix of two writes. Runs under
  // TSan via tools/check_tsan.sh.
  SpanRing ring(16);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, &stop, w] {
      uint64_t i = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.Record(MakeTree(static_cast<uint64_t>(w + 1) * 1000000 + i));
        ++i;
      }
    });
  }
  // Wait until the writers are actually producing (an empty-ring
  // snapshot loop can outrun thread startup entirely).
  while (ring.recorded() < 64) std::this_thread::yield();
  for (int round = 0; round < 200; ++round) {
    const std::vector<SpanTreeRecord> trees = ring.Snapshot(16);
    for (const SpanTreeRecord& tree : trees) {
      const uint64_t tag = tree.query_trace_id;
      ASSERT_EQ(tree.span_count, 2u);
      EXPECT_EQ(tree.spans[0].start_ns, tag);
      EXPECT_EQ(tree.spans[0].end_ns, tag + 100);
      EXPECT_EQ(tree.spans[0].counter, tag);
      EXPECT_EQ(tree.spans[1].start_ns, tag + 10);
      EXPECT_EQ(tree.spans[1].end_ns, tag + 50);
      EXPECT_EQ(tree.spans[1].parent_span_id, tree.spans[0].span_id);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  EXPECT_GT(ring.recorded(), 0u);
}

// --- Chrome trace export ---------------------------------------------

TEST(TraceExportTest, RendersCompleteEventsGroupedByTraceId) {
  std::vector<SpanTreeRecord> trees;
  trees.push_back(MakeTree(1000));
  trees.push_back(MakeTree(2000));
  trees[1].trace_hi = 0x1111;  // second tree: a different trace
  trees[1].trace_lo = 0x2222;
  const std::string json = RenderChromeTrace(trees);
  // Structural sanity: one JSON object with a traceEvents array, one
  // thread_name metadata event per distinct trace id, one X event per
  // span, µs timestamps.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 4u);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"filter\""), std::string::npos);
  EXPECT_NE(json.find("0123456789abcdeffedcba9876543210"),
            std::string::npos);
}

TEST(TraceExportTest, EmptyInputIsStillValidJson) {
  const std::string json = RenderChromeTrace({});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceExportTest, ClampsCorruptSpanCountAndReversedTimestamps) {
  SpanTreeRecord tree{};
  tree.trace_hi = 1;
  tree.trace_lo = 2;
  tree.span_count = kSpanArenaCapacity + 100;  // hostile count
  tree.spans[0].span_id = 5;
  tree.spans[0].start_ns = 100;
  tree.spans[0].end_ns = 50;  // end before start
  tree.spans[0].name = 200;   // out-of-range name
  const std::string json = RenderChromeTrace({tree});
  // Must not crash or emit negative durations.
  EXPECT_EQ(json.find("-"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""),
            static_cast<size_t>(kSpanArenaCapacity));
}

// --- Profiler --------------------------------------------------------

TEST(ProfilerTest, ArmSampleCollectDisarm) {
  Profiler& profiler = Profiler::Instance();
  ASSERT_FALSE(profiler.armed());
  ASSERT_TRUE(profiler.Arm(1000));
  EXPECT_TRUE(profiler.armed());
  // ITIMER_PROF counts CPU time: spin long enough for several ticks.
  volatile double sink = 0;
  const uint64_t start_ns = MonotonicNowNs();
  while (MonotonicNowNs() - start_ns < 300000000ULL) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  }
  profiler.Disarm();
  EXPECT_FALSE(profiler.armed());
  EXPECT_GT(profiler.samples(), 0u);
  const std::string collapsed = profiler.CollapsedStacks();
  EXPECT_FALSE(collapsed.empty());
  // Collapsed-stack shape: "frame;frame;... count\n" lines.
  EXPECT_NE(collapsed.find(' '), std::string::npos);
  EXPECT_EQ(collapsed.back(), '\n');
  (void)sink;
}

TEST(ProfilerTest, RearmResetsSamples) {
  Profiler& profiler = Profiler::Instance();
  ASSERT_TRUE(profiler.Arm(100));
  profiler.Disarm();
  ASSERT_TRUE(profiler.Arm(100));
  EXPECT_EQ(profiler.samples(), 0u);
  profiler.Disarm();
}

TEST(ProfilerTest, ArmClampsRate) {
  Profiler& profiler = Profiler::Instance();
  ASSERT_TRUE(profiler.Arm(1000000));  // clamped to 1000 Hz
  profiler.Disarm();
  ASSERT_TRUE(profiler.Arm(0));  // clamped to 1 Hz
  profiler.Disarm();
}

}  // namespace
}  // namespace vsim::obs
