// Parameterized property sweeps across the library's central
// invariants: voxelizer volume convergence, metric axioms of the
// minimal matching distance, greedy cover-sequence guarantees, and the
// Lemma-2 bound -- each over a grid of configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "vsim/common/math_util.h"
#include "vsim/common/rng.h"
#include "vsim/distance/centroid_filter.h"
#include "vsim/kernels/kernels.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

// --- Voxelizer volume convergence ---------------------------------------

struct Solid {
  const char* name;
  TriangleMesh (*make)();
  double analytic_volume;
};

TriangleMesh MakeSolidBox() { return MakeBox({1.4, 0.9, 0.6}); }
TriangleMesh MakeSolidSphere() { return MakeSphere(0.7, 48, 24); }
TriangleMesh MakeSolidCylinder() { return MakeCylinder(0.5, 1.2, 64); }
TriangleMesh MakeSolidTorus() { return MakeTorus(0.8, 0.3, 48, 24); }
TriangleMesh MakeSolidCone() { return MakeFrustum(0.6, 0.0, 1.0, 64); }

const Solid kSolids[] = {
    {"box", MakeSolidBox, 1.4 * 0.9 * 0.6},
    {"sphere", MakeSolidSphere, 4.0 / 3.0 * kPi * 0.7 * 0.7 * 0.7},
    {"cylinder", MakeSolidCylinder, kPi * 0.25 * 1.2},
    {"torus", MakeSolidTorus, 2.0 * kPi * kPi * 0.8 * 0.09},
    {"cone", MakeSolidCone, kPi / 3.0 * 0.36},
};

class VoxelVolumeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VoxelVolumeSweep, VoxelVolumeTracksAnalyticVolume) {
  const auto [solid_index, resolution] = GetParam();
  const Solid& solid = kSolids[solid_index];
  const TriangleMesh mesh = solid.make();
  VoxelizerOptions opt;
  opt.resolution = resolution;
  opt.anisotropic_fit = false;  // uniform: voxels have a world volume
  StatusOr<VoxelModel> model = VoxelizeMesh(mesh, opt);
  ASSERT_TRUE(model.ok()) << solid.name;
  const double extent = mesh.Bounds().Extent().MaxComponent();
  const double cell = extent / resolution;
  const double voxel_volume =
      static_cast<double>(model->grid.Count()) * cell * cell * cell;
  // Conservative voxelization overestimates by <= a ~2-voxel surface
  // shell; tolerance shrinks with resolution.
  const double shell = mesh.SurfaceArea() * 2.0 * cell;
  EXPECT_GE(voxel_volume, 0.90 * solid.analytic_volume) << solid.name;
  EXPECT_LE(voxel_volume, solid.analytic_volume + shell) << solid.name;
}

INSTANTIATE_TEST_SUITE_P(
    SolidsAndResolutions, VoxelVolumeSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(12, 20, 32)));

// --- Minimal matching metric axioms ----------------------------------

class MatchingMetricSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatchingMetricSweep, MetricAxiomsHold) {
  const auto [dim, max_cardinality] = GetParam();
  Rng rng(1000 + dim * 13 + max_cardinality);
  auto random_set = [&]() {
    VectorSet s;
    const int n = 1 + static_cast<int>(rng.NextBounded(max_cardinality));
    for (int i = 0; i < n; ++i) {
      FeatureVector v(dim);
      for (double& x : v) x = rng.Uniform(-1, 1);
      s.vectors.push_back(std::move(v));
    }
    return s;
  };
  for (int trial = 0; trial < 25; ++trial) {
    const VectorSet a = random_set();
    const VectorSet b = random_set();
    const VectorSet c = random_set();
    const double ab = VectorSetDistance(a, b);
    const double ba = VectorSetDistance(b, a);
    const double ac = VectorSetDistance(a, c);
    const double bc = VectorSetDistance(b, c);
    EXPECT_NEAR(ab, ba, 1e-10);                         // symmetry
    EXPECT_GE(ab, 0.0);                                 // non-negativity
    EXPECT_NEAR(VectorSetDistance(a, a), 0.0, 1e-10);   // identity
    EXPECT_LE(ac, ab + bc + 1e-9);                      // triangle
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndCardinalities, MatchingMetricSweep,
                         ::testing::Combine(::testing::Values(1, 3, 6, 12),
                                            ::testing::Values(1, 4, 9)));

// --- Cover sequence guarantees across real shapes ------------------------

class CoverSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoverSweep, ErrorDecreasesAndReconstructionIsConsistent) {
  const auto [solid_index, k] = GetParam();
  VoxelizerOptions vox;
  vox.resolution = 12;
  StatusOr<VoxelModel> model = VoxelizeMesh(kSolids[solid_index].make(), vox);
  ASSERT_TRUE(model.ok());
  CoverSequenceOptions opt;
  opt.max_covers = k;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(model->grid, opt);
  ASSERT_TRUE(seq.ok());
  ASSERT_GE(seq->error_history.size(), 1u);
  EXPECT_EQ(seq->error_history.front(), model->grid.Count());
  for (size_t i = 1; i < seq->error_history.size(); ++i) {
    EXPECT_LT(seq->error_history[i], seq->error_history[i - 1]);
  }
  EXPECT_EQ(model->grid.XorCount(ReconstructApproximation(*seq)),
            seq->final_error());
  // The feature vector and vector set agree block-wise.
  const FeatureVector fv = ToFeatureVector(*seq, k);
  const VectorSet vs = ToVectorSet(*seq, k);
  for (size_t i = 0; i < vs.size(); ++i) {
    for (int d = 0; d < 6; ++d) {
      EXPECT_EQ(fv[i * 6 + d], vs.vectors[i][d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SolidsAndK, CoverSweep,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 3, 7)));

// --- Lemma 2 across k and dim ------------------------------------------

class CentroidBoundSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CentroidBoundSweep, LowerBoundNeverExceedsExactDistance) {
  const auto [dim, k] = GetParam();
  Rng rng(2000 + dim * 7 + k);
  for (int trial = 0; trial < 80; ++trial) {
    VectorSet x, y;
    const int nx = 1 + static_cast<int>(rng.NextBounded(k));
    const int ny = 1 + static_cast<int>(rng.NextBounded(k));
    for (int i = 0; i < nx; ++i) {
      FeatureVector v(dim);
      for (double& c : v) c = rng.Uniform(-1, 1);
      x.vectors.push_back(std::move(v));
    }
    for (int i = 0; i < ny; ++i) {
      FeatureVector v(dim);
      for (double& c : v) c = rng.Uniform(-1, 1);
      y.vectors.push_back(std::move(v));
    }
    const double bound = kernels::CentroidFilterBound(ExtendedCentroid(x, k),
                                                ExtendedCentroid(y, k), k);
    EXPECT_LE(bound, VectorSetDistance(x, y) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndK, CentroidBoundSweep,
                         ::testing::Combine(::testing::Values(2, 6, 10),
                                            ::testing::Values(1, 3, 7, 9)));

}  // namespace
}  // namespace vsim
