#include "vsim/voxel/voxel_grid.h"

#include <gtest/gtest.h>

#include "vsim/geometry/transform.h"

namespace vsim {
namespace {

TEST(VoxelGridTest, ConstructionAndIndexing) {
  VoxelGrid g(4, 5, 6);
  EXPECT_EQ(g.nx(), 4);
  EXPECT_EQ(g.ny(), 5);
  EXPECT_EQ(g.nz(), 6);
  EXPECT_FALSE(g.IsCubic());
  EXPECT_EQ(g.size(), 120u);
  EXPECT_TRUE(g.Empty());
  g.Set(1, 2, 3);
  EXPECT_TRUE(g.At(1, 2, 3));
  EXPECT_FALSE(g.At(0, 0, 0));
  EXPECT_EQ(g.Count(), 1u);
  g.Set(1, 2, 3, false);
  EXPECT_TRUE(g.Empty());
}

TEST(VoxelGridTest, CubicConstructor) {
  VoxelGrid g(5);
  EXPECT_TRUE(g.IsCubic());
  EXPECT_EQ(g.size(), 125u);
}

TEST(VoxelGridTest, InBounds) {
  VoxelGrid g(3);
  EXPECT_TRUE(g.InBounds(0, 0, 0));
  EXPECT_TRUE(g.InBounds(2, 2, 2));
  EXPECT_FALSE(g.InBounds(3, 0, 0));
  EXPECT_FALSE(g.InBounds(-1, 0, 0));
}

TEST(VoxelGridTest, SurfaceAndInteriorOfSolidCube) {
  VoxelGrid g(5);
  for (int z = 1; z <= 3; ++z)
    for (int y = 1; y <= 3; ++y)
      for (int x = 1; x <= 3; ++x) g.Set(x, y, z);
  EXPECT_EQ(g.Count(), 27u);
  EXPECT_EQ(g.SurfaceVoxels().size(), 26u);  // all but the center
  const auto interior = g.InteriorVoxels();
  ASSERT_EQ(interior.size(), 1u);
  EXPECT_EQ(interior[0], (VoxelCoord{2, 2, 2}));
}

TEST(VoxelGridTest, VoxelTouchingBorderIsSurface) {
  VoxelGrid g(3);
  // Fill the whole grid: every voxel touches either the border or an
  // unset neighbor -- center voxel (1,1,1) is interior.
  for (int z = 0; z < 3; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 3; ++x) g.Set(x, y, z);
  EXPECT_EQ(g.SurfaceVoxels().size(), 26u);
  EXPECT_EQ(g.InteriorVoxels().size(), 1u);
}

TEST(VoxelGridTest, SetAlgebra) {
  VoxelGrid a(3), b(3);
  a.Set(0, 0, 0);
  a.Set(1, 1, 1);
  b.Set(1, 1, 1);
  b.Set(2, 2, 2);

  VoxelGrid u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.Count(), 3u);

  VoxelGrid i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.At(1, 1, 1));

  VoxelGrid d = a;
  d.SubtractFrom(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.At(0, 0, 0));

  EXPECT_EQ(a.XorCount(b), 2u);
  EXPECT_EQ(a.XorCount(a), 0u);
}

TEST(VoxelGridTest, SetVoxelsEnumeratesAll) {
  VoxelGrid g(4);
  g.Set(0, 0, 0);
  g.Set(3, 3, 3);
  g.Set(1, 2, 0);
  const auto voxels = g.SetVoxels();
  EXPECT_EQ(voxels.size(), 3u);
}

TEST(VoxelGridTest, TightBounds) {
  VoxelGrid g(6);
  VoxelCoord lo, hi;
  EXPECT_FALSE(g.TightBounds(&lo, &hi));
  g.Set(1, 2, 3);
  g.Set(4, 2, 5);
  ASSERT_TRUE(g.TightBounds(&lo, &hi));
  EXPECT_EQ(lo, (VoxelCoord{1, 2, 3}));
  EXPECT_EQ(hi, (VoxelCoord{4, 2, 5}));
}

TEST(VoxelGridTest, TransformIdentity) {
  VoxelGrid g(4);
  g.Set(0, 1, 2);
  g.Set(3, 3, 3);
  StatusOr<VoxelGrid> t = g.Transformed(Mat3::Identity());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, g);
}

TEST(VoxelGridTest, TransformRotationPreservesCount) {
  VoxelGrid g(5);
  g.Set(0, 0, 0);
  g.Set(1, 2, 3);
  g.Set(4, 4, 4);
  for (const Mat3& m : CubeRotationsWithReflections()) {
    StatusOr<VoxelGrid> t = g.Transformed(m);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->Count(), g.Count());
  }
}

TEST(VoxelGridTest, TransformZRotationMapsCorner) {
  VoxelGrid g(3);
  g.Set(2, 1, 0);
  // 90-degree rotation about z: (x,y) -> (-y, x) around the center (1,1).
  Mat3 rot;
  rot.m = {0, -1, 0, 1, 0, 0, 0, 0, 1};
  StatusOr<VoxelGrid> t = g.Transformed(rot);
  ASSERT_TRUE(t.ok());
  // Centered coords of (2,1,0) are (1,0,-1) -> rotated (0,1,-1) -> (1,2,0).
  EXPECT_TRUE(t->At(1, 2, 0));
  EXPECT_EQ(t->Count(), 1u);
}

TEST(VoxelGridTest, TransformRoundTripThroughInverse) {
  VoxelGrid g(6);
  g.Set(0, 2, 5);
  g.Set(1, 1, 1);
  g.Set(5, 0, 3);
  for (const Mat3& m : CubeRotations()) {
    StatusOr<VoxelGrid> once = g.Transformed(m);
    ASSERT_TRUE(once.ok());
    StatusOr<VoxelGrid> back = once->Transformed(m.Transposed());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, g);
  }
}

TEST(VoxelGridTest, TransformRejectsNonCubic) {
  VoxelGrid g(3, 4, 5);
  EXPECT_FALSE(g.Transformed(Mat3::Identity()).ok());
}

TEST(VoxelGridTest, TransformRejectsNonPermutation) {
  VoxelGrid g(3);
  EXPECT_FALSE(g.Transformed(Mat3::RotationZ(0.3)).ok());
  EXPECT_FALSE(g.Transformed(Mat3::Scale(2, 1, 1)).ok());
}

}  // namespace
}  // namespace vsim
