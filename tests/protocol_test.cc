// Wire-protocol codec tests: exact round trips for every frame kind,
// streamed-response reassembly, and a malformed-frame corpus in the
// spirit of tests/corrupt_file_test.cc -- valid frames truncated at
// every length and bit-flipped throughout must always produce clean
// Status errors, never crashes, hangs or runaway allocations (the
// server feeds attacker-controlled bytes straight into these decoders).
#include "vsim/net/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "vsim/common/rng.h"

namespace vsim::net {
namespace {

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

// A representative external-query request touching every field.
ServiceRequest MakeExternalRequest() {
  ServiceRequest req;
  req.kind = QueryKind::kInvariantKnn;
  req.strategy = QueryStrategy::kVectorSetMTree;
  req.object_id = -1;
  req.options.k = 7;
  req.options.eps = 1.25;
  req.with_reflections = true;
  req.options.timeout_seconds = 0.75;
  req.options.approx_level = 2;
  Rng rng(7);
  for (int v = 0; v < 3; ++v) {
    FeatureVector vec(6);
    for (double& d : vec) d = rng.NextDouble();
    req.query.vector_set.vectors.push_back(std::move(vec));
  }
  req.query.centroid = FeatureVector(7);
  for (double& d : req.query.centroid) d = rng.NextDouble();
  req.query.cover_vector = FeatureVector(42);
  for (double& d : req.query.cover_vector) d = rng.NextDouble();
  return req;
}

ServiceResponse MakeResponse(int neighbors, int ids) {
  ServiceResponse resp;
  Rng rng(11);
  for (int i = 0; i < neighbors; ++i) {
    resp.neighbors.push_back({i * 3, rng.NextDouble()});
  }
  for (int i = 0; i < ids; ++i) resp.ids.push_back(i * 5 + 1);
  resp.cache_hit = true;
  resp.generation = 42;
  resp.latency_seconds = 0.002;
  resp.cost.cpu_seconds = 0.001;
  resp.cost.io.AddPageAccesses(17);
  resp.cost.io.AddBytesRead(1234);
  resp.cost.candidates_refined = 9;
  return resp;
}

// Splits a concatenation of frames into (header, payload) pairs,
// asserting each header decodes.
struct RawFrame {
  FrameHeader header;
  std::string payload;
};

std::vector<RawFrame> SplitFrames(const std::string& buffer) {
  std::vector<RawFrame> frames;
  size_t pos = 0;
  while (pos < buffer.size()) {
    RawFrame f;
    EXPECT_TRUE(DecodeFrameHeader(Bytes(buffer) + pos,
                                  kFrameHeaderBytes, &f.header)
                    .ok());
    pos += kFrameHeaderBytes;
    f.payload = buffer.substr(pos, f.header.payload_bytes);
    pos += f.header.payload_bytes;
    frames.push_back(std::move(f));
  }
  EXPECT_EQ(pos, buffer.size());
  return frames;
}

// --- round trips -----------------------------------------------------

TEST(ProtocolTest, RequestWithExternalQueryRoundTrips) {
  const ServiceRequest req = MakeExternalRequest();
  std::string buffer;
  AppendRequestFrame(99, req, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, FrameType::kRequest);
  EXPECT_EQ(frames[0].header.request_id, 99u);

  ServiceRequest out;
  ASSERT_TRUE(DecodeRequestPayload(Bytes(frames[0].payload),
                                   frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.kind, req.kind);
  EXPECT_EQ(out.strategy, req.strategy);
  EXPECT_EQ(out.object_id, req.object_id);
  EXPECT_EQ(out.options.k, req.options.k);
  EXPECT_EQ(out.options.eps, req.options.eps);
  EXPECT_EQ(out.with_reflections, req.with_reflections);
  EXPECT_EQ(out.options.timeout_seconds, req.options.timeout_seconds);
  EXPECT_EQ(out.options.approx_level, req.options.approx_level);
  ASSERT_EQ(out.query.vector_set.size(), req.query.vector_set.size());
  for (size_t v = 0; v < req.query.vector_set.vectors.size(); ++v) {
    EXPECT_EQ(out.query.vector_set.vectors[v],
              req.query.vector_set.vectors[v]);
  }
  EXPECT_EQ(out.query.centroid, req.query.centroid);
  EXPECT_EQ(out.query.cover_vector, req.query.cover_vector);
}

TEST(ProtocolTest, StoredIdRequestCarriesNoQueryPayload) {
  ServiceRequest req;
  req.object_id = 17;
  std::string by_id;
  AppendRequestFrame(1, req, &by_id);
  std::string external;
  AppendRequestFrame(1, MakeExternalRequest(), &external);
  EXPECT_LT(by_id.size(), external.size());

  const std::vector<RawFrame> frames = SplitFrames(by_id);
  ASSERT_EQ(frames.size(), 1u);
  ServiceRequest out;
  ASSERT_TRUE(DecodeRequestPayload(Bytes(frames[0].payload),
                                   frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.object_id, 17);
  EXPECT_EQ(out.query.vector_set.size(), 0u);
}

TEST(ProtocolTest, StatusFrameRoundTripsCodeAndMessage) {
  std::string buffer;
  AppendStatusFrame(7, Status::Unavailable("queue full"), &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, FrameType::kStatus);
  Status remote;
  ASSERT_TRUE(DecodeStatusPayload(Bytes(frames[0].payload),
                                  frames[0].payload.size(), &remote)
                  .ok());
  EXPECT_EQ(remote.code(), StatusCode::kUnavailable);
  EXPECT_EQ(remote.message(), "queue full");
}

TEST(ProtocolTest, InfoRoundTrips) {
  ServerInfo info;
  info.generation = 3;
  info.object_count = 250;
  info.num_covers = 9;
  info.cover_resolution = 12;
  info.histogram_cells = 4;
  info.histogram_resolution = 20;
  info.extract_histograms = true;
  info.anisotropic_fit = false;
  info.cover_search = CoverSequenceOptions::Search::kBeam;
  std::string buffer;
  AppendInfoResponseFrame(5, info, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  ServerInfo out;
  ASSERT_TRUE(DecodeInfoResponsePayload(Bytes(frames[0].payload),
                                        frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.generation, info.generation);
  EXPECT_EQ(out.object_count, info.object_count);
  EXPECT_EQ(out.num_covers, info.num_covers);
  EXPECT_EQ(out.cover_resolution, info.cover_resolution);
  EXPECT_EQ(out.histogram_cells, info.histogram_cells);
  EXPECT_EQ(out.histogram_resolution, info.histogram_resolution);
  EXPECT_EQ(out.extract_histograms, info.extract_histograms);
  EXPECT_EQ(out.anisotropic_fit, info.anisotropic_fit);
  EXPECT_EQ(out.cover_search, info.cover_search);
}

// A trace with every field distinct, for exact round-trip checks.
obs::QueryTrace MakeTrace(uint64_t id) {
  obs::QueryTrace t{};
  t.trace_id = id;
  t.generation = 3;
  t.kind = static_cast<uint8_t>(QueryKind::kInvariantKnn);
  t.strategy = static_cast<uint8_t>(QueryStrategy::kVectorSetMTree);
  t.cache_hit = 1;
  t.status_code = static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
  t.k = 10;
  t.eps = 0.5;
  t.queue_seconds = 0.001;
  t.total_seconds = 0.025;
  t.cpu_seconds = 0.02;
  t.filter_seconds = 0.004;
  t.refine_seconds = 0.016;
  t.filter_hits = 37;
  t.candidates_refined = 12;
  t.hungarian_invocations = 12;
  t.page_accesses = 88;
  t.bytes_read = 4096;
  t.approx_level = 2;
  t.approx_pruned = 250;
  return t;
}

TEST(ProtocolTest, StatsRequestRoundTrips) {
  StatsRequest req;
  req.max_traces = 17;
  req.slow_only = true;
  std::string buffer;
  AppendStatsRequestFrame(9, req, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, FrameType::kStatsRequest);
  StatsRequest out;
  ASSERT_TRUE(DecodeStatsRequestPayload(Bytes(frames[0].payload),
                                        frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.max_traces, 17u);
  EXPECT_TRUE(out.slow_only);
}

TEST(ProtocolTest, StatsResponseRoundTripsTextAndTraces) {
  StatsResponse resp;
  resp.metrics_text = "# HELP vsim_requests_completed_total x\n"
                      "vsim_requests_completed_total 7\n";
  resp.traces.push_back(MakeTrace(101));
  resp.traces.push_back(MakeTrace(102));
  resp.traces[1].cache_hit = 0;
  resp.traces[1].status_code = 0;
  std::string buffer;
  AppendStatsResponseFrame(12, resp, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, FrameType::kStatsResponse);
  StatsResponse out;
  ASSERT_TRUE(DecodeStatsResponsePayload(Bytes(frames[0].payload),
                                         frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.metrics_text, resp.metrics_text);
  ASSERT_EQ(out.traces.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const obs::QueryTrace& a = resp.traces[i];
    const obs::QueryTrace& b = out.traces[i];
    EXPECT_EQ(b.trace_id, a.trace_id);
    EXPECT_EQ(b.generation, a.generation);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.strategy, a.strategy);
    EXPECT_EQ(b.cache_hit, a.cache_hit);
    EXPECT_EQ(b.status_code, a.status_code);
    EXPECT_EQ(b.k, a.k);
    EXPECT_EQ(b.eps, a.eps);
    EXPECT_EQ(b.queue_seconds, a.queue_seconds);
    EXPECT_EQ(b.total_seconds, a.total_seconds);
    EXPECT_EQ(b.cpu_seconds, a.cpu_seconds);
    EXPECT_EQ(b.filter_seconds, a.filter_seconds);
    EXPECT_EQ(b.refine_seconds, a.refine_seconds);
    EXPECT_EQ(b.filter_hits, a.filter_hits);
    EXPECT_EQ(b.candidates_refined, a.candidates_refined);
    EXPECT_EQ(b.hungarian_invocations, a.hungarian_invocations);
    EXPECT_EQ(b.page_accesses, a.page_accesses);
    EXPECT_EQ(b.bytes_read, a.bytes_read);
    EXPECT_EQ(b.approx_level, a.approx_level);
    EXPECT_EQ(b.approx_pruned, a.approx_pruned);
  }
}

// Trailing bytes the current request encoder emits after the
// ObjectRepr: [approx_level u32][trace_hi u64][trace_lo u64]
// [parent_span_id u64] (docs/PROTOCOL.md §12).
constexpr size_t kRequestTraceBlockBytes = 3 * sizeof(uint64_t);
constexpr size_t kRequestTrailingBytes =
    sizeof(uint32_t) + kRequestTraceBlockBytes;

TEST(ProtocolTest, LegacyRequestWithoutApproxLevelDecodesToZero) {
  // A pre-approx client's request payload stops right after the
  // ObjectRepr; the tolerant decode must yield approx_level 0 (exact
  // search) and an empty trace context, mirroring the feature_flags
  // evolution pattern.
  const ServiceRequest req = MakeExternalRequest();
  std::string buffer;
  AppendRequestFrame(31, req, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  const std::string legacy = frames[0].payload.substr(
      0, frames[0].payload.size() - kRequestTrailingBytes);
  ServiceRequest out;
  ASSERT_TRUE(DecodeRequestPayload(Bytes(legacy), legacy.size(), &out).ok());
  EXPECT_EQ(out.options.approx_level, 0);
  EXPECT_FALSE(out.trace.valid());
  EXPECT_EQ(out.options.k, req.options.k);
  ASSERT_EQ(out.query.vector_set.size(), req.query.vector_set.size());
}

TEST(ProtocolTest, LegacyRequestWithoutTraceContextDecodesToZero) {
  // A pre-tracing client stops after approx_level; the trace block is
  // optional and its absence must read back as the zero (invalid)
  // context, never an error.
  ServiceRequest req = MakeExternalRequest();
  req.trace.trace_hi = 0x1111222233334444ULL;
  req.trace.trace_lo = 0x5555666677778888ULL;
  req.trace.parent_span_id = 0x9999aaaabbbbccccULL;
  std::string buffer;
  AppendRequestFrame(32, req, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);

  // Full payload round-trips the context.
  ServiceRequest full;
  ASSERT_TRUE(DecodeRequestPayload(Bytes(frames[0].payload),
                                   frames[0].payload.size(), &full)
                  .ok());
  EXPECT_EQ(full.trace.trace_hi, req.trace.trace_hi);
  EXPECT_EQ(full.trace.trace_lo, req.trace.trace_lo);
  EXPECT_EQ(full.trace.parent_span_id, req.trace.parent_span_id);

  // Pre-tracing truncation (approx_level kept) decodes with zeros.
  const std::string legacy = frames[0].payload.substr(
      0, frames[0].payload.size() - kRequestTraceBlockBytes);
  ServiceRequest out;
  ASSERT_TRUE(DecodeRequestPayload(Bytes(legacy), legacy.size(), &out).ok());
  EXPECT_EQ(out.options.approx_level, req.options.approx_level);
  EXPECT_FALSE(out.trace.valid());
  EXPECT_EQ(out.trace.parent_span_id, 0u);
}

// Sizes of the optional trailing blocks a current stats encoder emits
// after the fixed trace records, newest block last (docs/PROTOCOL.md
// §12): per-trace approx records, per-trace 16-byte trace ids, the
// span-tree block, the profiler text block.
constexpr size_t kApproxRecordBytes = sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kTraceIdRecordBytes = 2 * sizeof(uint64_t);
size_t EmptySpanBlockBytes() { return sizeof(uint32_t); }
size_t EmptyProfileBlockBytes() { return sizeof(uint32_t); }

TEST(ProtocolTest, LegacyStatsResponseWithoutApproxBlockDecodesToZero) {
  // A pre-approx server's stats payload ends after the fixed trace
  // records; every trailing block (approx, trace ids, span trees,
  // profile) is optional and their absence must read back as zeros.
  StatsResponse resp;
  resp.metrics_text = "vsim_requests_completed_total 1\n";
  resp.traces.push_back(MakeTrace(201));
  resp.traces.push_back(MakeTrace(202));
  std::string buffer;
  AppendStatsResponseFrame(13, resp, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  const size_t trailing =
      resp.traces.size() * (kApproxRecordBytes + kTraceIdRecordBytes) +
      EmptySpanBlockBytes() + EmptyProfileBlockBytes();
  const std::string legacy =
      frames[0].payload.substr(0, frames[0].payload.size() - trailing);
  StatsResponse out;
  ASSERT_TRUE(
      DecodeStatsResponsePayload(Bytes(legacy), legacy.size(), &out).ok());
  ASSERT_EQ(out.traces.size(), 2u);
  for (const obs::QueryTrace& t : out.traces) {
    EXPECT_EQ(t.approx_level, 0);
    EXPECT_EQ(t.approx_pruned, 0u);
    EXPECT_EQ(t.trace_hi, 0u);
    EXPECT_EQ(t.trace_lo, 0u);
    EXPECT_EQ(t.filter_hits, 37u);  // fixed records still decode fully
  }
  EXPECT_TRUE(out.span_trees.empty());
  EXPECT_TRUE(out.profile_text.empty());
}

TEST(ProtocolTest, LegacyStatsResponseWithoutSpanBlocksDecodesEmpty) {
  // A server that knows approx but not tracing stops after the approx
  // block: trace ids read as zero, span trees and profile text as
  // empty -- tolerant trailing-field evolution, no version bump.
  StatsResponse resp;
  resp.metrics_text = "x 1\n";
  resp.traces.push_back(MakeTrace(301));
  resp.traces[0].trace_hi = 0xdeadbeefULL;
  resp.traces[0].trace_lo = 0xfeedfaceULL;
  std::string buffer;
  AppendStatsResponseFrame(14, resp, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  const size_t trailing = resp.traces.size() * kTraceIdRecordBytes +
                          EmptySpanBlockBytes() + EmptyProfileBlockBytes();
  const std::string legacy =
      frames[0].payload.substr(0, frames[0].payload.size() - trailing);
  StatsResponse out;
  ASSERT_TRUE(
      DecodeStatsResponsePayload(Bytes(legacy), legacy.size(), &out).ok());
  ASSERT_EQ(out.traces.size(), 1u);
  EXPECT_EQ(out.traces[0].approx_level, 2);  // approx block still present
  EXPECT_EQ(out.traces[0].trace_hi, 0u);     // trace ids truncated away
  EXPECT_EQ(out.traces[0].trace_lo, 0u);
  EXPECT_TRUE(out.span_trees.empty());
  EXPECT_TRUE(out.profile_text.empty());
}

TEST(ProtocolTest, StatsResponseRoundTripsSpanTreesAndProfile) {
  StatsResponse resp;
  resp.metrics_text = "x 1\n";
  resp.traces.push_back(MakeTrace(401));
  resp.traces[0].trace_hi = 0x0102030405060708ULL;
  resp.traces[0].trace_lo = 0x1112131415161718ULL;
  obs::SpanTreeRecord tree{};
  tree.trace_hi = 0x0102030405060708ULL;
  tree.trace_lo = 0x1112131415161718ULL;
  tree.query_trace_id = 401;
  tree.span_count = 2;
  tree.spans_dropped = 3;
  tree.spans[0].span_id = 77;
  tree.spans[0].parent_span_id = 0;
  tree.spans[0].start_ns = 1000;
  tree.spans[0].end_ns = 9000;
  tree.spans[0].counter = 12;
  tree.spans[0].name = static_cast<uint8_t>(obs::SpanName::kRequest);
  tree.spans[1].span_id = 78;
  tree.spans[1].parent_span_id = 77;
  tree.spans[1].start_ns = 2000;
  tree.spans[1].end_ns = 4000;
  tree.spans[1].counter = 5;
  tree.spans[1].name = static_cast<uint8_t>(obs::SpanName::kFilter);
  resp.span_trees.push_back(tree);
  resp.profile_text = "main;Worker;Hungarian 17\n";
  std::string buffer;
  AppendStatsResponseFrame(15, resp, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  StatsResponse out;
  ASSERT_TRUE(DecodeStatsResponsePayload(Bytes(frames[0].payload),
                                         frames[0].payload.size(), &out)
                  .ok());
  ASSERT_EQ(out.traces.size(), 1u);
  EXPECT_EQ(out.traces[0].trace_hi, resp.traces[0].trace_hi);
  EXPECT_EQ(out.traces[0].trace_lo, resp.traces[0].trace_lo);
  ASSERT_EQ(out.span_trees.size(), 1u);
  const obs::SpanTreeRecord& got = out.span_trees[0];
  EXPECT_EQ(got.trace_hi, tree.trace_hi);
  EXPECT_EQ(got.trace_lo, tree.trace_lo);
  EXPECT_EQ(got.query_trace_id, tree.query_trace_id);
  ASSERT_EQ(got.span_count, 2u);
  EXPECT_EQ(got.spans_dropped, 3u);
  for (uint32_t i = 0; i < got.span_count; ++i) {
    EXPECT_EQ(got.spans[i].span_id, tree.spans[i].span_id);
    EXPECT_EQ(got.spans[i].parent_span_id, tree.spans[i].parent_span_id);
    EXPECT_EQ(got.spans[i].start_ns, tree.spans[i].start_ns);
    EXPECT_EQ(got.spans[i].end_ns, tree.spans[i].end_ns);
    EXPECT_EQ(got.spans[i].counter, tree.spans[i].counter);
    EXPECT_EQ(got.spans[i].name, tree.spans[i].name);
  }
  EXPECT_EQ(out.profile_text, resp.profile_text);
}

TEST(ProtocolTest, StatsRequestRoundTripsSpanAndProfileFields) {
  StatsRequest req;
  req.max_traces = 5;
  req.slow_only = true;
  req.include_spans = true;
  req.profile_op = kProfileArm;
  req.profile_hz = 250;
  std::string buffer;
  AppendStatsRequestFrame(16, req, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  StatsRequest out;
  ASSERT_TRUE(DecodeStatsRequestPayload(Bytes(frames[0].payload),
                                        frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.max_traces, 5u);
  EXPECT_TRUE(out.slow_only);
  EXPECT_TRUE(out.include_spans);
  EXPECT_EQ(out.profile_op, kProfileArm);
  EXPECT_EQ(out.profile_hz, 250u);

  // A pre-tracing client stops after slow_only: the §12 fields must
  // default off, never error.
  constexpr size_t kStatsTrailing =
      2 * sizeof(uint8_t) + sizeof(uint32_t);
  const std::string legacy = frames[0].payload.substr(
      0, frames[0].payload.size() - kStatsTrailing);
  StatsRequest legacy_out;
  ASSERT_TRUE(
      DecodeStatsRequestPayload(Bytes(legacy), legacy.size(), &legacy_out)
          .ok());
  EXPECT_EQ(legacy_out.max_traces, 5u);
  EXPECT_TRUE(legacy_out.slow_only);
  EXPECT_FALSE(legacy_out.include_spans);
  EXPECT_EQ(legacy_out.profile_op, kProfileNone);
  EXPECT_EQ(legacy_out.profile_hz, 0u);
}

TEST(ProtocolTest, ResponseEchoesTraceIdAndToleratesLegacyAbsence) {
  ServiceResponse resp = MakeResponse(4, 0);
  resp.trace_hi = 0xaaaabbbbccccddddULL;
  resp.trace_lo = 0x1111222233334444ULL;
  std::string buffer;
  AppendResponseFrames(21, resp, &buffer, 2);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_GE(frames.size(), 2u);  // 4 neighbors at 2/frame
  ResponseAssembler assembler;
  for (size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(assembler
                    .Add(Bytes(frames[i].payload), frames[i].payload.size(),
                         (frames[i].header.flags & kFlagFinal) != 0)
                    .ok());
  }
  ASSERT_TRUE(assembler.complete());
  ServiceResponse out = assembler.Take();
  EXPECT_EQ(out.trace_hi, resp.trace_hi);
  EXPECT_EQ(out.trace_lo, resp.trace_lo);

  // A pre-tracing server's final chunk stops before the echo; absence
  // decodes as zeros.
  ResponseAssembler legacy;
  for (size_t i = 0; i < frames.size(); ++i) {
    std::string payload = frames[i].payload;
    const bool final_chunk = (frames[i].header.flags & kFlagFinal) != 0;
    if (final_chunk) {
      payload = payload.substr(0, payload.size() - kTraceIdRecordBytes);
    }
    ASSERT_TRUE(
        legacy.Add(Bytes(payload), payload.size(), final_chunk).ok());
  }
  ASSERT_TRUE(legacy.complete());
  ServiceResponse legacy_out = legacy.Take();
  EXPECT_EQ(legacy_out.trace_hi, 0u);
  EXPECT_EQ(legacy_out.trace_lo, 0u);
}

TEST(ProtocolTest, InfoFeatureFlagsRoundTripAndLegacyDecode) {
  ServerInfo info;
  info.feature_flags = kFeatureStats;
  std::string buffer;
  AppendInfoResponseFrame(2, info, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  ServerInfo out;
  ASSERT_TRUE(DecodeInfoResponsePayload(Bytes(frames[0].payload),
                                        frames[0].payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.feature_flags, kFeatureStats);

  // A pre-stats server's payload stops before the trailing flags word;
  // the tolerant decode must yield 0, not an error (minor-feature
  // evolution without a wire version break).
  const std::string legacy = frames[0].payload.substr(
      0, frames[0].payload.size() - sizeof(uint32_t));
  ServerInfo legacy_out;
  ASSERT_TRUE(
      DecodeInfoResponsePayload(Bytes(legacy), legacy.size(), &legacy_out)
          .ok());
  EXPECT_EQ(legacy_out.feature_flags, 0u);
}

TEST(ProtocolTest, StatsResponseRejectsOversizedTraceCount) {
  // A header announcing kMaxWireTraces+1 traces in a short payload must
  // hit the cap check, not attempt the reserve.
  std::string payload;
  for (int i = 0; i < 4; ++i) payload.push_back(0);  // empty text
  const uint32_t huge = kMaxWireTraces + 1;
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>(huge >> (8 * i)));
  }
  StatsResponse out;
  const Status st =
      DecodeStatsResponsePayload(Bytes(payload), payload.size(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cap"), std::string::npos);
}

void ExpectResponsesEqual(const ServiceResponse& a,
                          const ServiceResponse& b) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
    EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance);
  }
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.generation, b.generation);
  EXPECT_EQ(a.latency_seconds, b.latency_seconds);
  EXPECT_EQ(a.cost.cpu_seconds, b.cost.cpu_seconds);
  EXPECT_EQ(a.cost.io.page_accesses(), b.cost.io.page_accesses());
  EXPECT_EQ(a.cost.io.bytes_read(), b.cost.io.bytes_read());
  EXPECT_EQ(a.cost.candidates_refined, b.cost.candidates_refined);
}

TEST(ProtocolTest, SingleFrameResponseRoundTrips) {
  const ServiceResponse resp = MakeResponse(5, 3);
  std::string buffer;
  AppendResponseFrames(4, resp, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.flags & kFlagFinal, kFlagFinal);
  ResponseAssembler assembler;
  ASSERT_TRUE(assembler
                  .Add(Bytes(frames[0].payload), frames[0].payload.size(),
                       true)
                  .ok());
  ASSERT_TRUE(assembler.complete());
  ExpectResponsesEqual(assembler.Take(), resp);
}

TEST(ProtocolTest, ChunkedResponseStreamsAndReassembles) {
  // 23 neighbors + 11 ids at 4 results per frame: 6 chunks, uneven tail.
  const ServiceResponse resp = MakeResponse(23, 11);
  std::string buffer;
  AppendResponseFrames(4, resp, &buffer, 4);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 6u);
  ResponseAssembler assembler;
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_FALSE(assembler.complete());
    const bool final_chunk = (frames[i].header.flags & kFlagFinal) != 0;
    EXPECT_EQ(final_chunk, i + 1 == frames.size());
    ASSERT_TRUE(assembler
                    .Add(Bytes(frames[i].payload),
                         frames[i].payload.size(), final_chunk)
                    .ok());
  }
  ASSERT_TRUE(assembler.complete());
  ExpectResponsesEqual(assembler.Take(), resp);
}

TEST(ProtocolTest, EmptyResponseStillProducesAFinalFrame) {
  std::string buffer;
  AppendResponseFrames(1, ServiceResponse{}, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_EQ(frames.size(), 1u);
  ResponseAssembler assembler;
  ASSERT_TRUE(assembler
                  .Add(Bytes(frames[0].payload), frames[0].payload.size(),
                       true)
                  .ok());
  EXPECT_TRUE(assembler.complete());
}

// --- structural violations -------------------------------------------

TEST(ProtocolTest, AssemblerRejectsChunkAfterFinal) {
  const ServiceResponse resp = MakeResponse(2, 0);
  std::string buffer;
  AppendResponseFrames(4, resp, &buffer);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ResponseAssembler assembler;
  ASSERT_TRUE(assembler
                  .Add(Bytes(frames[0].payload), frames[0].payload.size(),
                       true)
                  .ok());
  EXPECT_FALSE(assembler
                   .Add(Bytes(frames[0].payload),
                        frames[0].payload.size(), true)
                   .ok());
}

TEST(ProtocolTest, AssemblerRejectsShortTotalsOnFinalChunk) {
  // Announce 23 neighbors but mark the first 4-entry chunk final.
  const ServiceResponse resp = MakeResponse(23, 0);
  std::string buffer;
  AppendResponseFrames(4, resp, &buffer, 4);
  const std::vector<RawFrame> frames = SplitFrames(buffer);
  ASSERT_GT(frames.size(), 1u);
  ResponseAssembler assembler;
  const Status premature = assembler.Add(
      Bytes(frames[0].payload), frames[0].payload.size(), true);
  EXPECT_FALSE(premature.ok());
  EXPECT_FALSE(assembler.complete());
}

TEST(ProtocolTest, VersionMismatchNamesBothVersions) {
  std::string buffer;
  AppendStatusFrame(1, Status::Internal("x"), &buffer);
  buffer[4] = 9;  // version field low byte
  FrameHeader header;
  const Status st =
      DecodeFrameHeader(Bytes(buffer), kFrameHeaderBytes, &header);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
  EXPECT_NE(st.message().find("version 9"), std::string::npos);
  EXPECT_NE(st.message().find("version " + std::to_string(kWireVersion)),
            std::string::npos);
}

TEST(ProtocolTest, HeaderRejectsBadMagicTypeAndFlags) {
  std::string valid;
  AppendInfoRequestFrame(1, &valid);
  FrameHeader header;

  std::string bad = valid;
  bad[0] = 'X';
  EXPECT_FALSE(DecodeFrameHeader(Bytes(bad), kFrameHeaderBytes, &header).ok());

  bad = valid;
  bad[6] = 0;  // frame type below the valid range
  EXPECT_FALSE(DecodeFrameHeader(Bytes(bad), kFrameHeaderBytes, &header).ok());
  bad[6] = 8;  // above it
  EXPECT_FALSE(DecodeFrameHeader(Bytes(bad), kFrameHeaderBytes, &header).ok());

  bad = valid;
  bad[7] = static_cast<char>(0x80);  // unknown flag bit
  EXPECT_FALSE(DecodeFrameHeader(Bytes(bad), kFrameHeaderBytes, &header).ok());
}

TEST(ProtocolTest, OversizedCountsAreRejectedBeforeAllocation) {
  // A request announcing kMaxWireVectors+1 vectors in a tiny payload
  // must be rejected by the cap check, not by attempting the resize.
  std::string payload;
  payload.push_back(0);  // kind
  payload.push_back(0);  // strategy
  payload.push_back(0);  // with_reflections
  payload.push_back(1);  // has_query
  for (int i = 0; i < 4; ++i) payload.push_back('\xff');  // object_id = -1
  for (int i = 0; i < 4; ++i) payload.push_back(0);       // k
  for (int i = 0; i < 16; ++i) payload.push_back(0);      // eps + timeout
  const uint32_t huge = kMaxWireVectors + 1;
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>(huge >> (8 * i)));
  }
  ServiceRequest out;
  const Status st =
      DecodeRequestPayload(Bytes(payload), payload.size(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cap"), std::string::npos);
}

// --- malformed-frame corpus ------------------------------------------

// Decodes one complete frame buffer the way the server does: header
// first, then the matching payload decoder. Any Status is fine; crashes
// and hangs are not.
void ExerciseFrameBytes(const uint8_t* data, size_t size) {
  FrameHeader header;
  if (size < kFrameHeaderBytes) {
    (void)DecodeFrameHeader(data, size, &header);
    return;
  }
  if (!DecodeFrameHeader(data, kFrameHeaderBytes, &header).ok()) return;
  const uint8_t* payload = data + kFrameHeaderBytes;
  const size_t payload_size =
      std::min<size_t>(header.payload_bytes, size - kFrameHeaderBytes);
  switch (header.type) {
    case FrameType::kRequest: {
      ServiceRequest req;
      (void)DecodeRequestPayload(payload, payload_size, &req);
      break;
    }
    case FrameType::kStatus: {
      Status st;
      (void)DecodeStatusPayload(payload, payload_size, &st);
      break;
    }
    case FrameType::kInfoResponse: {
      ServerInfo info;
      (void)DecodeInfoResponsePayload(payload, payload_size, &info);
      break;
    }
    case FrameType::kResponse: {
      ResponseAssembler assembler;
      (void)assembler.Add(payload, payload_size,
                          (header.flags & kFlagFinal) != 0);
      break;
    }
    case FrameType::kStatsRequest: {
      StatsRequest req;
      (void)DecodeStatsRequestPayload(payload, payload_size, &req);
      break;
    }
    case FrameType::kStatsResponse: {
      StatsResponse resp;
      (void)DecodeStatsResponsePayload(payload, payload_size, &resp);
      break;
    }
    case FrameType::kInfoRequest:
      break;  // no payload to decode
  }
}

std::vector<std::string> CorpusFrames() {
  std::vector<std::string> frames;
  frames.emplace_back();
  AppendRequestFrame(3, MakeExternalRequest(), &frames.back());
  frames.emplace_back();
  {
    ServiceRequest by_id;
    by_id.object_id = 5;
    AppendRequestFrame(4, by_id, &frames.back());
  }
  frames.emplace_back();
  AppendStatusFrame(5, Status::DeadlineExceeded("too slow"), &frames.back());
  frames.emplace_back();
  AppendInfoResponseFrame(6, ServerInfo{}, &frames.back());
  frames.emplace_back();
  AppendResponseFrames(7, MakeResponse(9, 4), &frames.back(), 3);
  frames.emplace_back();
  {
    StatsRequest stats_req;
    stats_req.max_traces = 8;
    AppendStatsRequestFrame(8, stats_req, &frames.back());
  }
  frames.emplace_back();
  {
    StatsResponse stats_resp;
    stats_resp.metrics_text = "vsim_requests_completed_total 3\n";
    stats_resp.traces.push_back(MakeTrace(55));
    AppendStatsResponseFrame(9, stats_resp, &frames.back());
  }
  return frames;
}

TEST(ProtocolCorpusTest, TruncationsAtEveryLengthFailCleanly) {
  for (const std::string& valid : CorpusFrames()) {
    for (size_t len = 0; len <= valid.size(); ++len) {
      ExerciseFrameBytes(Bytes(valid), len);
    }
  }
}

TEST(ProtocolCorpusTest, BitFlipsEverywhereFailCleanly) {
  for (const std::string& valid : CorpusFrames()) {
    for (size_t pos = 0; pos < valid.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = valid;
        mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
        ExerciseFrameBytes(Bytes(mutated), mutated.size());
      }
    }
  }
}

TEST(ProtocolCorpusTest, RandomGarbageFailsCleanly) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng.NextBounded(256), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    ExerciseFrameBytes(Bytes(garbage), garbage.size());
  }
}

}  // namespace
}  // namespace vsim::net
