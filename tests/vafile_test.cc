#include "vsim/index/vafile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

std::vector<FeatureVector> RandomPoints(Rng& rng, int count, int dim) {
  std::vector<FeatureVector> pts(count, FeatureVector(dim));
  for (auto& p : pts) {
    for (double& v : p) v = rng.Uniform(-2, 2);
  }
  return pts;
}

std::vector<int> Iota(int n) {
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(VaFileTest, RejectsBadInput) {
  VaFile va(3);
  EXPECT_FALSE(va.Build({{1, 2, 3}}, {1, 2}).ok());  // size mismatch
  EXPECT_FALSE(va.Build({{1, 2}}, {0}).ok());        // bad dim
  VaFileOptions opt;
  opt.bits_per_dim = 0;
  VaFile bad(3, opt);
  EXPECT_FALSE(bad.Build({{1, 2, 3}}, {0}).ok());
  opt.bits_per_dim = 9;
  VaFile bad2(3, opt);
  EXPECT_FALSE(bad2.Build({{1, 2, 3}}, {0}).ok());
}

TEST(VaFileTest, EmptyFile) {
  VaFile va(2);
  ASSERT_TRUE(va.Build({}, {}).ok());
  EXPECT_TRUE(va.RangeQuery({0, 0}, 1.0).empty());
  EXPECT_TRUE(va.KnnQuery({0, 0}, 3).empty());
}

class VaFileParamTest : public ::testing::TestWithParam<int> {};

TEST_P(VaFileParamTest, RangeQueryMatchesLinearScan) {
  const int bits = GetParam();
  Rng rng(100 + bits);
  const auto pts = RandomPoints(rng, 600, 5);
  VaFileOptions opt;
  opt.bits_per_dim = bits;
  VaFile va(5, opt);
  ASSERT_TRUE(va.Build(pts, Iota(600)).ok());
  for (int q = 0; q < 15; ++q) {
    FeatureVector query(5);
    for (double& v : query) v = rng.Uniform(-2, 2);
    const double eps = rng.Uniform(0.3, 1.5);
    std::vector<int> got = va.RangeQuery(query, eps);
    std::vector<int> expect;
    for (int i = 0; i < 600; ++i) {
      if (EuclideanDistance(pts[i], query) <= eps) expect.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "bits=" << bits;
  }
}

TEST_P(VaFileParamTest, KnnMatchesLinearScan) {
  const int bits = GetParam();
  Rng rng(200 + bits);
  const auto pts = RandomPoints(rng, 500, 6);
  VaFileOptions opt;
  opt.bits_per_dim = bits;
  VaFile va(6, opt);
  ASSERT_TRUE(va.Build(pts, Iota(500)).ok());
  for (int q = 0; q < 10; ++q) {
    FeatureVector query(6);
    for (double& v : query) v = rng.Uniform(-2, 2);
    const int k = 1 + static_cast<int>(rng.NextBounded(8));
    const auto got = va.KnnQuery(query, k);
    std::vector<double> expect;
    for (const auto& p : pts) expect.push_back(EuclideanDistance(p, query));
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].distance, expect[i], 1e-9) << "bits=" << bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, VaFileParamTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(VaFileTest, MoreBitsPruneMoreCandidates) {
  Rng rng(33);
  const auto pts = RandomPoints(rng, 2000, 6);
  const FeatureVector query = pts[0];
  size_t previous = pts.size() + 1;
  for (int bits : {1, 4, 8}) {
    VaFileOptions opt;
    opt.bits_per_dim = bits;
    VaFile va(6, opt);
    ASSERT_TRUE(va.Build(pts, Iota(2000)).ok());
    size_t refined = 0;
    va.KnnQuery(query, 10, nullptr, &refined);
    EXPECT_LT(refined, previous) << "bits=" << bits;
    previous = refined;
  }
  // At 8 bits the pruning must be strong.
  EXPECT_LT(previous, 400u);
}

TEST(VaFileTest, IoAccounting) {
  Rng rng(44);
  const auto pts = RandomPoints(rng, 1000, 6);
  VaFile va(6);
  ASSERT_TRUE(va.Build(pts, Iota(1000)).ok());
  // Approximation file: 6 dims x 4 bits = 3 bytes per record.
  EXPECT_EQ(va.ApproximationBytes(), 3000u);
  IoStats stats;
  size_t refined = 0;
  va.KnnQuery(pts[7], 5, &stats, &refined);
  // Sequential scan of the approximations (1 page) + one random page
  // per refined candidate.
  EXPECT_EQ(stats.page_accesses(), 1 + refined);
  EXPECT_GE(stats.bytes_read(), va.ApproximationBytes());
}

TEST(VaFileTest, DegenerateDimensionsHandled) {
  // All points share dimension 1; quantization must not divide by zero.
  VaFile va(2);
  std::vector<FeatureVector> pts = {{0.0, 5.0}, {1.0, 5.0}, {2.0, 5.0}};
  ASSERT_TRUE(va.Build(pts, {0, 1, 2}).ok());
  const auto nn = va.KnnQuery({1.9, 5.0}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 2);
}

TEST(VaFileTest, MultiStepWithExternalDistance) {
  // Stored points act as a filter for an external exact distance that is
  // 3x the Euclidean distance: filter_scale = 3 keeps the bound valid.
  Rng rng(55);
  const auto pts = RandomPoints(rng, 300, 4);
  VaFile va(4);
  ASSERT_TRUE(va.Build(pts, Iota(300)).ok());
  const FeatureVector query = pts[11];
  auto exact = [&](int id, IoStats*) {
    return 3.0 * EuclideanDistance(query, pts[id]);
  };
  size_t refined = 0;
  const auto got = va.MultiStepKnn(query, 3.0, 5, exact, nullptr, &refined);
  ASSERT_EQ(got.size(), 5u);
  std::vector<double> expect;
  for (const auto& p : pts) expect.push_back(3.0 * EuclideanDistance(query, p));
  std::sort(expect.begin(), expect.end());
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(got[i].distance, expect[i], 1e-9);
  EXPECT_LT(refined, pts.size());

  const auto range = va.MultiStepRange(query, 3.0, 1.0, exact);
  for (int id : range) {
    EXPECT_LE(3.0 * EuclideanDistance(query, pts[id]), 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace vsim
