#include "vsim/index/disk_xtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "vsim/common/rng.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct World {
  XTree memory{1};
  std::vector<FeatureVector> points;
};

World BuildWorld(int dim, int count, uint64_t seed, bool bulk) {
  Rng rng(seed);
  World w{XTree(dim), {}};
  w.points.assign(count, FeatureVector(dim));
  for (auto& p : w.points) {
    for (double& v : p) v = rng.Uniform(-2, 2);
  }
  if (bulk) {
    std::vector<int> ids(count);
    std::iota(ids.begin(), ids.end(), 0);
    EXPECT_TRUE(w.memory.BulkLoad(w.points, ids).ok());
  } else {
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(w.memory.Insert(w.points[i], i).ok());
    }
  }
  return w;
}

class DiskXTreeParamTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DiskXTreeParamTest, QueriesMatchInMemoryTree) {
  const auto [dim, bulk] = GetParam();
  const World w = BuildWorld(dim, 800, 99 + dim, bulk);
  // One file per param instance: ctest runs the instances as separate
  // processes in parallel, so a shared path would race one instance's
  // Write against another's reads (this showed up as a rare flake, and
  // once as a corrupt read that sent the loader into a giant
  // allocation -- see the bounds checks in DiskXTree::Open).
  const std::string path =
      TempPath("disk_tree_" + std::to_string(dim) +
               (bulk ? "_bulk" : "_ins") + ".vsdx");
  ASSERT_TRUE(DiskXTree::Write(w.memory, path, 1024).ok());
  StatusOr<DiskXTree> disk = DiskXTree::Open(path, 32);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->size(), w.memory.size());
  EXPECT_EQ(disk->dim(), dim);

  Rng rng(5);
  for (int q = 0; q < 12; ++q) {
    FeatureVector query(dim);
    for (double& v : query) v = rng.Uniform(-2, 2);
    // Range equivalence.
    const double eps = rng.Uniform(0.5, 2.0);
    auto a = w.memory.RangeQuery(query, eps);
    auto b = disk->RangeQuery(query, eps);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    // k-NN equivalence (distances; ids may differ on exact ties).
    const auto ka = w.memory.KnnQuery(query, 9);
    const auto kb = disk->KnnQuery(query, 9);
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
      EXPECT_NEAR(ka[i].distance, kb[i].distance, 1e-12);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(DimsAndBuilds, DiskXTreeParamTest,
                         ::testing::Combine(::testing::Values(2, 6, 20),
                                            ::testing::Values(false, true)));

TEST(DiskXTreeTest, CacheMakesRepeatQueriesCheap) {
  const World w = BuildWorld(6, 3000, 4242, true);
  const std::string path = TempPath("cache_tree.vsdx");
  ASSERT_TRUE(DiskXTree::Write(w.memory, path, 1024).ok());
  StatusOr<DiskXTree> disk = DiskXTree::Open(path, 256);
  ASSERT_TRUE(disk.ok());
  const FeatureVector query(6, 0.25);
  IoStats cold, warm;
  disk->KnnQuery(query, 10, &cold);
  disk->KnnQuery(query, 10, &warm);
  EXPECT_GT(cold.page_accesses(), 0u);
  EXPECT_EQ(warm.page_accesses(), 0u);  // fully cached second run
  EXPECT_EQ(warm.bytes_read(), cold.bytes_read());  // same nodes parsed
  std::remove(path.c_str());
}

TEST(DiskXTreeTest, TinyPoolStillCorrectJustSlower) {
  const World w = BuildWorld(4, 1500, 7, false);
  const std::string path = TempPath("tiny_pool.vsdx");
  ASSERT_TRUE(DiskXTree::Write(w.memory, path, 512).ok());
  StatusOr<DiskXTree> small = DiskXTree::Open(path, 2);
  StatusOr<DiskXTree> large = DiskXTree::Open(path, 512);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  const FeatureVector query(4, 0.1);
  IoStats io_small, io_large;
  const auto a = small->KnnQuery(query, 5, &io_small);
  // Warm the big pool, then query again: misses collapse.
  large->KnnQuery(query, 5, &io_large);
  IoStats io_large2;
  const auto b = large->KnnQuery(query, 5, &io_large2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-12);
  }
  EXPECT_GE(io_small.page_accesses(), io_large2.page_accesses());
  std::remove(path.c_str());
}

TEST(DiskXTreeTest, EmptyTreeAndErrors) {
  XTree empty(3);
  const std::string path = TempPath("empty_tree.vsdx");
  ASSERT_TRUE(DiskXTree::Write(empty, path).ok());
  StatusOr<DiskXTree> disk = DiskXTree::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_TRUE(disk->KnnQuery({0, 0, 0}, 3).empty());
  EXPECT_TRUE(disk->RangeQuery({0, 0, 0}, 1.0).empty());
  std::remove(path.c_str());

  EXPECT_FALSE(DiskXTree::Open("/nonexistent.vsdx").ok());
}

}  // namespace
}  // namespace vsim
