#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "vsim/cluster/optics.h"
#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

namespace vsim {
namespace {

OpticsResult FromReachabilities(std::vector<double> reach) {
  OpticsResult r;
  for (size_t i = 0; i < reach.size(); ++i) {
    r.ordering.push_back({static_cast<int>(i), reach[i], 0.05});
  }
  return r;
}

void CheckNesting(const ClusterNode& node) {
  for (const ClusterNode& child : node.children) {
    EXPECT_GE(child.begin, node.begin);
    EXPECT_LE(child.end, node.end);
    EXPECT_LE(child.birth_level, node.birth_level);
    CheckNesting(child);
  }
}

TEST(ClusterTreeTest, NestedValleysFormHierarchy) {
  const double inf = std::numeric_limits<double>::infinity();
  // One big valley (level < 5) containing two sub-valleys (level < 1)
  // separated by a level-2 wall, plus a second separate big valley.
  const OpticsResult r = FromReachabilities(
      {inf, 0.5, 0.4, 0.5, 2.0, 0.5, 0.4, 0.5, 9.0, 3.0, 3.2, 3.0, 3.1});
  const auto roots = ExtractClusterTree(r, 2);
  // Everything is density-connected at a level above the 9.0 wall: one
  // component root containing the two macro valleys.
  ASSERT_EQ(roots.size(), 1u);
  CheckNesting(roots[0]);
  ASSERT_EQ(roots[0].children.size(), 2u);
  // The first macro valley spans the first 8 positions and splits into
  // two sub-valleys of 4 across the 2.0 wall.
  const ClusterNode& g = roots[0].children[0];
  EXPECT_EQ(g.begin, 0);
  EXPECT_EQ(g.end, 8);
  ASSERT_EQ(g.children.size(), 2u);
  EXPECT_EQ(g.children[0].size(), 4);
  EXPECT_EQ(g.children[1].size(), 4);
  EXPECT_EQ(roots[0].children[1].size(), 5);
}

TEST(ClusterTreeTest, FlatPlotGivesSingleRoot) {
  const double inf = std::numeric_limits<double>::infinity();
  const OpticsResult r =
      FromReachabilities({inf, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5});
  const auto roots = ExtractClusterTree(r, 2);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].size(), 7);
  EXPECT_TRUE(roots[0].children.empty());
}

TEST(ClusterTreeTest, EmptyAndTinyInputs) {
  OpticsResult empty;
  EXPECT_TRUE(ExtractClusterTree(empty, 2).empty());
  const OpticsResult single =
      FromReachabilities({std::numeric_limits<double>::infinity()});
  EXPECT_TRUE(ExtractClusterTree(single, 2).empty());
}

TEST(ClusterTreeTest, RealClusteredDataBuildsSaneTree) {
  Rng rng(8);
  std::vector<FeatureVector> pts;
  // Two macro-clusters; the first splits into two micro-clusters.
  auto blob = [&](double cx, double sd, int n) {
    for (int i = 0; i < n; ++i) pts.push_back({cx + rng.Gaussian(0, sd)});
  };
  blob(0.0, 0.1, 25);
  blob(1.0, 0.1, 25);
  blob(20.0, 0.4, 30);
  OpticsOptions opt;
  opt.min_pts = 4;
  StatusOr<OpticsResult> r = RunOptics(
      static_cast<int>(pts.size()),
      [&](int i, int j) { return EuclideanDistance(pts[i], pts[j]); }, opt);
  ASSERT_TRUE(r.ok());
  const auto roots = ExtractClusterTree(*r, 4);
  // One density-connected component; below it the two macro clusters,
  // one of which splits into the two micro blobs.
  ASSERT_EQ(roots.size(), 1u);
  CheckNesting(roots[0]);
  std::function<bool(const ClusterNode&)> has_macro_split =
      [&](const ClusterNode& node) {
        if (node.size() >= 45 && node.size() <= 55 &&
            node.children.size() >= 2) {
          return true;
        }
        for (const ClusterNode& child : node.children) {
          if (has_macro_split(child)) return true;
        }
        return false;
      };
  EXPECT_TRUE(has_macro_split(roots[0]));
}

}  // namespace
}  // namespace vsim
