#include "vsim/voxel/normalizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "vsim/common/math_util.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Mat3 a;
  a.m = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  Mat3 vecs;
  Vec3 vals;
  SymmetricEigen3(a, &vecs, &vals);
  EXPECT_NEAR(vals.x, 3.0, 1e-12);
  EXPECT_NEAR(vals.y, 2.0, 1e-12);
  EXPECT_NEAR(vals.z, 1.0, 1e-12);
}

TEST(SymmetricEigenTest, KnownSymmetricMatrix) {
  // [[2,1,0],[1,2,0],[0,0,5]] has eigenvalues 5, 3, 1.
  Mat3 a;
  a.m = {2, 1, 0, 1, 2, 0, 0, 0, 5};
  Mat3 vecs;
  Vec3 vals;
  SymmetricEigen3(a, &vecs, &vals);
  EXPECT_NEAR(vals.x, 5.0, 1e-10);
  EXPECT_NEAR(vals.y, 3.0, 1e-10);
  EXPECT_NEAR(vals.z, 1.0, 1e-10);
  // Eigenvector of eigenvalue 3 is (1,1,0)/sqrt(2) up to sign.
  const Vec3 v{vecs(0, 1), vecs(1, 1), vecs(2, 1)};
  EXPECT_NEAR(std::fabs(v.x), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(v.y), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v.z, 0.0, 1e-8);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Mat3 a;
  a.m = {4, 1, 0.5, 1, 3, -1, 0.5, -1, 2};
  Mat3 vecs;
  Vec3 vals;
  SymmetricEigen3(a, &vecs, &vals);
  // A = V diag(vals) V^T.
  Mat3 diag = Mat3::Scale(vals.x, vals.y, vals.z);
  Mat3 recon = vecs * diag * vecs.Transposed();
  for (int i = 0; i < 9; ++i) EXPECT_NEAR(recon.m[i], a.m[i], 1e-9);
}

TEST(PrincipalAxisTest, AlignsElongatedBox) {
  // A box elongated along a diagonal direction must come back aligned
  // with x after the principal-axis rotation.
  TriangleMesh box = MakeBox({4, 1, 0.5});
  const Mat3 tilt = Mat3::AxisAngle({1, 1, 0}, 0.7);
  box.ApplyTransform(Transform::Linear(tilt));
  const Mat3 pca = PrincipalAxisRotation(box);
  EXPECT_NEAR(pca.Determinant(), 1.0, 1e-9);
  TriangleMesh aligned = box;
  aligned.ApplyTransform(Transform::Linear(pca));
  const Aabb bounds = aligned.Bounds();
  const Vec3 extent = bounds.Extent();
  // Longest extent along x, shortest along z.
  EXPECT_GT(extent.x, extent.y);
  EXPECT_GT(extent.y, extent.z);
  EXPECT_NEAR(extent.x, 4.0, 0.1);
  EXPECT_NEAR(extent.z, 0.5, 0.1);
}

TEST(PrincipalAxisTest, RotationInvarianceOfVoxelization) {
  // PCA + voxelization yields (nearly) the same grid for arbitrary
  // rotations of the same part: full rotation invariance (Section 3.2).
  TriangleMesh a = MakeBox({4, 2, 1});
  TriangleMesh b = a;
  b.ApplyTransform(Transform::Linear(Mat3::AxisAngle({0.3, 1, 0.2}, 1.234)));
  for (TriangleMesh* m : {&a, &b}) {
    m->ApplyTransform(Transform::Linear(PrincipalAxisRotation(*m)));
  }
  VoxelizerOptions opt;
  opt.resolution = 10;
  StatusOr<VoxelModel> ma = VoxelizeMesh(a, opt);
  StatusOr<VoxelModel> mb = VoxelizeMesh(b, opt);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  // Up to voxel discretization (and possible axis sign flips, which the
  // 90-degree-rotation invariance absorbs downstream) the grids agree:
  // compare against the best octahedral orientation.
  size_t best_xor = ma->grid.size();
  for (const VoxelGrid& g : AllOrientations(mb->grid, true)) {
    best_xor = std::min(best_xor, ma->grid.XorCount(g));
  }
  EXPECT_LT(static_cast<double>(best_xor),
            0.15 * static_cast<double>(ma->grid.Count()));
}

TEST(AllOrientationsTest, CountAndFirstElement) {
  VoxelGrid g(4);
  g.Set(0, 1, 2);
  g.Set(3, 0, 0);
  const auto rots = AllOrientations(g, false);
  EXPECT_EQ(rots.size(), 24u);
  EXPECT_EQ(rots.front(), g);
  const auto all = AllOrientations(g, true);
  EXPECT_EQ(all.size(), 48u);
}

TEST(AllOrientationsTest, SymmetricObjectHasFewDistinctOrientations) {
  // A fully symmetric grid (single center voxel) is invariant.
  VoxelGrid g(3);
  g.Set(1, 1, 1);
  for (const VoxelGrid& o : AllOrientations(g, true)) {
    EXPECT_EQ(o, g);
  }
}

}  // namespace
}  // namespace vsim
