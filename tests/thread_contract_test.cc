// Behavioral tests for the annotated concurrency primitives in
// vsim/common/thread_annotations.h: Mutex/MutexLock mutual exclusion,
// CondVar wakeup semantics (including the adopt/release dance that
// keeps std::condition_variable underneath), and the
// ThreadContractChecker's single-thread-at-a-time contract -- nested
// and sequential-hand-off use must pass, concurrent entry must abort.
// The compile-time half (GUARDED_BY/REQUIRES diagnostics) is covered by
// the Clang -Wthread-safety stage of tools/check_static.sh, not here.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "vsim/common/thread_annotations.h"

namespace vsim {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  // Another thread must see the mutex as busy.
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(CondVarTest, WaitReleasesAndReacquiresMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // The mutex must be held again here: reading the flag is safe.
    observed = ready ? 1 : 0;
  });

  // If Wait failed to release the mutex, this Lock would deadlock.
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(ThreadContractCheckerTest, NestedEntryOnOneThreadPasses) {
  ThreadContractChecker checker;
  ScopedThreadContract outer(checker);
  ScopedThreadContract inner(checker);  // re-entry from the owner is legal
}

TEST(ThreadContractCheckerTest, SequentialHandOffBetweenThreadsPasses) {
  // The service does exactly this: one thread builds an index (using the
  // BufferPool), finishes, and a different thread queries it later.
  ThreadContractChecker checker;
  {
    ScopedThreadContract section(checker);
  }
  std::thread second([&] { ScopedThreadContract section(checker); });
  second.join();
  std::thread third([&] { ScopedThreadContract section(checker); });
  third.join();
}

#ifndef NDEBUG
TEST(ThreadContractCheckerDeathTest, ConcurrentEntryAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadContractChecker checker;
        checker.Enter();  // this thread now owns the checker...
        std::thread intruder([&] { checker.Enter(); });  // ...so this aborts
        intruder.join();
      },
      "concurrent use of a single-thread object");
}
#endif

}  // namespace
}  // namespace vsim
