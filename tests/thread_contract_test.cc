// Behavioral tests for the annotated concurrency primitives in
// vsim/common/thread_annotations.h: Mutex/MutexLock mutual exclusion,
// CondVar wakeup semantics (including the adopt/release dance that
// keeps std::condition_variable underneath), and SharedMutex
// reader/writer semantics (concurrent readers, writer exclusion) that
// the buffer pool's latch-per-partition scheme builds on. The
// compile-time half (GUARDED_BY/REQUIRES diagnostics) is covered by
// the Clang -Wthread-safety stage of tools/check_static.sh, not here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "vsim/common/thread_annotations.h"

namespace vsim {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  // Another thread must see the mutex as busy.
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(CondVarTest, WaitReleasesAndReacquiresMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // The mutex must be held again here: reading the flag is safe.
    observed = ready ? 1 : 0;
  });

  // If Wait failed to release the mutex, this Lock would deadlock.
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  mu.LockShared();
  // A second reader gets in while the first holds the shared side...
  bool second_reader_done = false;
  std::thread reader([&] {
    ReaderMutexLock lock(&mu);
    second_reader_done = true;
  });
  reader.join();
  EXPECT_TRUE(second_reader_done);
  // ...and a writer blocks until every reader is gone.
  std::atomic<bool> writer_acquired{false};
  std::thread writer([&] {
    WriterMutexLock lock(&mu);
    writer_acquired.store(true, std::memory_order_seq_cst);
  });
  // Writers cannot sneak past a live reader. (A sleep-based check can
  // only catch the bug, not prove the absence; TSan covers the rest.)
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(writer_acquired.load(std::memory_order_seq_cst));
  mu.UnlockShared();
  writer.join();
  EXPECT_TRUE(writer_acquired.load(std::memory_order_seq_cst));
}

TEST(SharedMutexTest, WriterMutexLockProvidesMutualExclusion) {
  SharedMutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        WriterMutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(SharedMutexTest, MixedReadersAndWritersStayConsistent) {
  // Readers must never observe a torn pair; the writer keeps the two
  // values equal under the exclusive lock.
  SharedMutex mu;
  int a = 0, b = 0;
  std::atomic<int> torn{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ReaderMutexLock lock(&mu);
        if (a != b) torn.fetch_add(1, std::memory_order_seq_cst);
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    WriterMutexLock lock(&mu);
    ++a;
    ++b;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(a, 20000);
  EXPECT_EQ(b, 20000);
}

}  // namespace
}  // namespace vsim
