#include "vsim/features/orientation.h"

#include <gtest/gtest.h>

#include "vsim/common/rng.h"
#include "vsim/core/similarity.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/features/solid_angle_model.h"
#include "vsim/features/volume_model.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

namespace vsim {
namespace {

TEST(BinPermutationTest, IdentityMapsEveryBinToItself) {
  const std::vector<int> perm = HistogramBinPermutation(3, Mat3::Identity());
  for (size_t b = 0; b < perm.size(); ++b) {
    EXPECT_EQ(perm[b], static_cast<int>(b));
  }
}

TEST(BinPermutationTest, IsBijective) {
  for (const Mat3& m : CubeRotationsWithReflections()) {
    const std::vector<int> perm = HistogramBinPermutation(4, m);
    std::vector<char> seen(perm.size(), 0);
    for (int t : perm) {
      ASSERT_GE(t, 0);
      ASSERT_LT(t, static_cast<int>(perm.size()));
      ASSERT_FALSE(seen[t]);
      seen[t] = 1;
    }
  }
}

TEST(BinPermutationTest, PermuteBinsRoundTripsThroughInverse) {
  Rng rng(3);
  FeatureVector f(27);
  for (double& v : f) v = rng.NextDouble();
  for (const Mat3& m : CubeRotations()) {
    const FeatureVector once = PermuteBins(f, HistogramBinPermutation(3, m));
    const FeatureVector back =
        PermuteBins(once, HistogramBinPermutation(3, m.Transposed()));
    EXPECT_EQ(back, f);
  }
}

// The decisive exactness property: extracting histogram features from a
// transformed voxel grid equals permuting the bins of the original
// features (Section 3.2's "48 permutations of the query object").
TEST(BinPermutationTest, VolumeFeaturesCommuteWithGridTransforms) {
  VoxelizerOptions vox;
  vox.resolution = 12;
  StatusOr<VoxelModel> model =
      VoxelizeParts({MakeBox({2, 1, 0.5}), MakeSphere(0.6, 12, 6)}, vox);
  ASSERT_TRUE(model.ok());
  VolumeModelOptions opt;
  opt.cells_per_dim = 3;
  StatusOr<FeatureVector> base = ExtractVolumeFeatures(model->grid, opt);
  ASSERT_TRUE(base.ok());
  for (const Mat3& m : CubeRotationsWithReflections()) {
    StatusOr<VoxelGrid> rotated = model->grid.Transformed(m);
    ASSERT_TRUE(rotated.ok());
    StatusOr<FeatureVector> direct = ExtractVolumeFeatures(*rotated, opt);
    ASSERT_TRUE(direct.ok());
    const FeatureVector permuted =
        PermuteBins(*base, HistogramBinPermutation(3, m));
    ASSERT_EQ(direct->size(), permuted.size());
    for (size_t b = 0; b < permuted.size(); ++b) {
      EXPECT_NEAR((*direct)[b], permuted[b], 1e-12);
    }
  }
}

TEST(BinPermutationTest, SolidAngleFeaturesCommuteWithGridTransforms) {
  VoxelizerOptions vox;
  vox.resolution = 12;
  StatusOr<VoxelModel> model = VoxelizeMesh(MakeTorus(1.0, 0.4, 20, 10), vox);
  ASSERT_TRUE(model.ok());
  SolidAngleModelOptions opt;
  opt.cells_per_dim = 3;
  opt.kernel_radius = 2;
  StatusOr<FeatureVector> base = ExtractSolidAngleFeatures(model->grid, opt);
  ASSERT_TRUE(base.ok());
  // Spot-check a few non-trivial group elements (full sweep is covered
  // by the volume variant above).
  const auto& group = CubeRotationsWithReflections();
  for (size_t g : {1u, 7u, 23u, 30u, 47u}) {
    StatusOr<VoxelGrid> rotated = model->grid.Transformed(group[g]);
    ASSERT_TRUE(rotated.ok());
    StatusOr<FeatureVector> direct = ExtractSolidAngleFeatures(*rotated, opt);
    ASSERT_TRUE(direct.ok());
    const FeatureVector permuted =
        PermuteBins(*base, HistogramBinPermutation(3, group[g]));
    for (size_t b = 0; b < permuted.size(); ++b) {
      EXPECT_NEAR((*direct)[b], permuted[b], 1e-12) << "element " << g;
    }
  }
}

TEST(CoverTransformTest, PositionRotatesExtentPermutes) {
  // Cover at +x with extents (a, b, c); rotate x->y.
  const std::array<double, 6> f = {0.3, 0.0, 0.0, 0.5, 0.2, 0.1};
  Mat3 rot;  // z-rotation by 90 degrees: (x,y,z) -> (-y,x,z)
  rot.m = {0, -1, 0, 1, 0, 0, 0, 0, 1};
  const std::array<double, 6> t = TransformCoverFeature(f, rot);
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.3, 1e-12);
  EXPECT_NEAR(t[2], 0.0, 1e-12);
  // x-extent and y-extent swap; z stays.
  EXPECT_NEAR(t[3], 0.2, 1e-12);
  EXPECT_NEAR(t[4], 0.5, 1e-12);
  EXPECT_NEAR(t[5], 0.1, 1e-12);
}

TEST(CoverTransformTest, ReflectionFlipsPositionKeepsExtent) {
  const std::array<double, 6> f = {0.3, -0.1, 0.2, 0.5, 0.2, 0.1};
  const std::array<double, 6> t =
      TransformCoverFeature(f, Mat3::Scale(-1, 1, 1));
  EXPECT_NEAR(t[0], -0.3, 1e-12);
  EXPECT_NEAR(t[1], -0.1, 1e-12);
  EXPECT_NEAR(t[3], 0.5, 1e-12);
}

TEST(CoverTransformTest, MatchesGridLevelCoverTransform) {
  // A cuboid cover inside a grid, transformed two ways: (a) transform
  // the 6-d feature; (b) transform the grid, recompute the (single)
  // cover, take its feature. Both must agree for every group element.
  const int r = 8;
  VoxelGrid grid(r);
  const Cover cover{{1, 2, 3}, {4, 3, 6}, true};
  for (int z = cover.lo.z; z <= cover.hi.z; ++z)
    for (int y = cover.lo.y; y <= cover.hi.y; ++y)
      for (int x = cover.lo.x; x <= cover.hi.x; ++x) grid.Set(x, y, z);
  const std::array<double, 6> base = CoverToFeature(cover, r);
  CoverSequenceOptions opt;
  opt.max_covers = 1;
  opt.search = CoverSequenceOptions::Search::kExhaustive;
  for (const Mat3& m : CubeRotationsWithReflections()) {
    StatusOr<VoxelGrid> rotated = grid.Transformed(m);
    ASSERT_TRUE(rotated.ok());
    StatusOr<CoverSequence> seq = ComputeCoverSequence(*rotated, opt);
    ASSERT_TRUE(seq.ok());
    ASSERT_EQ(seq->covers.size(), 1u);
    ASSERT_EQ(seq->final_error(), 0u);
    const std::array<double, 6> direct =
        CoverToFeature(seq->covers[0], r);
    const std::array<double, 6> transformed = TransformCoverFeature(base, m);
    for (int c = 0; c < 6; ++c) {
      EXPECT_NEAR(direct[c], transformed[c], 1e-12);
    }
  }
}

TEST(CoverTransformTest, VectorSetTransformIsIsometry) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    VectorSet a, b;
    for (int i = 0; i < 4; ++i) {
      FeatureVector va(6), vb(6);
      for (double& x : va) x = rng.Uniform(-0.5, 0.5);
      for (double& x : vb) x = rng.Uniform(-0.5, 0.5);
      a.vectors.push_back(std::move(va));
      b.vectors.push_back(std::move(vb));
    }
    const double base = VectorSetDistance(a, b);
    for (size_t g : {3u, 11u, 29u, 41u}) {
      const Mat3& m = CubeRotationsWithReflections()[g];
      EXPECT_NEAR(VectorSetDistance(TransformVectorSet(a, m),
                                    TransformVectorSet(b, m)),
                  base, 1e-9);
    }
  }
}

TEST(InvariantDatabaseTest, InvariantNeverExceedsPlainDistance) {
  ExtractionOptions opt;
  opt.histogram_resolution = 12;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  CadDatabase db(opt);
  ASSERT_TRUE(db.AddObject({MakeBox({2, 1, 0.5})}, 0).ok());
  ASSERT_TRUE(db.AddObject({MakeTorus(1.0, 0.4, 16, 8)}, 1).ok());
  ASSERT_TRUE(db.AddObject({MakeCylinder(0.8, 2.0, 12)}, 2).ok());
  for (ModelType model : {ModelType::kVolume, ModelType::kSolidAngle,
                          ModelType::kCoverSequence, ModelType::kVectorSet}) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        const double inv = db.InvariantDistance(model, i, j, true);
        EXPECT_LE(inv, db.Distance(model, i, j) + 1e-9) << ModelTypeName(model);
        // Fewer transforms cannot give a smaller minimum.
        EXPECT_LE(inv, db.InvariantDistance(model, i, j, false) + 1e-12);
      }
    }
  }
}

TEST(InvariantDatabaseTest, InvariantDistanceIsSymmetric) {
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.cover_resolution = 10;
  opt.num_covers = 4;
  CadDatabase db(opt);
  ASSERT_TRUE(db.AddObject({MakeBox({2, 1, 0.6})}, 0).ok());
  ASSERT_TRUE(db.AddObject({MakeFrustum(1.0, 0.3, 1.5, 10)}, 1).ok());
  // Min over a group closed under inversion, of an isometric action:
  // symmetric in its arguments.
  EXPECT_NEAR(db.InvariantDistance(ModelType::kVectorSet, 0, 1, true),
              db.InvariantDistance(ModelType::kVectorSet, 1, 0, true), 1e-9);
}

}  // namespace
}  // namespace vsim
