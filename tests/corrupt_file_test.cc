// Corrupt- and truncated-file corpus for the persisted-format loaders:
// take *valid* VectorSetStore / PagedFile / CadDatabase files, then
// truncate them at every interesting length and flip bytes throughout,
// asserting the loaders return clean Status errors -- never crashes,
// hangs, runaway allocations or out-of-bounds reads. Complements
// parser_robustness_test.cc (random garbage): mutations of valid files
// exercise the deep, past-the-magic parsing paths that garbage rarely
// reaches. The whole file doubles as a regression corpus for the
// UBSan/ASan stages of tools/check_static.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "vsim/common/rng.h"
#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"
#include "vsim/index/disk_xtree.h"
#include "vsim/index/xtree.h"
#include "vsim/storage/vector_set_store.h"

namespace vsim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Builds a small but multi-page store file and returns its bytes.
std::vector<char> MakeValidStoreFile(const std::string& path) {
  Rng rng(31);
  StatusOr<VectorSetStore> store = VectorSetStore::Create(path, 512, 4);
  EXPECT_TRUE(store.ok());
  for (int i = 0; i < 30; ++i) {
    VectorSet set;
    const int n = 1 + static_cast<int>(rng.NextBounded(4));
    for (int v = 0; v < n; ++v) {
      FeatureVector vec(6);
      for (double& d : vec) d = rng.NextDouble();
      set.vectors.push_back(std::move(vec));
    }
    EXPECT_TRUE(store->Append(set).ok());
  }
  EXPECT_TRUE(store->Flush().ok());
  return ReadFile(path);
}

// Opens a (possibly corrupt) store and drags every reachable record
// through Get(); all failures must be Status errors.
void ExerciseStore(const std::string& path) {
  StatusOr<VectorSetStore> store = VectorSetStore::Open(path, 4);
  if (!store.ok()) return;  // clean rejection is fine
  for (int id = 0; id < static_cast<int>(store->size()); ++id) {
    (void)store->Get(id);  // any status; must not crash
  }
}

TEST(CorruptFileTest, TruncatedStoreFilesFailCleanly) {
  const std::string path = TempPath("trunc.vspg");
  const std::vector<char> valid = MakeValidStoreFile(path);
  ASSERT_GT(valid.size(), 1024u);
  // Every truncation point in the header page, then page-granular and
  // odd offsets through the rest.
  for (size_t len = 0; len < valid.size();
       len += (len < 600 ? 7 : 211)) {
    WriteFile(path, std::vector<char>(valid.begin(), valid.begin() + len));
    ExerciseStore(path);
  }
  std::remove(path.c_str());
}

TEST(CorruptFileTest, BitFlippedStoreFilesFailCleanly) {
  const std::string path = TempPath("flip.vspg");
  const std::vector<char> valid = MakeValidStoreFile(path);
  Rng rng(37);
  // Single-byte corruptions sweeping the whole file (headers, record
  // counts, record length fields, payloads).
  for (size_t pos = 0; pos < valid.size(); pos += 13) {
    std::vector<char> mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1 + rng.NextBounded(255)));
    WriteFile(path, mutated);
    ExerciseStore(path);
  }
  // Targeted: maximal record counts / record sizes in every data page
  // (the fields the directory scan trusts most).
  for (size_t page_start = 512; page_start + 4 <= valid.size();
       page_start += 512) {
    std::vector<char> mutated = valid;
    mutated[page_start] = static_cast<char>(0xff);
    mutated[page_start + 1] = static_cast<char>(0xff);
    mutated[page_start + 2] = static_cast<char>(0xff);
    mutated[page_start + 3] = static_cast<char>(0xff);
    WriteFile(path, mutated);
    ExerciseStore(path);
  }
  std::remove(path.c_str());
}

TEST(CorruptFileTest, StoreHeaderPageCountLiesFailCleanly) {
  const std::string path = TempPath("count.vspg");
  std::vector<char> valid = MakeValidStoreFile(path);
  // Inflate the header's page count far past the real file size: reads
  // of the phantom pages must fail with short-read Status errors.
  for (int i = 0; i < 8; ++i) valid[16 + i] = static_cast<char>(0x7f);
  WriteFile(path, valid);
  ExerciseStore(path);
  std::remove(path.c_str());
}

// Regression for a real incident: a corrupt node count sent
// DiskXTree::Open into a ~60 GB directory resize, and cyclic child
// pointers made queries traverse forever. Queries on a mutated tree
// must terminate and never index outside the directory.
TEST(CorruptFileTest, MutatedDiskTreeFilesFailCleanly) {
  Rng rng(43);
  XTree tree(4);
  for (int i = 0; i < 200; ++i) {
    FeatureVector p(4);
    for (double& v : p) v = rng.Uniform(-2, 2);
    ASSERT_TRUE(tree.Insert(p, i).ok());
  }
  const std::string path = TempPath("mutated.vsdx");
  ASSERT_TRUE(DiskXTree::Write(tree, path, 512).ok());
  const std::vector<char> valid = ReadFile(path);
  ASSERT_GT(valid.size(), 1024u);

  FeatureVector query(4, 0.3);
  auto exercise = [&] {
    StatusOr<DiskXTree> disk = DiskXTree::Open(path, 8);
    if (!disk.ok()) return;  // clean rejection is fine
    (void)disk->RangeQuery(query, 1.0);
    (void)disk->KnnQuery(query, 5);
  };
  // Truncations.
  for (size_t len = 0; len < valid.size();
       len += (len < 600 ? 7 : 173)) {
    WriteFile(path, std::vector<char>(valid.begin(), valid.begin() + len));
    exercise();
  }
  // Byte flips everywhere (header, directory, node blobs) plus
  // all-ones stomps of the count/pointer-heavy directory region.
  for (size_t pos = 0; pos < valid.size(); pos += 11) {
    std::vector<char> mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1 + rng.NextBounded(255)));
    WriteFile(path, mutated);
    exercise();
  }
  for (size_t pos = 512; pos + 4 <= valid.size() && pos < 2048; pos += 16) {
    std::vector<char> mutated = valid;
    for (size_t i = 0; i < 4; ++i) mutated[pos + i] = static_cast<char>(0xff);
    WriteFile(path, mutated);
    exercise();
  }
  std::remove(path.c_str());
}

TEST(CorruptFileTest, MutatedDatabaseFilesFailCleanly) {
  ExtractionOptions opt;
  opt.histogram_resolution = 12;
  opt.cover_resolution = 12;
  opt.num_covers = 5;
  const Dataset ds = MakeCarDataset(6, 3);
  StatusOr<CadDatabase> built = CadDatabase::FromDataset(ds, opt);
  ASSERT_TRUE(built.ok());

  const std::string path = TempPath("mutated.vsimdb");
  ASSERT_TRUE(built->Save(path).ok());
  const std::vector<char> valid = ReadFile(path);
  ASSERT_GT(valid.size(), 64u);

  Rng rng(41);
  // Truncations: dense near the front (magic, options, counts), then
  // sparse through the payload.
  for (size_t len = 0; len < valid.size();
       len += (len < 256 ? 5 : valid.size() / 97 + 1)) {
    WriteFile(path, std::vector<char>(valid.begin(), valid.begin() + len));
    StatusOr<CadDatabase> loaded = CadDatabase::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " loaded";
  }
  // Byte flips: loaders may accept payload-only flips (doubles have no
  // checksum), but must never crash; flips in length/count fields must
  // be rejected or parsed to a consistent database.
  for (size_t pos = 0; pos < valid.size();
       pos += valid.size() / 211 + 1) {
    std::vector<char> mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1 + rng.NextBounded(255)));
    WriteFile(path, mutated);
    (void)CadDatabase::Load(path);  // any status; must not crash
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vsim
