#include "vsim/service/query_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "vsim/data/dataset.h"

namespace vsim {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset ds = MakeCarDataset(30, 99);
    ExtractionOptions opt;
    opt.extract_histograms = false;
    opt.cover_resolution = 10;
    opt.num_covers = 5;
    StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt, 0);
    ASSERT_TRUE(db.ok());
    db_ = new CadDatabase(std::move(db).value());
    engine_ = new QueryEngine(db_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static CadDatabase* db_;
  static QueryEngine* engine_;
};

CadDatabase* QueryServiceTest::db_ = nullptr;
QueryEngine* QueryServiceTest::engine_ = nullptr;

// The tentpole correctness claim: many threads hammering the service
// produce exactly the single-threaded engine's answers, with the cache
// on (hits must replay identical payloads) and off.
TEST_F(QueryServiceTest, StressMatchesSerialEngine) {
  const int n = static_cast<int>(db_->size());
  const int k = 5;
  // Serial ground truth per query id, plus a range result per id.
  std::vector<std::vector<Neighbor>> expected_knn(n);
  std::vector<std::vector<int>> expected_range(n);
  const double eps =
      engine_->Knn(QueryStrategy::kVectorSetScan, 0, k).back().distance;
  for (int id = 0; id < n; ++id) {
    expected_knn[id] = engine_->Knn(QueryStrategy::kVectorSetFilter, id, k);
    expected_range[id] =
        engine_->Range(QueryStrategy::kVectorSetFilter, db_->object(id), eps);
  }

  for (const size_t cache_bytes : {size_t{0}, size_t{4} << 20}) {
    QueryServiceOptions options;
    options.num_threads = 4;
    options.cache_bytes = cache_bytes;
    QueryService service(db_, engine_, options);

    constexpr int kClients = 8;
    constexpr int kPerClient = 60;
    std::vector<std::thread> clients;
    std::atomic<int> mismatches{0};
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        for (int q = 0; q < kPerClient; ++q) {
          const int id = (c * 31 + q * 7) % n;
          ServiceRequest request;
          request.object_id = id;
          if (q % 3 == 0) {
            request.kind = QueryKind::kRange;
            request.options.eps = eps;
          } else {
            request.kind = QueryKind::kKnn;
            request.options.k = k;
          }
          StatusOr<ServiceResponse> response = service.Execute(request);
          if (!response.ok()) {
            mismatches.fetch_add(1, std::memory_order_seq_cst);
            continue;
          }
          const bool match = q % 3 == 0
                                 ? response->ids == expected_range[id]
                                 : response->neighbors == expected_knn[id];
          if (!match) mismatches.fetch_add(1, std::memory_order_seq_cst);
        }
      });
    }
    for (auto& client : clients) client.join();
    EXPECT_EQ(mismatches.load(std::memory_order_seq_cst), 0)
        << "cache_bytes=" << cache_bytes;
    const ServiceStatsSnapshot stats = service.Stats();
    EXPECT_EQ(stats.completed,
              static_cast<uint64_t>(kClients) * kPerClient);
    EXPECT_EQ(stats.rejected, 0u);
    if (cache_bytes > 0) {
      // 480 requests over <= 60 distinct (id, kind) pairs: mostly hits.
      EXPECT_GT(stats.cache.hits, 0u);
    }
  }
}

TEST_F(QueryServiceTest, CacheHitReplaysResultWithoutCost) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(db_, engine_, options);
  ServiceRequest request;
  request.object_id = 3;
  request.options.k = 4;
  StatusOr<ServiceResponse> first = service.Execute(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->cost.candidates_refined, 0u);
  StatusOr<ServiceResponse> second = service.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->cost.candidates_refined, 0u);
  EXPECT_EQ(second->neighbors, first->neighbors);
  EXPECT_EQ(service.Stats().cache.hits, 1u);
}

TEST_F(QueryServiceTest, BackpressureRejectsBeyondBound) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.max_queue = 2;
  QueryService service(db_, engine_, options);
  service.Pause();  // nothing dequeues: submissions stay in the queue

  ServiceRequest request;
  request.object_id = 0;
  request.options.k = 3;
  auto first = service.Submit(request);
  auto second = service.Submit(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = service.Submit(request);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.Stats().rejected, 1u);

  service.Resume();
  EXPECT_TRUE(first.value().get().ok());
  EXPECT_TRUE(second.value().get().ok());
  // With the queue drained, admission opens up again.
  auto fourth = service.Submit(request);
  ASSERT_TRUE(fourth.ok());
  EXPECT_TRUE(fourth.value().get().ok());
}

TEST_F(QueryServiceTest, ExpiredDeadlineFailsFast) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(db_, engine_, options);
  service.Pause();
  ServiceRequest request;
  request.object_id = 0;
  request.options.k = 3;
  request.options.timeout_seconds = 1e-3;
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.Resume();
  const StatusOr<ServiceResponse> response = submitted.value().get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Stats().timed_out, 1u);
  EXPECT_EQ(service.Stats().completed, 0u);
}

TEST_F(QueryServiceTest, GenerousDeadlineSucceeds) {
  QueryService service(db_, engine_, {});
  ServiceRequest request;
  request.object_id = 1;
  request.options.k = 3;
  request.options.timeout_seconds = 30.0;
  const StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors.size(), 3u);
  EXPECT_GT(response->latency_seconds, 0.0);
}

TEST_F(QueryServiceTest, InvariantKnnMatchesEngine) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(db_, engine_, options);
  const std::vector<Neighbor> expected = engine_->InvariantKnn(
      QueryStrategy::kVectorSetFilter, db_->object(2), 3, false);
  ServiceRequest request;
  request.kind = QueryKind::kInvariantKnn;
  request.object_id = 2;
  request.options.k = 3;
  const StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->neighbors, expected);
}

TEST_F(QueryServiceTest, ExternalQueryMatchesStoredObject) {
  QueryService service(db_, engine_, {});
  ServiceRequest by_id;
  by_id.object_id = 5;
  by_id.options.k = 4;
  ServiceRequest external;
  external.query = db_->object(5);
  external.options.k = 4;
  const StatusOr<ServiceResponse> a = service.Execute(by_id);
  const StatusOr<ServiceResponse> b = service.Execute(external);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->neighbors, b->neighbors);
  // The digest unifies the two spellings of the same query: the second
  // execution hits the entry the first one inserted.
  EXPECT_TRUE(b->cache_hit);
}

TEST_F(QueryServiceTest, ValidationErrors) {
  QueryService service(db_, engine_, {});
  ServiceRequest bad_k;
  bad_k.object_id = 0;
  bad_k.options.k = 0;
  EXPECT_EQ(service.Execute(bad_k).status().code(),
            StatusCode::kInvalidArgument);

  ServiceRequest bad_id;
  bad_id.object_id = 1000000;
  EXPECT_EQ(service.Execute(bad_id).status().code(), StatusCode::kOutOfRange);

  ServiceRequest empty_external;  // object_id < 0, empty query
  EXPECT_EQ(service.Execute(empty_external).status().code(),
            StatusCode::kInvalidArgument);

  ServiceRequest bad_invariant;
  bad_invariant.kind = QueryKind::kInvariantKnn;
  bad_invariant.strategy = QueryStrategy::kOneVectorXTree;
  bad_invariant.object_id = 0;
  EXPECT_EQ(service.Execute(bad_invariant).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(service.Stats().failed, 4u);
}

// Destruction drains: every future returned by Submit resolves, even
// when the service dies with requests still queued behind in-flight
// ones. (ThreadPool is the last member, so it drains first while the
// cache/stats the tasks touch are still alive.)
TEST_F(QueryServiceTest, DestructionDrainsQueuedAndInFlightRequests) {
  std::vector<std::future<StatusOr<ServiceResponse>>> futures;
  {
    QueryServiceOptions options;
    options.num_threads = 2;
    options.cache_bytes = 0;  // every request does real work
    QueryService service(db_, engine_, options);
    for (int q = 0; q < 24; ++q) {
      ServiceRequest request;
      request.object_id = q % static_cast<int>(db_->size());
      request.options.k = 3;
      auto submitted = service.Submit(request);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    // Destructor runs here with most requests still queued.
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
}

// Same, but with the pool paused: nothing is in flight, everything is
// queued. The pool un-pauses on destruction and still drains.
TEST_F(QueryServiceTest, DestructionDrainsWhilePaused) {
  std::vector<std::future<StatusOr<ServiceResponse>>> futures;
  {
    QueryServiceOptions options;
    options.num_threads = 1;
    QueryService service(db_, engine_, options);
    service.Pause();
    for (int q = 0; q < 8; ++q) {
      ServiceRequest request;
      request.object_id = q;
      request.options.k = 2;
      auto submitted = service.Submit(request);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
}

// Deadline expiry racing completion: with timeouts of the same order as
// execution latency, every request must resolve to exactly one of
// {completed, deadline-exceeded} -- no hangs, no double counting, and
// the stats ledger adds up.
TEST_F(QueryServiceTest, DeadlineExpiryRacesCompletionCleanly) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.cache_bytes = 0;
  QueryService service(db_, engine_, options);
  constexpr int kRequests = 120;
  std::vector<std::future<StatusOr<ServiceResponse>>> futures;
  futures.reserve(kRequests);
  for (int q = 0; q < kRequests; ++q) {
    ServiceRequest request;
    request.object_id = q % static_cast<int>(db_->size());
    request.options.k = 3;
    // Sweep timeouts through the actual latency scale (tens of us to
    // ~ms) so some expire in the queue and some complete first.
    request.options.timeout_seconds = 1e-5 * (1 + q % 200);
    auto submitted = service.Submit(request);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  uint64_t completed = 0, timed_out = 0;
  for (auto& f : futures) {
    const StatusOr<ServiceResponse> response = f.get();
    if (response.ok()) {
      ++completed;
      EXPECT_GT(response->latency_seconds, 0.0);
    } else {
      ASSERT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
      ++timed_out;
    }
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(completed + timed_out, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.timed_out, timed_out);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
}

TEST_F(QueryServiceTest, StatsSnapshotAndPrint) {
  QueryService service(db_, engine_, {});
  ServiceRequest request;
  request.object_id = 0;
  request.options.k = 2;
  ASSERT_TRUE(service.Execute(request).ok());
  ASSERT_TRUE(service.Execute(request).ok());
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GT(stats.latency_p50_s, 0.0);
  EXPECT_GE(stats.latency_p99_s, stats.latency_p50_s);
  // Smoke: the table renders without touching the service.
  std::FILE* sink = fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  service.PrintStats(sink);
  fclose(sink);
}

TEST_F(QueryServiceTest, TraceRecordsPaperCountersWithLemma2Ordering) {
  // Every completed request leaves a QueryTrace in the flight recorder.
  // For the filter strategy the paper's pipeline shape must hold in the
  // counters themselves: the Lemma-2 lower bound admits filter_hits
  // candidates, the optimal multi-step loop refines a subset of them,
  // and at least k refinements are needed to certify a k-NN result.
  QueryServiceOptions options;
  options.cache_bytes = 0;
  QueryService service(db_, engine_, options);
  const int k = 5;
  ServiceRequest request;
  request.object_id = 2;
  request.options.k = k;
  request.strategy = QueryStrategy::kVectorSetFilter;
  StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->neighbors.size(), static_cast<size_t>(k));

  const std::vector<obs::QueryTrace> traces =
      service.flight_recorder().Snapshot(1);
  ASSERT_EQ(traces.size(), 1u);
  const obs::QueryTrace& t = traces[0];
  EXPECT_EQ(t.kind, static_cast<uint8_t>(QueryKind::kKnn));
  EXPECT_EQ(t.strategy,
            static_cast<uint8_t>(QueryStrategy::kVectorSetFilter));
  EXPECT_EQ(t.k, k);
  EXPECT_EQ(t.status_code, 0);
  EXPECT_EQ(t.cache_hit, 0);
  EXPECT_EQ(t.generation, response->generation);
  // Approx stage off (level 0): approx_pruned degenerates to
  // filter_hits, keeping the extended chain intact.
  EXPECT_EQ(t.approx_level, 0);
  EXPECT_EQ(t.approx_pruned, t.filter_hits);
  EXPECT_GE(t.approx_pruned, t.filter_hits);
  EXPECT_GE(t.filter_hits, t.candidates_refined);
  EXPECT_GE(t.candidates_refined, static_cast<uint64_t>(k));
  EXPECT_EQ(t.hungarian_invocations, t.candidates_refined);
  EXPECT_EQ(t.candidates_refined, response->cost.candidates_refined);
  EXPECT_GT(t.total_seconds, 0.0);
  EXPECT_GE(t.total_seconds, t.queue_seconds + t.cpu_seconds - 1e-9);
  EXPECT_GE(t.cpu_seconds, t.refine_seconds);
  EXPECT_GT(t.refine_seconds, 0.0);

  // The same request's counters land on the registry instruments.
  const std::string text = service.metrics().TextExposition();
  EXPECT_NE(text.find("vsim_queries_total{strategy=\"filter\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_filter_hits_total " +
                      std::to_string(t.filter_hits) + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_hungarian_invocations_total " +
                      std::to_string(t.hungarian_invocations) + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_requests_completed_total 1\n"),
            std::string::npos);
}

TEST_F(QueryServiceTest, CompletedRequestPublishesServiceSpanTree) {
  // Every completed request publishes a service-layer span tree into
  // the span ring: a kRequest root (counter: candidates_refined) with
  // kQueue/kAdmission children and, for an engine miss, kFilter and
  // kRefine stage spans whose counters mirror the QueryTrace
  // (docs/OBSERVABILITY.md "Tracing"). A local caller without a trace
  // context still gets a minted trace id.
  QueryServiceOptions options;
  options.cache_bytes = 0;
  QueryService service(db_, engine_, options);
  ServiceRequest request;
  request.object_id = 1;
  request.options.k = 4;
  request.strategy = QueryStrategy::kVectorSetFilter;
  StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->trace_hi | response->trace_lo, 0u);  // minted

  const std::vector<obs::SpanTreeRecord> trees =
      service.span_ring().Snapshot(4);
  ASSERT_EQ(trees.size(), 1u);
  const obs::SpanTreeRecord& tree = trees[0];
  EXPECT_EQ(tree.trace_hi, response->trace_hi);
  EXPECT_EQ(tree.trace_lo, response->trace_lo);
  EXPECT_EQ(tree.spans_dropped, 0u);
  ASSERT_GE(tree.span_count, 4u);

  const obs::QueryTrace trace = service.flight_recorder().Snapshot(1)[0];
  EXPECT_EQ(tree.query_trace_id, trace.trace_id);
  uint64_t root_id = 0;
  bool saw_queue = false, saw_filter = false, saw_refine = false;
  for (uint32_t i = 0; i < tree.span_count; ++i) {
    const obs::SpanRecord& span = tree.spans[i];
    ASSERT_LT(span.name, obs::kNumSpanNames);
    EXPECT_GE(span.end_ns, span.start_ns);
    switch (static_cast<obs::SpanName>(span.name)) {
      case obs::SpanName::kRequest:
        root_id = span.span_id;
        EXPECT_EQ(span.counter, trace.candidates_refined);
        break;
      case obs::SpanName::kQueue:
        saw_queue = true;
        break;
      case obs::SpanName::kFilter:
        saw_filter = true;
        EXPECT_EQ(span.counter, trace.filter_hits);
        break;
      case obs::SpanName::kRefine:
        saw_refine = true;
        EXPECT_EQ(span.counter, trace.hungarian_invocations);
        break;
      default:
        break;
    }
  }
  ASSERT_NE(root_id, 0u);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_filter);
  EXPECT_TRUE(saw_refine);
  // Children hang off the root: the tree nests.
  for (uint32_t i = 0; i < tree.span_count; ++i) {
    const obs::SpanRecord& span = tree.spans[i];
    if (span.span_id != root_id) {
      EXPECT_EQ(span.parent_span_id, root_id);
    }
  }

  // Spans ride the metric registry too.
  const std::string text = service.metrics().TextExposition();
  EXPECT_NE(text.find("vsim_span_trees_recorded_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_span_trees_dropped_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_spans_truncated_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_flight_recorder_slow_threshold_seconds"),
            std::string::npos);
}

TEST_F(QueryServiceTest, SpanRecordingDisabledLeavesRingEmpty) {
  QueryServiceOptions options;
  options.enable_spans = false;
  QueryService service(db_, engine_, options);
  ServiceRequest request;
  request.object_id = 0;
  request.options.k = 2;
  ASSERT_TRUE(service.Execute(request).ok());
  EXPECT_FALSE(service.spans_enabled());
  EXPECT_TRUE(service.span_ring().Snapshot(4).empty());
}

TEST_F(QueryServiceTest, CallerTraceContextFlowsToSpanTreeAndEcho) {
  QueryServiceOptions options;
  options.cache_bytes = 0;
  QueryService service(db_, engine_, options);
  ServiceRequest request;
  request.object_id = 3;
  request.options.k = 2;
  request.trace.trace_hi = 0x00c0ffee00c0ffeeULL;
  request.trace.trace_lo = 0x0badf00d0badf00dULL;
  request.trace.parent_span_id = 777;
  StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->trace_hi, request.trace.trace_hi);
  EXPECT_EQ(response->trace_lo, request.trace.trace_lo);
  const std::vector<obs::SpanTreeRecord> trees =
      service.span_ring().Snapshot(1);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].trace_hi, request.trace.trace_hi);
  EXPECT_EQ(trees[0].trace_lo, request.trace.trace_lo);
  // The remote parent becomes the root span's parent: the service tree
  // nests under the caller's span in the exported timeline.
  bool root_found = false;
  for (uint32_t i = 0; i < trees[0].span_count; ++i) {
    if (trees[0].spans[i].name ==
        static_cast<uint8_t>(obs::SpanName::kRequest)) {
      EXPECT_EQ(trees[0].spans[i].parent_span_id, 777u);
      root_found = true;
    }
  }
  EXPECT_TRUE(root_found);
}

TEST_F(QueryServiceTest, ApproxKnobFlowsToTraceWithExtendedChain) {
  // The per-request knob end to end: QueryOptions.approx_level switches
  // the filter strategy onto the sketch pre-filter pipeline, the trace
  // reports the level, and the extended Lemma-2 invariant chain
  // approx_pruned >= filter_hits >= candidates_refined >= k holds (the
  // approx stage examines every stored object, then the exact stages
  // see only survivors).
  QueryServiceOptions options;
  options.cache_bytes = 0;
  QueryService service(db_, engine_, options);
  const int k = 3;
  ServiceRequest request;
  request.object_id = 2;
  request.options.k = k;
  request.options.approx_level = 1;
  request.strategy = QueryStrategy::kVectorSetFilter;
  StatusOr<ServiceResponse> response = service.Execute(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const std::vector<obs::QueryTrace> traces =
      service.flight_recorder().Snapshot(1);
  ASSERT_EQ(traces.size(), 1u);
  const obs::QueryTrace& t = traces[0];
  EXPECT_EQ(t.status_code, 0);
  EXPECT_EQ(t.approx_level, 1);
  EXPECT_EQ(t.approx_pruned, db_->size());  // stage examined everything
  EXPECT_GE(t.approx_pruned, t.filter_hits);
  EXPECT_GE(t.filter_hits, t.candidates_refined);
  EXPECT_GE(t.candidates_refined, static_cast<uint64_t>(k));
  const std::string text = service.metrics().TextExposition();
  EXPECT_NE(text.find("vsim_approx_pruned_total " +
                      std::to_string(t.approx_pruned) + "\n"),
            std::string::npos);

  // Out-of-range level is rejected at the single validation point.
  request.options.approx_level = 99;
  StatusOr<ServiceResponse> rejected = service.Execute(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, ApproxLevelSplitsCacheKey) {
  // An exact result must never be replayed to an approximate request or
  // vice versa: the approx level is part of the cache key.
  QueryServiceOptions options;
  options.cache_bytes = 4 << 20;
  QueryService service(db_, engine_, options);
  ServiceRequest request;
  request.object_id = 4;
  request.options.k = 3;
  ASSERT_TRUE(service.Execute(request).ok());
  request.options.approx_level = 2;
  StatusOr<ServiceResponse> other = service.Execute(request);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->cache_hit);
  StatusOr<ServiceResponse> replay = service.Execute(request);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->cache_hit);
}

TEST_F(QueryServiceTest, CacheHitTraceSkipsStageCounters) {
  QueryServiceOptions options;
  options.cache_bytes = 4 << 20;
  QueryService service(db_, engine_, options);
  ServiceRequest request;
  request.object_id = 1;
  request.options.k = 3;
  ASSERT_TRUE(service.Execute(request).ok());
  StatusOr<ServiceResponse> hit = service.Execute(request);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->cache_hit);
  const std::vector<obs::QueryTrace> traces =
      service.flight_recorder().Snapshot(2);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].cache_hit, 1);  // newest first: the replay
  EXPECT_EQ(traces[1].cache_hit, 0);
  // Both queries count toward the strategy total, but the replay
  // charges no pipeline work: the Hungarian total reflects only the
  // first execution.
  const std::string text = service.metrics().TextExposition();
  EXPECT_NE(text.find("vsim_queries_total{strategy=\"filter\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("vsim_cache_hits_total 1\n"), std::string::npos);
  const uint64_t hungarian = traces[1].hungarian_invocations;
  EXPECT_NE(text.find("vsim_hungarian_invocations_total " +
                      std::to_string(hungarian) + "\n"),
            std::string::npos);
}

TEST_F(QueryServiceTest, SnapshotGenerationGaugeTracksSwaps) {
  QueryService service(DbSnapshot::Create(CadDatabase(*db_), 0), {});
  EXPECT_NE(service.metrics().TextExposition().find(
                "vsim_snapshot_generation 0\n"),
            std::string::npos);
  ASSERT_TRUE(
      service.SwapSnapshot(DbSnapshot::Create(CadDatabase(*db_), 7)).ok());
  EXPECT_NE(service.metrics().TextExposition().find(
                "vsim_snapshot_generation 7\n"),
            std::string::npos);
}

}  // namespace
}  // namespace vsim
