// Figure 10: evaluation of the classes found by OPTICS in the Car data
// set. The paper inspects cluster contents visually (pictures of the
// parts in each class); our synthetic parts carry family labels, so the
// same inspection is printed as a composition table: for every cluster
// of the best reachability cut, its size and the part families inside.
//
// Paper findings to look for:
//   - the solid-angle model (Fig. 10a) forms some pure clusters but also
//     one mixed cluster (B) and misses e.g. the doors;
//   - the cover sequence model (Fig. 10b) has a mixed class (X) and
//     loses hierarchy/classes;
//   - the vector set model (Fig. 10c) finds pure classes, including
//     ones the cover sequence model misses (F) and sub-structure
//     (G1/G2).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace vsim;

namespace {

void PrintClusterComposition(const char* title, const CadDatabase& db,
                             const OpticsResult& result, const Dataset& ds) {
  std::printf("\n=== %s ===\n", title);
  // Choose the best cut like the figures do.
  const std::vector<int> eval_labels = ds.EvaluationLabels();
  ClusterQuality best;
  double best_score = -2;
  std::vector<int> best_labels;
  std::vector<double> finite;
  for (const OpticsEntry& e : result.ordering) {
    if (std::isfinite(e.reachability)) finite.push_back(e.reachability);
  }
  std::sort(finite.begin(), finite.end());
  for (int s = 1; s <= 32; ++s) {
    const size_t idx = std::min(finite.size() - 1, finite.size() * s / 33);
    const std::vector<int> labels_pos =
        ExtractClusters(result, finite[idx] * 1.0000001, 3);
    const std::vector<int> labels = LabelsByObject(
        result, labels_pos, static_cast<int>(result.ordering.size()));
    const ClusterQuality q = EvaluateClustering(labels, eval_labels);
    if (q.Score() > best_score) {
      best_score = q.Score();
      best = q;
      best_labels = labels;
    }
  }
  // Composition per cluster.
  std::map<int, std::map<std::string, int>> composition;
  for (size_t i = 0; i < best_labels.size(); ++i) {
    if (best_labels[i] >= 0) {
      ++composition[best_labels[i]][ds.objects[i].class_name];
    }
  }
  std::printf("best cut: %d clusters, purity %.2f, ARI %.2f, noise %.0f%%\n",
              best.cluster_count, best.purity, best.adjusted_rand,
              100 * best.noise_fraction);
  for (const auto& [cluster, families] : composition) {
    int size = 0;
    for (const auto& [name, count] : families) size += count;
    std::printf("  class %-2d (%3d objects): ", cluster, size);
    // Largest families first.
    std::vector<std::pair<int, std::string>> sorted;
    for (const auto& [name, count] : families) sorted.push_back({count, name});
    std::sort(sorted.rbegin(), sorted.rend());
    for (size_t f = 0; f < sorted.size(); ++f) {
      std::printf("%s%s x%d", f ? ", " : "", sorted[f].second.c_str(),
                  sorted[f].first);
    }
    std::printf("\n");
  }
  (void)db;
}

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::Config();
  std::printf("Figure 10 reproduction: composition of the classes found "
              "by OPTICS (Car data set, %zu objects)\n",
              cfg.car_objects);

  const Dataset car = bench::CarDataset(cfg);
  ExtractionOptions opt;  // all models
  const CadDatabase db = bench::BuildDatabase(car, opt);

  PrintClusterComposition(
      "(a) solid-angle model", db,
      bench::RunModelOptics(db, ModelType::kSolidAngle, cfg.invariant_car),
      car);
  PrintClusterComposition(
      "(b) cover sequence model (7 covers)", db,
      bench::RunModelOptics(db, ModelType::kCoverSequence, cfg.invariant_car),
      car);
  PrintClusterComposition(
      "(c) vector set model (7 covers)", db,
      bench::RunModelOptics(db, ModelType::kVectorSet, cfg.invariant_car),
      car);
  return 0;
}
