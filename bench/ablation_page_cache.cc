// Ablation G: the page-cache effect the paper's simulation ignores.
// The paper (Section 5.4) concedes that its one-page-per-candidate I/O
// simulation "does not take the idea of page caches into account". We
// store all vector sets in a real paged file behind an LRU buffer pool
// and repeat the Table-2 filter workload with growing pool sizes: page
// accesses are charged only on actual misses.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/core/query_engine.h"
#include "vsim/storage/vector_set_store.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = bench::AircraftDataset(cfg);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  QueryEngine engine(&db);

  const std::string store_path = "/tmp/vsim_ablation_store.vspg";
  const size_t page_size = 4096;

  Rng rng(77);
  std::vector<int> queries;
  for (int q = 0; q < 100; ++q) {
    queries.push_back(static_cast<int>(rng.NextBounded(db.size())));
  }

  std::printf("Ablation G: buffer-pool effect on the filter step's random "
              "I/O\n(aircraft-like, %zu objects, 100 10-NN queries, "
              "4 KiB pages)\n\n",
              db.size());

  // Baseline: the paper's flat simulation (no cache).
  QueryCost flat;
  for (int id : queries) {
    QueryCost cost;
    engine.Knn(QueryStrategy::kVectorSetFilter, id, 10, &cost);
    flat += cost;
  }

  TablePrinter table({"buffer pool", "pages charged", "I/O time",
                      "vs flat simulation"});
  table.AddRow({"none (paper's simulation)",
                std::to_string(flat.io.page_accesses()),
                TablePrinter::Num(flat.IoSeconds(), 2) + " s", "1.00x"});

  for (size_t pool_pages : {4ul, 16ul, 64ul, 256ul}) {
    StatusOr<VectorSetStore> store =
        VectorSetStore::Create(store_path, page_size, pool_pages);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < db.size(); ++i) {
      StatusOr<int> id = store->Append(db.object(static_cast<int>(i)).vector_set);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
    }
    engine.AttachStore(&*store);
    QueryCost cached;
    for (int id : queries) {
      QueryCost cost;
      engine.Knn(QueryStrategy::kVectorSetFilter, id, 10, &cost);
      cached += cost;
    }
    engine.AttachStore(nullptr);
    const double ratio = static_cast<double>(cached.io.page_accesses()) /
                         static_cast<double>(flat.io.page_accesses());
    table.AddRow({std::to_string(pool_pages) + " pages",
                  std::to_string(cached.io.page_accesses()),
                  TablePrinter::Num(cached.IoSeconds(), 2) + " s",
                  TablePrinter::Num(ratio, 2) + "x"});
    std::remove(store_path.c_str());
  }
  table.Print();
  std::printf("\nWith a warm cache the filter step's random accesses "
              "collapse onto the hot pages, closing much of its I/O gap "
              "to the sequential scan (cf. Table 2).\n");
  return 0;
}
