// Remote serving bench: closed-loop k-NN queries through the TCP
// front-end (vsim serve's net::Server) on a loopback socket, at
// 1/2/4/8 concurrent client connections, against the in-process
// QueryService baseline. Each client owns one connection and issues
// one request at a time (no pipelining), so single-connection
// throughput is 1/latency and the scaling column shows how much of the
// emulated I/O wait the thread-per-connection server hides by serving
// connections concurrently.
//
// Reported per connection count: queries/s, p50 and p99 round-trip
// latency (sorted merged per-request latencies), and speedup vs one
// connection. Emits the usual single "JSON: " line for scraping.
//
// The service runs in the same emulated-I/O mode as
// bench_service_throughput (100 us per page, NVMe-era constants), so
// the two benches are directly comparable: the delta between the
// in-process row and the 1-connection row is the wire + socket cost.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/core/query_engine.h"
#include "vsim/net/client.h"
#include "vsim/net/server.h"
#include "vsim/service/query_service.h"

using namespace vsim;

namespace {

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const size_t idx = std::min(
      latencies.size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies.size())));
  return latencies[idx] * 1e3;
}

// `clients` closed-loop threads, each with its own connection, each
// issuing queries_per_client k-NN requests back to back.
RunResult RunRemote(int port, int clients, int queries_per_client,
                    size_t db_size, int k) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<int> failures(clients, 0);
  Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      StatusOr<net::Client> client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures[c] = queries_per_client;
        return;
      }
      Rng rng(1000 + c);
      latencies[c].reserve(queries_per_client);
      for (int q = 0; q < queries_per_client; ++q) {
        ServiceRequest request;
        request.object_id = static_cast<int>(rng.NextBounded(db_size));
        request.k = k;
        Stopwatch one;
        StatusOr<ServiceResponse> response = client->Execute(request);
        if (!response.ok()) {
          ++failures[c];
          continue;
        }
        latencies[c].push_back(one.ElapsedSeconds());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = watch.ElapsedSeconds();

  std::vector<double> merged;
  for (const std::vector<double>& part : latencies) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  int failed = 0;
  for (int f : failures) failed += f;
  if (failed > 0) {
    std::fprintf(stderr, "remote workload dropped %d queries\n", failed);
    std::exit(1);
  }
  RunResult result;
  result.qps = static_cast<double>(merged.size()) / elapsed;
  result.p50_ms = PercentileMs(merged, 0.50);
  result.p99_ms = PercentileMs(merged, 0.99);
  return result;
}

// In-process closed-loop baseline: same workload, no socket.
RunResult RunInProcess(QueryService& service, int queries, size_t db_size,
                      int k) {
  Rng rng(1000);
  std::vector<double> latencies;
  latencies.reserve(queries);
  Stopwatch watch;
  for (int q = 0; q < queries; ++q) {
    ServiceRequest request;
    request.object_id = static_cast<int>(rng.NextBounded(db_size));
    request.k = k;
    Stopwatch one;
    StatusOr<ServiceResponse> response = service.Execute(request);
    if (!response.ok()) {
      std::fprintf(stderr, "baseline query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(one.ElapsedSeconds());
  }
  const double elapsed = watch.ElapsedSeconds();
  RunResult result;
  result.qps = static_cast<double>(latencies.size()) / elapsed;
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p99_ms = PercentileMs(latencies, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig cfg = bench::Config();
  const size_t objects = bench::FullRun() ? cfg.aircraft_objects : 400;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = MakeAircraftDataset(objects, 7);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const QueryEngine engine(&db);

  IoCostParams io_params;
  io_params.seconds_per_page_access = 100e-6;
  io_params.seconds_per_byte = 0.0;

  QueryServiceOptions options;
  options.num_threads = 8;  // enough workers for the widest client count
  options.max_queue = 64;
  options.cache_bytes = 0;  // pure scaling, no memoization
  options.simulate_io_wait = true;
  options.io_params = io_params;
  QueryService service(&db, &engine, options);

  net::Server server(&service);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const int k = 10;
  const int total_queries = bench::FullRun() ? 1600 : 320;
  std::printf("remote throughput: %zu objects, %d 10-NN queries per run,\n"
              "closed-loop clients over loopback TCP, emulated I/O waits "
              "at %.0f us/page\n\n",
              db.size(), total_queries,
              io_params.seconds_per_page_access * 1e6);

  TablePrinter table({"clients", "queries/s", "p50 ms", "p99 ms",
                      "speedup vs 1 conn"});
  const RunResult base =
      RunInProcess(service, total_queries, db.size(), k);
  table.AddRow({"in-process", TablePrinter::Num(base.qps, 0),
                TablePrinter::Num(base.p50_ms, 2),
                TablePrinter::Num(base.p99_ms, 2), ""});

  std::string json = "{\"bench\":\"remote_throughput\",\"objects\":" +
                     std::to_string(db.size()) +
                     ",\"queries\":" + std::to_string(total_queries) +
                     ",\"inprocess_qps\":" + TablePrinter::Num(base.qps, 1) +
                     ",\"connections\":{";
  double qps1 = 0.0;
  double qps4 = 0.0;
  for (const int clients : {1, 2, 4, 8}) {
    const RunResult run = RunRemote(server.port(), clients,
                                    total_queries / clients, db.size(), k);
    if (clients == 1) qps1 = run.qps;
    if (clients == 4) qps4 = run.qps;
    table.AddRow({std::to_string(clients), TablePrinter::Num(run.qps, 0),
                  TablePrinter::Num(run.p50_ms, 2),
                  TablePrinter::Num(run.p99_ms, 2),
                  TablePrinter::Num(run.qps / qps1) + "x"});
    json += (clients == 1 ? "\"" : ",\"") + std::to_string(clients) +
            "\":" + TablePrinter::Num(run.qps, 1);
  }
  table.Print();
  server.Stop();

  const double scaling = qps4 / qps1;
  std::printf("\n4-connection scaling: %.2fx over 1 connection "
              "(wire overhead vs in-process at 1 conn: %.1f%%)\n",
              scaling, 100.0 * (1.0 - qps1 / base.qps));
  json += "},\"speedup_4c\":" + TablePrinter::Num(scaling, 3) + "}";
  return bench::EmitJson(json, bench::JsonOutPath(argc, argv));
}
