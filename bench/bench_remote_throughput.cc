// Remote serving bench: closed-loop k-NN queries through the TCP
// front-end (vsim serve's net::Server) on a loopback socket, at
// 1/2/4/8 concurrent client connections, against the in-process
// QueryService baseline. Each client owns one connection and issues
// one request at a time (no pipelining), so single-connection
// throughput is 1/latency and the scaling column shows how much of the
// emulated I/O wait the thread-per-connection server hides by serving
// connections concurrently.
//
// Reported per connection count: queries/s, p50 and p99 round-trip
// latency (sorted merged per-request latencies), and speedup vs one
// connection. Emits the usual single "JSON: " line for scraping.
//
// The service runs in the same emulated-I/O mode as
// bench_service_throughput (100 us per page, NVMe-era constants), so
// the two benches are directly comparable: the delta between the
// in-process row and the 1-connection row is the wire + socket cost.
//
// Many-connection open-loop mode (--connections N [--transport
// threads|epoll] [--window W]): sweeps connection counts up to N with
// W requests pipelined per connection, driven by a handful of driver
// threads that each own many connections -- the client side must not
// itself be thread-per-connection or it would hit the same knee it is
// measuring. By default both transports run the sweep (the
// thread-per-connection curve capped at 256 connections: past that,
// 2 threads/connection is the knee the reactor exists to avoid) and
// the JSON line carries both curves; BENCH_net.json is checked in from
// such a run. `--transport X` restricts the sweep to one transport.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/core/query_engine.h"
#include "vsim/net/client.h"
#include "vsim/net/server.h"
#include "vsim/service/query_service.h"

using namespace vsim;

namespace {

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const size_t idx = std::min(
      latencies.size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies.size())));
  return latencies[idx] * 1e3;
}

// `clients` closed-loop threads, each with its own connection, each
// issuing queries_per_client k-NN requests back to back.
RunResult RunRemote(int port, int clients, int queries_per_client,
                    size_t db_size, int k) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<int> failures(clients, 0);
  Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      StatusOr<net::Client> client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures[c] = queries_per_client;
        return;
      }
      Rng rng(1000 + c);
      latencies[c].reserve(queries_per_client);
      for (int q = 0; q < queries_per_client; ++q) {
        ServiceRequest request;
        request.object_id = static_cast<int>(rng.NextBounded(db_size));
        request.options.k = k;
        Stopwatch one;
        StatusOr<ServiceResponse> response = client->Execute(request);
        if (!response.ok()) {
          ++failures[c];
          continue;
        }
        latencies[c].push_back(one.ElapsedSeconds());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = watch.ElapsedSeconds();

  std::vector<double> merged;
  for (const std::vector<double>& part : latencies) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  int failed = 0;
  for (int f : failures) failed += f;
  if (failed > 0) {
    std::fprintf(stderr, "remote workload dropped %d queries\n", failed);
    std::exit(1);
  }
  RunResult result;
  result.qps = static_cast<double>(merged.size()) / elapsed;
  result.p50_ms = PercentileMs(merged, 0.50);
  result.p99_ms = PercentileMs(merged, 0.99);
  return result;
}

// In-process closed-loop baseline: same workload, no socket.
RunResult RunInProcess(QueryService& service, int queries, size_t db_size,
                      int k) {
  Rng rng(1000);
  std::vector<double> latencies;
  latencies.reserve(queries);
  Stopwatch watch;
  for (int q = 0; q < queries; ++q) {
    ServiceRequest request;
    request.object_id = static_cast<int>(rng.NextBounded(db_size));
    request.options.k = k;
    Stopwatch one;
    StatusOr<ServiceResponse> response = service.Execute(request);
    if (!response.ok()) {
      std::fprintf(stderr, "baseline query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(one.ElapsedSeconds());
  }
  const double elapsed = watch.ElapsedSeconds();
  RunResult result;
  result.qps = static_cast<double>(latencies.size()) / elapsed;
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p99_ms = PercentileMs(latencies, 0.99);
  return result;
}

// Open-loop run: `connections` connections spread over a few driver
// threads; each round sends a window of `window` pipelined requests on
// every connection, then collects the completions. Latencies are
// per-connection window round-trips.
RunResult RunOpenLoop(int port, int connections, int window, int rounds,
                      size_t db_size, int k) {
  const int drivers = std::min(8, connections);
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(drivers);
  std::vector<int> failures(drivers, 0);
  // The clock starts only once every connection is up: the sweep
  // measures steady-state throughput at N established connections, not
  // the connection ramp (which grows linearly with N and would swamp
  // the high end of the curve).
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  Stopwatch watch;
  for (int d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d]() {
      // Connections d, d+drivers, d+2*drivers, ... belong to driver d.
      const int mine = (connections - d + drivers - 1) / drivers;
      std::vector<net::Client> clients;
      clients.reserve(mine);
      for (int c = 0; c < mine; ++c) {
        StatusOr<net::Client> client =
            net::Client::Connect("127.0.0.1", port);
        if (!client.ok()) {
          std::fprintf(stderr, "connect failed: %s\n",
                       client.status().ToString().c_str());
          ++failures[d];
          ready.fetch_add(1, std::memory_order_release);
          return;
        }
        clients.push_back(std::move(client).value());
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      Rng rng(2000 + d);
      latencies[d].reserve(clients.size() * rounds);
      for (int r = 0; r < rounds; ++r) {
        // Phase A: a window of sends on every connection...
        std::vector<Stopwatch> started(clients.size());
        for (size_t c = 0; c < clients.size(); ++c) {
          started[c] = Stopwatch();
          for (int w = 0; w < window; ++w) {
            ServiceRequest request;
            request.object_id = static_cast<int>(rng.NextBounded(db_size));
            request.options.k = k;
            uint64_t id = 0;
            if (!clients[c].Send(request, &id).ok()) {
              ++failures[d];
              return;
            }
          }
        }
        // ...phase B: collect every window (server answers in order).
        for (size_t c = 0; c < clients.size(); ++c) {
          for (int w = 0; w < window; ++w) {
            StatusOr<ServiceResponse> response = clients[c].Receive();
            if (!response.ok()) {
              std::fprintf(stderr, "receive failed: %s\n",
                           response.status().ToString().c_str());
              ++failures[d];
              return;
            }
          }
          latencies[d].push_back(started[c].ElapsedSeconds());
        }
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < drivers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  watch = Stopwatch();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double elapsed = watch.ElapsedSeconds();

  int failed = 0;
  for (int f : failures) failed += f;
  if (failed > 0) {
    std::fprintf(stderr, "open-loop workload failed on %d drivers\n", failed);
    std::exit(1);
  }
  std::vector<double> merged;
  for (const std::vector<double>& part : latencies) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  RunResult result;
  result.qps = static_cast<double>(connections) *
               static_cast<double>(window) * static_cast<double>(rounds) /
               elapsed;
  result.p50_ms = PercentileMs(merged, 0.50);
  result.p99_ms = PercentileMs(merged, 0.99);
  return result;
}

int ConnectionsMode(const CadDatabase& db, const QueryEngine& engine,
                    const IoCostParams& io_params, int max_connections,
                    int window, const std::string& transport_filter,
                    const std::string& json_path) {
  const int k = 10;
  // Roughly constant work per sweep point; at high connection counts
  // one round already carries thousands of queries.
  const int target_queries = bench::FullRun() ? 8192 : 2048;

  std::printf("remote connection scaling: %zu objects, open-loop, "
              "%d requests pipelined per connection,\n"
              "a few driver threads own all connections; emulated I/O "
              "waits at %.0f us/page\n\n",
              db.size(), window, io_params.seconds_per_page_access * 1e6);

  TablePrinter table({"transport", "connections", "queries/s",
                      "window p50 ms", "window p99 ms"});
  std::string json =
      "{\"bench\":\"remote_connections\",\"objects\":" +
      std::to_string(db.size()) + ",\"window\":" + std::to_string(window) +
      ",\"curves\":{";
  double threads_64_qps = 0.0;
  double epoll_max_qps = 0.0;
  bool first_curve = true;
  for (const net::Transport transport :
       {net::Transport::kThreads, net::Transport::kEpoll}) {
    const std::string name(net::TransportName(transport));
    if (!transport_filter.empty() && transport_filter != name) continue;
    // Past ~256 connections the 2-threads-per-connection server is the
    // knee itself; only the reactor sweeps to the full count.
    const int cap = (transport == net::Transport::kThreads &&
                     transport_filter.empty())
                        ? std::min(max_connections, 256)
                        : max_connections;
    std::vector<int> points = {16, 64, 256, max_connections};
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    points.erase(std::remove_if(points.begin(), points.end(),
                                [cap](int c) { return c > cap; }),
                 points.end());

    json += std::string(first_curve ? "" : ",") + "\"" + name + "\":{";
    first_curve = false;
    bool first_point = true;
    for (const int connections : points) {
      QueryServiceOptions options;
      options.num_threads = 8;
      options.max_queue =
          static_cast<size_t>(connections) * static_cast<size_t>(window) +
          16;  // open-loop: the whole offered load may be queued
      options.cache_bytes = 0;
      options.simulate_io_wait = true;
      options.io_params = io_params;
      QueryService service(&db, &engine, options);

      net::ServerOptions sopts;
      sopts.transport = transport;
      sopts.max_connections = connections + 8;
      sopts.reactor_threads = 2;
      net::Server server(&service, sopts);
      const Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.ToString().c_str());
        return 1;
      }

      const int rounds = std::max(1, target_queries / (connections * window));
      const RunResult run = RunOpenLoop(server.port(), connections, window,
                                        rounds, db.size(), k);
      server.Stop();

      table.AddRow({name, std::to_string(connections),
                    TablePrinter::Num(run.qps, 0),
                    TablePrinter::Num(run.p50_ms, 2),
                    TablePrinter::Num(run.p99_ms, 2)});
      json += std::string(first_point ? "" : ",") + "\"" +
              std::to_string(connections) + "\":" +
              TablePrinter::Num(run.qps, 1);
      first_point = false;
      if (transport == net::Transport::kThreads && connections == 64) {
        threads_64_qps = run.qps;
      }
      if (transport == net::Transport::kEpoll) epoll_max_qps = run.qps;
    }
    json += "}";
  }
  table.Print();
  json += "}";
  if (threads_64_qps > 0.0 && epoll_max_qps > 0.0) {
    // The acceptance claim: the reactor at the full connection count
    // sustains at least the blocking transport's 64-connection rate.
    std::printf("\nepoll @ %d connections: %.0f queries/s vs threads @ 64: "
                "%.0f queries/s (%.2fx)\n",
                max_connections, epoll_max_qps, threads_64_qps,
                epoll_max_qps / threads_64_qps);
    json += ",\"threads_64_qps\":" + TablePrinter::Num(threads_64_qps, 1) +
            ",\"epoll_max_qps\":" + TablePrinter::Num(epoll_max_qps, 1);
  }
  json += "}";
  return bench::EmitJson(json, json_path);
}

}  // namespace

int main(int argc, char** argv) {
  int connections = 0;  // 0 = legacy closed-loop comparison mode
  int window = 4;
  std::string transport_filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      transport_filter = argv[++i];
    }
  }
  if (connections < 0 || window < 1 ||
      (!transport_filter.empty() && transport_filter != "threads" &&
       transport_filter != "epoll")) {
    std::fprintf(stderr,
                 "usage: bench_remote_throughput [--connections N "
                 "[--transport threads|epoll] [--window W]] [--json FILE]\n");
    return 1;
  }
  const bench::BenchConfig cfg = bench::Config();
  const size_t objects = bench::FullRun() ? cfg.aircraft_objects : 400;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = MakeAircraftDataset(objects, 7);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const QueryEngine engine(&db);

  IoCostParams io_params;
  io_params.seconds_per_page_access = 100e-6;
  io_params.seconds_per_byte = 0.0;

  if (connections > 0) {
    return ConnectionsMode(db, engine, io_params, connections, window,
                           transport_filter, bench::JsonOutPath(argc, argv));
  }

  QueryServiceOptions options;
  options.num_threads = 8;  // enough workers for the widest client count
  options.max_queue = 64;
  options.cache_bytes = 0;  // pure scaling, no memoization
  options.simulate_io_wait = true;
  options.io_params = io_params;
  QueryService service(&db, &engine, options);

  net::Server server(&service);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const int k = 10;
  const int total_queries = bench::FullRun() ? 1600 : 320;
  std::printf("remote throughput: %zu objects, %d 10-NN queries per run,\n"
              "closed-loop clients over loopback TCP, emulated I/O waits "
              "at %.0f us/page\n\n",
              db.size(), total_queries,
              io_params.seconds_per_page_access * 1e6);

  TablePrinter table({"clients", "queries/s", "p50 ms", "p99 ms",
                      "speedup vs 1 conn"});
  const RunResult base =
      RunInProcess(service, total_queries, db.size(), k);
  table.AddRow({"in-process", TablePrinter::Num(base.qps, 0),
                TablePrinter::Num(base.p50_ms, 2),
                TablePrinter::Num(base.p99_ms, 2), ""});

  std::string json = "{\"bench\":\"remote_throughput\",\"objects\":" +
                     std::to_string(db.size()) +
                     ",\"queries\":" + std::to_string(total_queries) +
                     ",\"inprocess_qps\":" + TablePrinter::Num(base.qps, 1) +
                     ",\"connections\":{";
  double qps1 = 0.0;
  double qps4 = 0.0;
  for (const int clients : {1, 2, 4, 8}) {
    const RunResult run = RunRemote(server.port(), clients,
                                    total_queries / clients, db.size(), k);
    if (clients == 1) qps1 = run.qps;
    if (clients == 4) qps4 = run.qps;
    table.AddRow({std::to_string(clients), TablePrinter::Num(run.qps, 0),
                  TablePrinter::Num(run.p50_ms, 2),
                  TablePrinter::Num(run.p99_ms, 2),
                  TablePrinter::Num(run.qps / qps1) + "x"});
    json += (clients == 1 ? "\"" : ",\"") + std::to_string(clients) +
            "\":" + TablePrinter::Num(run.qps, 1);
  }
  table.Print();
  server.Stop();

  const double scaling = qps4 / qps1;
  std::printf("\n4-connection scaling: %.2fx over 1 connection "
              "(wire overhead vs in-process at 1 conn: %.1f%%)\n",
              scaling, 100.0 * (1.0 - qps1 / base.qps));
  json += "},\"speedup_4c\":" + TablePrinter::Num(scaling, 3) + "}";
  return bench::EmitJson(json, bench::JsonOutPath(argc, argv));
}
