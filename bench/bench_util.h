// Shared plumbing for the per-table / per-figure benchmark binaries.
//
// Every binary prints the same row/series structure as the paper's
// table or figure it reproduces. Defaults are sized so the whole bench
// directory runs in a few minutes; setting VSIM_FULL=1 switches to the
// paper's data set sizes (200 car / 5000 aircraft parts) and enables
// the rotation+reflection-invariant evaluation on the car data set.
#ifndef VSIM_BENCH_BENCH_UTIL_H_
#define VSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <cstdlib>
#include <string>

#include "vsim/cluster/cluster_quality.h"
#include "vsim/cluster/optics.h"
#include "vsim/common/table_printer.h"
#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"

namespace vsim::bench {

inline bool FullRun() {
  const char* env = std::getenv("VSIM_FULL");
  return env != nullptr && env[0] == '1';
}

// VSIM_CSV=1 makes every reachability figure also print its raw CSV
// series (position, object, reachability) -- the machine-readable form
// of the paper's plot data.
inline bool CsvOutput() {
  const char* env = std::getenv("VSIM_CSV");
  return env != nullptr && env[0] == '1';
}

// --json FILE: the serving benches take an optional output path and
// write their single JSON result line there in addition to printing it
// (BENCH_serving.json is checked in from such a run).
inline std::string JsonOutPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

// Prints the "JSON: " line and, if `path` is nonempty, writes the raw
// JSON there. Returns 0, or 1 if the file cannot be written.
inline int EmitJson(const std::string& json, const std::string& path) {
  std::printf("\nJSON: %s\n", json.c_str());
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr || std::fprintf(f, "%s\n", json.c_str()) < 0) {
    std::fprintf(stderr, "cannot write --json %s\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    return 1;
  }
  std::fclose(f);
  return 0;
}

struct BenchConfig {
  size_t car_objects;
  size_t aircraft_objects;
  bool invariant_car;       // random poses + Definition-2 distances
  bool invariant_aircraft;  // (expensive: 48x per distance)
};

inline BenchConfig Config() {
  if (FullRun()) {
    // Paper sizes. Invariant evaluation on the aircraft set would cost
    // 48 x 25M matching distances; the paper stores objects in a
    // standardized position, so canonical poses are used there.
    return {200, 5000, true, false};
  }
  return {140, 500, true, false};
}

// Builds the car data set (optionally in random poses) and its feature
// database. Exits on error (benches are top-level binaries).
inline Dataset CarDataset(const BenchConfig& cfg) {
  Dataset ds = MakeCarDataset(cfg.car_objects, 42);
  if (cfg.invariant_car) ApplyRandomOrientations(&ds, 4711, true);
  return ds;
}

inline Dataset AircraftDataset(const BenchConfig& cfg) {
  Dataset ds = MakeAircraftDataset(cfg.aircraft_objects, 7);
  if (cfg.invariant_aircraft) ApplyRandomOrientations(&ds, 1337, true);
  return ds;
}

inline CadDatabase BuildDatabase(const Dataset& ds,
                                 const ExtractionOptions& opt) {
  StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
  if (!db.ok()) {
    std::fprintf(stderr, "feature extraction failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

// OPTICS under the model, honoring the invariance flag.
inline OpticsResult RunModelOptics(const CadDatabase& db, ModelType model,
                                   bool invariant, int min_pts = 4) {
  OpticsOptions opt;
  opt.min_pts = min_pts;
  const PairwiseDistanceFn fn =
      invariant ? db.InvariantDistanceFunction(model, true)
                : db.DistanceFunction(model);
  StatusOr<OpticsResult> result =
      RunOptics(static_cast<int>(db.size()), fn, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "OPTICS failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

// Prints one reachability-plot "figure": ASCII art plus the best-cut
// quality line, and optionally the raw CSV series.
inline void PrintReachabilityFigure(const char* title,
                                    const OpticsResult& result,
                                    const std::vector<int>& eval_labels,
                                    bool print_csv = CsvOutput()) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%s", ReachabilityAscii(result, 10, 110).c_str());
  const ClusterQuality q = BestCutQuality(result, eval_labels, 32, 3);
  std::printf("best cut: %d clusters, purity %.2f, ARI %.2f, NMI %.2f, "
              "noise %.0f%%  =>  score %.2f\n",
              q.cluster_count, q.purity, q.adjusted_rand, q.nmi,
              100 * q.noise_fraction, q.Score());
  // Hierarchy structure (the paper's G -> G1/G2 observation): how many
  // cluster-tree nodes split into sub-clusters, and how deep the
  // nesting goes.
  const std::vector<ClusterNode> tree = ExtractClusterTree(result, 3);
  size_t splits = 0;
  int depth = 0;
  std::function<void(const ClusterNode&, int)> walk =
      [&](const ClusterNode& node, int d) {
        depth = std::max(depth, d);
        if (node.children.size() >= 2) ++splits;
        for (const ClusterNode& child : node.children) walk(child, d + 1);
      };
  for (const ClusterNode& root : tree) walk(root, 1);
  std::printf("hierarchy: %zu splitting nodes, depth %d\n", splits, depth);
  if (print_csv) {
    std::printf("csv:\n%s", ReachabilityCsv(result, -1.0).c_str());
  }
}

}  // namespace vsim::bench

#endif  // VSIM_BENCH_BENCH_UTIL_H_
