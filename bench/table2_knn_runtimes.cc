// Table 2: runtimes for 100 sample 10-NN queries on the Aircraft data
// set under the paper's simulated I/O cost model (one page access =
// 8 ms, one byte read = 200 ns):
//
//            paper (s, 100 queries):   CPU       I/O     total
//   1-Vect. (X-tree)                 142.82   2632.06   2774.88
//   Vect. Set w. filter              105.88    932.80   1038.68
//   Vect. Set seq. scan             1025.32    806.40   1831.72
//
// Absolute numbers differ (2026 CPU vs 2003, synthetic parts), but the
// shape is the target: the filter step cuts exact distance evaluations
// ~10x vs the scan, its random-access I/O is more expensive than the
// scan's sequential read, yet it wins on total time; the vector set
// with filter is in the same order of magnitude as (and not worse
// than) the one-vector X-tree.
#include <cstdio>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/core/query_engine.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  const int kQueries = 100;
  const int kK = 10;

  std::printf("Table 2 reproduction: %d sample %d-NN queries\n", kQueries,
              kK);
  std::printf("Aircraft-like data set, %zu objects, k = 7 covers, "
              "simulated I/O (8 ms/page, 200 ns/byte)\n\n",
              cfg.aircraft_objects);

  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = bench::AircraftDataset(cfg);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  QueryEngine engine(&db);

  Rng rng(20030609);  // SIGMOD 2003 opening day
  std::vector<int> queries;
  for (int q = 0; q < kQueries; ++q) {
    queries.push_back(static_cast<int>(rng.NextBounded(db.size())));
  }

  // Era calibration: the paper's scan row implies ~2.05 ms of CPU per
  // exact matching-distance evaluation on its 1.7 GHz Xeon
  // (1025.32 s / (100 queries * 5000 objects)). Modern CPUs evaluate
  // the same distance ~3 orders of magnitude faster while the simulated
  // I/O constants are fixed, which would silently invert the paper's
  // CPU/I-O balance. We therefore report measured CPU *and* an
  // era-adjusted total: CPU scaled so that one matching distance costs
  // the paper's 2.05 ms.
  const double kPaperSecondsPerDistance = 1025.32 / (100.0 * 5000.0);
  double measured_per_distance = 0.0;
  {
    QueryCost probe;
    engine.Knn(QueryStrategy::kVectorSetScan, queries[0], kK, &probe);
    measured_per_distance = probe.cpu_seconds /
                            static_cast<double>(probe.candidates_refined);
  }
  const double era_factor = kPaperSecondsPerDistance / measured_per_distance;

  TablePrinter table({"Model", "CPU time", "I/O time", "total time",
                      "2003-adj. total", "refined/query", "pages/query"});
  for (QueryStrategy strategy :
       {QueryStrategy::kOneVectorXTree, QueryStrategy::kVectorSetFilter,
        QueryStrategy::kVectorSetScan, QueryStrategy::kVectorSetMTree,
        QueryStrategy::kVectorSetVaFilter}) {
    QueryCost total;
    for (int id : queries) {
      QueryCost cost;
      engine.Knn(strategy, id, kK, &cost);
      total += cost;
    }
    const double adjusted =
        total.cpu_seconds * era_factor + total.IoSeconds();
    table.AddRow({QueryStrategyName(strategy),
                  TablePrinter::Num(total.cpu_seconds, 3) + " s",
                  TablePrinter::Num(total.IoSeconds(), 2) + " s",
                  TablePrinter::Num(total.TotalSeconds(), 2) + " s",
                  TablePrinter::Num(adjusted, 2) + " s",
                  TablePrinter::Num(static_cast<double>(
                                        total.candidates_refined) /
                                        kQueries,
                                    1),
                  TablePrinter::Num(static_cast<double>(
                                        total.io.page_accesses()) /
                                        kQueries,
                                    1)});
  }
  table.Print();
  std::printf("\nera factor: measured %.2f us/matching-distance, paper "
              "~%.0f us -> CPU x%.0f in the 2003-adjusted column\n",
              1e6 * measured_per_distance, 1e6 * kPaperSecondsPerDistance,
              era_factor);
  std::printf("(M-tree and VA-file rows are bonus strategies: the metric index\n of Section 4.3 and an IQ-tree-style quantized centroid filter.)\n");
  return 0;
}
