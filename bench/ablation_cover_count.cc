// Ablation I: how many covers does a CAD part need? The paper settles
// on k = 7 ("7 covers are necessary to model real-world CAD objects
// accurately", Section 5.3, Figure 9 + Table 1). This bench sweeps k
// and reports every axis that k trades off:
//   - residual approximation error Err_k / |O|,
//   - proper-permutation rate (Table 1's statistic),
//   - leave-one-out 1-NN classification accuracy,
//   - matching-distance cost (the O(k^3) term).
#include <cstdio>

#include "bench/bench_util.h"
#include "vsim/common/stopwatch.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  const int kMax = 12;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.num_covers = kMax;  // prefix-stable: smaller k = truncation
  const Dataset ds = MakeCarDataset(cfg.car_objects, 42);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const int n = static_cast<int>(db.size());

  std::printf("Ablation I: choosing the number of covers k "
              "(car-like, %d objects, canonical poses)\n\n", n);

  TablePrinter table({"k", "mean Err_k/|O|", "permutation rate", "1-NN acc",
                      "us/distance"});
  for (int k : {1, 2, 3, 5, 7, 9, 12}) {
    std::vector<VectorSet> sets(n);
    double err_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const CoverSequence& seq = db.object(i).cover_sequence;
      sets[i] = ToVectorSet(seq, k);
      const size_t used = std::min<size_t>(k, seq.covers.size());
      err_sum += static_cast<double>(seq.error_history[used]) /
                 static_cast<double>(seq.error_history[0]);
    }
    // Permutation rate + timing over all pairs.
    size_t permutations = 0, computations = 0;
    Stopwatch watch;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const MatchingDistanceResult r = MinimalMatchingDistanceDetailed(
            sets[i], sets[j], MinMatchingOptions{});
        permutations += r.permutation_used ? 1 : 0;
        ++computations;
      }
    }
    const double us_per_distance = 1e6 * watch.ElapsedSeconds() /
                                   static_cast<double>(computations);
    const double accuracy = LeaveOneOutKnnAccuracy(
        n,
        [&](int a, int b) { return VectorSetDistance(sets[a], sets[b]); },
        ds.EvaluationLabels(), 1);
    table.AddRow({std::to_string(k),
                  TablePrinter::Num(err_sum / n, 3),
                  TablePrinter::Num(100.0 * permutations / computations, 1) + "%",
                  TablePrinter::Num(100.0 * accuracy, 1) + "%",
                  TablePrinter::Num(us_per_distance, 2)});
  }
  table.Print();
  std::printf("\nExpected shape: error and accuracy saturate around k = 7 "
              "while the permutation rate approaches ~99%% and the O(k^3) "
              "distance cost keeps growing -- the paper's choice of 7 is "
              "the knee.\n");
  return 0;
}
