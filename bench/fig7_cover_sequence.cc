// Figure 7: OPTICS reachability plots of the cover sequence model
// (one-vector representation, 7 covers, Euclidean distance) on the Car
// (a) and Aircraft (b) data sets.
//
// Paper finding: considerably better than the histogram models, but
// (1) meaningful cluster hierarchies are lost, (2) some clusters are
// missed, and (3) dissimilar objects land in one class -- because the
// rigid cover order often pairs the wrong covers (cf. Table 1).
#include <cstdio>

#include "bench/bench_util.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;  // r = 15, k = 7 covers (paper)
  opt.extract_histograms = false;

  std::printf("Figure 7 reproduction: cover sequence model (7 covers)\n");

  {
    const Dataset car = bench::CarDataset(cfg);
    const CadDatabase db = bench::BuildDatabase(car, opt);
    const OpticsResult r = bench::RunModelOptics(
        db, ModelType::kCoverSequence, cfg.invariant_car);
    bench::PrintReachabilityFigure("(a) cover sequence model, Car data set",
                                   r, car.EvaluationLabels());
  }
  {
    const Dataset aircraft = bench::AircraftDataset(cfg);
    const CadDatabase db = bench::BuildDatabase(aircraft, opt);
    const OpticsResult r = bench::RunModelOptics(
        db, ModelType::kCoverSequence, cfg.invariant_aircraft);
    bench::PrintReachabilityFigure(
        "(b) cover sequence model, Aircraft data set", r,
        aircraft.EvaluationLabels());
  }
  return 0;
}
