// Ablation C (Section 4.2 discussion): how do the alternative set
// distances surveyed by Eiter & Mannila fare as similarity measures for
// cover sets? The paper argues the Hausdorff distance is dominated by
// extreme elements, the sum of minimum distances / surjection / link
// distances are not metrics (or allow questionable many-to-one
// matches), and picks the minimal matching distance. This bench runs
// OPTICS under each distance and scores the clusters.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "vsim/distance/min_matching.h"
#include "vsim/distance/set_distances.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;
  // Canonical poses: this ablation compares the distance semantics on
  // the raw cover sets, without the orthogonal invariance machinery.
  const Dataset ds = MakeCarDataset(cfg.car_objects, 42);
  const CadDatabase db = bench::BuildDatabase(ds, opt);

  std::printf("Ablation C: set-distance alternatives on the Car data set "
              "(%zu objects, %d covers)\n\n",
              db.size(), db.options().num_covers);

  struct Candidate {
    const char* name;
    std::function<double(const VectorSet&, const VectorSet&)> distance;
  };
  const Candidate candidates[] = {
      {"minimal matching (paper)",
       [](const VectorSet& a, const VectorSet& b) {
         return VectorSetDistance(a, b);
       }},
      {"netflow",
       [](const VectorSet& a, const VectorSet& b) {
         return NetflowDistance(a, b).value_or(0.0);
       }},
      {"Hausdorff",
       [](const VectorSet& a, const VectorSet& b) {
         return HausdorffDistance(a, b);
       }},
      {"sum of minimum distances",
       [](const VectorSet& a, const VectorSet& b) {
         return SumOfMinimumDistances(a, b);
       }},
      {"surjection",
       [](const VectorSet& a, const VectorSet& b) {
         return SurjectionDistance(a, b).value_or(0.0);
       }},
      {"fair surjection",
       [](const VectorSet& a, const VectorSet& b) {
         return FairSurjectionDistance(a, b).value_or(0.0);
       }},
      {"link",
       [](const VectorSet& a, const VectorSet& b) {
         return LinkDistance(a, b).value_or(0.0);
       }},
  };

  TablePrinter table({"distance", "clusters", "purity", "ARI", "NMI",
                      "noise%", "metric?"});
  const char* metricity[] = {"yes", "yes", "yes",   "no",
                             "no",  "no",  "no"};
  int row = 0;
  for (const Candidate& c : candidates) {
    OpticsOptions optics;
    optics.min_pts = 4;
    StatusOr<OpticsResult> result = RunOptics(
        static_cast<int>(db.size()),
        [&](int i, int j) {
          return c.distance(db.object(i).vector_set, db.object(j).vector_set);
        },
        optics);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const ClusterQuality q =
        BestCutQuality(*result, ds.EvaluationLabels(), 32, 3);
    table.AddRow({c.name, std::to_string(q.cluster_count),
                  TablePrinter::Num(q.purity),
                  TablePrinter::Num(q.adjusted_rand), TablePrinter::Num(q.nmi),
                  TablePrinter::Num(100 * q.noise_fraction, 1),
                  metricity[row++]});
  }
  table.Print();
  std::printf("\nExpected shape: minimal matching / netflow lead; "
              "Hausdorff trails (extreme-element sensitivity); the "
              "non-metric distances are usable but disqualify metric "
              "index support.\n");
  return 0;
}
