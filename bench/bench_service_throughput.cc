// Serving-layer throughput bench: k-NN queries/second through the
// concurrent QueryService at 1/2/4/8 worker threads (cache off), plus
// the warm-result-cache speedup on a repeated-query workload. Emits a
// single JSON line (prefixed "JSON: ") so the bench trajectory can be
// scraped, alongside the human-readable table.
//
// Queries run in the service's I/O-wait emulation mode: the paper
// charges simulated I/O per query (Section 5.4) and this bench makes
// workers actually wait it out (scaled to NVMe-era constants, 100 us
// per page instead of 2003's 8 ms), so the thread pool demonstrates
// the latency hiding a disk-backed deployment gets from concurrency --
// independent of how many cores the bench machine happens to have.
// The result cache shortcut skips the I/O wait together with the
// Hungarian refinement, exactly as a memoized server would.
//
// Defaults use a 500-object aircraft-like data set; VSIM_FULL=1 scales
// to the paper's 5000 objects.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/core/query_engine.h"
#include "vsim/service/query_service.h"

using namespace vsim;

namespace {

// Submits `ids` as k-NN requests and waits for all; returns queries/s.
double RunWorkload(QueryService& service, const std::vector<int>& ids,
                   int k) {
  std::vector<std::future<StatusOr<ServiceResponse>>> pending;
  pending.reserve(ids.size());
  Stopwatch watch;
  for (int id : ids) {
    ServiceRequest request;
    request.object_id = id;
    request.options.k = k;
    auto submitted = service.Submit(std::move(request));
    if (submitted.ok()) pending.push_back(std::move(submitted).value());
  }
  size_t ok = 0;
  for (auto& f : pending) ok += f.get().ok() ? 1 : 0;
  const double elapsed = watch.ElapsedSeconds();
  if (ok != ids.size()) {
    std::fprintf(stderr, "workload dropped %zu/%zu queries\n",
                 ids.size() - ok, ids.size());
    std::exit(1);
  }
  return static_cast<double>(ok) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig cfg = bench::Config();
  const size_t objects = bench::FullRun() ? cfg.aircraft_objects : 500;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = MakeAircraftDataset(objects, 7);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const QueryEngine engine(&db);

  // NVMe-era translation of the paper's simulated I/O charges.
  IoCostParams io_params;
  io_params.seconds_per_page_access = 100e-6;
  io_params.seconds_per_byte = 0.0;

  const int k = 10;
  const int queries = bench::FullRun() ? 2000 : 1000;
  Rng rng(2026);
  std::vector<int> unique_ids;
  unique_ids.reserve(queries);
  for (int q = 0; q < queries; ++q) {
    unique_ids.push_back(static_cast<int>(rng.NextBounded(db.size())));
  }
  // Repeated-query workload: the same volume of traffic drawn from a
  // pool of 32 distinct queries (an interactive session re-querying the
  // same parts).
  std::vector<int> repeated_ids;
  repeated_ids.reserve(queries);
  for (int q = 0; q < queries; ++q) {
    repeated_ids.push_back(unique_ids[rng.NextBounded(32)]);
  }

  std::printf("service throughput: %zu objects, %d 10-NN queries "
              "(vector set + centroid filter),\nemulated I/O waits at "
              "%.0f us/page\n\n",
              db.size(), queries, io_params.seconds_per_page_access * 1e6);

  TablePrinter table({"threads", "cache", "queries/s", "speedup vs 1T"});
  std::string json = "{\"bench\":\"service_throughput\",\"objects\":" +
                     std::to_string(db.size()) +
                     ",\"queries\":" + std::to_string(queries) +
                     ",\"threads\":{";
  double base_qps = 0.0;
  double qps4 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    QueryServiceOptions options;
    options.num_threads = threads;
    options.max_queue = unique_ids.size();
    options.cache_bytes = 0;  // pure scaling, no memoization
    options.simulate_io_wait = true;
    options.io_params = io_params;
    QueryService service(&db, &engine, options);
    const double qps = RunWorkload(service, unique_ids, k);
    if (threads == 1) base_qps = qps;
    if (threads == 4) qps4 = qps;
    table.AddRow({std::to_string(threads), "off", TablePrinter::Num(qps, 0),
                  TablePrinter::Num(qps / base_qps) + "x"});
    json += (threads == 1 ? "\"" : ",\"") + std::to_string(threads) +
            "\":" + TablePrinter::Num(qps, 1);
  }
  json += "},\"speedup_4t\":" + TablePrinter::Num(qps4 / base_qps, 3);

  // Cache on vs off on the repeated workload, 4 threads. The cache run
  // is measured warm: one pass to populate, one pass measured.
  double qps_cache_off = 0.0, qps_cache_warm = 0.0;
  {
    QueryServiceOptions options;
    options.num_threads = 4;
    options.max_queue = repeated_ids.size();
    options.cache_bytes = 0;
    options.simulate_io_wait = true;
    options.io_params = io_params;
    QueryService service(&db, &engine, options);
    qps_cache_off = RunWorkload(service, repeated_ids, k);
  }
  {
    QueryServiceOptions options;
    options.num_threads = 4;
    options.max_queue = repeated_ids.size();
    options.cache_bytes = 32ull << 20;
    options.simulate_io_wait = true;
    options.io_params = io_params;
    QueryService service(&db, &engine, options);
    RunWorkload(service, repeated_ids, k);  // warm-up pass
    qps_cache_warm = RunWorkload(service, repeated_ids, k);
    const ServiceStatsSnapshot stats = service.Stats();
    std::printf("repeated workload (32 distinct queries): cache hit rate "
                "%.1f%% after warm-up\n\n",
                100.0 * stats.cache.HitRate());
  }
  table.AddRow({"4", "off (repeat)", TablePrinter::Num(qps_cache_off, 0),
                ""});
  table.AddRow({"4", "warm (repeat)", TablePrinter::Num(qps_cache_warm, 0),
                TablePrinter::Num(qps_cache_warm / qps_cache_off) +
                    "x vs cache-off"});
  table.Print();

  json += ",\"cache_off_qps\":" + TablePrinter::Num(qps_cache_off, 1) +
          ",\"cache_warm_qps\":" + TablePrinter::Num(qps_cache_warm, 1) +
          ",\"cache_speedup\":" +
          TablePrinter::Num(qps_cache_warm / qps_cache_off, 3) + "}";
  return bench::EmitJson(json, bench::JsonOutPath(argc, argv));
}
