// Ablation H: the paper's Section-3.2 design decision. To support
// 90-degree-rotation + reflection invariance one can either
//   (1) store all 48 orientations of every object in the database, or
//   (2) store one orientation and run 48 permuted queries at runtime.
// The paper chooses (2) so reflection invariance stays switchable at
// query time. This bench makes the trade-off concrete for invariant
// 10-NN queries under the vector set model: storage footprint, filter
// work and I/O per query -- and verifies both variants return identical
// neighbors.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/distance/centroid_filter.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/orientation.h"
#include "vsim/core/query_engine.h"
#include "vsim/index/multistep.h"

using namespace vsim;

namespace {

// Merges per-orientation neighbor lists into per-object minima.
std::vector<Neighbor> BestPerObject(std::vector<Neighbor> hits, int k) {
  std::map<int, double> best;
  for (const Neighbor& n : hits) {
    auto [it, inserted] = best.emplace(n.id, n.distance);
    if (!inserted) it->second = std::min(it->second, n.distance);
  }
  std::vector<Neighbor> out;
  for (const auto& [id, d] : best) out.push_back({id, d});
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  if (static_cast<int>(out.size()) > k) out.resize(k);
  return out;
}

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;
  Dataset ds = MakeCarDataset(cfg.car_objects, 42);
  ApplyRandomOrientations(&ds, 4711, true);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const int n = static_cast<int>(db.size());
  const int k_covers = db.options().num_covers;
  const auto& group = CubeRotationsWithReflections();

  std::printf("Ablation H: invariance by 48x storage vs 48 query "
              "permutations\n(car-like, %d objects in arbitrary poses, "
              "10-NN, vector set model)\n\n", n);

  // ---- Variant 1: orientation-expanded database --------------------
  // 48 vector sets + centroids per object, one centroid X-tree.
  std::vector<VectorSet> expanded_sets;
  XTree expanded_index(6);
  {
    std::vector<FeatureVector> centroids;
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) {
      for (size_t g = 0; g < group.size(); ++g) {
        VectorSet t = TransformVectorSet(db.object(i).vector_set, group[g]);
        centroids.push_back(ExtendedCentroid(t, k_covers));
        expanded_sets.push_back(std::move(t));
        ids.push_back(static_cast<int>(expanded_sets.size()) - 1);
      }
    }
    Status st = expanded_index.BulkLoad(centroids, ids);
    if (!st.ok()) return 1;
  }
  size_t stored_bytes_v1 = 0;
  for (const VectorSet& s : expanded_sets) {
    stored_bytes_v1 += s.size() * s.dim() * sizeof(double);
  }

  // ---- Variant 2: canonical database, query permuted ----------------
  XTree canonical_index(6);
  {
    std::vector<FeatureVector> centroids;
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) {
      centroids.push_back(db.object(i).centroid);
      ids.push_back(i);
    }
    Status st = canonical_index.BulkLoad(centroids, ids);
    if (!st.ok()) return 1;
  }
  size_t stored_bytes_v2 = stored_bytes_v1 / group.size();

  Rng rng(5);
  std::vector<int> queries;
  for (int q = 0; q < 30; ++q) {
    queries.push_back(static_cast<int>(rng.NextBounded(n)));
  }

  QueryCost v1_cost, v2_cost;
  size_t v1_refined = 0, v2_refined = 0;
  bool identical = true;
  for (int qid : queries) {
    const VectorSet& query_set = db.object(qid).vector_set;
    // Variant 1: one query against the expanded index.
    Stopwatch w1;
    MultiStepStats ms1;
    auto exact1 = [&](int id, IoStats* stats) {
      if (stats != nullptr) stats->AddPageAccesses(1);
      return VectorSetDistance(query_set, expanded_sets[id]);
    };
    auto hits1 = MultiStepKnn(expanded_index,
                              ExtendedCentroid(query_set, k_covers),
                              k_covers, 10 * static_cast<int>(group.size()),
                              exact1, &v1_cost.io, &ms1);
    for (Neighbor& h : hits1) h.id /= static_cast<int>(group.size());
    const auto v1 = BestPerObject(std::move(hits1), 10);
    v1_cost.cpu_seconds += w1.ElapsedSeconds();
    v1_refined += ms1.candidates_refined;

    // Variant 2: 48 permuted queries against the canonical index.
    Stopwatch w2;
    std::vector<Neighbor> merged;
    for (const Mat3& g : group) {
      const VectorSet oriented = TransformVectorSet(query_set, g);
      MultiStepStats ms2;
      auto exact2 = [&](int id, IoStats* stats) {
        if (stats != nullptr) stats->AddPageAccesses(1);
        return VectorSetDistance(oriented, db.object(id).vector_set);
      };
      auto hits = MultiStepKnn(canonical_index,
                               ExtendedCentroid(oriented, k_covers),
                               k_covers, 10, exact2, &v2_cost.io, &ms2);
      v2_refined += ms2.candidates_refined;
      merged.insert(merged.end(), hits.begin(), hits.end());
    }
    const auto v2 = BestPerObject(std::move(merged), 10);
    v2_cost.cpu_seconds += w2.ElapsedSeconds();

    for (int i = 0; i < 10; ++i) {
      identical &= std::fabs(v1[i].distance - v2[i].distance) < 1e-9;
    }
  }

  TablePrinter table({"variant", "stored bytes", "refined/query",
                      "pages/query", "CPU ms/query"});
  table.AddRow({"(1) store 48 orientations", std::to_string(stored_bytes_v1),
                TablePrinter::Num(static_cast<double>(v1_refined) /
                                      queries.size(), 1),
                TablePrinter::Num(static_cast<double>(
                                      v1_cost.io.page_accesses()) /
                                      queries.size(), 1),
                TablePrinter::Num(1e3 * v1_cost.cpu_seconds / queries.size(),
                                  2)});
  table.AddRow({"(2) permute the query x48", std::to_string(stored_bytes_v2),
                TablePrinter::Num(static_cast<double>(v2_refined) /
                                      queries.size(), 1),
                TablePrinter::Num(static_cast<double>(
                                      v2_cost.io.page_accesses()) /
                                      queries.size(), 1),
                TablePrinter::Num(1e3 * v2_cost.cpu_seconds / queries.size(),
                                  2)});
  table.Print();
  std::printf("\nresults identical across variants: %s\n",
              identical ? "yes" : "NO");
  std::printf("The paper picks (2): 48x less storage, and reflection "
              "invariance can be toggled per query -- at the price of 48 "
              "filter passes per query.\n");
  return 0;
}
