// Figure 8: OPTICS reachability plots of the cover sequence model under
// the *minimum Euclidean distance under permutation* (7 covers),
// computed -- as in the paper -- via the Kuhn-Munkres reduction
// (squared Euclidean ground distance, squared-norm weights, square
// root of the result), not via the k! brute force.
//
// Paper finding: the plots "look quite similar" to the vector set
// model's (Figure 9); a careful investigation showed basically
// equivalent results. This bench also quantifies that similarity: the
// rank correlation between this distance and the minimal matching
// distance over all object pairs.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"

using namespace vsim;

namespace {

// Spearman rank correlation between two flattened distance matrices.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  const size_t n = a.size();
  auto ranks = [&](const std::vector<double>& v) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(n);
    for (size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<double>(i);
    return rank;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;

  std::printf("Figure 8 reproduction: cover sequence model with the "
              "minimum Euclidean distance under permutation (7 covers)\n");

  const Dataset car = bench::CarDataset(cfg);
  const CadDatabase car_db = bench::BuildDatabase(car, opt);
  const OpticsResult r_car = bench::RunModelOptics(
      car_db, ModelType::kCoverSequencePermutation, cfg.invariant_car);
  bench::PrintReachabilityFigure("(a) permutation distance, Car data set",
                                 r_car, car.EvaluationLabels());

  const Dataset aircraft = bench::AircraftDataset(cfg);
  const CadDatabase air_db = bench::BuildDatabase(aircraft, opt);
  const OpticsResult r_air = bench::RunModelOptics(
      air_db, ModelType::kCoverSequencePermutation, cfg.invariant_aircraft);
  bench::PrintReachabilityFigure(
      "(b) permutation distance, Aircraft data set", r_air,
      aircraft.EvaluationLabels());

  // Equivalence check vs the vector set model (paper Section 5.3).
  std::vector<double> perm_d, mm_d;
  for (size_t i = 0; i < car_db.size(); ++i) {
    for (size_t j = i + 1; j < car_db.size(); ++j) {
      perm_d.push_back(car_db.Distance(ModelType::kCoverSequencePermutation,
                                       static_cast<int>(i),
                                       static_cast<int>(j)));
      mm_d.push_back(car_db.Distance(ModelType::kVectorSet,
                                     static_cast<int>(i),
                                     static_cast<int>(j)));
    }
  }
  std::printf("\nSpearman rank correlation with the vector set model's "
              "minimal matching distance (Car, all pairs): %.4f\n",
              SpearmanCorrelation(perm_d, mm_d));
  std::printf("(paper: the two models 'lead to basically equivalent "
              "results')\n");
  return 0;
}
