// Kernel benchmark (docs/KERNELS.md): measures the batched distance
// kernels against the pinned scalar reference, then the approximate
// pre-filter's recall/latency trade per knob level.
//
//   - cost-matrix build at the paper's set shape (7x7 vectors, 6-d
//     ground space) and at a larger block, per implementation;
//   - one-query-vs-many centroid batch (the filter-step shape);
//   - recall@10 and mean latency for approx levels 0..3 on the
//     car-like and aircraft-like data sets.
//
// Prints tables plus one JSON line; `--json FILE` additionally writes
// the raw JSON (BENCH_kernels.json is checked in from such a run).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/common/table_printer.h"
#include "vsim/core/query_engine.h"
#include "vsim/kernels/kernels.h"

using namespace vsim;

namespace {

// Times `fn` by growing the batch until one window is long enough to
// trust, then takes the fastest of several windows (minimum is the
// standard noise filter for microbenches on a shared core) and returns
// nanoseconds per call.
double NsPerCall(const std::function<void()>& fn) {
  size_t iters = 64;
  for (;;) {
    Stopwatch watch;
    for (size_t i = 0; i < iters; ++i) fn();
    if (watch.ElapsedSeconds() > 0.05 || iters > (1u << 24)) break;
    iters *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best * 1e9 / static_cast<double>(iters);
}

std::vector<double> RandomBlock(size_t values, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> block(values);
  for (double& v : block) v = rng.NextDouble();
  return block;
}

// Distance-based recall@k: an approximate neighbor counts as a hit if
// it is at least as close as the exact k-th neighbor (id matching would
// punish arbitrary orderings of exact ties).
double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<Neighbor>& approx) {
  if (exact.empty()) return 1.0;
  const double kth = exact.back().distance + 1e-9;
  int hits = 0;
  for (const Neighbor& a : approx) {
    if (a.distance <= kth) ++hits;
  }
  return static_cast<double>(hits) / exact.size();
}

struct LevelPoint {
  double recall;
  double mean_ms;
  double mean_filter_hits;
};

// Runs the level sweep on one database: recall@10 vs the exact result
// and mean per-query latency, for every knob level.
std::vector<LevelPoint> LevelSweep(const CadDatabase& db, int k) {
  QueryEngine engine(&db);
  const int n = static_cast<int>(db.size());
  const int queries = std::min(n, 100);
  std::vector<std::vector<Neighbor>> exact(queries);
  for (int q = 0; q < queries; ++q) {
    exact[q] = engine.Knn(QueryStrategy::kVectorSetFilter, q, k);
  }
  std::vector<LevelPoint> points;
  for (int level = 0; level <= kernels::kMaxApproxLevel; ++level) {
    double recall_sum = 0.0, hits_sum = 0.0;
    Stopwatch watch;
    for (int q = 0; q < queries; ++q) {
      QueryCost cost;
      const auto got =
          engine.Knn(QueryStrategy::kVectorSetFilter, q, k, &cost, level);
      recall_sum += RecallAtK(exact[q], got);
      hits_sum += static_cast<double>(cost.filter_hits);
    }
    const double ms = watch.ElapsedMillis() / queries;
    points.push_back({recall_sum / queries, ms, hits_sum / queries});
  }
  return points;
}

std::string LevelJson(const std::vector<LevelPoint>& points) {
  std::string json = "{";
  for (size_t level = 0; level < points.size(); ++level) {
    if (level > 0) json += ",";
    json += "\"level" + std::to_string(level) + "\":{\"recall\":" +
            TablePrinter::Num(points[level].recall, 4) + ",\"mean_ms\":" +
            TablePrinter::Num(points[level].mean_ms, 4) +
            ",\"mean_filter_hits\":" +
            TablePrinter::Num(points[level].mean_filter_hits, 1) + "}";
  }
  return json + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig cfg = bench::Config();
  std::printf("Kernel benchmark (active kernel set: %s)\n\n",
              kernels::Active().name);

  struct Variant {
    const char* label;
    const kernels::KernelSet* set;
  };
  std::vector<Variant> variants = {
      {"scalar", &kernels::ForceScalar()},
      {"portable", &kernels::Portable()},
      {"best", &kernels::BestAvailable()},
  };

  // --- cost-matrix build -------------------------------------------
  // The paper's shape: two sets of 7 vectors in the 6-d ground space,
  // written into a 14-wide square Hungarian matrix (surplus dummy
  // columns). The larger 64x64 block shows the asymptotic gap.
  struct Shape {
    size_t m, n, dim, stride;
  };
  const std::vector<Shape> shapes = {{7, 7, 6, 14}, {64, 64, 6, 64}};
  TablePrinter cost_table(
      {"cost matrix", "scalar ns", "portable ns", "best ns", "best speedup"});
  std::string cost_json;
  for (const Shape& s : shapes) {
    const std::vector<double> a = RandomBlock(s.m * s.dim, 1);
    const std::vector<double> b = RandomBlock(s.n * s.dim, 2);
    std::vector<double> out(s.m * s.stride, 0.0);
    std::vector<double> ns;
    for (const Variant& v : variants) {
      const kernels::CostMatrixBuildFn fn = v.set->cost_matrix_build;
      ns.push_back(NsPerCall([&] {
        fn(kernels::GroundKind::kEuclidean, a.data(), s.m, b.data(), s.n,
           s.dim, out.data(), s.stride);
      }));
    }
    const double speedup = ns[0] / ns[2];
    cost_table.AddRow({std::to_string(s.m) + "x" + std::to_string(s.n),
                       TablePrinter::Num(ns[0], 1), TablePrinter::Num(ns[1], 1),
                       TablePrinter::Num(ns[2], 1),
                       TablePrinter::Num(speedup, 2) + "x"});
    if (!cost_json.empty()) cost_json += ",";
    cost_json += "\"" + std::to_string(s.m) + "x" + std::to_string(s.n) +
                 "\":{\"scalar_ns\":" + TablePrinter::Num(ns[0], 1) +
                 ",\"portable_ns\":" + TablePrinter::Num(ns[1], 1) +
                 ",\"best_ns\":" + TablePrinter::Num(ns[2], 1) +
                 ",\"speedup_best\":" + TablePrinter::Num(speedup, 3) + "}";
  }
  cost_table.Print();

  // --- centroid distance batch -------------------------------------
  // One 6-d query centroid against a contiguous block of stored
  // extended centroids -- the whole filter step in one call.
  TablePrinter batch_table(
      {"centroid batch", "scalar ns", "portable ns", "best ns",
       "best speedup"});
  std::string batch_json;
  for (const size_t count : {256u, 4096u}) {
    const size_t dim = 6;
    const std::vector<double> query = RandomBlock(dim, 3);
    const std::vector<double> block = RandomBlock(count * dim, 4);
    std::vector<double> out(count, 0.0);
    std::vector<double> ns;
    for (const Variant& v : variants) {
      const kernels::CentroidDistanceBatchFn fn =
          v.set->centroid_distance_batch;
      ns.push_back(
          NsPerCall([&] { fn(query.data(), block.data(), count, dim,
                             out.data()); }));
    }
    const double speedup = ns[0] / ns[2];
    batch_table.AddRow({"1 vs " + std::to_string(count),
                        TablePrinter::Num(ns[0], 1),
                        TablePrinter::Num(ns[1], 1),
                        TablePrinter::Num(ns[2], 1),
                        TablePrinter::Num(speedup, 2) + "x"});
    if (!batch_json.empty()) batch_json += ",";
    batch_json += "\"n" + std::to_string(count) +
                  "\":{\"scalar_ns\":" + TablePrinter::Num(ns[0], 1) +
                  ",\"best_ns\":" + TablePrinter::Num(ns[2], 1) +
                  ",\"speedup_best\":" + TablePrinter::Num(speedup, 3) + "}";
  }
  batch_table.Print();

  // --- recall / latency per approx level ---------------------------
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const CadDatabase car_db =
      bench::BuildDatabase(MakeCarDataset(cfg.car_objects, 42), opt);
  const CadDatabase air_db =
      bench::BuildDatabase(MakeAircraftDataset(cfg.aircraft_objects, 7), opt);
  const int k = 10;
  std::string recall_json;
  const std::pair<const char*, const CadDatabase*> sweeps[] = {
      {"car", &car_db}, {"aircraft", &air_db}};
  for (const auto& [label, db] : sweeps) {
    const std::vector<LevelPoint> points = LevelSweep(*db, k);
    std::printf("\napprox knob on %s-like (%zu objects, k=%d):\n", label,
                db->size(), k);
    TablePrinter level_table(
        {"level", "recall@10", "mean ms/query", "mean filter hits"});
    for (size_t level = 0; level < points.size(); ++level) {
      level_table.AddRow({std::to_string(level),
                          TablePrinter::Num(points[level].recall, 3),
                          TablePrinter::Num(points[level].mean_ms, 3),
                          TablePrinter::Num(points[level].mean_filter_hits,
                                            1)});
    }
    level_table.Print();
    if (!recall_json.empty()) recall_json += ",";
    recall_json += "\"" + std::string(label) + "\":" + LevelJson(points);
  }

  const std::string json =
      "{\"bench\":\"kernels\",\"active\":\"" +
      std::string(kernels::Active().name) + "\",\"cost_matrix\":{" +
      cost_json + "},\"centroid_batch\":{" + batch_json + "},\"approx\":{" +
      recall_json + "}}";
  return bench::EmitJson(json, bench::JsonOutPath(argc, argv));
}
