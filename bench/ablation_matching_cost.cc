// Ablation A (Section 4.2 claim): the Kuhn-Munkres O(k^3) matching is
// far cheaper than minimizing over all k! permutations, while computing
// the same distance value. Google-benchmark microbenchmark over the
// number of covers k.
#include <benchmark/benchmark.h>

#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"
#include "vsim/distance/permutation_distance.h"

namespace vsim {
namespace {

VectorSet RandomSet(Rng& rng, int count, int dim = 6) {
  VectorSet s;
  for (int i = 0; i < count; ++i) {
    FeatureVector v(dim);
    for (double& x : v) x = rng.Uniform(-0.5, 0.5);
    s.vectors.push_back(std::move(v));
  }
  return s;
}

FeatureVector Flatten(const VectorSet& s) {
  FeatureVector f;
  for (const auto& v : s.vectors) f.insert(f.end(), v.begin(), v.end());
  return f;
}

void BM_HungarianMatching(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(k);
  const VectorSet a = RandomSet(rng, k);
  const VectorSet b = RandomSet(rng, k);
  MinMatchingOptions opt;
  opt.ground = GroundDistance::kSquaredEuclidean;
  opt.sqrt_of_total = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimalMatchingDistance(a, b, opt));
  }
}
BENCHMARK(BM_HungarianMatching)->DenseRange(2, 9);

void BM_BruteForcePermutations(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(k);
  const FeatureVector a = Flatten(RandomSet(rng, k));
  const FeatureVector b = Flatten(RandomSet(rng, k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinEuclideanUnderPermutationBruteForce(a, b, 6).value_or(0));
  }
}
BENCHMARK(BM_BruteForcePermutations)->DenseRange(2, 9);

void BM_PlainEuclidean42d(benchmark::State& state) {
  Rng rng(7);
  const FeatureVector a = Flatten(RandomSet(rng, 7));
  const FeatureVector b = Flatten(RandomSet(rng, 7));
  for (auto _ : state) {
    // vsim-lint: allow(raw-distance-loop) microbench of the per-pair primitive itself
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_PlainEuclidean42d);

}  // namespace
}  // namespace vsim

BENCHMARK_MAIN();
