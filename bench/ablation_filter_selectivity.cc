// Ablation B: quality of the extended-centroid filter (Lemma 2).
//   - bound tightness: distribution of filter_distance / exact_distance
//     over random object pairs (1.0 = tight, 0 = vacuous);
//   - k-NN selectivity: refined candidates / database size, per k;
//   - range selectivity vs eps.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/core/query_engine.h"
#include "vsim/distance/centroid_filter.h"
#include "vsim/kernels/kernels.h"
#include "vsim/distance/min_matching.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = bench::AircraftDataset(cfg);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const int k = db.options().num_covers;

  std::printf("Ablation B: extended-centroid filter quality "
              "(aircraft-like, %zu objects, k = %d)\n\n",
              db.size(), k);

  // --- Bound tightness ---------------------------------------------
  Rng rng(99);
  std::vector<double> ratios;
  for (int trial = 0; trial < 3000; ++trial) {
    const int a = static_cast<int>(rng.NextBounded(db.size()));
    const int b = static_cast<int>(rng.NextBounded(db.size()));
    if (a == b) continue;
    const double exact = db.Distance(ModelType::kVectorSet, a, b);
    if (exact <= 0) continue;
    const double bound = kernels::CentroidFilterBound(db.object(a).centroid,
                                                db.object(b).centroid, k);
    ratios.push_back(bound / exact);
  }
  std::sort(ratios.begin(), ratios.end());
  auto pct = [&](double q) { return ratios[static_cast<size_t>(q * (ratios.size() - 1))]; };
  std::printf("bound/exact ratio over %zu random pairs:\n", ratios.size());
  std::printf("  p10 %.3f   median %.3f   p90 %.3f   max %.3f "
              "(must be <= 1.0: Lemma 2)\n\n",
              pct(0.10), pct(0.50), pct(0.90), ratios.back());

  // --- k-NN selectivity ---------------------------------------------
  QueryEngine engine(&db);
  TablePrinter knn_table({"k-NN k", "refined/query", "fraction of DB"});
  for (int kk : {1, 5, 10, 20, 50}) {
    QueryCost total;
    const int queries = 50;
    for (int q = 0; q < queries; ++q) {
      QueryCost cost;
      engine.Knn(QueryStrategy::kVectorSetFilter,
                 static_cast<int>(rng.NextBounded(db.size())), kk, &cost);
      total += cost;
    }
    const double per_query =
        static_cast<double>(total.candidates_refined) / queries;
    knn_table.AddRow({std::to_string(kk), TablePrinter::Num(per_query, 1),
                      TablePrinter::Num(per_query / db.size() * 100, 1) + "%"});
  }
  knn_table.Print();

  // --- Range selectivity ---------------------------------------------
  // eps values as quantiles of the pairwise exact distance distribution.
  std::vector<double> exacts;
  for (int trial = 0; trial < 2000; ++trial) {
    const int a = static_cast<int>(rng.NextBounded(db.size()));
    const int b = static_cast<int>(rng.NextBounded(db.size()));
    if (a != b) exacts.push_back(db.Distance(ModelType::kVectorSet, a, b));
  }
  std::sort(exacts.begin(), exacts.end());
  TablePrinter range_table(
      {"eps (quantile)", "filter candidates", "true results", "precision"});
  for (double q : {0.01, 0.05, 0.10, 0.25}) {
    const double eps = exacts[static_cast<size_t>(q * (exacts.size() - 1))];
    size_t candidates = 0, results = 0;
    const int queries = 30;
    for (int i = 0; i < queries; ++i) {
      const int id = static_cast<int>(rng.NextBounded(db.size()));
      QueryCost cost;
      const auto res = engine.Range(QueryStrategy::kVectorSetFilter,
                                    db.object(id), eps, &cost);
      candidates += cost.candidates_refined;
      results += res.size();
    }
    range_table.AddRow(
        {TablePrinter::Num(eps, 3) + " (q" + TablePrinter::Num(q, 2) + ")",
         TablePrinter::Num(static_cast<double>(candidates) / queries, 1),
         TablePrinter::Num(static_cast<double>(results) / queries, 1),
         TablePrinter::Num(
             candidates ? 100.0 * results / candidates : 100.0, 1) + "%"});
  }
  range_table.Print();
  return 0;
}
