// Table 1: "Percentage of proper permutations" -- in how many of the
// minimal-matching-distance computations of an OPTICS run over the Car
// data set the optimal matching is strictly cheaper than the
// order-preserving (identity) pairing, for k = 3, 5, 7, 9 covers.
//
// Paper's numbers:  k=3: 68.2%   k=5: 95.1%   k=7: 99.0%   k=9: 99.4%
#include <cstdio>

#include "bench/bench_util.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  std::printf("Table 1 reproduction: percentage of proper permutations\n");
  std::printf("Car-like data set, %zu objects, OPTICS all-pairs distance "
              "computations\n\n",
              cfg.car_objects);

  // Extract once with the maximum k: the greedy cover sequence is
  // prefix-stable, so smaller k just truncates.
  const int kMax = 9;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.num_covers = kMax;
  const Dataset ds = bench::CarDataset(cfg);
  const CadDatabase db = bench::BuildDatabase(ds, opt);

  TablePrinter table({"No. of covers", "Permutations", "paper"});
  const char* paper[] = {"68.2%", "95.1%", "99.0%", "99.4%"};
  int row = 0;
  for (int k : {3, 5, 7, 9}) {
    // Vector sets truncated to the first k covers.
    std::vector<VectorSet> sets;
    sets.reserve(db.size());
    for (size_t i = 0; i < db.size(); ++i) {
      sets.push_back(ToVectorSet(db.object(i).cover_sequence, k));
    }
    size_t computations = 0, permutations = 0;
    const PairwiseDistanceFn fn = [&](int a, int b) {
      const MatchingDistanceResult r = MinimalMatchingDistanceDetailed(
          sets[a], sets[b], MinMatchingOptions{});
      ++computations;
      permutations += r.permutation_used ? 1 : 0;
      return r.distance;
    };
    OpticsOptions optics;
    optics.min_pts = 4;
    StatusOr<OpticsResult> result =
        RunOptics(static_cast<int>(db.size()), fn, optics);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const double pct =
        100.0 * static_cast<double>(permutations) / computations;
    table.AddRow({std::to_string(k), TablePrinter::Num(pct, 1) + "%",
                  paper[row++]});
  }
  table.Print();
  std::printf("\nExpected shape: the permutation rate grows with k and "
              "approaches ~99%% by k = 7,\nshowing that the one-vector "
              "cover order almost never realizes the minimum distance.\n");
  return 0;
}
