// Observability overhead bench: the cost of the span-tracing record
// path and of the armed sampling profiler on the serving hot path
// (docs/OBSERVABILITY.md "Tracing"). Three back-to-back configurations
// of the SAME k-NN workload through the concurrent QueryService:
//
//   spans off        enable_spans=false -- the baseline
//   spans on         every request builds and publishes its span tree
//   spans + profiler tracing on AND the SIGPROF sampler armed at
//                    100 Hz (the documented always-on-safe rate)
//
// The acceptance bar (checked in as BENCH_obs.json) is tracing-on
// overhead <= 2% of baseline throughput: the record path is bounded,
// lock-free and allocation-free (tests/obs_alloc_check.cc), so it must
// stay invisible next to real filter/refine work. Scheduler noise on a
// small shared box easily exceeds the effect being measured, so each
// configuration gets a warm-up pass plus five interleaved measured
// rounds, and the MEDIAN round is reported (robust against one stolen
// timeslice in either direction, unlike best-of or mean).
//
// Emits a single JSON line (prefixed "JSON: "); --json FILE also
// writes it to FILE (BENCH_obs.json is checked in from such a run).
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/common/table_printer.h"
#include "vsim/core/query_engine.h"
#include "vsim/obs/profiler.h"
#include "vsim/service/query_service.h"

using namespace vsim;

namespace {

double RunWorkload(QueryService& service, const std::vector<int>& ids,
                   int k) {
  std::vector<std::future<StatusOr<ServiceResponse>>> pending;
  pending.reserve(ids.size());
  Stopwatch watch;
  for (int id : ids) {
    ServiceRequest request;
    request.object_id = id;
    request.options.k = k;
    auto submitted = service.Submit(std::move(request));
    if (submitted.ok()) pending.push_back(std::move(submitted).value());
  }
  size_t ok = 0;
  for (auto& f : pending) ok += f.get().ok() ? 1 : 0;
  const double elapsed = watch.ElapsedSeconds();
  if (ok != ids.size()) {
    std::fprintf(stderr, "workload dropped %zu/%zu queries\n",
                 ids.size() - ok, ok);
    std::exit(1);
  }
  return static_cast<double>(ok) / elapsed;
}

double RunConfig(const CadDatabase& db, const QueryEngine& engine,
                 const std::vector<int>& ids, bool spans, int profile_hz) {
  QueryServiceOptions options;
  // One worker: the submitter plus one worker saturate a two-core CI
  // box without oversubscription jitter, and the record path under
  // test is per-request, not per-thread.
  options.num_threads = 1;
  options.max_queue = ids.size();
  options.cache_bytes = 0;  // a cache hit would skip the traced stages
  options.enable_spans = spans;
  QueryService service(&db, &engine, options);
  if (profile_hz > 0 && !obs::Profiler::Instance().Arm(profile_hz)) {
    std::fprintf(stderr, "profiler failed to arm\n");
    std::exit(1);
  }
  // Warm-up: spin the worker threads, the allocator and the CPU
  // governor up before the measured pass.
  const std::vector<int> warm(ids.begin(), ids.begin() + ids.size() / 4);
  (void)RunWorkload(service, warm, /*k=*/10);
  const double qps = RunWorkload(service, ids, /*k=*/10);
  if (profile_hz > 0) obs::Profiler::Instance().Disarm();
  return qps;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig cfg = bench::Config();
  const size_t objects = bench::FullRun() ? cfg.aircraft_objects : 500;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = MakeAircraftDataset(objects, 7);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  const QueryEngine engine(&db);

  const int queries = bench::FullRun() ? 4000 : 2000;
  Rng rng(2026);
  std::vector<int> ids;
  ids.reserve(queries);
  for (int q = 0; q < queries; ++q) {
    ids.push_back(static_cast<int>(rng.NextBounded(db.size())));
  }

  std::printf("observability overhead: %zu objects, %d 10-NN queries, "
              "1 worker, cache off\n\n",
              db.size(), queries);

  // Interleaved rounds, median per configuration.
  std::vector<double> off_runs, on_runs, prof_runs;
  for (int round = 0; round < 5; ++round) {
    off_runs.push_back(RunConfig(db, engine, ids, false, 0));
    on_runs.push_back(RunConfig(db, engine, ids, true, 0));
    prof_runs.push_back(RunConfig(db, engine, ids, true, 100));
  }
  const double qps_off = Median(off_runs);
  const double qps_on = Median(on_runs);
  const double qps_prof = Median(prof_runs);
  const double on_pct = 100.0 * (qps_off - qps_on) / qps_off;
  const double prof_pct = 100.0 * (qps_off - qps_prof) / qps_off;

  TablePrinter table({"configuration", "queries/s", "overhead"});
  table.AddRow({"spans off", TablePrinter::Num(qps_off, 0), "--"});
  table.AddRow({"spans on", TablePrinter::Num(qps_on, 0),
                TablePrinter::Num(on_pct, 2) + "%"});
  table.AddRow({"spans + profiler 100 Hz", TablePrinter::Num(qps_prof, 0),
                TablePrinter::Num(prof_pct, 2) + "%"});
  table.Print();
  std::printf("\nacceptance: tracing-on overhead <= 2%% of baseline\n");

  const std::string json =
      "{\"bench\":\"obs_overhead\",\"objects\":" + std::to_string(db.size()) +
      ",\"queries\":" + std::to_string(queries) +
      ",\"qps_spans_off\":" + TablePrinter::Num(qps_off, 1) +
      ",\"qps_spans_on\":" + TablePrinter::Num(qps_on, 1) +
      ",\"qps_spans_profiled_100hz\":" + TablePrinter::Num(qps_prof, 1) +
      ",\"tracing_overhead_pct\":" + TablePrinter::Num(on_pct, 2) +
      ",\"profiled_overhead_pct\":" + TablePrinter::Num(prof_pct, 2) + "}";
  return bench::EmitJson(json, bench::JsonOutPath(argc, argv));
}
