// Ablation F: index-accelerated clustering. The paper's closing
// argument is that fast similarity queries make density-based cluster
// analysis practical; this bench runs OPTICS twice on the same data --
// once with full pairwise scans, once with eps-neighborhoods served by
// the extended-centroid filter pipeline -- and compares the number of
// exact minimal-matching-distance evaluations.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/core/query_engine.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = bench::AircraftDataset(cfg);
  const CadDatabase db = bench::BuildDatabase(ds, opt);
  QueryEngine engine(&db);
  const int n = static_cast<int>(db.size());

  std::printf("Ablation F: OPTICS with index-served neighborhoods "
              "(aircraft-like, %d objects)\n\n", n);

  // Generating eps sweep: quantiles of sampled pairwise distances.
  std::vector<double> sample;
  Rng rng(9);
  for (int t = 0; t < 4000; ++t) {
    const int a = static_cast<int>(rng.NextBounded(n));
    const int b = static_cast<int>(rng.NextBounded(n));
    if (a != b) sample.push_back(db.Distance(ModelType::kVectorSet, a, b));
  }
  std::sort(sample.begin(), sample.end());

  const PairwiseDistanceFn dist = db.DistanceFunction(ModelType::kVectorSet);
  TablePrinter table({"eps quantile", "scan dists", "indexed dists",
                      "refined (filter)", "work saved", "same ordering"});
  for (double q : {0.02, 0.05, 0.10}) {
    const double eps = sample[static_cast<size_t>(q * (sample.size() - 1))];
    OpticsOptions optics;
    optics.eps = eps;
    optics.min_pts = 4;

    StatusOr<OpticsResult> plain = RunOptics(n, dist, optics);
    size_t refined = 0;
    StatusOr<OpticsResult> indexed = RunOpticsIndexed(
        n,
        [&](int id, double radius) {
          QueryCost cost;
          auto hits = engine.Range(QueryStrategy::kVectorSetFilter,
                                   db.object(id), radius, &cost);
          refined += cost.candidates_refined;
          return hits;
        },
        dist, optics);
    if (!plain.ok() || !indexed.ok()) {
      std::fprintf(stderr, "OPTICS failed\n");
      return 1;
    }
    bool same = plain->ordering.size() == indexed->ordering.size();
    for (size_t i = 0; same && i < plain->ordering.size(); ++i) {
      same = plain->ordering[i].object == indexed->ordering[i].object;
    }
    const size_t scan_work = plain->distance_evaluations;
    const size_t index_work = indexed->distance_evaluations + refined;
    table.AddRow({TablePrinter::Num(q, 2), std::to_string(scan_work),
                  std::to_string(indexed->distance_evaluations),
                  std::to_string(refined),
                  TablePrinter::Num(
                      100.0 * (1.0 - static_cast<double>(index_work) /
                                         static_cast<double>(scan_work)),
                      1) + "%",
                  same ? "yes" : "NO"});
    refined = 0;
  }
  table.Print();
  std::printf("\n'scan dists' counts exact matching distances of plain "
              "OPTICS (n per expansion); the indexed variant pays "
              "'refined' filter refinements plus 'indexed dists' "
              "neighbor distances.\n");
  return 0;
}
