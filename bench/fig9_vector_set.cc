// Figure 9: OPTICS reachability plots of the vector set model with 3
// covers (a, b) and 7 covers (c, d) on the Car and Aircraft data sets.
//
// Paper finding: 7 covers are necessary to model real-world CAD parts
// accurately; with only 3 covers the same shortcomings appear as with
// the plain cover sequence model. With 7 covers the vector set model
// recovers cluster hierarchies (G1/G2) and clusters (F) that the
// one-vector model loses, and avoids its mixed clusters (X).
#include <algorithm>
#include <cstdio>
#include <limits>

#include "bench/bench_util.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/features/orientation.h"

using namespace vsim;

namespace {

// OPTICS over vector sets truncated to k covers (with optional
// Definition-2 orientation invariance).
OpticsResult OpticsForK(const CadDatabase& db, int k, bool invariant) {
  std::vector<VectorSet> sets;
  sets.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    sets.push_back(ToVectorSet(db.object(i).cover_sequence, k));
  }
  PairwiseDistanceFn fn;
  if (invariant) {
    fn = [&sets](int a, int b) {
      double best = std::numeric_limits<double>::infinity();
      for (const Mat3& m : CubeRotationsWithReflections()) {
        best = std::min(best,
                        VectorSetDistance(sets[a],
                                          TransformVectorSet(sets[b], m)));
      }
      return best;
    };
  } else {
    fn = [&sets](int a, int b) { return VectorSetDistance(sets[a], sets[b]); };
  }
  OpticsOptions opt;
  opt.min_pts = 4;
  StatusOr<OpticsResult> result =
      RunOptics(static_cast<int>(db.size()), fn, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.num_covers = 7;

  std::printf("Figure 9 reproduction: vector set model with 3 and 7 "
              "covers\n");

  const Dataset car = bench::CarDataset(cfg);
  const CadDatabase car_db = bench::BuildDatabase(car, opt);
  bench::PrintReachabilityFigure(
      "(a) vector set model, Car data set, 3 covers",
      OpticsForK(car_db, 3, cfg.invariant_car), car.EvaluationLabels());
  bench::PrintReachabilityFigure(
      "(c) vector set model, Car data set, 7 covers",
      OpticsForK(car_db, 7, cfg.invariant_car), car.EvaluationLabels());

  const Dataset aircraft = bench::AircraftDataset(cfg);
  const CadDatabase air_db = bench::BuildDatabase(aircraft, opt);
  bench::PrintReachabilityFigure(
      "(b) vector set model, Aircraft data set, 3 covers",
      OpticsForK(air_db, 3, cfg.invariant_aircraft),
      aircraft.EvaluationLabels());
  bench::PrintReachabilityFigure(
      "(d) vector set model, Aircraft data set, 7 covers",
      OpticsForK(air_db, 7, cfg.invariant_aircraft),
      aircraft.EvaluationLabels());

  std::printf("\nExpected shape: the 7-cover cuts dominate the 3-cover "
              "cuts, and both Figure-9(c/d) cuts dominate the one-vector "
              "model of Figure 7.\n");
  return 0;
}
