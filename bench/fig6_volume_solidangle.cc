// Figure 6: OPTICS reachability plots of the volume model (a, b) and
// the solid-angle model (c, d) on the Car and Aircraft data sets.
//
// Paper finding: the volume model's plots show "a minimum of
// structure"; the solid-angle model finds a few clusters, but mixes
// intuitively dissimilar objects and splits similar ones -- both are
// inferior to the cover-based models of Figures 7-9.
#include <cstdio>

#include "bench/bench_util.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;  // r = 30 histograms (paper), covers unused here
  opt.extract_covers = false;

  std::printf("Figure 6 reproduction: volume & solid-angle model "
              "reachability plots\n");

  {
    const Dataset car = bench::CarDataset(cfg);
    const CadDatabase db = bench::BuildDatabase(car, opt);
    const OpticsResult vol =
        bench::RunModelOptics(db, ModelType::kVolume, cfg.invariant_car);
    bench::PrintReachabilityFigure("(a) volume model, Car data set", vol,
                                   car.EvaluationLabels());
    const OpticsResult sa =
        bench::RunModelOptics(db, ModelType::kSolidAngle, cfg.invariant_car);
    bench::PrintReachabilityFigure("(c) solid-angle model, Car data set", sa,
                                   car.EvaluationLabels());
  }
  {
    const Dataset aircraft = bench::AircraftDataset(cfg);
    const CadDatabase db = bench::BuildDatabase(aircraft, opt);
    const OpticsResult vol = bench::RunModelOptics(db, ModelType::kVolume,
                                                   cfg.invariant_aircraft);
    bench::PrintReachabilityFigure("(b) volume model, Aircraft data set",
                                   vol, aircraft.EvaluationLabels());
    const OpticsResult sa = bench::RunModelOptics(db, ModelType::kSolidAngle,
                                                  cfg.invariant_aircraft);
    bench::PrintReachabilityFigure("(d) solid-angle model, Aircraft data set",
                                   sa, aircraft.EvaluationLabels());
  }
  std::printf("\nCompare the best-cut quality lines against Figures 7-9: "
              "the histogram models are expected to trail the cover-based "
              "models.\n");
  return 0;
}
