// Online-reindex latency bench: what does an atomic snapshot swap cost
// the queries that are in flight around it?
//
// Two phases over the same closed-loop workload (8 client threads,
// k-NN with the centroid filter, emulated NVMe-era I/O waits):
//
//   steady   -- no swaps; baseline p50/p95/p99 per-request latency.
//   reindex  -- a background Rebuilder re-extracts the data set and
//               publishes >= 3 snapshot swaps mid-workload while the
//               clients keep hammering the service.
//
// Because readers acquire a snapshot per request and the swap is a
// shared_ptr exchange under an uncontended mutex, the expected result
// is that the latency distribution is indistinguishable between the
// phases -- the rebuild cost lands entirely on the rebuilder thread.
// The bench also checks the consistency contract: every response's
// generation must lie within [generation at admission, generation at
// completion], and at least 3 swaps must land while requests are in
// flight. Emits one "JSON: " line for the bench trajectory.
//
// Defaults use a 300-object aircraft-like data set; VSIM_FULL=1 scales
// to 1500 objects.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/common/thread_annotations.h"
#include "vsim/common/stopwatch.h"
#include "vsim/service/query_service.h"
#include "vsim/service/rebuilder.h"

using namespace vsim;

namespace {

constexpr int kClients = 8;
constexpr int kSwaps = 3;

struct PhaseResult {
  std::vector<double> latencies;  // seconds, one per completed request
  size_t wrong_generation = 0;
  size_t failed = 0;
  uint64_t swaps = 0;
  double elapsed_seconds = 0.0;

  double Percentile(double p) const {
    if (latencies.empty()) return 0.0;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[rank];
  }
};

// Runs `queries` k-NN requests from kClients closed-loop clients; when
// `rebuilder` is non-null, publishes kSwaps snapshot swaps spread over
// the workload (waiting for each to land before scheduling the next).
PhaseResult RunPhase(QueryService& service, Rebuilder* rebuilder,
                     int queries, size_t db_size, int k) {
  PhaseResult result;
  Mutex latency_mu("bench.reindex.latencies");
  std::atomic<bool> stop{false};
  std::atomic<int> issued{0};
  std::atomic<size_t> wrong_generation{0};
  std::atomic<size_t> failed{0};
  const uint64_t swaps_before = service.Stats().snapshot_swaps;

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  Stopwatch watch;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Rng rng(0x5eedULL * (c + 1));
      std::vector<double> local;
      while (!stop.load(std::memory_order_relaxed)) {
        issued.fetch_add(1, std::memory_order_relaxed);
        ServiceRequest request;
        request.object_id = static_cast<int>(rng.NextBounded(db_size));
        request.options.k = k;
        const uint64_t admission_gen = service.generation();
        StatusOr<ServiceResponse> response = service.Execute(request);
        const uint64_t completion_gen = service.generation();
        if (!response.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (response->generation < admission_gen ||
            response->generation > completion_gen) {
          wrong_generation.fetch_add(1, std::memory_order_relaxed);
        }
        local.push_back(response->latency_seconds);
      }
      MutexLock lock(&latency_mu);
      result.latencies.insert(result.latencies.end(), local.begin(),
                              local.end());
    });
  }

  if (rebuilder != nullptr) {
    for (int s = 1; s <= kSwaps; ++s) {
      const int threshold = queries * s / (kSwaps + 1);
      while (issued.load(std::memory_order_relaxed) < threshold) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const Status st = rebuilder->Trigger().get();
      if (!st.ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
  }
  while (issued.load(std::memory_order_relaxed) < queries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();

  result.elapsed_seconds = watch.ElapsedSeconds();
  result.wrong_generation = wrong_generation.load(std::memory_order_relaxed);
  result.failed = failed.load(std::memory_order_relaxed);
  result.swaps = service.Stats().snapshot_swaps - swaps_before;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t objects = bench::FullRun() ? 1500 : 300;
  const int queries = bench::FullRun() ? 4000 : 1500;
  const int k = 10;

  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = MakeAircraftDataset(objects, 7);
  CadDatabase db = bench::BuildDatabase(ds, opt);
  const size_t db_size = db.size();

  QueryServiceOptions options;
  options.num_threads = 4;
  options.cache_bytes = 0;  // every request exercises the full pipeline
  options.simulate_io_wait = true;
  options.io_params.seconds_per_page_access = 100e-6;
  options.io_params.seconds_per_byte = 0.0;
  QueryService service(DbSnapshot::Create(std::move(db), 0), options);
  Rebuilder rebuilder(&service, [&]() -> StatusOr<CadDatabase> {
    return CadDatabase::FromDataset(ds, opt, /*num_threads=*/2);
  });

  std::printf("reindex under load: %zu objects, %d queries per phase, "
              "%d clients, %d workers, %d swaps\n\n",
              db_size, queries, kClients, options.num_threads, kSwaps);

  const PhaseResult steady = RunPhase(service, nullptr, queries, db_size, k);
  const PhaseResult reindex =
      RunPhase(service, &rebuilder, queries, db_size, k);

  TablePrinter table(
      {"phase", "requests", "p50 ms", "p95 ms", "p99 ms", "swaps"});
  for (const auto& [name, phase] :
       {std::pair<const char*, const PhaseResult&>{"steady", steady},
        {"reindex", reindex}}) {
    table.AddRow({name, std::to_string(phase.latencies.size()),
                  TablePrinter::Num(phase.Percentile(0.50) * 1e3, 3),
                  TablePrinter::Num(phase.Percentile(0.95) * 1e3, 3),
                  TablePrinter::Num(phase.Percentile(0.99) * 1e3, 3),
                  std::to_string(phase.swaps)});
  }
  table.Print();

  bool ok = true;
  if (reindex.swaps < kSwaps) {
    std::fprintf(stderr, "FAIL: only %llu swaps landed mid-workload\n",
                 static_cast<unsigned long long>(reindex.swaps));
    ok = false;
  }
  const size_t violations = steady.wrong_generation + reindex.wrong_generation;
  if (violations > 0) {
    std::fprintf(stderr, "FAIL: %zu generation-window violations\n",
                 violations);
    ok = false;
  }
  if (steady.failed + reindex.failed > 0) {
    std::fprintf(stderr, "FAIL: %zu requests errored\n",
                 steady.failed + reindex.failed);
    ok = false;
  }
  std::printf("\nconsistency: %zu generation-window violations across %zu "
              "responses; final generation %llu\n",
              violations, steady.latencies.size() + reindex.latencies.size(),
              static_cast<unsigned long long>(service.generation()));

  std::string json =
      "{\"bench\":\"reindex_under_load\",\"objects\":" +
      std::to_string(db_size) + ",\"clients\":" + std::to_string(kClients) +
      ",\"swaps\":" + std::to_string(reindex.swaps) +
      ",\"steady_p50_ms\":" +
      TablePrinter::Num(steady.Percentile(0.50) * 1e3, 3) +
      ",\"steady_p99_ms\":" +
      TablePrinter::Num(steady.Percentile(0.99) * 1e3, 3) +
      ",\"reindex_p50_ms\":" +
      TablePrinter::Num(reindex.Percentile(0.50) * 1e3, 3) +
      ",\"reindex_p99_ms\":" +
      TablePrinter::Num(reindex.Percentile(0.99) * 1e3, 3) +
      ",\"wrong_generation\":" + std::to_string(violations) + "}";
  const int json_rc = bench::EmitJson(json, bench::JsonOutPath(argc, argv));
  return ok ? json_rc : 1;
}
