// Ablation E: leave-one-out k-NN classification accuracy per similarity
// model -- the query-centric counterpart of the OPTICS evaluation
// (the paper opens Section 5 with sample k-NN queries before arguing
// for clustering as the more objective tool; labels let us run the
// k-NN evaluation objectively too).
#include <cstdio>

#include "bench/bench_util.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  ExtractionOptions opt;

  std::printf("Ablation E: leave-one-out k-NN classification accuracy\n\n");

  const ModelType models[] = {ModelType::kVolume, ModelType::kSolidAngle,
                              ModelType::kCoverSequence,
                              ModelType::kCoverSequencePermutation,
                              ModelType::kVectorSet};

  for (int which = 0; which < 2; ++which) {
    const Dataset ds =
        which == 0 ? bench::CarDataset(cfg) : bench::AircraftDataset(cfg);
    const bool invariant =
        which == 0 ? cfg.invariant_car : cfg.invariant_aircraft;
    const CadDatabase db = bench::BuildDatabase(ds, opt);
    const std::vector<int> truth = ds.EvaluationLabels();
    std::printf("%s data set (%zu objects%s):\n", ds.name.c_str(), ds.size(),
                invariant ? ", invariant distances" : "");
    TablePrinter table({"model", "1-NN acc", "5-NN acc"});
    for (ModelType model : models) {
      const PairwiseDistanceFn fn =
          invariant ? db.InvariantDistanceFunction(model, true)
                    : db.DistanceFunction(model);
      table.AddRow(
          {ModelTypeName(model),
           TablePrinter::Num(
               100 * LeaveOneOutKnnAccuracy(static_cast<int>(db.size()), fn,
                                            truth, 1),
               1) + "%",
           TablePrinter::Num(
               100 * LeaveOneOutKnnAccuracy(static_cast<int>(db.size()), fn,
                                            truth, 5),
               1) + "%"});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Expected shape: the cover-based models classify at least "
              "as well as the histogram models; vector set >= cover "
              "sequence.\n");
  return 0;
}
