// Sharded-buffer-pool bench: fetch throughput vs. latch-partition
// (shard) count under multi-threaded churn, and hit ratio vs. pool
// capacity on a skewed workload. Emits one "JSON: " line like the
// other serving benches (--json FILE additionally writes the raw line;
// BENCH_cache.json is checked in from such a run).
//
// The scaling experiment is the tentpole claim made measurable: with
// every thread hammering one latch (shards=1) the miss path's
// exclusive lock serializes eviction + page I/O, while at 8 shards the
// same workload spreads across independent partitions. Hits take only
// the shard's shared lock, so the single-shard configuration is hurt
// exactly where a single-mutex pool would be -- on eviction churn.
//
// Workload: 80% of fetches go to a hot 10% of the pages (the skew that
// makes tiering and caching worth having), 20% sweep the cold rest.
// The pool is sized well below the page count, so the cold tail churns
// frames constantly.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "vsim/cache/page_cache.h"
#include "vsim/common/rng.h"
#include "vsim/common/stopwatch.h"
#include "vsim/common/table_printer.h"
#include "vsim/storage/paged_file.h"

using namespace vsim;

namespace {

constexpr size_t kPageSize = 4096;

std::string TempStorePath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/bench_buffer_pool.vspg";
}

// One thread's share of the skewed fetch workload; returns fetches
// completed (all fetches must succeed -- a failure aborts the bench).
void RunThread(cache::ShardedBufferPool* pool,
               const std::vector<PageId>* pages, uint64_t seed, int fetches) {
  Rng rng(seed);
  const uint64_t n = pages->size();
  const uint64_t hot = n / 10 == 0 ? 1 : n / 10;
  for (int i = 0; i < fetches; ++i) {
    const uint64_t idx = rng.NextBounded(100) < 80
                             ? rng.NextBounded(hot)
                             : hot + rng.NextBounded(n - hot);
    StatusOr<cache::PageHandle> h = (*pool).Fetch((*pages)[idx]);
    if (!h.ok()) {
      std::fprintf(stderr, "fetch failed: %s\n",
                   h.status().ToString().c_str());
      std::exit(1);
    }
    // Touch the payload so the fetch is not optimized into a no-op
    // ('x' fill means this never fires).
    if (h->data()[0] == 127) std::fputc('.', stderr);
  }
}

double RunWorkload(cache::ShardedBufferPool* pool,
                   const std::vector<PageId>* pages, int threads,
                   int fetches_per_thread) {
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(RunThread, pool, pages,
                         static_cast<uint64_t>(9000 + t),
                         fetches_per_thread);
  }
  for (auto& w : workers) w.join();
  return static_cast<double>(threads) * fetches_per_thread /
         watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t pages_n = bench::FullRun() ? 4096 : 1024;
  const int threads = 8;
  const int fetches = bench::FullRun() ? 200000 : 50000;

  const std::string path = TempStorePath();
  StatusOr<PagedFile> file = PagedFile::Create(path, kPageSize);
  if (!file.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 file.status().ToString().c_str());
    return 1;
  }
  std::vector<PageId> pages;
  pages.reserve(pages_n);
  std::vector<char> buf(kPageSize, 'x');
  for (size_t i = 0; i < pages_n; ++i) {
    StatusOr<PageId> p = file->Allocate();
    if (!p.ok() || !file->Write(*p, buf.data()).ok()) {
      std::fprintf(stderr, "page setup failed\n");
      return 1;
    }
    pages.push_back(*p);
  }

  std::printf("buffer pool bench: %zu pages of %zu B, %d threads, "
              "%d fetches/thread, 80/20 skew\n\n",
              pages_n, kPageSize, threads, fetches);

  // --- throughput vs. shard count (capacity fixed well below the
  // working set, so the miss/eviction path stays busy) ----------------
  const size_t capacity = pages_n / 8;
  TablePrinter shard_table(
      {"shards", "fetches/s", "hit %", "speedup vs 1 shard"});
  std::string json = "{\"bench\":\"buffer_pool\",\"pages\":" +
                     std::to_string(pages_n) +
                     ",\"threads\":" + std::to_string(threads) +
                     ",\"capacity\":" + std::to_string(capacity) +
                     ",\"shards\":{";
  double base_qps = 0.0;
  double qps8 = 0.0;
  for (const size_t shards : {1, 2, 4, 8}) {
    cache::ShardedBufferPool pool(&*file, cache::PoolOptions{capacity,
                                                             shards});
    RunWorkload(&pool, &pages, threads, fetches / 5);  // warm-up
    pool.ResetStats();
    const double qps = RunWorkload(&pool, &pages, threads, fetches);
    const cache::PoolStatsSnapshot s = pool.Stats();
    const double hit_pct =
        100.0 * s.hits() / static_cast<double>(s.hits() + s.misses);
    if (shards == 1) base_qps = qps;
    if (shards == 8) qps8 = qps;
    shard_table.AddRow({std::to_string(shards), TablePrinter::Num(qps, 0),
                        TablePrinter::Num(hit_pct, 1),
                        TablePrinter::Num(qps / base_qps) + "x"});
    json += (shards == 1 ? "\"" : ",\"") + std::to_string(shards) +
            "\":" + TablePrinter::Num(qps, 1);
  }
  json += "},\"speedup_8shard\":" + TablePrinter::Num(qps8 / base_qps, 3);
  shard_table.Print();

  // --- hit ratio vs. capacity (shards fixed at 8) ---------------------
  std::printf("\n");
  TablePrinter cap_table({"capacity", "hit %", "evictions", "promotions"});
  json += ",\"hit_ratio\":{";
  bool first = true;
  for (const size_t cap :
       {pages_n / 32, pages_n / 8, pages_n / 2, pages_n}) {
    cache::ShardedBufferPool pool(&*file, cache::PoolOptions{cap, 8});
    RunWorkload(&pool, &pages, threads, fetches / 5);  // warm-up
    pool.ResetStats();
    RunWorkload(&pool, &pages, threads, fetches);
    const cache::PoolStatsSnapshot s = pool.Stats();
    const double ratio =
        static_cast<double>(s.hits()) /
        static_cast<double>(s.hits() + s.misses);
    cap_table.AddRow({std::to_string(cap), TablePrinter::Num(100 * ratio, 1),
                      std::to_string(s.evictions()),
                      std::to_string(s.promotions)});
    json += std::string(first ? "\"" : ",\"") + std::to_string(cap) +
            "\":" + TablePrinter::Num(ratio, 4);
    first = false;
  }
  json += "}}";
  cap_table.Print();

  std::remove(path.c_str());
  return bench::EmitJson(json, bench::JsonOutPath(argc, argv));
}
