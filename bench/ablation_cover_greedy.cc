// Ablation D (Section 3.3.3): the paper uses Jagadish & Bruckstein's
// *greedy* algorithm rather than the exponential branch-and-bound. Our
// greedy step itself has two arg-max search modes: multi-seed hill
// climbing (default) and exhaustive cuboid enumeration (exact greedy).
// This bench measures the approximation error and runtime of both on
// real part shapes.
#include <cstdio>

#include "bench/bench_util.h"
#include "vsim/common/stopwatch.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/voxel/voxelizer.h"

using namespace vsim;

int main() {
  const bench::BenchConfig cfg = bench::Config();
  Dataset ds = MakeCarDataset(std::min<size_t>(cfg.car_objects, 60), 42);

  std::printf("Ablation D: greedy cover search quality (hill-climb vs "
              "exhaustive arg-max), %zu car parts, r = 15\n\n",
              ds.size());

  VoxelizerOptions vox;
  vox.resolution = 15;

  TablePrinter table({"k", "mean Err_k/|O| (hill-climb)",
                      "mean Err_k/|O| (exhaustive)", "hc ms/object",
                      "ex ms/object"});
  for (int k : {1, 3, 5, 7, 9}) {
    double hc_err = 0, ex_err = 0, hc_ms = 0, ex_ms = 0;
    size_t objects = 0;
    for (const CadObject& obj : ds.objects) {
      StatusOr<VoxelModel> model = VoxelizeParts(obj.parts, vox);
      if (!model.ok()) continue;
      ++objects;
      const double total = static_cast<double>(model->grid.Count());

      CoverSequenceOptions hc;
      hc.max_covers = k;
      Stopwatch w1;
      StatusOr<CoverSequence> seq_hc = ComputeCoverSequence(model->grid, hc);
      hc_ms += w1.ElapsedMillis();

      CoverSequenceOptions ex = hc;
      ex.search = CoverSequenceOptions::Search::kExhaustive;
      Stopwatch w2;
      StatusOr<CoverSequence> seq_ex = ComputeCoverSequence(model->grid, ex);
      ex_ms += w2.ElapsedMillis();

      hc_err += static_cast<double>(seq_hc->final_error()) / total;
      ex_err += static_cast<double>(seq_ex->final_error()) / total;
    }
    table.AddRow({std::to_string(k),
                  TablePrinter::Num(hc_err / objects, 4),
                  TablePrinter::Num(ex_err / objects, 4),
                  TablePrinter::Num(hc_ms / objects, 2),
                  TablePrinter::Num(ex_ms / objects, 2)});
  }
  table.Print();
  std::printf("\nExpected shape: hill climbing tracks the exact greedy "
              "arg-max closely at a fraction of the cost; the symmetric "
              "volume difference falls monotonically with k.\n");
  return 0;
}
