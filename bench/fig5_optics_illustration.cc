// Figure 5: OPTICS illustration -- reachability plot of a 2-D sample
// data set with nested cluster structure; cutting at eps1 yields two
// clusters (A, B), cutting at a lower eps2 splits A into A1, A2 (and
// shrinks B).
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "vsim/common/rng.h"
#include "vsim/distance/lp.h"

using namespace vsim;

int main() {
  // Cluster A = two adjacent sub-blobs A1, A2; cluster B = one distant
  // blob; plus background noise.
  Rng rng(5);
  std::vector<FeatureVector> pts;
  std::vector<int> truth;
  auto blob = [&](double cx, double cy, double sd, int n, int label) {
    for (int i = 0; i < n; ++i) {
      pts.push_back({cx + rng.Gaussian(0, sd), cy + rng.Gaussian(0, sd)});
      truth.push_back(label);
    }
  };
  blob(0.0, 0.0, 0.35, 40, 0);   // A1
  blob(2.2, 0.0, 0.35, 40, 1);   // A2 (close to A1)
  blob(10.0, 0.0, 0.5, 50, 2);   // B (far away)
  for (int i = 0; i < 12; ++i) {  // sparse noise
    pts.push_back({rng.Uniform(-2, 13), rng.Uniform(-4, 4)});
    truth.push_back(3 + i);
  }

  OpticsOptions opt;
  opt.min_pts = 5;
  StatusOr<OpticsResult> result = RunOptics(
      static_cast<int>(pts.size()),
      [&](int i, int j) { return EuclideanDistance(pts[i], pts[j]); }, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 5 reproduction: OPTICS reachability plot of a 2-D "
              "sample (%zu points)\n\n", pts.size());
  std::printf("%s", ReachabilityAscii(*result, 14, 110).c_str());

  auto cluster_count = [&](double eps) {
    std::set<int> clusters;
    for (int l : ExtractClusters(*result, eps, 5)) {
      if (l >= 0) clusters.insert(l);
    }
    return clusters.size();
  };
  const double eps1 = 2.0, eps2 = 0.7;
  std::printf("\ncut at eps1 = %.1f -> %zu clusters (paper: A and B)\n",
              eps1, cluster_count(eps1));
  std::printf("cut at eps2 = %.1f -> %zu clusters (paper: A1, A2 and B)\n",
              eps2, cluster_count(eps2));
  return 0;
}
