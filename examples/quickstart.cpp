// Quickstart: extract vector-set features from a handful of CAD parts
// and answer a k-nearest-neighbor query.
//
//   $ ./example_quickstart
//
// Walks through the full pipeline: parametric part -> voxel grid ->
// cover sequence -> vector set -> minimal matching distance -> k-NN.
#include <cstdio>

#include "vsim/core/query_engine.h"
#include "vsim/core/similarity.h"
#include "vsim/geometry/primitives.h"

int main() {
  using namespace vsim;

  // 1. A tiny in-memory "database" of CAD parts.
  CadDatabase db;  // default options: r=15 covers, k=7, r=30 histograms
  struct Part {
    const char* name;
    parts::MeshParts meshes;
  };
  const Part catalog[] = {
      {"torus/tire", {MakeTorus(1.0, 0.4)}},
      {"fat torus", {MakeTorus(1.0, 0.5)}},
      {"washer", {MakeTube(1.0, 0.5, 0.2)}},
      {"box", {MakeBox({2, 1, 0.5})}},
      {"slightly different box", {MakeBox({2.1, 1.05, 0.48})}},
      {"sphere", {MakeSphere(1.0)}},
      {"cylinder", {MakeCylinder(1.0, 2.0)}},
      {"cone", {MakeFrustum(1.0, 0.0, 2.0)}},
  };
  for (size_t i = 0; i < std::size(catalog); ++i) {
    StatusOr<int> id = db.AddObject(catalog[i].meshes, static_cast<int>(i));
    if (!id.ok()) {
      std::fprintf(stderr, "failed to add %s: %s\n", catalog[i].name,
                   id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("extracted %zu objects (vector sets of <= %d covers)\n\n",
              db.size(), db.options().num_covers);

  // 2. Pairwise distances under the vector set model.
  std::printf("vector-set distance matrix (minimal matching distance):\n");
  std::printf("%24s", "");
  for (size_t j = 0; j < std::size(catalog); ++j) std::printf("%6zu", j);
  std::printf("\n");
  for (size_t i = 0; i < std::size(catalog); ++i) {
    std::printf("%2zu %21s", i, catalog[i].name);
    for (size_t j = 0; j < std::size(catalog); ++j) {
      std::printf("%6.2f", db.Distance(ModelType::kVectorSet,
                                       static_cast<int>(i),
                                       static_cast<int>(j)));
    }
    std::printf("\n");
  }

  // 3. A 3-NN query with the filter-and-refine engine.
  QueryEngine engine(&db);
  QueryCost cost;
  const int query = 0;  // the tire
  const auto nn =
      engine.Knn(QueryStrategy::kVectorSetFilter, query, 3, &cost);
  std::printf("\n3-NN of '%s' (extended-centroid filter + refinement):\n",
              catalog[query].name);
  for (const Neighbor& n : nn) {
    std::printf("  %-24s  distance %.3f\n", catalog[n.id].name, n.distance);
  }
  std::printf("cost: %zu page accesses, %zu bytes, %zu exact distances\n",
              cost.io.page_accesses(), cost.io.bytes_read(),
              cost.candidates_refined);
  return 0;
}
