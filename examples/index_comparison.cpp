// Query-processing strategies side by side (the machinery behind the
// paper's Table 2): one-vector X-tree, vector set with the extended-
// centroid filter, sequential scan, and an M-tree -- with the paper's
// simulated I/O cost model (8 ms/page, 200 ns/byte).
//
//   $ ./example_index_comparison [objects] [queries]
#include <cstdio>
#include <cstdlib>

#include "vsim/common/rng.h"
#include "vsim/common/table_printer.h"
#include "vsim/core/query_engine.h"
#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"

int main(int argc, char** argv) {
  using namespace vsim;
  const size_t objects = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  const int queries = argc > 2 ? std::atoi(argv[2]) : 20;

  std::printf("building aircraft-like data set (%zu objects)...\n", objects);
  const Dataset ds = MakeAircraftDataset(objects, 7);
  ExtractionOptions opt;
  opt.extract_histograms = false;  // only covers are needed here
  StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("building indexes (X-trees + M-tree)...\n");
  QueryEngine engine(&*db);
  std::printf("centroid X-tree: %zu nodes, height %d, %zu supernodes\n",
              engine.centroid_index().node_count(),
              engine.centroid_index().height(),
              engine.centroid_index().supernode_count());
  std::printf("42-d one-vector X-tree: %zu nodes, height %d, %zu supernodes\n\n",
              engine.one_vector_index().node_count(),
              engine.one_vector_index().height(),
              engine.one_vector_index().supernode_count());

  Rng rng(123);
  std::vector<int> query_ids;
  for (int q = 0; q < queries; ++q) {
    query_ids.push_back(static_cast<int>(rng.NextBounded(db->size())));
  }

  TablePrinter table({"strategy", "CPU ms/query", "sim. I/O s/query",
                      "refined/query", "pages/query"});
  for (QueryStrategy strategy :
       {QueryStrategy::kOneVectorXTree, QueryStrategy::kVectorSetFilter,
        QueryStrategy::kVectorSetScan, QueryStrategy::kVectorSetMTree}) {
    QueryCost total;
    for (int id : query_ids) {
      QueryCost cost;
      engine.Knn(strategy, id, 10, &cost);
      total += cost;
    }
    table.AddRow(
        {QueryStrategyName(strategy),
         TablePrinter::Num(1e3 * total.cpu_seconds / queries, 3),
         TablePrinter::Num(total.IoSeconds() / queries, 3),
         TablePrinter::Num(
             static_cast<double>(total.candidates_refined) / queries, 1),
         TablePrinter::Num(
             static_cast<double>(total.io.page_accesses()) / queries, 1)});
  }
  std::printf("10-NN query cost over %d random queries:\n", queries);
  table.Print();
  std::printf("\nExpected shape (paper Table 2): the centroid filter cuts "
              "exact distance computations ~10x vs the scan and wins on "
              "total time; the scan has cheaper sequential I/O than the "
              "filter's random accesses.\n");
  return 0;
}
