// Visual walk-through of the cover sequence model (the paper's Figures
// 3 and 4): voxelize a part, run the greedy cover search, and render
// grid slices showing which cover claims each voxel -- then demonstrate
// the cover-order problem that motivates the vector set model, by
// comparing the one-vector distance against the minimal matching
// distance for two similar parts whose covers come out in different
// orders.
//
//   $ ./example_cover_visualization
#include <cstdio>

#include "vsim/core/similarity.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_matching.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

using namespace vsim;

namespace {

// Prints z-slices of the grid; object voxels show the index (1-9) of
// the first cover containing them, '.' = uncovered object voxel,
// '#' = cover voxel that is not object ("overshoot").
void PrintSlices(const VoxelGrid& object, const CoverSequence& seq) {
  const int r = object.nx();
  for (int z = 0; z < r; z += 3) {
    std::printf("z = %-2d   ", z);
  }
  std::printf("\n");
  for (int y = 0; y < r; ++y) {
    for (int z = 0; z < r; z += 3) {
      for (int x = 0; x < r; ++x) {
        char c = ' ';
        // Which cover "owns" this voxel after sequential application?
        int owner = -1;
        bool in_approx = false;
        for (size_t i = 0; i < seq.covers.size(); ++i) {
          if (seq.covers[i].Contains(x, y, z)) {
            in_approx = seq.covers[i].positive;
            owner = static_cast<int>(i);
          }
        }
        const bool in_object = object.At(x, y, z);
        if (in_object && in_approx) {
          c = static_cast<char>('1' + owner % 9);
        } else if (in_object) {
          c = '.';
        } else if (in_approx) {
          c = '#';
        }
        std::printf("%c", c);
      }
      std::printf("   ");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // A bracket: two slabs -> the greedy search should find ~2 covers.
  TriangleMesh leg1 = MakeBox({2.0, 0.5, 0.5});
  TriangleMesh leg2 = MakeBox({0.5, 0.5, 1.6});
  leg2.ApplyTransform(Transform::Translate({0.75, 0, 0.9}));

  VoxelizerOptions vox;
  vox.resolution = 15;
  StatusOr<VoxelModel> model = VoxelizeParts({leg1, leg2}, vox);
  if (!model.ok()) return 1;

  CoverSequenceOptions copt;
  copt.max_covers = 7;
  StatusOr<CoverSequence> seq = ComputeCoverSequence(model->grid, copt);
  if (!seq.ok()) return 1;

  std::printf("cover sequence of an L-bracket (r = 15):\n");
  for (size_t i = 0; i < seq->covers.size(); ++i) {
    const Cover& c = seq->covers[i];
    std::printf("  C%zu %c [%d..%d]x[%d..%d]x[%d..%d]  Err_%zu = %zu\n",
                i + 1, c.positive ? '+' : '-', c.lo.x, c.hi.x, c.lo.y, c.hi.y,
                c.lo.z, c.hi.z, i + 1, seq->error_history[i + 1]);
  }
  std::printf("|O| = %zu voxels, final symmetric volume difference = %zu\n\n",
              model->grid.Count(), seq->final_error());
  PrintSlices(model->grid, *seq);

  // --- The cover-order problem (paper Figure 4) --------------------
  // The paper's Figure 4 is schematic: a query object and a database
  // object built from the same covers, whose greedy ranks differ
  // because two covers have almost the same volume. We reproduce the
  // schematic directly on cover features (position | extent):
  std::printf("\nThe cover-order problem (paper Figure 4):\n");
  auto cover_feature = [](double x, double ex, double ey) {
    return FeatureVector{x, 0.0, 0.0, ex, ey, 0.1};
  };
  VectorSet query, database;
  // Query: base, then the LEFT attachment (rank 2, volume ~100), then
  // the RIGHT attachment (rank 3, volume ~99).
  query.vectors = {cover_feature(0.0, 0.9, 0.3),    // C1: base
                   cover_feature(-0.3, 0.25, 0.41),  // C2: left, slightly bigger
                   cover_feature(0.3, 0.25, 0.40)};  // C3: right
  // Database object: same attachments, but the RIGHT one is now a hair
  // bigger, so the greedy ranks of covers 2 and 3 swap.
  database.vectors = {cover_feature(0.0, 0.9, 0.3),
                      cover_feature(0.3, 0.25, 0.41),   // C2: right
                      cover_feature(-0.3, 0.25, 0.40)};  // C3: left
  const double one_vector = [&] {
    FeatureVector qa, qb;
    for (const auto& v : query.vectors) qa.insert(qa.end(), v.begin(), v.end());
    for (const auto& v : database.vectors) qb.insert(qb.end(), v.begin(), v.end());
    return EuclideanDistance(qa, qb);
  }();
  const MatchingDistanceResult mm =
      MinimalMatchingDistanceDetailed(query, database, MinMatchingOptions{});
  std::printf("  one-vector (order-bound) distance: %.4f\n", one_vector);
  std::printf("  minimal matching distance:         %.4f\n", mm.distance);
  std::printf("  identity-pairing cost:             %.4f\n", mm.identity_cost);
  std::printf("  optimal matching uses a proper permutation: %s\n",
              mm.permutation_used ? "yes" : "no");
  std::printf("-> the order-bound distance compares the left attachment "
              "with the right one;\n   the matching distance re-pairs them "
              "(Section 4, Figure 4, Table 1).\n");
  return 0;
}
