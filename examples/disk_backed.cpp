// Fully disk-backed similarity search: the extracted database lives in
// real paged files (a DiskXTree over the extended centroids and a
// VectorSetStore for the exact representations), queried through the
// concurrent sharded buffer pool (inner X-tree pages retained in its
// hot tier). Page accesses are charged only on actual cache misses,
// which quantifies how far the paper's flat I/O simulation (one page
// per candidate, every time) is from a system with a working buffer
// manager.
//
//   $ ./example_disk_backed [objects]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "vsim/common/rng.h"
#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"
#include "vsim/distance/min_matching.h"
#include "vsim/index/disk_xtree.h"
#include "vsim/storage/vector_set_store.h"

using namespace vsim;

int main(int argc, char** argv) {
  const size_t objects = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  std::printf("extracting %zu aircraft-like parts...\n", objects);
  ExtractionOptions opt;
  opt.extract_histograms = false;
  const Dataset ds = MakeAircraftDataset(objects, 7);
  StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
  if (!db.ok()) return 1;
  const int k_covers = db->options().num_covers;

  // --- Persist everything to disk -----------------------------------
  const std::string tree_path = "/tmp/vsim_disk_demo.tree";
  const std::string store_path = "/tmp/vsim_disk_demo.store";
  {
    XTree centroid_tree(6);
    std::vector<FeatureVector> centroids;
    std::vector<int> ids;
    for (int i = 0; i < static_cast<int>(db->size()); ++i) {
      centroids.push_back(db->object(i).centroid);
      ids.push_back(i);
    }
    if (!centroid_tree.BulkLoad(centroids, ids).ok()) return 1;
    if (!DiskXTree::Write(centroid_tree, tree_path).ok()) return 1;
  }
  {
    StatusOr<VectorSetStore> writer =
        VectorSetStore::Create(store_path, 4096, 8);
    if (!writer.ok()) return 1;
    for (int i = 0; i < static_cast<int>(db->size()); ++i) {
      if (!writer->Append(db->object(i).vector_set).ok()) return 1;
    }
    if (!writer->Flush().ok()) return 1;
  }
  // Reopen both files so every pool starts cold.
  StatusOr<VectorSetStore> store = VectorSetStore::Open(store_path, 8);
  if (!store.ok()) return 1;
  store->pool().ResetStats();  // Open() scans once to rebuild the directory
  StatusOr<DiskXTree> tree = DiskXTree::Open(tree_path, 32);
  if (!tree.ok()) return 1;
  std::printf("persisted: centroid index + vector-set store on disk "
              "(pools start cold)\n\n");

  // --- Filter-and-refine 10-NN on real pages -----------------------
  // Conservative two-phase scheme: probe with a growing centroid-range
  // filter (Lemma 2: exact <= eps implies centroid distance <= eps/k),
  // refine candidates through the store.
  Rng rng(99);
  IoStats total;
  size_t refined_total = 0;
  const int queries = 50;
  for (int q = 0; q < queries; ++q) {
    const int qid = static_cast<int>(rng.NextBounded(db->size()));
    const VectorSet& query_set = db->object(qid).vector_set;
    const FeatureVector& query_centroid = db->object(qid).centroid;

    // Initial radius from a coarse sample, doubled until 10 hits.
    double eps = 0.5;
    std::vector<Neighbor> best;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto candidates =
          tree->RangeQuery(query_centroid, eps / k_covers, &total);
      best.clear();
      for (int id : candidates) {
        StatusOr<VectorSet> stored = store->Get(id, &total);
        if (!stored.ok()) return 1;
        ++refined_total;
        const double d = VectorSetDistance(query_set, *stored);
        if (d <= eps) best.push_back({id, d});
      }
      if (best.size() >= 10) break;
      eps *= 2.0;
    }
    std::sort(best.begin(), best.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance < b.distance;
              });
    if (best.size() > 10) best.resize(10);
  }

  std::printf("%d disk-backed 10-NN queries:\n", queries);
  std::printf("  exact distances computed: %zu (%.1f per query)\n",
              refined_total, static_cast<double>(refined_total) / queries);
  std::printf("  index pool:  %zu hits, %zu misses\n", tree->pool().hits(),
              tree->pool().misses());
  std::printf("  store pool:  %zu hits, %zu misses\n",
              store->pool().hits(), store->pool().misses());
  std::printf("  charged page accesses (misses only): %zu -> %.2f s "
              "simulated I/O\n",
              total.page_accesses(), total.SimulatedSeconds());
  const double flat_pages =
      static_cast<double>(refined_total);  // the paper's flat model
  std::printf("  flat simulation would have charged >= %.0f candidate pages "
              "(%.2f s)\n",
              flat_pages, flat_pages * 0.008);
  std::remove(tree_path.c_str());
  std::remove(store_path.c_str());
  return 0;
}
