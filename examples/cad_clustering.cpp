// Hierarchical-clustering evaluation of the four similarity models on a
// synthetic car-parts data set -- the workflow behind the paper's
// Figures 6-10: run OPTICS under each model, render the reachability
// plot, and score the extracted clusters against ground-truth labels.
//
//   $ ./example_cad_clustering [object_count]
#include <cstdio>
#include <cstdlib>

#include "vsim/cluster/cluster_quality.h"
#include "vsim/cluster/optics.h"
#include "vsim/common/table_printer.h"
#include "vsim/core/similarity.h"
#include "vsim/data/dataset.h"

int main(int argc, char** argv) {
  using namespace vsim;
  const size_t count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;

  std::printf("generating car-like data set (%zu objects)...\n", count);
  Dataset ds = MakeCarDataset(count, 42);
  // Parts are stored in arbitrary standardized poses (and mirrored
  // counterparts exist); the models must absorb this via the paper's
  // 90-degree-rotation + reflection invariances.
  ApplyRandomOrientations(&ds, 4711, /*with_reflections=*/true);

  ExtractionOptions opt;  // paper defaults: r=30 histograms, r=15 covers
  if (argc > 2) opt.histogram_cells = std::atoi(argv[2]);
  std::printf("extracting features (all four models)...\n");
  StatusOr<CadDatabase> db = CadDatabase::FromDataset(ds, opt);
  if (!db.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  const ModelType models[] = {ModelType::kVolume, ModelType::kSolidAngle,
                              ModelType::kCoverSequence,
                              ModelType::kVectorSet};
  TablePrinter table({"model", "clusters", "purity", "ARI", "NMI",
                      "noise%"});
  for (ModelType model : models) {
    OpticsOptions optics;
    optics.min_pts = 4;
    StatusOr<OpticsResult> result =
        RunOptics(static_cast<int>(db->size()),
                  db->InvariantDistanceFunction(model, /*with_reflections=*/true),
                  optics);
    if (!result.ok()) {
      std::fprintf(stderr, "OPTICS failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n=== %s model: reachability plot ===\n",
                ModelTypeName(model));
    std::printf("%s", ReachabilityAscii(*result, 10, 100).c_str());

    const ClusterQuality q =
        BestCutQuality(*result, ds.EvaluationLabels(), 32, 3);
    table.AddRow({ModelTypeName(model), std::to_string(q.cluster_count),
                  TablePrinter::Num(q.purity), TablePrinter::Num(q.adjusted_rand),
                  TablePrinter::Num(q.nmi),
                  TablePrinter::Num(100 * q.noise_fraction, 1)});
  }
  std::printf("\ncluster quality vs ground-truth part families "
              "(best horizontal cut per model):\n");
  table.Print();
  std::printf(
      "\nExpected shape (paper Section 5.3): volume < solid-angle < "
      "cover-sequence <= vector set.\n");
  return 0;
}
