// Vector-set flexibility demo (paper Sections 3.2 and 4.1):
//   1. partial similarity -- matching only the closest i < k covers
//      finds a sub-shape inside a composite part;
//   2. invariance control -- the Definition-2 minimum over the 24
//      rotations (and optionally 48 with reflections) recognizes
//      rotated and mirrored parts.
//
//   $ ./example_partial_similarity
#include <cstdio>

#include "vsim/core/similarity.h"
#include "vsim/distance/min_matching.h"
#include "vsim/geometry/primitives.h"
#include "vsim/voxel/voxelizer.h"

int main() {
  using namespace vsim;
  ExtractionOptions opt;
  opt.extract_histograms = false;
  opt.num_covers = 7;

  // --- Part 1: partial similarity ---------------------------------
  // A bracket alone, and the same bracket welded onto a large plate.
  TriangleMesh leg1 = MakeBox({2.0, 0.4, 0.4});
  TriangleMesh leg2 = MakeBox({0.4, 1.2, 0.4});
  leg2.ApplyTransform(Transform::Translate({0.8, 0.6, 0.4}));

  TriangleMesh plate = MakeBox({4.0, 4.0, 0.3});
  plate.ApplyTransform(Transform::Translate({0, 0, -0.5}));

  StatusOr<ObjectRepr> bracket = ExtractObject({leg1, leg2}, opt);
  StatusOr<ObjectRepr> composite = ExtractObject({leg1, leg2, plate}, opt);
  if (!bracket.ok() || !composite.ok()) {
    std::fprintf(stderr, "extraction failed\n");
    return 1;
  }
  std::printf("bracket:   %zu covers\ncomposite: %zu covers\n",
              bracket->vector_set.size(), composite->vector_set.size());
  const double full =
      VectorSetDistance(bracket->vector_set, composite->vector_set);
  std::printf("full minimal matching distance:    %.3f\n", full);
  for (int pairs = 1;
       pairs <= static_cast<int>(std::min(bracket->vector_set.size(),
                                          composite->vector_set.size()));
       ++pairs) {
    StatusOr<double> partial = PartialMatchingDistance(
        bracket->vector_set, composite->vector_set, pairs);
    if (partial.ok()) {
      std::printf("partial distance (closest %d covers): %.3f\n", pairs,
                  *partial);
    }
  }
  std::printf("-> small partial distances reveal the shared sub-shape that "
              "the full distance hides.\n\n");

  // --- Part 2: rotation / reflection invariance --------------------
  VoxelizerOptions vox;
  vox.resolution = opt.cover_resolution;
  StatusOr<VoxelModel> base = VoxelizeParts({leg1, leg2}, vox);
  if (!base.ok()) return 1;

  const Mat3& rot = CubeRotations()[5];  // some 90-degree rotation
  StatusOr<VoxelGrid> rotated = base->grid.Transformed(rot);
  StatusOr<VoxelGrid> mirrored =
      base->grid.Transformed(Mat3::Scale(-1, 1, 1));
  if (!rotated.ok() || !mirrored.ok()) return 1;

  auto report = [&](const char* what, const VoxelGrid& g) {
    StatusOr<double> rot24 = InvariantVectorSetDistance(base->grid, g, opt,
                                                        /*with_reflections=*/false);
    StatusOr<double> rot48 = InvariantVectorSetDistance(base->grid, g, opt,
                                                        /*with_reflections=*/true);
    std::printf("%-18s min over 24 rotations: %6.3f   over 48 w/ "
                "reflections: %6.3f\n",
                what, rot24.value_or(-1), rot48.value_or(-1));
  };
  std::printf("Definition-2 invariant distances of the bracket to itself "
              "under rigid motions:\n");
  report("identical", base->grid);
  report("rotated 90deg", *rotated);
  report("mirrored", *mirrored);
  std::printf("-> a mirrored part is 'similar' only when reflection "
              "invariance is switched on,\n   matching the paper's "
              "design-vs-production distinction (Section 3.2).\n");
  return 0;
}
