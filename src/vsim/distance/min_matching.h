// Minimal matching distance on vector sets (Definition 6): the cost of
// a minimum-weight perfect matching between two vector sets, where
// unmatched elements of the larger set pay a weight w(x). With w(x) =
// ||x - omega|| and a metric ground distance this is a metric (Lemma 1,
// via the netflow distance of Ramon & Bruynooghe).
#ifndef VSIM_DISTANCE_MIN_MATCHING_H_
#define VSIM_DISTANCE_MIN_MATCHING_H_

#include <vector>

#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"

namespace vsim {

enum class GroundDistance {
  kEuclidean,         // the vector set model's choice
  kSquaredEuclidean,  // reduction for the min. Euclidean distance under
                      // permutation (Section 4.2)
  kManhattan,
};

struct MinMatchingOptions {
  GroundDistance ground = GroundDistance::kEuclidean;

  // Reference point omega of the weight function w(x) = dist(x, omega).
  // Empty means the origin -- the paper's choice: covers never have zero
  // extent, so w(x) > 0 holds and the distance stays a metric.
  FeatureVector omega;

  // Take the square root of the total (used with kSquaredEuclidean to
  // recover the minimum Euclidean distance under permutation and keep
  // the metric character, Section 4.2).
  bool sqrt_of_total = false;
};

struct MatchingDistanceResult {
  double distance = 0.0;

  // For each element of the *larger* input set (a if |a| >= |b|, else
  // b): index of its partner in the smaller set, or -1 if unmatched.
  std::vector<int> assignment;

  // True if the first input was the larger (or equal-sized) set, i.e.
  // `assignment` indexes a -> b.
  bool first_is_larger = true;

  // Cost of the order-preserving pairing (element i with element i,
  // surplus unmatched) -- what the one-vector cover sequence model
  // implicitly uses.
  double identity_cost = 0.0;

  // True if the optimal matching is strictly cheaper than the identity
  // pairing, i.e. at least one "proper permutation" was necessary
  // (the statistic of the paper's Table 1).
  bool permutation_used = false;
};

// Full result with the optimal assignment.
MatchingDistanceResult MinimalMatchingDistanceDetailed(
    const VectorSet& a, const VectorSet& b, const MinMatchingOptions& opt);

// Distance only.
double MinimalMatchingDistance(const VectorSet& a, const VectorSet& b,
                               const MinMatchingOptions& opt);

// The vector set model's distance: Euclidean ground distance, weight
// w(x) = ||x||, no square root. A metric.
double VectorSetDistance(const VectorSet& a, const VectorSet& b);

// Partial similarity (Section 4.1): the cost of the cheapest matching
// of exactly `pairs` vector pairs between the two sets, ignoring all
// remaining vectors (no unmatched penalty). `pairs` must be at least 1
// and at most min(|a|, |b|). Useful when only a sub-shape needs to
// match, e.g. a part that contains another part.
StatusOr<double> PartialMatchingDistance(const VectorSet& a,
                                         const VectorSet& b, int pairs);

}  // namespace vsim

#endif  // VSIM_DISTANCE_MIN_MATCHING_H_
