#include "vsim/distance/min_matching.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "vsim/distance/hungarian.h"
#include "vsim/distance/min_cost_flow.h"
#include "vsim/distance/lp.h"
#include "vsim/kernels/kernels.h"

namespace vsim {

namespace {

kernels::GroundKind ToKernelGround(GroundDistance g) {
  switch (g) {
    case GroundDistance::kEuclidean:
      return kernels::GroundKind::kEuclidean;
    case GroundDistance::kSquaredEuclidean:
      return kernels::GroundKind::kSquaredEuclidean;
    case GroundDistance::kManhattan:
      return kernels::GroundKind::kManhattan;
  }
  return kernels::GroundKind::kEuclidean;
}

// Flattens a (ragged) vector set into a contiguous row-major block for
// the batched kernels.
void Flatten(const VectorSet& set, size_t dim, std::vector<double>* out) {
  out->resize(set.size() * dim);
  double* dst = out->data();
  for (const FeatureVector& v : set.vectors) {
    std::copy(v.begin(), v.end(), dst);
    dst += dim;
  }
}

double Ground(GroundDistance g, const FeatureVector& a,
              const FeatureVector& b) {
  switch (g) {
    case GroundDistance::kEuclidean:
      return EuclideanDistance(a, b);
    case GroundDistance::kSquaredEuclidean:
      return SquaredEuclideanDistance(a, b);
    case GroundDistance::kManhattan:
      return ManhattanDistance(a, b);
  }
  return 0.0;
}

double Weight(GroundDistance g, const FeatureVector& x,
              const FeatureVector& omega) {
  if (omega.empty()) {
    switch (g) {
      case GroundDistance::kEuclidean:
        return EuclideanNorm(x);
      case GroundDistance::kSquaredEuclidean:
        return SquaredEuclideanNorm(x);
      case GroundDistance::kManhattan: {
        double s = 0.0;
        for (double v : x) s += std::fabs(v);
        return s;
      }
    }
  }
  return Ground(g, x, omega);
}

}  // namespace

MatchingDistanceResult MinimalMatchingDistanceDetailed(
    const VectorSet& a, const VectorSet& b, const MinMatchingOptions& opt) {
  MatchingDistanceResult result;
  result.first_is_larger = a.size() >= b.size();
  const VectorSet& large = result.first_is_larger ? a : b;
  const VectorSet& small = result.first_is_larger ? b : a;
  const int m = static_cast<int>(large.size());
  const int n = static_cast<int>(small.size());

  if (m == 0) {
    // Both sets empty.
    return result;
  }
  assert(large.dim() == small.dim() || n == 0);

  // Identity pairing cost (element i with element i, surplus unmatched).
  for (int i = 0; i < m; ++i) {
    result.identity_cost +=
        i < n ? Ground(opt.ground, large.vectors[i], small.vectors[i])
              : Weight(opt.ground, large.vectors[i], opt.omega);
  }

  if (n == 0) {
    // All elements unmatched: distance is the sum of weights.
    double total = 0.0;
    for (int i = 0; i < m; ++i) {
      total += Weight(opt.ground, large.vectors[i], opt.omega);
    }
    result.assignment.assign(m, -1);
    result.distance = opt.sqrt_of_total ? std::sqrt(total) : total;
    result.identity_cost =
        opt.sqrt_of_total ? std::sqrt(result.identity_cost) : result.identity_cost;
    return result;
  }

  // Square m x m cost matrix: columns [0, n) are the elements of the
  // smaller set; columns [n, m) are "unmatched" slots charging w(x).
  // The ground block -- the refinement hot loop -- is one batched
  // kernel call over both sets flattened to contiguous buffers
  // (docs/KERNELS.md), writing rows straight into the square matrix.
  const size_t dim = large.dim();
  std::vector<double> large_flat, small_flat;
  Flatten(large, dim, &large_flat);
  Flatten(small, dim, &small_flat);
  std::vector<double> cost(static_cast<size_t>(m) * m);
  kernels::Active().cost_matrix_build(
      ToKernelGround(opt.ground), large_flat.data(), m, small_flat.data(), n,
      dim, cost.data(), m);
  for (int i = 0; i < m; ++i) {
    const double w = Weight(opt.ground, large.vectors[i], opt.omega);
    for (int j = n; j < m; ++j) {
      cost[static_cast<size_t>(i) * m + j] = w;
    }
  }
  const AssignmentResult assignment = SolveAssignment(cost, m, m);

  result.assignment.resize(m);
  for (int i = 0; i < m; ++i) {
    result.assignment[i] = assignment.column_of[i] < n
                               ? assignment.column_of[i]
                               : -1;
  }
  const double total = assignment.total_cost;
  result.permutation_used =
      total < result.identity_cost - 1e-12 * (1.0 + result.identity_cost);
  result.distance = opt.sqrt_of_total ? std::sqrt(total) : total;
  if (opt.sqrt_of_total) {
    result.identity_cost = std::sqrt(result.identity_cost);
  }
  return result;
}

double MinimalMatchingDistance(const VectorSet& a, const VectorSet& b,
                               const MinMatchingOptions& opt) {
  return MinimalMatchingDistanceDetailed(a, b, opt).distance;
}

double VectorSetDistance(const VectorSet& a, const VectorSet& b) {
  return MinimalMatchingDistance(a, b, MinMatchingOptions{});
}

StatusOr<double> PartialMatchingDistance(const VectorSet& a,
                                         const VectorSet& b, int pairs) {
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (pairs < 1 || pairs > std::min(m, n)) {
    return Status::InvalidArgument(
        "pairs must be in [1, min(|a|, |b|)] for partial matching");
  }
  // Min-cost flow of exactly `pairs` units through the bipartite graph.
  MinCostFlow flow(m + n + 2);
  const int source = 0, sink = m + n + 1;
  for (int i = 0; i < m; ++i) flow.AddEdge(source, 1 + i, 1, 0.0);
  for (int j = 0; j < n; ++j) flow.AddEdge(m + 1 + j, sink, 1, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      flow.AddEdge(1 + i, m + 1 + j, 1,
                   EuclideanDistance(a.vectors[i], b.vectors[j]));
    }
  }
  const MinCostFlow::Result result = flow.Solve(source, sink, pairs);
  if (result.flow != pairs) {
    return Status::Internal("partial matching flow did not saturate");
  }
  return result.cost;
}

}  // namespace vsim
