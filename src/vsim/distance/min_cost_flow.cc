#include "vsim/distance/min_cost_flow.h"

#include <cassert>
#include <cstddef>
#include <limits>
#include <utility>

namespace vsim {

MinCostFlow::MinCostFlow(int num_nodes)
    : num_nodes_(num_nodes), graph_(num_nodes) {}

int MinCostFlow::AddEdge(int from, int to, int64_t capacity, double cost) {
  assert(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  graph_[from].push_back(
      {to, capacity, cost, static_cast<int>(graph_[to].size())});
  graph_[to].push_back(
      {from, 0, -cost, static_cast<int>(graph_[from].size()) - 1});
  edge_refs_.emplace_back(from, static_cast<int>(graph_[from].size()) - 1);
  return static_cast<int>(edge_refs_.size()) - 1;
}

MinCostFlow::Result MinCostFlow::Solve(int source, int sink,
                                       int64_t max_flow) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Result result;
  while (result.flow < max_flow) {
    // Bellman-Ford shortest path by cost (handles the negative reduced
    // costs introduced by residual edges without potentials; graphs are
    // tiny so O(V*E) per augmentation is fine).
    std::vector<double> dist(num_nodes_, kInf);
    std::vector<int> prev_node(num_nodes_, -1);
    std::vector<int> prev_edge(num_nodes_, -1);
    dist[source] = 0.0;
    bool changed = true;
    for (int iter = 0; iter < num_nodes_ && changed; ++iter) {
      changed = false;
      for (int u = 0; u < num_nodes_; ++u) {
        if (dist[u] == kInf) continue;
        for (size_t e = 0; e < graph_[u].size(); ++e) {
          const Edge& edge = graph_[u][e];
          if (edge.capacity <= 0) continue;
          const double nd = dist[u] + edge.cost;
          if (nd < dist[edge.to] - 1e-15) {
            dist[edge.to] = nd;
            prev_node[edge.to] = u;
            prev_edge[edge.to] = static_cast<int>(e);
            changed = true;
          }
        }
      }
    }
    if (dist[sink] == kInf) break;  // no augmenting path left

    // Bottleneck along the path.
    int64_t push = max_flow - result.flow;
    for (int v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_edge[v]].capacity);
    }
    for (int v = sink; v != source; v = prev_node[v]) {
      Edge& edge = graph_[prev_node[v]][prev_edge[v]];
      edge.capacity -= push;
      graph_[edge.to][edge.rev].capacity += push;
    }
    result.flow += push;
    result.cost += static_cast<double>(push) * dist[sink];
  }
  return result;
}

int64_t MinCostFlow::Flow(int id) const {
  const auto [node, offset] = edge_refs_[id];
  const Edge& edge = graph_[node][offset];
  // Flow on a forward edge equals the residual capacity of its reverse.
  return graph_[edge.to][edge.rev].capacity;
}

}  // namespace vsim
