// The minimum Euclidean distance under permutation (Definitions 3/4):
// the distance between two k*d-dimensional cover-sequence vectors
// minimized over all permutations of the d-dimensional sub-vectors.
//
// Two implementations: brute force over all k! permutations (the
// paper's strawman; exponential, used here as a test oracle) and the
// O(k^3) reduction to the minimal matching distance with squared
// Euclidean ground distance and squared-norm weights (Section 4.2).
#ifndef VSIM_DISTANCE_PERMUTATION_DISTANCE_H_
#define VSIM_DISTANCE_PERMUTATION_DISTANCE_H_

#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"

namespace vsim {

// Brute force: permutes the k blocks of d components of `b` and returns
// the minimum Euclidean distance to `a`. Both vectors must have k*d
// components. Cost O(k! * k * d); keep k small.
StatusOr<double> MinEuclideanUnderPermutationBruteForce(
    const FeatureVector& a, const FeatureVector& b, int block_dim);

// Reduction (Section 4.2): minimal matching distance with squared
// Euclidean ground distance, squared-norm weights, square root of the
// total. Sets with fewer than k vectors behave as if padded with zero
// dummy covers, exactly like the one-vector representation.
double MinEuclideanUnderPermutation(const VectorSet& a, const VectorSet& b);

}  // namespace vsim

#endif  // VSIM_DISTANCE_PERMUTATION_DISTANCE_H_
