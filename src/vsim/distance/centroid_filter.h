// Extended centroids and the lower-bounding filter distance of Section
// 4.3 (Definitions 7/8, Lemma 2): for vector sets X, Y with maximum
// cardinality k and reference point omega,
//
//   k * || C_{k,omega}(X) - C_{k,omega}(Y) ||_2
//     <=  dist_mm^{Eucl, w_omega}(X, Y),
//
// so the d-dimensional centroids can be indexed with any spatial index
// and used as a filter step for range and k-NN queries on the exact
// minimal matching distance.
#ifndef VSIM_DISTANCE_CENTROID_FILTER_H_
#define VSIM_DISTANCE_CENTROID_FILTER_H_

#include "vsim/features/feature_vector.h"

namespace vsim {

// C_{k,omega}(X) = (sum_i x_i + (k - |X|) * omega) / k. An empty
// `omega` means the origin. |X| must be <= k.
//
// The filter (lower-bound) distance itself -- k * ||ca - cb||_2 over
// extended centroids -- lives in the kernel API:
// kernels::CentroidFilterBound for one pair, the batched
// centroid_distance_batch kernel for candidate blocks (docs/KERNELS.md
// -- the old free-standing CentroidFilterDistance helper is gone).
FeatureVector ExtendedCentroid(const VectorSet& set, int k,
                               const FeatureVector& omega = {});

}  // namespace vsim

#endif  // VSIM_DISTANCE_CENTROID_FILTER_H_
