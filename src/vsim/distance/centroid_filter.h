// Extended centroids and the lower-bounding filter distance of Section
// 4.3 (Definitions 7/8, Lemma 2): for vector sets X, Y with maximum
// cardinality k and reference point omega,
//
//   k * || C_{k,omega}(X) - C_{k,omega}(Y) ||_2
//     <=  dist_mm^{Eucl, w_omega}(X, Y),
//
// so the d-dimensional centroids can be indexed with any spatial index
// and used as a filter step for range and k-NN queries on the exact
// minimal matching distance.
#ifndef VSIM_DISTANCE_CENTROID_FILTER_H_
#define VSIM_DISTANCE_CENTROID_FILTER_H_

#include "vsim/features/feature_vector.h"

namespace vsim {

// C_{k,omega}(X) = (sum_i x_i + (k - |X|) * omega) / k. An empty
// `omega` means the origin. |X| must be <= k.
FeatureVector ExtendedCentroid(const VectorSet& set, int k,
                               const FeatureVector& omega = {});

// The filter (lower-bound) distance: k * ||ca - cb||_2 where ca, cb are
// extended centroids computed with the same k and omega.
double CentroidFilterDistance(const FeatureVector& centroid_a,
                              const FeatureVector& centroid_b, int k);

}  // namespace vsim

#endif  // VSIM_DISTANCE_CENTROID_FILTER_H_
