#include "vsim/distance/centroid_filter.h"

#include <cassert>

namespace vsim {

FeatureVector ExtendedCentroid(const VectorSet& set, int k,
                               const FeatureVector& omega) {
  assert(static_cast<int>(set.size()) <= k);
  assert(!set.empty() || !omega.empty());
  const size_t dim = set.empty() ? omega.size() : set.dim();
  FeatureVector centroid(dim, 0.0);
  for (const FeatureVector& x : set.vectors) {
    assert(x.size() == dim);
    for (size_t c = 0; c < dim; ++c) centroid[c] += x[c];
  }
  const double missing = static_cast<double>(k) - static_cast<double>(set.size());
  if (!omega.empty() && missing > 0) {
    assert(omega.size() == dim);
    for (size_t c = 0; c < dim; ++c) centroid[c] += missing * omega[c];
  }
  for (double& c : centroid) c /= static_cast<double>(k);
  return centroid;
}

}  // namespace vsim
