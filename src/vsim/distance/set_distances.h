// Alternative distance measures on vector sets, surveyed by Eiter &
// Mannila and discussed in Section 4.2 of the paper: the Hausdorff
// distance, the sum of minimum distances, the (fair-)surjection
// distance and the link distance -- plus the netflow distance of Ramon
// & Bruynooghe, of which the minimal matching distance is a
// specialization. The paper argues minimal matching is the best fit for
// cover sets; these implementations back that comparison (ablation
// bench C).
#ifndef VSIM_DISTANCE_SET_DISTANCES_H_
#define VSIM_DISTANCE_SET_DISTANCES_H_

#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"

namespace vsim {

// max(max_x min_y d(x,y), max_y min_x d(x,y)). A metric, but dominated
// by extreme elements.
double HausdorffDistance(const VectorSet& a, const VectorSet& b);

// sum_x min_y d(x,y) + sum_y min_x d(x,y). Not a metric (triangle
// inequality fails), but robust.
double SumOfMinimumDistances(const VectorSet& a, const VectorSet& b);

// Minimum total cost of a surjection from the larger set onto the
// smaller set (every element of the smaller set receives at least one
// partner; every element of the larger set is mapped exactly once).
StatusOr<double> SurjectionDistance(const VectorSet& a, const VectorSet& b);

// Like SurjectionDistance, but fair: preimage sizes differ by at most
// one across the smaller set's elements.
StatusOr<double> FairSurjectionDistance(const VectorSet& a,
                                        const VectorSet& b);

// Minimum-weight edge cover of the complete bipartite graph: every
// element of both sets is linked at least once.
StatusOr<double> LinkDistance(const VectorSet& a, const VectorSet& b);

// Netflow distance (Ramon & Bruynooghe): minimum-cost flow where each
// element of `a` supplies one unit, each element of `b` demands one
// unit, transport between elements costs their Euclidean distance, and
// units may be absorbed/created at a reference point omega (the origin)
// at cost w(x) = ||x||. A metric; equals the minimal matching distance
// whenever w(x) + w(y) >= d(x, y) for all elements.
StatusOr<double> NetflowDistance(const VectorSet& a, const VectorSet& b);

}  // namespace vsim

#endif  // VSIM_DISTANCE_SET_DISTANCES_H_
