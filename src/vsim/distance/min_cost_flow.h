// Small min-cost max-flow solver (successive shortest augmenting paths
// with Bellman-Ford potentials). Graphs in this library are tiny
// (vector sets have cardinality <= ~10), so simplicity beats asymptotic
// sophistication. Used by the surjection / fair-surjection / link /
// netflow set distances.
#ifndef VSIM_DISTANCE_MIN_COST_FLOW_H_
#define VSIM_DISTANCE_MIN_COST_FLOW_H_

#include <cstdint>
#include <vector>

namespace vsim {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  // Adds a directed edge with the given capacity and per-unit cost.
  // Returns the edge id (usable with Flow()).
  int AddEdge(int from, int to, int64_t capacity, double cost);

  // Sends up to `max_flow` units from source to sink along successively
  // cheapest paths. Returns {flow_sent, total_cost}.
  struct Result {
    int64_t flow = 0;
    double cost = 0.0;
  };
  Result Solve(int source, int sink, int64_t max_flow);

  // Flow currently on edge `id` (after Solve).
  int64_t Flow(int id) const;

 private:
  struct Edge {
    int to;
    int64_t capacity;
    double cost;
    int rev;  // index of the reverse edge in graph_[to]
  };

  int num_nodes_;
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_refs_;  // id -> (node, offset)
};

}  // namespace vsim

#endif  // VSIM_DISTANCE_MIN_COST_FLOW_H_
