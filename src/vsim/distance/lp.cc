#include "vsim/distance/lp.h"

#include <cassert>
#include <cmath>

namespace vsim {

double SquaredEuclideanDistance(const FeatureVector& a,
                                const FeatureVector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(const FeatureVector& a, const FeatureVector& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

double ManhattanDistance(const FeatureVector& a, const FeatureVector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double ChebyshevDistance(const FeatureVector& a, const FeatureVector& b) {
  assert(a.size() == b.size());
  double mx = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mx = std::fmax(mx, std::fabs(a[i] - b[i]));
  }
  return mx;
}

double MinkowskiDistance(const FeatureVector& a, const FeatureVector& b,
                         double p) {
  assert(a.size() == b.size());
  assert(p >= 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::fabs(a[i] - b[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double SquaredEuclideanNorm(const FeatureVector& a) {
  double sum = 0.0;
  for (double v : a) sum += v * v;
  return sum;
}

double EuclideanNorm(const FeatureVector& a) {
  return std::sqrt(SquaredEuclideanNorm(a));
}

}  // namespace vsim
