#include "vsim/distance/hungarian.h"

#include <cassert>
#include <cstddef>
#include <limits>

namespace vsim {

AssignmentResult SolveAssignment(const std::vector<double>& cost, int rows,
                                 int cols) {
  assert(rows <= cols);
  assert(static_cast<size_t>(rows) * cols == cost.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-based arrays per the classic formulation; column 0 is a sentinel.
  std::vector<double> u(rows + 1, 0.0);   // row potentials
  std::vector<double> v(cols + 1, 0.0);   // column potentials
  std::vector<int> row_of(cols + 1, 0);   // row matched to each column
  std::vector<int> way(cols + 1, 0);      // predecessor column on path

  for (int i = 1; i <= rows; ++i) {
    // Find an augmenting path for row i (Dijkstra over reduced costs).
    row_of[0] = i;
    int j0 = 0;
    std::vector<double> minv(cols + 1, kInf);
    std::vector<char> used(cols + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = row_of[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        const double cur =
            cost[static_cast<size_t>(i0 - 1) * cols + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[row_of[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (row_of[j0] != 0);
    // Unwind the augmenting path.
    do {
      const int j1 = way[j0];
      row_of[j0] = row_of[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.column_of.assign(rows, -1);
  for (int j = 1; j <= cols; ++j) {
    if (row_of[j] > 0) result.column_of[row_of[j] - 1] = j - 1;
  }
  for (int i = 0; i < rows; ++i) {
    assert(result.column_of[i] >= 0);
    result.total_cost += cost[static_cast<size_t>(i) * cols + result.column_of[i]];
  }
  return result;
}

}  // namespace vsim
