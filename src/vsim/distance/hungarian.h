// Kuhn-Munkres / Hungarian algorithm for the linear assignment problem,
// the O(k^3) machinery behind the minimal matching distance (Section
// 4.2). Implemented as shortest augmenting paths with dual potentials
// (Jonker-Volgenant formulation), supporting rectangular cost matrices
// with rows <= columns (every row is assigned to a distinct column).
#ifndef VSIM_DISTANCE_HUNGARIAN_H_
#define VSIM_DISTANCE_HUNGARIAN_H_

#include <vector>

namespace vsim {

struct AssignmentResult {
  // column_of[i] = column assigned to row i.
  std::vector<int> column_of;
  double total_cost = 0.0;
};

// Solves min sum_i cost[i][column_of[i]] over injective assignments of
// all rows to columns. `cost` is row-major with `rows` x `cols`,
// rows <= cols. Costs may be any finite doubles.
AssignmentResult SolveAssignment(const std::vector<double>& cost, int rows,
                                 int cols);

}  // namespace vsim

#endif  // VSIM_DISTANCE_HUNGARIAN_H_
