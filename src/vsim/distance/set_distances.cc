#include "vsim/distance/set_distances.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "vsim/distance/hungarian.h"
#include "vsim/distance/lp.h"
#include "vsim/distance/min_cost_flow.h"

namespace vsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pairwise Euclidean distance matrix, row-major |a| x |b|.
std::vector<double> DistanceMatrix(const VectorSet& a, const VectorSet& b) {
  std::vector<double> d(a.size() * b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      d[i * b.size() + j] = EuclideanDistance(a.vectors[i], b.vectors[j]);
    }
  }
  return d;
}

double DirectedMinSum(const std::vector<double>& d, size_t rows, size_t cols,
                      bool over_rows, bool take_max) {
  // over_rows: aggregate min over columns for each row; else transpose.
  double agg = 0.0;
  const size_t outer = over_rows ? rows : cols;
  const size_t inner = over_rows ? cols : rows;
  for (size_t i = 0; i < outer; ++i) {
    double mn = kInf;
    for (size_t j = 0; j < inner; ++j) {
      const double v = over_rows ? d[i * cols + j] : d[j * cols + i];
      mn = std::min(mn, v);
    }
    agg = take_max ? std::max(agg, mn) : agg + mn;
  }
  return agg;
}

Status CheckNonEmpty(const VectorSet& a, const VectorSet& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "set distance undefined for empty vector sets");
  }
  return Status::OK();
}

}  // namespace

double HausdorffDistance(const VectorSet& a, const VectorSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return kInf;
  const std::vector<double> d = DistanceMatrix(a, b);
  return std::max(DirectedMinSum(d, a.size(), b.size(), true, true),
                  DirectedMinSum(d, a.size(), b.size(), false, true));
}

double SumOfMinimumDistances(const VectorSet& a, const VectorSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return kInf;
  const std::vector<double> d = DistanceMatrix(a, b);
  return DirectedMinSum(d, a.size(), b.size(), true, false) +
         DirectedMinSum(d, a.size(), b.size(), false, false);
}

StatusOr<double> SurjectionDistance(const VectorSet& a, const VectorSet& b) {
  VSIM_RETURN_NOT_OK(CheckNonEmpty(a, b));
  const VectorSet& large = a.size() >= b.size() ? a : b;
  const VectorSet& small = a.size() >= b.size() ? b : a;
  const int m = static_cast<int>(large.size());
  const int n = static_cast<int>(small.size());
  // Nodes: 0 = source, 1..m = large elements, m+1..m+n = small elements,
  // m+n+1 = overflow hub, m+n+2 = sink. Every small element must receive
  // at least one unit (its cap-1 edge straight to the sink); the
  // remaining m-n units must pass through the shared hub (total cap
  // m-n), so saturating m units of flow forces every mandatory edge to
  // carry its unit -- the lower bound holds by capacity arithmetic.
  MinCostFlow flow(m + n + 3);
  const int source = 0, hub = m + n + 1, sink = m + n + 2;
  for (int i = 0; i < m; ++i) flow.AddEdge(source, 1 + i, 1, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      flow.AddEdge(1 + i, m + 1 + j,
                   1, EuclideanDistance(large.vectors[i], small.vectors[j]));
    }
  }
  for (int j = 0; j < n; ++j) {
    flow.AddEdge(m + 1 + j, sink, 1, 0.0);        // mandatory unit
    if (m > n) flow.AddEdge(m + 1 + j, hub, m - n, 0.0);
  }
  if (m > n) flow.AddEdge(hub, sink, m - n, 0.0);
  const MinCostFlow::Result result = flow.Solve(source, sink, m);
  if (result.flow != m) {
    return Status::Internal("surjection flow did not saturate");
  }
  return result.cost;
}

StatusOr<double> FairSurjectionDistance(const VectorSet& a,
                                        const VectorSet& b) {
  VSIM_RETURN_NOT_OK(CheckNonEmpty(a, b));
  const VectorSet& large = a.size() >= b.size() ? a : b;
  const VectorSet& small = a.size() >= b.size() ? b : a;
  const int m = static_cast<int>(large.size());
  const int n = static_cast<int>(small.size());
  const int base = m / n;       // every small element gets >= base
  const int extras = m % n;     // `extras` of them get base + 1
  MinCostFlow flow(m + n + 3);
  const int source = 0, sink = m + n + 1, extra_hub = m + n + 2;
  for (int i = 0; i < m; ++i) flow.AddEdge(source, 1 + i, 1, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      flow.AddEdge(1 + i, m + 1 + j, 1,
                   EuclideanDistance(large.vectors[i], small.vectors[j]));
    }
  }
  for (int j = 0; j < n; ++j) {
    flow.AddEdge(m + 1 + j, sink, base, 0.0);       // mandatory quota
    flow.AddEdge(m + 1 + j, extra_hub, 1, 0.0);     // at most one extra
  }
  flow.AddEdge(extra_hub, sink, extras, 0.0);       // only `extras` in total
  const MinCostFlow::Result result = flow.Solve(source, sink, m);
  if (result.flow != m) {
    return Status::Internal("fair surjection flow did not saturate");
  }
  return result.cost;
}

StatusOr<double> LinkDistance(const VectorSet& a, const VectorSet& b) {
  VSIM_RETURN_NOT_OK(CheckNonEmpty(a, b));
  const size_t m = a.size(), n = b.size();
  const std::vector<double> d = DistanceMatrix(a, b);
  // Minimum-weight edge cover: an optimal cover is a matching M plus,
  // for every unmatched element, its cheapest incident edge. Hence
  //   cost = sum_v cheapest(v) + min over matchings of
  //          sum_{(x,y) in M} (d(x,y) - cheapest(x) - cheapest(y)),
  // where only pairs with negative reduced cost are worth matching.
  std::vector<double> cheap_row(m, kInf), cheap_col(n, kInf);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cheap_row[i] = std::min(cheap_row[i], d[i * n + j]);
      cheap_col[j] = std::min(cheap_col[j], d[i * n + j]);
    }
  }
  double base = 0.0;
  for (double v : cheap_row) base += v;
  for (double v : cheap_col) base += v;
  // Assignment with per-row opt-out: columns [0, n) carry the reduced
  // costs (clamped at 0: never take a non-beneficial pair), columns
  // [n, n+m) are zero-cost "skip" slots.
  std::vector<double> cost(m * (n + m), 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double reduced = d[i * n + j] - cheap_row[i] - cheap_col[j];
      cost[i * (n + m) + j] = std::min(reduced, 0.0);
    }
  }
  const AssignmentResult assignment =
      SolveAssignment(cost, static_cast<int>(m), static_cast<int>(n + m));
  return base + assignment.total_cost;
}

StatusOr<double> NetflowDistance(const VectorSet& a, const VectorSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  // Nodes: 0 = source, 1..m = a, m+1..m+n = b, m+n+1 = omega (origin),
  // m+n+2 = sink. Each a-element supplies one unit, each b-element
  // demands one unit; surplus/deficit is absorbed/created at omega for
  // w(x) = ||x||.
  MinCostFlow flow(m + n + 3);
  const int source = 0, omega = m + n + 1, sink = m + n + 2;
  for (int i = 0; i < m; ++i) {
    flow.AddEdge(source, 1 + i, 1, 0.0);
    flow.AddEdge(1 + i, omega, 1, EuclideanNorm(a.vectors[i]));
  }
  for (int j = 0; j < n; ++j) {
    flow.AddEdge(m + 1 + j, sink, 1, 0.0);
    flow.AddEdge(omega, m + 1 + j, 1, EuclideanNorm(b.vectors[j]));
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      flow.AddEdge(1 + i, m + 1 + j, 1,
                   EuclideanDistance(a.vectors[i], b.vectors[j]));
    }
  }
  // Route max(m, n) units: omega absorbs or creates the imbalance. The
  // omega node needs throughput when m != n; give the source/sink side
  // enough capacity via direct edges.
  if (m < n) flow.AddEdge(source, omega, n - m, 0.0);
  const int total = std::max(m, n);
  if (m > n) flow.AddEdge(omega, sink, m - n, 0.0);
  const MinCostFlow::Result result = flow.Solve(source, sink, total);
  if (result.flow != total) {
    return Status::Internal("netflow did not saturate");
  }
  return result.cost;
}

}  // namespace vsim
