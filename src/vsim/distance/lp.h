// L_p distances on feature vectors (Definition 1 uses Euclidean).
#ifndef VSIM_DISTANCE_LP_H_
#define VSIM_DISTANCE_LP_H_

#include "vsim/features/feature_vector.h"

namespace vsim {

// ||a - b||_2^2. Operands must have equal dimension.
double SquaredEuclideanDistance(const FeatureVector& a, const FeatureVector& b);

// ||a - b||_2.
double EuclideanDistance(const FeatureVector& a, const FeatureVector& b);

// ||a - b||_1.
double ManhattanDistance(const FeatureVector& a, const FeatureVector& b);

// ||a - b||_inf.
double ChebyshevDistance(const FeatureVector& a, const FeatureVector& b);

// General Minkowski distance, p >= 1.
double MinkowskiDistance(const FeatureVector& a, const FeatureVector& b,
                         double p);

// ||a||_2 and ||a||_2^2 (used as matching weight functions with omega=0).
double EuclideanNorm(const FeatureVector& a);
double SquaredEuclideanNorm(const FeatureVector& a);

}  // namespace vsim

#endif  // VSIM_DISTANCE_LP_H_
