#include "vsim/distance/permutation_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "vsim/distance/min_matching.h"

namespace vsim {

StatusOr<double> MinEuclideanUnderPermutationBruteForce(
    const FeatureVector& a, const FeatureVector& b, int block_dim) {
  if (block_dim < 1) {
    return Status::InvalidArgument("block_dim must be >= 1");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument("vectors differ in dimension");
  }
  if (a.size() % block_dim != 0) {
    return Status::InvalidArgument("dimension " + std::to_string(a.size()) +
                                   " is not a multiple of block_dim " +
                                   std::to_string(block_dim));
  }
  const int k = static_cast<int>(a.size()) / block_dim;
  if (k > 10) {
    return Status::InvalidArgument(
        "brute force over k! permutations limited to k <= 10");
  }
  std::vector<int> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double sum = 0.0;
    for (int blk = 0; blk < k; ++blk) {
      const int pa = blk * block_dim;
      const int pb = perm[blk] * block_dim;
      for (int c = 0; c < block_dim; ++c) {
        const double d = a[pa + c] - b[pb + c];
        sum += d * d;
      }
    }
    best = std::min(best, sum);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return std::sqrt(best);
}

double MinEuclideanUnderPermutation(const VectorSet& a, const VectorSet& b) {
  MinMatchingOptions opt;
  opt.ground = GroundDistance::kSquaredEuclidean;
  opt.sqrt_of_total = true;
  return MinimalMatchingDistance(a, b, opt);
}

}  // namespace vsim
