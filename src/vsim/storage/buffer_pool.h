// LRU buffer pool over a PagedFile, with pin/unpin page handles and
// write-back of dirty frames. Cache hits cost nothing; misses read the
// page from the file (and count as the "page accesses" the benchmark
// harness charges). The paper notes its own I/O simulation "does not
// take the idea of page caches into account" -- this layer makes the
// cache effect measurable (ablation G).
#ifndef VSIM_STORAGE_BUFFER_POOL_H_
#define VSIM_STORAGE_BUFFER_POOL_H_

#include <list>
#include <unordered_map>
#include <vector>

#include "vsim/common/status.h"
#include "vsim/common/thread_annotations.h"
#include "vsim/storage/paged_file.h"

namespace vsim {

class BufferPool;

// RAII pin on a buffered page. While alive, the frame cannot be
// evicted; data() stays valid. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  char* data();
  const char* data() const;
  PageId page() const { return page_; }
  // Marks the frame dirty: it is written back on eviction / flush.
  void MarkDirty();

  bool valid() const { return pool_ != nullptr; }

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page)
      : pool_(pool), frame_(frame), page_(page) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_ = 0;
};

// Thread-safety: NOT thread-safe -- single thread at a time, by
// explicit contract. Fetch/Allocate mutate the shared LRU state and
// the frame table with no locking, which is why engines inside service
// snapshots must not have a store attached (see
// QueryEngine::AttachStore and docs/ARCHITECTURE.md "Static analysis &
// lock discipline"). The contract is enforced at runtime in debug
// builds (assertions stay armed in the default build): a
// ThreadContractChecker at every public entry point aborts loudly on
// concurrent use from a second thread. Sequential hand-off between
// threads -- build on a rebuilder thread, then query from one worker
// -- remains legal.
class BufferPool {
 public:
  // `file` must outlive the pool. `capacity` frames are allocated up
  // front.
  BufferPool(PagedFile* file, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  // Pins the page, reading it from the file on a miss. Fails if every
  // frame is pinned.
  StatusOr<PageHandle> Fetch(PageId page);

  // Allocates a fresh page in the file and pins it (zeroed, dirty).
  StatusOr<PageHandle> Allocate();

  // Writes back every dirty frame.
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }
  void ResetStats() { hits_ = misses_ = evictions_ = 0; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page = 0;       // 0 = empty
    int pin_count = 0;
    bool dirty = false;
    std::vector<char> data;
  };

  void Unpin(size_t frame);
  void TouchLru(size_t frame);
  // Finds a frame for a new page: an empty one, or evicts the
  // least-recently-used unpinned frame (writing it back if dirty).
  StatusOr<size_t> GrabFrame();

  PagedFile* file_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> frame_of_;
  std::list<size_t> lru_;  // front = least recently used
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  size_t hits_ = 0, misses_ = 0, evictions_ = 0;
  // Debug-mode single-thread contract (see class comment). Checked in
  // Fetch/Allocate/FlushAll and PageHandle's Unpin path.
  ThreadContractChecker thread_contract_;
};

}  // namespace vsim

#endif  // VSIM_STORAGE_BUFFER_POOL_H_
