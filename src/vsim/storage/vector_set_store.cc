#include "vsim/storage/vector_set_store.h"

#include <cstring>

namespace vsim {

namespace {

// Page layout: [u16 record_count][records...], each record
// [u16 payload_bytes][payload]. Records never span pages.
constexpr size_t kPageHeader = 2;
constexpr size_t kRecordHeader = 2;

void PutU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>(v >> 8);
}

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8;
}

// Record payload: [u16 n][u16 dim][n*dim doubles].
size_t SerializedBytes(const VectorSet& set) {
  return 4 + set.size() * set.dim() * sizeof(double);
}

void Serialize(const VectorSet& set, char* out) {
  PutU16(out, static_cast<uint16_t>(set.size()));
  PutU16(out + 2, static_cast<uint16_t>(set.dim()));
  char* p = out + 4;
  for (const FeatureVector& v : set.vectors) {
    std::memcpy(p, v.data(), v.size() * sizeof(double));
    p += v.size() * sizeof(double);
  }
}

StatusOr<VectorSet> Deserialize(const char* data, size_t bytes) {
  if (bytes < 4) return Status::Internal("corrupt vector set record");
  const uint16_t n = ReadU16(data);
  const uint16_t dim = ReadU16(data + 2);
  if (bytes != 4 + static_cast<size_t>(n) * dim * sizeof(double)) {
    return Status::Internal("vector set record size mismatch");
  }
  VectorSet set;
  const char* p = data + 4;
  for (uint16_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    std::memcpy(v.data(), p, dim * sizeof(double));
    p += dim * sizeof(double);
    set.vectors.push_back(std::move(v));
  }
  return set;
}

}  // namespace

StatusOr<VectorSetStore> VectorSetStore::Create(const std::string& path,
                                                size_t page_size,
                                                size_t pool_pages) {
  VectorSetStore store;
  VSIM_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Create(path, page_size));
  store.file_ = std::make_unique<PagedFile>(std::move(file));
  store.pool_ = std::make_unique<cache::ShardedBufferPool>(store.file_.get(),
                                                           pool_pages);
  return store;
}

StatusOr<VectorSetStore> VectorSetStore::Open(const std::string& path,
                                              size_t pool_pages) {
  VectorSetStore store;
  VSIM_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(path));
  store.file_ = std::make_unique<PagedFile>(std::move(file));
  store.pool_ = std::make_unique<cache::ShardedBufferPool>(store.file_.get(),
                                                           pool_pages);
  // Rebuild the directory with one sequential pass.
  for (PageId page = 1; page <= store.file_->page_count(); ++page) {
    VSIM_ASSIGN_OR_RETURN(cache::PageHandle handle,
                          store.pool_->Fetch(page));
    const char* data = handle.data();
    const uint16_t records = ReadU16(data);
    size_t offset = kPageHeader;
    for (uint16_t r = 0; r < records; ++r) {
      // Bounds-check the record header *before* reading it: a corrupt
      // record count or payload length must produce a Status, not an
      // out-of-bounds read of the page buffer (UBSan/ASan regression,
      // see CorruptFileTest).
      if (offset + kRecordHeader > store.file_->page_size()) {
        return Status::Internal("corrupt page " + std::to_string(page));
      }
      const uint16_t bytes = ReadU16(data + offset);
      offset += kRecordHeader;
      if (offset + bytes > store.file_->page_size()) {
        return Status::Internal("corrupt page " + std::to_string(page));
      }
      store.directory_.push_back(
          {page, static_cast<uint32_t>(offset), bytes});
      offset += bytes;
    }
    store.tail_page_ = page;
    store.tail_used_ = offset;
  }
  return store;
}

StatusOr<VectorSetStore::RecordRef> VectorSetStore::AppendRecord(
    const char* data, size_t bytes) {
  const size_t needed = kRecordHeader + bytes;
  const size_t capacity = file_->page_size();
  if (needed + kPageHeader > capacity) {
    return Status::InvalidArgument("record larger than page payload");
  }
  if (tail_page_ == 0 || tail_used_ + needed > capacity) {
    VSIM_ASSIGN_OR_RETURN(cache::PageHandle fresh, pool_->Allocate());
    fresh.MarkDirty();
    PutU16(fresh.data(), 0);
    tail_page_ = fresh.page();
    tail_used_ = kPageHeader;
  }
  VSIM_ASSIGN_OR_RETURN(cache::PageHandle handle,
                        pool_->Fetch(tail_page_));
  char* page = handle.data();
  PutU16(page + tail_used_, static_cast<uint16_t>(bytes));
  std::memcpy(page + tail_used_ + kRecordHeader, data, bytes);
  PutU16(page, static_cast<uint16_t>(ReadU16(page) + 1));
  handle.MarkDirty();
  RecordRef ref{tail_page_,
                static_cast<uint32_t>(tail_used_ + kRecordHeader),
                static_cast<uint32_t>(bytes)};
  tail_used_ += needed;
  return ref;
}

StatusOr<int> VectorSetStore::Append(const VectorSet& set) {
  const size_t bytes = SerializedBytes(set);
  std::vector<char> buffer(bytes);
  Serialize(set, buffer.data());
  VSIM_ASSIGN_OR_RETURN(RecordRef ref, AppendRecord(buffer.data(), bytes));
  directory_.push_back(ref);
  return static_cast<int>(directory_.size()) - 1;
}

StatusOr<VectorSet> VectorSetStore::Get(int id, IoStats* stats) const {
  if (id < 0 || static_cast<size_t>(id) >= directory_.size()) {
    return Status::OutOfRange("object id out of range");
  }
  const RecordRef& ref = directory_[id];
  // Charge the paper's page cost for THIS call's miss only: a global
  // miss-counter delta would misattribute concurrent callers' misses.
  bool missed = false;
  VSIM_ASSIGN_OR_RETURN(
      cache::PageHandle handle,
      pool_->Fetch(ref.page, cache::PageTier::kCold, &missed));
  if (stats != nullptr) {
    if (missed) stats->AddPageAccesses(1);
    stats->AddBytesRead(ref.bytes);
  }
  return Deserialize(handle.data() + ref.offset, ref.bytes);
}

Status VectorSetStore::Flush() { return pool_->FlushAll(); }

}  // namespace vsim
