// Disk-backed store of vector sets: records packed into self-describing
// slotted pages of a PagedFile, accessed through the sharded buffer
// pool. This replaces the purely *simulated* object fetches of the
// query engine with real page I/O: a Get() charges the paper's 8 ms
// page cost only when the buffer pool actually misses.
#ifndef VSIM_STORAGE_VECTOR_SET_STORE_H_
#define VSIM_STORAGE_VECTOR_SET_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "vsim/cache/page_cache.h"
#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"
#include "vsim/index/io_stats.h"
#include "vsim/storage/paged_file.h"

namespace vsim {

// Thread-safety: Get() is safe from any number of threads concurrently
// (the sharded pool and PagedFile underneath are fully concurrent; the
// record directory is immutable once built). The build phase --
// Append() and Flush() -- is single-writer and must not overlap reads,
// matching the build-once/serve-many lifecycle of the disk pipeline.
class VectorSetStore {
 public:
  // Creates a new store file. `pool_pages` is the buffer pool capacity.
  static StatusOr<VectorSetStore> Create(const std::string& path,
                                         size_t page_size = 4096,
                                         size_t pool_pages = 8);

  // Opens an existing store, rebuilding the record directory with one
  // sequential scan.
  static StatusOr<VectorSetStore> Open(const std::string& path,
                                       size_t pool_pages = 8);

  VectorSetStore(VectorSetStore&&) = default;
  VectorSetStore& operator=(VectorSetStore&&) = default;

  // Appends a vector set; object ids are assigned sequentially from 0.
  // Fails if the serialized record exceeds the page payload capacity.
  StatusOr<int> Append(const VectorSet& set);

  // Loads a stored vector set. If `stats` is given, one page access is
  // charged when THIS call missed the buffer pool (plus the record's
  // bytes) -- cache hits are free, unlike the paper's flat simulation.
  StatusOr<VectorSet> Get(int id, IoStats* stats = nullptr) const;

  Status Flush();

  size_t size() const { return directory_.size(); }
  const cache::ShardedBufferPool& pool() const { return *pool_; }
  cache::ShardedBufferPool& pool() { return *pool_; }

 private:
  VectorSetStore() = default;

  struct RecordRef {
    PageId page = 0;
    uint32_t offset = 0;  // byte offset within the page
    uint32_t bytes = 0;
  };

  StatusOr<RecordRef> AppendRecord(const char* data, size_t bytes);

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<cache::ShardedBufferPool> pool_;
  std::vector<RecordRef> directory_;
  PageId tail_page_ = 0;
  size_t tail_used_ = 0;
};

}  // namespace vsim

#endif  // VSIM_STORAGE_VECTOR_SET_STORE_H_
