// A real page-oriented file: fixed-size pages in a file on disk, with a
// header page carrying magic, page size and page count. This is the
// bottom layer of the disk-backed object store; the sharded buffer pool
// (src/vsim/cache/page_cache.h) sits on top of it. (The benchmark
// harness still *charges* the paper's simulated I/O costs, but with
// this layer the charged page accesses correspond to actual file reads
// that miss the cache.)
#ifndef VSIM_STORAGE_PAGED_FILE_H_
#define VSIM_STORAGE_PAGED_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "vsim/common/status.h"
#include "vsim/common/thread_annotations.h"

namespace vsim {

using PageId = uint64_t;

// Thread-safety: safe for concurrent use from any thread, as the
// sharded buffer pool's parallel miss paths require. Read and Write use
// positioned I/O (pread/pwrite) -- there is no shared stream cursor to
// interleave -- and the physical-I/O counters are atomics. Allocate and
// Sync serialize on an internal mutex (file extension and the header
// are genuinely shared state). The only exclusions are object lifetime:
// moves and destruction must not race other calls, like any C++ object.
class PagedFile {
 public:
  // Creates a new file (truncating any existing one) with the given
  // page size (>= 256, power of two not required).
  static StatusOr<PagedFile> Create(const std::string& path,
                                    size_t page_size = 4096);

  // Opens an existing file, validating the header.
  static StatusOr<PagedFile> Open(const std::string& path);

  PagedFile(PagedFile&& other) noexcept;
  PagedFile& operator=(PagedFile&& other) noexcept;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  ~PagedFile();

  // Appends a zeroed page and returns its id (1-based; page 0 is the
  // header and not directly accessible).
  StatusOr<PageId> Allocate() EXCLUDES(meta_mu_);

  // Reads/writes a whole page. `data` must hold page_size() bytes.
  // Concurrent calls on distinct or identical pages are safe (for
  // racing Write/Read on the SAME page, byte-level atomicity is the
  // caller's problem -- the buffer pool never issues that pattern).
  Status Read(PageId page, char* data) const;
  Status Write(PageId page, const char* data);

  // Persists the header and fsyncs the file.
  Status Sync() EXCLUDES(meta_mu_);

  size_t page_size() const { return page_size_; }
  // Number of data pages (excluding the header).
  uint64_t page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }

  // Physical I/O counters (reads/writes that reached the file).
  size_t physical_reads() const {
    return physical_reads_.load(std::memory_order_relaxed);
  }
  size_t physical_writes() const {
    return physical_writes_.load(std::memory_order_relaxed);
  }

 private:
  PagedFile() = default;
  Status WriteHeader() REQUIRES(meta_mu_);

  int fd_ = -1;
  size_t page_size_ = 0;  // immutable after Create/Open
  // Grows under meta_mu_; bounds-checked by Read/Write with an acquire
  // load (an allocation's zero-fill write happens-before the release
  // store publishing the new count).
  std::atomic<uint64_t> page_count_{0};
  mutable std::atomic<size_t> physical_reads_{0};
  std::atomic<size_t> physical_writes_{0};
  // Serializes file extension and header writes.
  Mutex meta_mu_{"storage.paged_file.meta"};
};

}  // namespace vsim

#endif  // VSIM_STORAGE_PAGED_FILE_H_
