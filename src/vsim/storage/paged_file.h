// A real page-oriented file: fixed-size pages in a file on disk, with a
// header page carrying magic, page size and page count. This is the
// bottom layer of the disk-backed object store; the buffer pool sits on
// top of it. (The benchmark harness still *charges* the paper's
// simulated I/O costs, but with this layer the charged page accesses
// correspond to actual file reads that miss the cache.)
#ifndef VSIM_STORAGE_PAGED_FILE_H_
#define VSIM_STORAGE_PAGED_FILE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "vsim/common/status.h"

namespace vsim {

using PageId = uint64_t;

// Thread-safety: NOT thread-safe -- single thread at a time, by the
// same explicit contract as BufferPool (which owns all access to it on
// the disk-backed path and carries the debug-mode contract checker;
// see docs/ARCHITECTURE.md "Static analysis & lock discipline"). The
// stdio stream position is shared mutable state: concurrent
// Read/Write/Allocate interleave their fseek/fread pairs. The
// physical-I/O counters are plain size_t for the same reason.
class PagedFile {
 public:
  // Creates a new file (truncating any existing one) with the given
  // page size (>= 256, power of two not required).
  static StatusOr<PagedFile> Create(const std::string& path,
                                    size_t page_size = 4096);

  // Opens an existing file, validating the header.
  static StatusOr<PagedFile> Open(const std::string& path);

  PagedFile(PagedFile&& other) noexcept;
  PagedFile& operator=(PagedFile&& other) noexcept;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  ~PagedFile();

  // Appends a zeroed page and returns its id (1-based; page 0 is the
  // header and not directly accessible).
  StatusOr<PageId> Allocate();

  // Reads/writes a whole page. `data` must hold page_size() bytes.
  Status Read(PageId page, char* data) const;
  Status Write(PageId page, const char* data);

  // Persists the header and flushes stdio buffers.
  Status Sync();

  size_t page_size() const { return page_size_; }
  // Number of data pages (excluding the header).
  uint64_t page_count() const { return page_count_; }

  // Physical I/O counters (reads/writes that reached the file).
  size_t physical_reads() const { return physical_reads_; }
  size_t physical_writes() const { return physical_writes_; }

 private:
  PagedFile() = default;
  Status WriteHeader();

  std::FILE* file_ = nullptr;
  size_t page_size_ = 0;
  uint64_t page_count_ = 0;
  mutable size_t physical_reads_ = 0;
  size_t physical_writes_ = 0;
};

}  // namespace vsim

#endif  // VSIM_STORAGE_PAGED_FILE_H_
