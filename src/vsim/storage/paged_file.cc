#include "vsim/storage/paged_file.h"

#include <cstring>

#include "vsim/common/binary_io.h"

namespace vsim {

namespace {
constexpr char kMagic[8] = {'V', 'S', 'P', 'G', 'F', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 8 + 8;  // magic, page size, page count
}  // namespace

PagedFile::PagedFile(PagedFile&& other) noexcept { *this = std::move(other); }

PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    page_size_ = other.page_size_;
    page_count_ = other.page_count_;
    physical_reads_ = other.physical_reads_;
    physical_writes_ = other.physical_writes_;
    other.file_ = nullptr;
  }
  return *this;
}

PagedFile::~PagedFile() {
  if (file_ != nullptr) {
    WriteHeader();  // best effort
    std::fclose(file_);
  }
}

StatusOr<PagedFile> PagedFile::Create(const std::string& path,
                                      size_t page_size) {
  if (page_size < 256) {
    return Status::InvalidArgument("page_size must be >= 256");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  PagedFile file;
  file.file_ = f;
  file.page_size_ = page_size;
  file.page_count_ = 0;
  VSIM_RETURN_NOT_OK(file.WriteHeader());
  // Pad the header page to a full page so data pages are aligned.
  std::vector<char> pad(page_size - kHeaderBytes, 0);
  if (std::fwrite(pad.data(), 1, pad.size(), f) != pad.size()) {
    return Status::IOError("cannot pad header page of " + path);
  }
  return file;
}

StatusOr<PagedFile> PagedFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::memcmp(magic, kMagic, 8) != 0) {
    std::fclose(f);
    return Status::InvalidArgument(path + " is not a vsim paged file");
  }
  unsigned char meta[16];
  if (std::fread(meta, 1, 16, f) != 16) {
    std::fclose(f);
    return Status::IOError("truncated header in " + path);
  }
  PagedFile file;
  file.file_ = f;
  file.page_size_ = 0;
  file.page_count_ = 0;
  for (int i = 0; i < 8; ++i) {
    file.page_size_ |= static_cast<size_t>(meta[i]) << (8 * i);
    file.page_count_ |= static_cast<uint64_t>(meta[8 + i]) << (8 * i);
  }
  // Bound the header fields against corruption before trusting them: a
  // flipped byte in page_size must not turn into a multi-gigabyte
  // buffer-pool frame allocation, and a lying page_count must fail here
  // rather than on the first phantom-page read (CorruptFileTest).
  constexpr size_t kMaxPageSize = 1u << 26;  // 64 MiB
  if (file.page_size_ < 256 || file.page_size_ > kMaxPageSize) {
    std::fclose(f);
    file.file_ = nullptr;
    return Status::InvalidArgument("corrupt page size in " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    file.file_ = nullptr;
    return Status::IOError("cannot size " + path);
  }
  const long file_bytes = std::ftell(f);
  const uint64_t whole_pages =
      file_bytes < 0 ? 0 : static_cast<uint64_t>(file_bytes) / file.page_size_;
  // whole_pages includes the header page; avoid page_count_ + 1
  // arithmetic, which overflows when the field is all-ones.
  if (whole_pages == 0 || file.page_count_ > whole_pages - 1) {
    std::fclose(f);
    file.file_ = nullptr;
    return Status::InvalidArgument("header page count exceeds file size in " +
                                   path);
  }
  return file;
}

Status PagedFile::WriteHeader() {
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("seek to header failed");
  }
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, 8);
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<char>(page_size_ >> (8 * i));
    header[16 + i] = static_cast<char>(page_count_ >> (8 * i));
  }
  if (std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes) {
    return Status::IOError("header write failed");
  }
  return Status::OK();
}

StatusOr<PageId> PagedFile::Allocate() {
  const PageId id = ++page_count_;
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0) {
    return Status::IOError("seek failed during Allocate");
  }
  std::vector<char> zero(page_size_, 0);
  if (std::fwrite(zero.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("page allocation write failed");
  }
  ++physical_writes_;
  return id;
}

Status PagedFile::Read(PageId page, char* data) const {
  if (page == 0 || page > page_count_) {
    return Status::OutOfRange("page id out of range");
  }
  if (std::fseek(file_, static_cast<long>(page * page_size_), SEEK_SET) != 0) {
    return Status::IOError("seek failed during Read");
  }
  if (std::fread(data, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short page read");
  }
  ++physical_reads_;
  return Status::OK();
}

Status PagedFile::Write(PageId page, const char* data) {
  if (page == 0 || page > page_count_) {
    return Status::OutOfRange("page id out of range");
  }
  if (std::fseek(file_, static_cast<long>(page * page_size_), SEEK_SET) != 0) {
    return Status::IOError("seek failed during Write");
  }
  if (std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short page write");
  }
  ++physical_writes_;
  return Status::OK();
}

Status PagedFile::Sync() {
  VSIM_RETURN_NOT_OK(WriteHeader());
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

}  // namespace vsim
