#include "vsim/storage/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace vsim {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'P', 'G', 'F', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 8 + 8;  // magic, page size, page count

// Full-buffer positioned read/write: retries short transfers and EINTR
// (pread/pwrite on regular files may legally return less than asked).
bool PReadFull(int fd, char* buf, size_t len, uint64_t off) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, buf + done, len - done,
                        static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF short of a full page
    done += static_cast<size_t>(n);
  }
  return true;
}

bool PWriteFull(int fd, const char* buf, size_t len, uint64_t off) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd, buf + done, len - done,
                         static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

PagedFile::PagedFile(PagedFile&& other) noexcept { *this = std::move(other); }

// Moves happen only during single-threaded setup (StatusOr plumbing of
// Create/Open); the mutex is not transferred, each object keeps its own.
PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    page_size_ = other.page_size_;
    page_count_.store(other.page_count_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    physical_reads_.store(
        other.physical_reads_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    physical_writes_.store(
        other.physical_writes_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.fd_ = -1;
  }
  return *this;
}

PagedFile::~PagedFile() {
  if (fd_ >= 0) {
    {
      MutexLock lock(&meta_mu_);
      WriteHeader();  // best effort
    }
    ::close(fd_);
  }
}

StatusOr<PagedFile> PagedFile::Create(const std::string& path,
                                      size_t page_size) {
  if (page_size < 256) {
    return Status::InvalidArgument("page_size must be >= 256");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot create " + path);
  PagedFile file;
  file.fd_ = fd;
  file.page_size_ = page_size;
  // Write the full zeroed header page (magic + fields + padding) so
  // data pages are page-aligned.
  std::vector<char> header_page(page_size, 0);
  std::memcpy(header_page.data(), kMagic, 8);
  for (int i = 0; i < 8; ++i) {
    header_page[8 + i] = static_cast<char>(page_size >> (8 * i));
    header_page[16 + i] = 0;  // page count
  }
  if (!PWriteFull(fd, header_page.data(), page_size, 0)) {
    return Status::IOError("cannot write header page of " + path);
  }
  return file;
}

StatusOr<PagedFile> PagedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Status::IOError("cannot open " + path);
  char raw[kHeaderBytes];
  if (!PReadFull(fd, raw, kHeaderBytes, 0)) {
    ::close(fd);
    return Status::IOError("truncated header in " + path);
  }
  if (std::memcmp(raw, kMagic, 8) != 0) {
    ::close(fd);
    return Status::InvalidArgument(path + " is not a vsim paged file");
  }
  size_t page_size = 0;
  uint64_t page_count = 0;
  for (int i = 0; i < 8; ++i) {
    page_size |= static_cast<size_t>(
                     static_cast<unsigned char>(raw[8 + i]))
                 << (8 * i);
    page_count |= static_cast<uint64_t>(
                      static_cast<unsigned char>(raw[16 + i]))
                  << (8 * i);
  }
  // Bound the header fields against corruption before trusting them: a
  // flipped byte in page_size must not turn into a multi-gigabyte
  // buffer-pool frame allocation, and a lying page_count must fail here
  // rather than on the first phantom-page read (CorruptFileTest).
  constexpr size_t kMaxPageSize = 1u << 26;  // 64 MiB
  if (page_size < 256 || page_size > kMaxPageSize) {
    ::close(fd);
    return Status::InvalidArgument("corrupt page size in " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot size " + path);
  }
  const uint64_t whole_pages = static_cast<uint64_t>(st.st_size) / page_size;
  // whole_pages includes the header page; avoid page_count + 1
  // arithmetic, which overflows when the field is all-ones.
  if (whole_pages == 0 || page_count > whole_pages - 1) {
    ::close(fd);
    return Status::InvalidArgument("header page count exceeds file size in " +
                                   path);
  }
  PagedFile file;
  file.fd_ = fd;
  file.page_size_ = page_size;
  file.page_count_.store(page_count, std::memory_order_relaxed);
  return file;
}

Status PagedFile::WriteHeader() {
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, 8);
  const uint64_t count = page_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<char>(page_size_ >> (8 * i));
    header[16 + i] = static_cast<char>(count >> (8 * i));
  }
  if (!PWriteFull(fd_, header, kHeaderBytes, 0)) {
    return Status::IOError("header write failed");
  }
  return Status::OK();
}

StatusOr<PageId> PagedFile::Allocate() {
  MutexLock lock(&meta_mu_);
  const PageId id = page_count_.load(std::memory_order_relaxed) + 1;
  std::vector<char> zero(page_size_, 0);
  if (!PWriteFull(fd_, zero.data(), page_size_, id * page_size_)) {
    return Status::IOError("page allocation write failed");
  }
  physical_writes_.fetch_add(1, std::memory_order_relaxed);
  // Release-publish only after the zero-fill landed: a reader that
  // bounds-checks against the new count finds real bytes on disk.
  page_count_.store(id, std::memory_order_release);
  return id;
}

Status PagedFile::Read(PageId page, char* data) const {
  if (page == 0 || page > page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("page id out of range");
  }
  if (!PReadFull(fd_, data, page_size_, page * page_size_)) {
    return Status::IOError("short page read");
  }
  physical_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PagedFile::Write(PageId page, const char* data) {
  if (page == 0 || page > page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("page id out of range");
  }
  if (!PWriteFull(fd_, data, page_size_, page * page_size_)) {
    return Status::IOError("short page write");
  }
  physical_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PagedFile::Sync() {
  MutexLock lock(&meta_mu_);
  VSIM_RETURN_NOT_OK(WriteHeader());
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

}  // namespace vsim
