#include "vsim/storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace vsim {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

char* PageHandle::data() {
  assert(pool_ != nullptr);
  return pool_->frames_[frame_].data.data();
}

const char* PageHandle::data() const {
  assert(pool_ != nullptr);
  return pool_->frames_[frame_].data.data();
}

void PageHandle::MarkDirty() {
  assert(pool_ != nullptr);
  pool_->frames_[frame_].dirty = true;
}

BufferPool::BufferPool(PagedFile* file, size_t capacity) : file_(file) {
  assert(capacity >= 1);
  frames_.resize(capacity);
  for (Frame& frame : frames_) {
    frame.data.assign(file_->page_size(), 0);
  }
}

BufferPool::~BufferPool() { FlushAll(); }

void BufferPool::TouchLru(size_t frame) {
  auto it = lru_pos_.find(frame);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
}

void BufferPool::Unpin(size_t frame) {
  ScopedThreadContract contract(thread_contract_);
  assert(frames_[frame].pin_count > 0);
  --frames_[frame].pin_count;
}

StatusOr<size_t> BufferPool::GrabFrame() {
  // Prefer an empty frame.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page == 0) return i;
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const size_t frame = *it;
    if (frames_[frame].pin_count > 0) continue;
    Frame& victim = frames_[frame];
    if (victim.dirty) {
      VSIM_RETURN_NOT_OK(file_->Write(victim.page, victim.data.data()));
      victim.dirty = false;
    }
    frame_of_.erase(victim.page);
    victim.page = 0;
    lru_.erase(it);
    lru_pos_.erase(frame);
    ++evictions_;
    return frame;
  }
  return Status::FailedPrecondition("all buffer frames are pinned");
}

StatusOr<PageHandle> BufferPool::Fetch(PageId page) {
  ScopedThreadContract contract(thread_contract_);
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) {
    ++hits_;
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    TouchLru(it->second);
    return PageHandle(this, it->second, page);
  }
  ++misses_;
  VSIM_ASSIGN_OR_RETURN(size_t slot, GrabFrame());
  Frame& frame = frames_[slot];
  VSIM_RETURN_NOT_OK(file_->Read(page, frame.data.data()));
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  frame_of_[page] = slot;
  TouchLru(slot);
  return PageHandle(this, slot, page);
}

StatusOr<PageHandle> BufferPool::Allocate() {
  ScopedThreadContract contract(thread_contract_);
  VSIM_ASSIGN_OR_RETURN(PageId page, file_->Allocate());
  VSIM_ASSIGN_OR_RETURN(size_t slot, GrabFrame());
  Frame& frame = frames_[slot];
  std::memset(frame.data.data(), 0, frame.data.size());
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = true;
  frame_of_[page] = slot;
  TouchLru(slot);
  return PageHandle(this, slot, page);
}

Status BufferPool::FlushAll() {
  ScopedThreadContract contract(thread_contract_);
  for (Frame& frame : frames_) {
    if (frame.page != 0 && frame.dirty) {
      VSIM_RETURN_NOT_OK(file_->Write(frame.page, frame.data.data()));
      frame.dirty = false;
    }
  }
  return file_->Sync();
}

}  // namespace vsim
