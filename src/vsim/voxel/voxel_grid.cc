#include "vsim/voxel/voxel_grid.h"

#include <cassert>
#include <cmath>

namespace vsim {

size_t VoxelGrid::Count() const {
  size_t n = 0;
  for (uint8_t v : data_) n += v;
  return n;
}

std::vector<VoxelCoord> VoxelGrid::SetVoxels() const {
  std::vector<VoxelCoord> out;
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        if (At(x, y, z)) out.push_back({x, y, z});
      }
    }
  }
  return out;
}

namespace {
constexpr int kNeighbors[6][3] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                                  {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
}  // namespace

std::vector<VoxelCoord> VoxelGrid::SurfaceVoxels() const {
  std::vector<VoxelCoord> out;
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        if (!At(x, y, z)) continue;
        bool surface = false;
        for (const auto& d : kNeighbors) {
          const int xx = x + d[0], yy = y + d[1], zz = z + d[2];
          if (!InBounds(xx, yy, zz) || !At(xx, yy, zz)) {
            surface = true;
            break;
          }
        }
        if (surface) out.push_back({x, y, z});
      }
    }
  }
  return out;
}

std::vector<VoxelCoord> VoxelGrid::InteriorVoxels() const {
  std::vector<VoxelCoord> out;
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        if (!At(x, y, z)) continue;
        bool surface = false;
        for (const auto& d : kNeighbors) {
          const int xx = x + d[0], yy = y + d[1], zz = z + d[2];
          if (!InBounds(xx, yy, zz) || !At(xx, yy, zz)) {
            surface = true;
            break;
          }
        }
        if (!surface) out.push_back({x, y, z});
      }
    }
  }
  return out;
}

void VoxelGrid::UnionWith(const VoxelGrid& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] |= other.data_[i];
}

void VoxelGrid::IntersectWith(const VoxelGrid& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] &= other.data_[i];
}

void VoxelGrid::SubtractFrom(const VoxelGrid& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] = data_[i] & static_cast<uint8_t>(other.data_[i] ^ 1);
  }
}

size_t VoxelGrid::XorCount(const VoxelGrid& other) const {
  assert(SameShape(other));
  size_t n = 0;
  for (size_t i = 0; i < data_.size(); ++i) n += data_[i] ^ other.data_[i];
  return n;
}

StatusOr<VoxelGrid> VoxelGrid::Transformed(const Mat3& m) const {
  if (!IsCubic()) {
    return Status::FailedPrecondition(
        "octahedral transforms require a cubic grid");
  }
  // Verify m is a signed permutation matrix.
  for (int r = 0; r < 3; ++r) {
    int nonzero = 0;
    for (int c = 0; c < 3; ++c) {
      const double v = std::fabs(m(r, c));
      if (v > 1e-12) {
        ++nonzero;
        if (std::fabs(v - 1.0) > 1e-12) {
          return Status::InvalidArgument("not a signed permutation matrix");
        }
      }
    }
    if (nonzero != 1) {
      return Status::InvalidArgument("not a signed permutation matrix");
    }
  }
  const int r = nx_;
  VoxelGrid out(r);
  // Voxel center coordinate relative to grid center: 2*c - (r-1), an
  // integer in {-(r-1), ..., r-1} with the right parity; transforming and
  // mapping back is exact.
  for (int z = 0; z < r; ++z) {
    for (int y = 0; y < r; ++y) {
      for (int x = 0; x < r; ++x) {
        if (!At(x, y, z)) continue;
        const double cx = 2.0 * x - (r - 1);
        const double cy = 2.0 * y - (r - 1);
        const double cz = 2.0 * z - (r - 1);
        const Vec3 t = m * Vec3{cx, cy, cz};
        const int tx = static_cast<int>(std::lround((t.x + (r - 1)) / 2.0));
        const int ty = static_cast<int>(std::lround((t.y + (r - 1)) / 2.0));
        const int tz = static_cast<int>(std::lround((t.z + (r - 1)) / 2.0));
        assert(out.InBounds(tx, ty, tz));
        out.Set(tx, ty, tz);
      }
    }
  }
  return out;
}

bool VoxelGrid::TightBounds(VoxelCoord* lo, VoxelCoord* hi) const {
  bool any = false;
  VoxelCoord mn{nx_, ny_, nz_}, mx{-1, -1, -1};
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        if (!At(x, y, z)) continue;
        any = true;
        mn.x = std::min(mn.x, x);
        mn.y = std::min(mn.y, y);
        mn.z = std::min(mn.z, z);
        mx.x = std::max(mx.x, x);
        mx.y = std::max(mx.y, y);
        mx.z = std::max(mx.z, z);
      }
    }
  }
  if (any) {
    *lo = mn;
    *hi = mx;
  }
  return any;
}

}  // namespace vsim
