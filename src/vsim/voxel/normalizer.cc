#include "vsim/voxel/normalizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vsim {

void SymmetricEigen3(const Mat3& a, Mat3* eigvecs, Vec3* eigvals) {
  // Cyclic Jacobi: repeatedly zero the largest off-diagonal element.
  Mat3 m = a;
  Mat3 v = Mat3::Identity();
  for (int sweep = 0; sweep < 64; ++sweep) {
    // Find the largest off-diagonal |m(p,q)|.
    int p = 0, q = 1;
    double off = std::fabs(m(0, 1));
    if (std::fabs(m(0, 2)) > off) {
      off = std::fabs(m(0, 2));
      p = 0;
      q = 2;
    }
    if (std::fabs(m(1, 2)) > off) {
      off = std::fabs(m(1, 2));
      p = 1;
      q = 2;
    }
    if (off < 1e-14) break;
    const double apq = m(p, q);
    const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
    const double t = (theta >= 0 ? 1.0 : -1.0) /
                     (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
    const double c = 1.0 / std::sqrt(t * t + 1.0);
    const double s = t * c;
    // Apply the Givens rotation G(p, q, theta): m = G^T m G, v = v G.
    Mat3 g = Mat3::Identity();
    g(p, p) = c;
    g(q, q) = c;
    g(p, q) = s;
    g(q, p) = -s;
    m = g.Transposed() * m * g;
    v = v * g;
  }
  // Sort eigenvalues (diagonal of m) descending, permuting columns of v.
  int order[3] = {0, 1, 2};
  std::sort(order, order + 3,
            [&](int i, int j) { return m(i, i) > m(j, j); });
  Mat3 sorted_v;
  Vec3 vals;
  for (int c = 0; c < 3; ++c) {
    vals.Set(c, m(order[c], order[c]));
    for (int r = 0; r < 3; ++r) sorted_v(r, c) = v(r, order[c]);
  }
  *eigvecs = sorted_v;
  *eigvals = vals;
}

Mat3 PrincipalAxisRotation(const TriangleMesh& mesh) {
  // Area-weighted centroid.
  double total_area = 0.0;
  Vec3 centroid;
  for (size_t t = 0; t < mesh.triangle_count(); ++t) {
    const Triangle tri = mesh.triangle(t);
    const double area = tri.Area();
    centroid += tri.Centroid() * area;
    total_area += area;
  }
  if (total_area <= 0.0) return Mat3::Identity();
  centroid = centroid / total_area;

  // Exact surface covariance: the edge-midpoint quadrature rule
  // integrates quadratics exactly over each triangle.
  Mat3 cov;
  cov.m = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t t = 0; t < mesh.triangle_count(); ++t) {
    const Triangle tri = mesh.triangle(t);
    const double w = tri.Area() / 3.0;
    const Vec3 midpoints[3] = {(tri.a + tri.b) * 0.5, (tri.b + tri.c) * 0.5,
                               (tri.c + tri.a) * 0.5};
    for (const Vec3& m : midpoints) {
      const Vec3 d = m - centroid;
      const double dv[3] = {d.x, d.y, d.z};
      for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) cov(i, j) += w * dv[i] * dv[j];
    }
  }

  Mat3 eigvecs;
  Vec3 eigvals;
  SymmetricEigen3(cov, &eigvecs, &eigvals);
  // Rows of the rotation are the eigenvectors: R * e_k = axis k, so the
  // object's largest principal direction maps onto x.
  Mat3 rot = eigvecs.Transposed();
  // Enforce a proper rotation (flip the last row if det = -1).
  if (rot.Determinant() < 0.0) {
    for (int c = 0; c < 3; ++c) rot(2, c) = -rot(2, c);
  }
  return rot;
}

std::vector<VoxelGrid> AllOrientations(const VoxelGrid& grid,
                                       bool with_reflections) {
  const std::vector<Mat3>& group =
      with_reflections ? CubeRotationsWithReflections() : CubeRotations();
  std::vector<VoxelGrid> out;
  out.reserve(group.size());
  for (const Mat3& m : group) {
    StatusOr<VoxelGrid> g = grid.Transformed(m);
    assert(g.ok());
    out.push_back(std::move(g).value());
  }
  return out;
}

}  // namespace vsim
