// Dense 3-D occupancy grid: the voxel representation of a CAD object
// (Section 3 of the paper). Grids are cubic (r x r x r) in the paper's
// pipeline but the class supports general dimensions.
#ifndef VSIM_VOXEL_VOXEL_GRID_H_
#define VSIM_VOXEL_VOXEL_GRID_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "vsim/common/status.h"
#include "vsim/geometry/transform.h"

namespace vsim {

struct VoxelCoord {
  int x = 0;
  int y = 0;
  int z = 0;
  constexpr bool operator==(const VoxelCoord&) const = default;
};

class VoxelGrid {
 public:
  VoxelGrid() = default;
  VoxelGrid(int nx, int ny, int nz)
      : nx_(nx), ny_(ny), nz_(nz),
        data_(static_cast<size_t>(nx) * ny * nz, 0) {}

  // Cubic grid of resolution r (the paper's raster resolution).
  explicit VoxelGrid(int r) : VoxelGrid(r, r, r) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  bool IsCubic() const { return nx_ == ny_ && ny_ == nz_; }
  size_t size() const { return data_.size(); }

  bool InBounds(int x, int y, int z) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }

  size_t Index(int x, int y, int z) const {
    assert(InBounds(x, y, z));
    return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
  }

  bool At(int x, int y, int z) const { return data_[Index(x, y, z)] != 0; }
  bool At(VoxelCoord c) const { return At(c.x, c.y, c.z); }

  void Set(int x, int y, int z, bool value = true) {
    data_[Index(x, y, z)] = value ? 1 : 0;
  }
  void Set(VoxelCoord c, bool value = true) { Set(c.x, c.y, c.z, value); }

  // Number of set voxels.
  size_t Count() const;

  // True if no voxel is set.
  bool Empty() const { return Count() == 0; }

  // All set voxel coordinates.
  std::vector<VoxelCoord> SetVoxels() const;

  // Surface voxels: set voxels with at least one unset (or out-of-grid)
  // 6-neighbor. The complement within the object is the interior
  // (the paper's V-bar and V-dot, Section 3.3).
  std::vector<VoxelCoord> SurfaceVoxels() const;
  std::vector<VoxelCoord> InteriorVoxels() const;

  // In-place set algebra with a same-shaped grid.
  void UnionWith(const VoxelGrid& other);
  void IntersectWith(const VoxelGrid& other);
  void SubtractFrom(const VoxelGrid& other);  // this = this AND NOT other

  // |this XOR other|: the symmetric volume difference used to score
  // cover sequences (Section 3.3.3).
  size_t XorCount(const VoxelGrid& other) const;

  bool SameShape(const VoxelGrid& other) const {
    return nx_ == other.nx_ && ny_ == other.ny_ && nz_ == other.nz_;
  }

  bool operator==(const VoxelGrid& other) const = default;

  // Applies an octahedral-group element (signed permutation matrix, as
  // produced by CubeRotations()/CubeRotationsWithReflections()) to a
  // cubic grid: voxel centers are rotated/reflected about the grid
  // center. Returns error for non-cubic grids or non-signed-permutation
  // matrices.
  StatusOr<VoxelGrid> Transformed(const Mat3& m) const;

  // Axis-aligned bounding box of the set voxels, as inclusive coords.
  // Returns false if the grid is empty.
  bool TightBounds(VoxelCoord* lo, VoxelCoord* hi) const;

  const std::vector<uint8_t>& raw() const { return data_; }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace vsim

#endif  // VSIM_VOXEL_VOXEL_GRID_H_
