#include "vsim/voxel/voxelizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "vsim/common/math_util.h"
#include "vsim/geometry/aabb.h"

namespace vsim {

namespace {

// --- Akenine-Moller triangle/box SAT test -------------------------------

bool PlaneBoxOverlap(Vec3 normal, double d, Vec3 half) {
  Vec3 vmin, vmax;
  for (int i = 0; i < 3; ++i) {
    if (normal[i] > 0.0) {
      vmin.Set(i, -half[i]);
      vmax.Set(i, half[i]);
    } else {
      vmin.Set(i, half[i]);
      vmax.Set(i, -half[i]);
    }
  }
  if (normal.Dot(vmin) + d > 0.0) return false;
  return normal.Dot(vmax) + d >= 0.0;
}

}  // namespace

bool TriangleBoxOverlap(const Triangle& tri, Vec3 center, Vec3 half) {
  // Translate triangle into box-centered coordinates.
  const Vec3 v0 = tri.a - center;
  const Vec3 v1 = tri.b - center;
  const Vec3 v2 = tri.c - center;

  const Vec3 e0 = v1 - v0;
  const Vec3 e1 = v2 - v1;
  const Vec3 e2 = v0 - v2;

  // 9 cross-product axes.
  {
    const double fex = std::fabs(e0.x), fey = std::fabs(e0.y),
                 fez = std::fabs(e0.z);
    // a_00 = (0, -e0.z, e0.y), tested against v0, v2
    {
      const double p0 = e0.z * v0.y - e0.y * v0.z;
      const double p2 = e0.z * v2.y - e0.y * v2.z;
      const double rad = fez * half.y + fey * half.z;
      if (std::min(p0, p2) > rad || std::max(p0, p2) < -rad) return false;
    }
    {
      const double p0 = -e0.z * v0.x + e0.x * v0.z;
      const double p2 = -e0.z * v2.x + e0.x * v2.z;
      const double rad = fez * half.x + fex * half.z;
      if (std::min(p0, p2) > rad || std::max(p0, p2) < -rad) return false;
    }
    {
      const double p1 = e0.y * v1.x - e0.x * v1.y;
      const double p2 = e0.y * v2.x - e0.x * v2.y;
      const double rad = fey * half.x + fex * half.y;
      if (std::min(p1, p2) > rad || std::max(p1, p2) < -rad) return false;
    }
  }
  {
    const double fex = std::fabs(e1.x), fey = std::fabs(e1.y),
                 fez = std::fabs(e1.z);
    {
      const double p0 = e1.z * v0.y - e1.y * v0.z;
      const double p2 = e1.z * v2.y - e1.y * v2.z;
      const double rad = fez * half.y + fey * half.z;
      if (std::min(p0, p2) > rad || std::max(p0, p2) < -rad) return false;
    }
    {
      const double p0 = -e1.z * v0.x + e1.x * v0.z;
      const double p2 = -e1.z * v2.x + e1.x * v2.z;
      const double rad = fez * half.x + fex * half.z;
      if (std::min(p0, p2) > rad || std::max(p0, p2) < -rad) return false;
    }
    {
      const double p0 = e1.y * v0.x - e1.x * v0.y;
      const double p1 = e1.y * v1.x - e1.x * v1.y;
      const double rad = fey * half.x + fex * half.y;
      if (std::min(p0, p1) > rad || std::max(p0, p1) < -rad) return false;
    }
  }
  {
    const double fex = std::fabs(e2.x), fey = std::fabs(e2.y),
                 fez = std::fabs(e2.z);
    {
      const double p0 = e2.z * v0.y - e2.y * v0.z;
      const double p1 = e2.z * v1.y - e2.y * v1.z;
      const double rad = fez * half.y + fey * half.z;
      if (std::min(p0, p1) > rad || std::max(p0, p1) < -rad) return false;
    }
    {
      const double p0 = -e2.z * v0.x + e2.x * v0.z;
      const double p1 = -e2.z * v1.x + e2.x * v1.z;
      const double rad = fez * half.x + fex * half.z;
      if (std::min(p0, p1) > rad || std::max(p0, p1) < -rad) return false;
    }
    {
      const double p1 = e2.y * v1.x - e2.x * v1.y;
      const double p2 = e2.y * v2.x - e2.x * v2.y;
      const double rad = fey * half.x + fex * half.y;
      if (std::min(p1, p2) > rad || std::max(p1, p2) < -rad) return false;
    }
  }
  // 3 box axes: triangle AABB vs box.
  auto min3 = [](double a, double b, double c) {
    return std::min(a, std::min(b, c));
  };
  auto max3 = [](double a, double b, double c) {
    return std::max(a, std::max(b, c));
  };
  if (min3(v0.x, v1.x, v2.x) > half.x || max3(v0.x, v1.x, v2.x) < -half.x)
    return false;
  if (min3(v0.y, v1.y, v2.y) > half.y || max3(v0.y, v1.y, v2.y) < -half.y)
    return false;
  if (min3(v0.z, v1.z, v2.z) > half.z || max3(v0.z, v1.z, v2.z) < -half.z)
    return false;

  // Triangle plane vs box.
  const Vec3 normal = e0.Cross(e1);
  return PlaneBoxOverlap(normal, -normal.Dot(v0), half);
}

namespace {

// World-to-grid mapping: grid coordinate g = (p - origin) * inv_cell,
// so voxel (x,y,z) spans [x, x+1) in grid coordinates and its center is
// (x + 0.5).
struct GridFrame {
  Vec3 origin;
  Vec3 cell;      // world size of one voxel per axis
  Vec3 inv_cell;  // 1 / cell
};

GridFrame ComputeFrame(const Aabb& bounds, const VoxelizerOptions& opt) {
  const int r = opt.resolution;
  Vec3 extent = bounds.Extent();
  // Guard against flat objects: give degenerate axes a tiny extent.
  const double max_e = std::max(extent.MaxComponent(), 1e-12);
  extent.x = std::max(extent.x, 1e-6 * max_e);
  extent.y = std::max(extent.y, 1e-6 * max_e);
  extent.z = std::max(extent.z, 1e-6 * max_e);

  Vec3 fitted;  // world extent that maps onto fill_fraction * r voxels
  if (opt.anisotropic_fit) {
    fitted = extent;
  } else {
    const double m = extent.MaxComponent();
    fitted = {m, m, m};
  }
  const Vec3 center = bounds.Center();
  GridFrame frame;
  frame.cell = fitted / (opt.fill_fraction * r);
  frame.inv_cell = {1.0 / frame.cell.x, 1.0 / frame.cell.y,
                    1.0 / frame.cell.z};
  frame.origin = center - frame.cell * (0.5 * r);
  return frame;
}

void VoxelizeSurface(const TriangleMesh& mesh, const GridFrame& frame,
                     VoxelGrid* grid) {
  const int r = grid->nx();
  const Vec3 half = frame.cell * 0.5;
  for (size_t t = 0; t < mesh.triangle_count(); ++t) {
    const Triangle tri = mesh.triangle(t);
    const Aabb tb = tri.Bounds();
    // Voxel index range overlapped by the triangle's AABB.
    int lo[3], hi[3];
    const Vec3 glo = (tb.min - frame.origin).Hadamard(frame.inv_cell);
    const Vec3 ghi = (tb.max - frame.origin).Hadamard(frame.inv_cell);
    lo[0] = Clamp(static_cast<int>(std::floor(glo.x)), 0, r - 1);
    lo[1] = Clamp(static_cast<int>(std::floor(glo.y)), 0, r - 1);
    lo[2] = Clamp(static_cast<int>(std::floor(glo.z)), 0, r - 1);
    hi[0] = Clamp(static_cast<int>(std::floor(ghi.x)), 0, r - 1);
    hi[1] = Clamp(static_cast<int>(std::floor(ghi.y)), 0, r - 1);
    hi[2] = Clamp(static_cast<int>(std::floor(ghi.z)), 0, r - 1);
    for (int z = lo[2]; z <= hi[2]; ++z) {
      for (int y = lo[1]; y <= hi[1]; ++y) {
        for (int x = lo[0]; x <= hi[0]; ++x) {
          if (grid->At(x, y, z)) continue;
          const Vec3 center =
              frame.origin + Vec3{(x + 0.5) * frame.cell.x,
                                  (y + 0.5) * frame.cell.y,
                                  (z + 0.5) * frame.cell.z};
          if (TriangleBoxOverlap(tri, center, half)) grid->Set(x, y, z);
        }
      }
    }
  }
}

// Ray/triangle intersection along +x from (x=-inf, y, z): returns true
// and the intersection x if the ray crosses the triangle's projection.
// Uses the 2-D point-in-triangle parity formulation with consistent
// edge rules, which makes shared-edge double counting benign for
// *generic* ray positions; callers jitter the ray inside the voxel row
// to avoid degeneracies.
bool RayXTriangle(const Triangle& tri, double y, double z, double* x_hit) {
  const double ay = tri.a.y - y, az = tri.a.z - z;
  const double by = tri.b.y - y, bz = tri.b.z - z;
  const double cy = tri.c.y - y, cz = tri.c.z - z;
  // Signed areas of the three sub-triangles in the (y, z) plane.
  const double u = by * cz - bz * cy;
  const double v = cy * az - cz * ay;
  const double w = ay * bz - az * by;
  const bool all_nonneg = u >= 0 && v >= 0 && w >= 0;
  const bool all_nonpos = u <= 0 && v <= 0 && w <= 0;
  if (!all_nonneg && !all_nonpos) return false;
  const double det = u + v + w;
  if (det == 0.0) return false;
  *x_hit = (u * tri.a.x + v * tri.b.x + w * tri.c.x) / det;
  return true;
}

void FillInterior(const std::vector<TriangleMesh>& parts,
                  const GridFrame& frame, VoxelGrid* grid) {
  const int r = grid->nx();
  // Per part, per (y,z) row: parity fill through voxel centers. Using a
  // slightly offset ray (center + irrational epsilon) avoids rays
  // passing exactly through mesh vertices/edges on symmetric models.
  const double ey = 0.5 + 1.2345e-4;
  const double ez = 0.5 + 2.7182e-4;
  std::vector<double> hits;
  for (const TriangleMesh& mesh : parts) {
    VoxelGrid filled(r);
    for (int z = 0; z < r; ++z) {
      const double wz = frame.origin.z + (z + ez) * frame.cell.z;
      for (int y = 0; y < r; ++y) {
        const double wy = frame.origin.y + (y + ey) * frame.cell.y;
        hits.clear();
        for (size_t t = 0; t < mesh.triangle_count(); ++t) {
          double xh;
          if (RayXTriangle(mesh.triangle(t), wy, wz, &xh)) {
            hits.push_back(xh);
          }
        }
        if (hits.size() < 2) continue;
        std::sort(hits.begin(), hits.end());
        // Walk inside intervals [hits[0],hits[1]], [hits[2],hits[3]], ...
        for (size_t i = 0; i + 1 < hits.size(); i += 2) {
          const double gx0 = (hits[i] - frame.origin.x) * frame.inv_cell.x;
          const double gx1 = (hits[i + 1] - frame.origin.x) * frame.inv_cell.x;
          // Voxel centers x + 0.5 inside (gx0, gx1).
          int x0 = static_cast<int>(std::ceil(gx0 - 0.5));
          int x1 = static_cast<int>(std::floor(gx1 - 0.5));
          x0 = Clamp(x0, 0, r - 1);
          x1 = Clamp(x1, -1, r - 1);
          for (int x = x0; x <= x1; ++x) filled.Set(x, y, z);
        }
      }
    }
    grid->UnionWith(filled);
  }
}

}  // namespace

StatusOr<VoxelModel> VoxelizeParts(const std::vector<TriangleMesh>& parts,
                                   const VoxelizerOptions& options) {
  if (options.resolution < 2) {
    return Status::InvalidArgument("resolution must be >= 2");
  }
  if (options.fill_fraction <= 0.0 || options.fill_fraction > 1.0) {
    return Status::InvalidArgument("fill_fraction must be in (0, 1]");
  }
  if (parts.empty()) {
    return Status::InvalidArgument("no mesh parts given");
  }
  Aabb bounds;
  size_t total_triangles = 0;
  for (const TriangleMesh& m : parts) {
    VSIM_RETURN_NOT_OK(m.Validate());
    bounds.Extend(m.Bounds());
    total_triangles += m.triangle_count();
  }
  if (total_triangles == 0 || bounds.IsEmpty()) {
    return Status::InvalidArgument("empty geometry");
  }

  const GridFrame frame = ComputeFrame(bounds, options);
  VoxelModel model;
  model.grid = VoxelGrid(options.resolution);
  model.original_extent = bounds.Extent();

  for (const TriangleMesh& m : parts) {
    VoxelizeSurface(m, frame, &model.grid);
  }
  if (options.solid) {
    FillInterior(parts, frame, &model.grid);
  }
  if (model.grid.Empty()) {
    return Status::Internal("voxelization produced an empty grid");
  }
  return model;
}

StatusOr<VoxelModel> VoxelizeMesh(const TriangleMesh& mesh,
                                  const VoxelizerOptions& options) {
  return VoxelizeParts({mesh}, options);
}

}  // namespace vsim
