// Normalization of CAD objects (Section 3.2): translation and scaling
// are handled by the voxelizer's grid fit; this module provides
// (a) the principal-axis transform for full rotation invariance and
// (b) the enumeration of all 24 (or 48, with reflections) octahedral
// orientations of a voxel grid for 90-degree-rotation invariance.
#ifndef VSIM_VOXEL_NORMALIZER_H_
#define VSIM_VOXEL_NORMALIZER_H_

#include <vector>

#include "vsim/geometry/mesh.h"
#include "vsim/geometry/transform.h"
#include "vsim/voxel/voxel_grid.h"

namespace vsim {

// Eigen decomposition of a symmetric 3x3 matrix by cyclic Jacobi
// rotations. Eigenvalues are returned in descending order with matching
// eigenvector columns in `eigvecs`.
void SymmetricEigen3(const Mat3& a, Mat3* eigvecs, Vec3* eigvals);

// Rotation that aligns the object's principal axes (area-weighted
// covariance of triangle centroids about the area centroid) with the
// coordinate axes: largest spread along x, smallest along z. The
// returned matrix is a proper rotation (det = +1).
Mat3 PrincipalAxisRotation(const TriangleMesh& mesh);

// All orientations of a cubic grid under the 24 proper 90-degree
// rotations, or all 48 including reflections. Element 0 is the input.
std::vector<VoxelGrid> AllOrientations(const VoxelGrid& grid,
                                       bool with_reflections);

}  // namespace vsim

#endif  // VSIM_VOXEL_NORMALIZER_H_
