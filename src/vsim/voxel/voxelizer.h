// Triangle mesh -> voxel grid conversion.
//
// The pipeline mirrors Section 3.2 of the paper: the object is
// translated to the grid center and scaled into the raster, the
// per-axis scale factors are recorded (so scaling invariance can be
// (de)activated at query time), the surface is voxelized conservatively
// with triangle/box overlap tests, and the interior is filled by parity
// ray casting so that V = V_surface + V_interior.
#ifndef VSIM_VOXEL_VOXELIZER_H_
#define VSIM_VOXEL_VOXELIZER_H_

#include <vector>

#include "vsim/common/status.h"
#include "vsim/geometry/mesh.h"
#include "vsim/voxel/voxel_grid.h"

namespace vsim {

struct VoxelizerOptions {
  // Raster resolution r (voxels per dimension); the paper uses 15 for
  // the cover-based models and 30 for the histogram models.
  int resolution = 15;

  // If true, each axis is scaled independently so the object fills the
  // raster (scaling-invariant representation; the original extents are
  // recorded in VoxelModel::original_extent). If false, a single uniform
  // scale preserves the aspect ratio.
  bool anisotropic_fit = true;

  // Fraction of the raster the object's bounding box is scaled to
  // occupy; < 1 keeps a one-voxel safety margin at the borders.
  double fill_fraction = 1.0;

  // If false, only the surface shell is produced (no interior fill).
  bool solid = true;
};

struct VoxelModel {
  VoxelGrid grid;
  // Extent of the object's bounding box before normalization: the
  // "scaling factors for each of the three dimensions" of Section 3.2.
  Vec3 original_extent;
};

// Voxelizes a single closed mesh.
StatusOr<VoxelModel> VoxelizeMesh(const TriangleMesh& mesh,
                                  const VoxelizerOptions& options);

// Voxelizes the union of several closed meshes (used for composite
// parts such as a bolt = shaft + head, where a merged mesh would break
// the parity fill in overlap regions). All parts share one common
// world-to-grid transform derived from the union bounding box.
StatusOr<VoxelModel> VoxelizeParts(const std::vector<TriangleMesh>& parts,
                                   const VoxelizerOptions& options);

// Exact separating-axis triangle/axis-aligned-box overlap test
// (Akenine-Moller). Box given by center and half-extents.
bool TriangleBoxOverlap(const Triangle& tri, Vec3 box_center,
                        Vec3 box_half_extents);

}  // namespace vsim

#endif  // VSIM_VOXEL_VOXELIZER_H_
