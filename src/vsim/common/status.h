// Status / StatusOr error model, following the RocksDB/Arrow idiom of
// returning rich error objects instead of throwing exceptions across the
// public API.
#ifndef VSIM_COMMON_STATUS_H_
#define VSIM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vsim {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,        // transient overload (e.g. admission queue full)
  kDeadlineExceeded,   // request deadline passed before completion
  // Keep in sync with kMaxStatusCode and StatusCodeName/FromName below:
  // codes cross process boundaries (the net/ wire protocol), so the
  // numeric values are a stable contract -- append only, never reorder.
};

// Largest valid StatusCode value (inclusive). Used by wire decoders to
// bounds-check codes received from untrusted peers.
inline constexpr int kMaxStatusCode =
    static_cast<int>(StatusCode::kDeadlineExceeded);

// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

// Inverse of StatusCodeName: every code round-trips code -> name ->
// code exactly (see status_test.cc's exhaustive sweep), so errors can
// cross a wire or a log file without string matching. Returns false for
// unrecognized names ("Unknown" included -- it is not a real code).
bool StatusCodeFromName(const std::string& name, StatusCode* code);

// Validates + converts an integer received from an untrusted source
// (wire frame, saved file). Returns false when `value` is not the
// numeric value of any StatusCode.
bool StatusCodeFromInt(int value, StatusCode* code);

// A lightweight success-or-error result. Cheap to copy in the OK case
// (no allocation); error states carry a message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-error union. Accessing value() on an error aborts in debug
// builds; check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` if in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define VSIM_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::vsim::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

// Evaluates a StatusOr expression, propagating errors; on success binds
// the value to `lhs`.
#define VSIM_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value();

#define VSIM_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define VSIM_ASSIGN_OR_RETURN_NAME(x, y) VSIM_ASSIGN_OR_RETURN_CONCAT(x, y)
#define VSIM_ASSIGN_OR_RETURN(lhs, rexpr) \
  VSIM_ASSIGN_OR_RETURN_IMPL(             \
      VSIM_ASSIGN_OR_RETURN_NAME(_statusor, __LINE__), lhs, rexpr)

}  // namespace vsim

#endif  // VSIM_COMMON_STATUS_H_
