// Deterministic pseudo-random number generation. All data-set builders
// and randomized benches take an explicit seed so experiments reproduce
// bit-for-bit across runs and machines.
#ifndef VSIM_COMMON_RNG_H_
#define VSIM_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

namespace vsim {

// SplitMix64: used to expand a single user seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// xoshiro256** generator: fast, high-quality, deterministic across
// platforms (unlike std::mt19937 distributions, whose output is
// implementation-defined for std::normal_distribution etc.).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller (deterministic given the seed).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    cached_ = mag * std::sin(two_pi * u2);
    has_cached_ = true;
    return mag * std::cos(two_pi * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace vsim

#endif  // VSIM_COMMON_RNG_H_
