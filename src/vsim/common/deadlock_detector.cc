#include "vsim/common/deadlock_detector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define VSIM_HAVE_BACKTRACE 1
#endif
#endif

namespace vsim::deadlock {

std::atomic<bool> g_enabled{[] {
  const char* e = std::getenv("VSIM_DEADLOCK_DETECT");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}()};

namespace {

constexpr int kMaxStackFrames = 24;

// Where a lock-order edge was first observed: enough to point a human
// at the second of the two disagreeing call sites.
struct EdgeSite {
#if defined(VSIM_HAVE_BACKTRACE)
  void* frames[kMaxStackFrames];
  int depth = 0;
#endif
};

struct PairHash {
  size_t operator()(const std::pair<LockNodeId, LockNodeId>& p) const {
    return std::hash<LockNodeId>()(p.first) * 1000003u ^
           std::hash<LockNodeId>()(p.second);
  }
};

// All global detector state behind one raw std::mutex. Deliberately
// NOT a vsim::Mutex: the detector cannot instrument itself, and
// common/ is the one directory where tools/vsim_lint.py permits the
// raw primitive.
struct GlobalState {
  std::mutex mu;
  LockOrderGraph graph;
  // Interned class names. Ids are dense indices into `names`.
  std::unordered_map<std::string, LockNodeId> ids_by_name;
  std::vector<std::string> names;
  std::unordered_map<std::pair<LockNodeId, LockNodeId>, EdgeSite, PairHash>
      edge_sites;
};

GlobalState& State() {
  static GlobalState* s = new GlobalState;  // leaked: outlives all threads
  return *s;
}

// One entry per lock the current thread holds, in acquisition order.
struct Held {
  const void* mu;
  LockNodeId node;
  bool named;
};

std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

// Anonymous locks participate as per-object nodes: address tagged into
// a disjoint id space from the dense interned ids.
constexpr LockNodeId kAnonTag = LockNodeId{1} << 63;

LockNodeId InternLocked(const void* mu, const char* lock_class,
                        GlobalState& s) {
  if (lock_class == nullptr) {
    return kAnonTag | reinterpret_cast<std::uintptr_t>(mu);
  }
  auto it = s.ids_by_name.find(lock_class);
  if (it != s.ids_by_name.end()) return it->second;
  LockNodeId id = s.names.size();
  s.names.emplace_back(lock_class);
  s.ids_by_name.emplace(lock_class, id);
  return id;
}

std::string NodeNameLocked(LockNodeId id, const GlobalState& s) {
  if (id & kAnonTag) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "unnamed mutex @0x%llx",
                  static_cast<unsigned long long>(id & ~kAnonTag));
    return buf;
  }
  if (id < s.names.size()) return "'" + s.names[id] + "'";
  return "<unknown lock class>";
}

void PrintCurrentStack() {
#if defined(VSIM_HAVE_BACKTRACE)
  void* frames[kMaxStackFrames];
  int depth = backtrace(frames, kMaxStackFrames);
  backtrace_symbols_fd(frames, depth, /*fd=*/2);
#else
  std::fprintf(stderr, "  (backtrace unavailable on this platform)\n");
#endif
}

void PrintEdgeSite(const EdgeSite& site) {
#if defined(VSIM_HAVE_BACKTRACE)
  if (site.depth > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(site.frames), site.depth,
                         /*fd=*/2);
    return;
  }
#else
  (void)site;
#endif
  std::fprintf(stderr, "  (no stack recorded)\n");
}

void CaptureEdgeSite(EdgeSite* site) {
#if defined(VSIM_HAVE_BACKTRACE)
  site->depth = backtrace(site->frames, kMaxStackFrames);
#else
  (void)site;
#endif
}

[[noreturn]] void AbortWithReport(const char* what, const std::string& detail,
                                  const EdgeSite* prior_site) {
  std::fprintf(stderr,
               "\nVSIM DEADLOCK DETECTOR: %s\n%s\n"
               "current acquisition stack:\n",
               what, detail.c_str());
  PrintCurrentStack();
  if (prior_site != nullptr) {
    std::fprintf(stderr, "conflicting prior acquisition stack:\n");
    PrintEdgeSite(*prior_site);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

std::optional<std::vector<LockNodeId>> LockOrderGraph::AddEdge(
    LockNodeId from, LockNodeId to) {
  if (from == to) return std::vector<LockNodeId>{from};
  auto& out = adj_[from];
  if (!out.insert(to).second) return std::nullopt;  // edge already known
  // New edge. It closes a cycle iff `from` was already reachable from
  // `to`; reconstruct that pre-existing path for the report.
  std::unordered_map<LockNodeId, LockNodeId> parent;
  std::vector<LockNodeId> dfs{to};
  parent.emplace(to, to);
  while (!dfs.empty()) {
    LockNodeId node = dfs.back();
    dfs.pop_back();
    auto it = adj_.find(node);
    if (it == adj_.end()) continue;
    for (LockNodeId next : it->second) {
      if (!parent.emplace(next, node).second) continue;
      if (next == from) {
        std::vector<LockNodeId> path{from};
        for (LockNodeId n = node; n != to; n = parent[n]) path.push_back(n);
        path.push_back(to);
        // Built back-to-front: reverse into to -> ... -> from.
        std::vector<LockNodeId> fwd(path.rbegin(), path.rend());
        return fwd;
      }
      dfs.push_back(next);
    }
  }
  return std::nullopt;
}

bool LockOrderGraph::HasEdge(LockNodeId from, LockNodeId to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.count(to) > 0;
}

void OnAcquire(const void* mu, const char* lock_class) {
  auto& held = HeldStack();
  GlobalState& s = State();
  std::unique_lock<std::mutex> lock(s.mu);
  const LockNodeId id = InternLocked(mu, lock_class, s);
  const bool named = lock_class != nullptr;

  for (const Held& h : held) {
    if (h.mu == mu) {
      AbortWithReport(
          "recursive acquisition",
          "thread re-acquires " + NodeNameLocked(id, s) +
              " it already holds (guaranteed self-deadlock on a "
              "non-recursive mutex)",
          nullptr);
    }
    if (named && h.named && h.node == id) {
      AbortWithReport(
          "same-class nesting",
          "thread acquires a second lock of class " + NodeNameLocked(id, s) +
              " while holding one; within-class order is undefined, so "
              "two threads doing this on different objects can deadlock",
          nullptr);
    }
  }

  // Edges from every held lock, not just the top: an intermediate hold
  // acquired via TryLock has no incoming edge, so relying on
  // transitivity through the top alone could miss a cycle.
  for (const Held& h : held) {
    auto cycle = s.graph.AddEdge(h.node, id);
    if (!cycle) {
      auto [it, fresh] = s.edge_sites.try_emplace({h.node, id});
      if (fresh) CaptureEdgeSite(&it->second);
      continue;
    }
    // The new edge h.node -> id contradicts the recorded path
    // id -> ... -> h.node; the first hop of that path is the edge
    // whose recorded site disagrees with this call site.
    std::string detail = "acquiring " + NodeNameLocked(id, s) +
                         " while holding " + NodeNameLocked(h.node, s) +
                         " contradicts the established order:";
    for (size_t i = 0; i < cycle->size(); ++i) {
      detail += (i == 0 ? " " : " -> ") + NodeNameLocked((*cycle)[i], s);
    }
    const EdgeSite* prior = nullptr;
    if (cycle->size() >= 2) {
      auto it = s.edge_sites.find({(*cycle)[0], (*cycle)[1]});
      if (it != s.edge_sites.end()) prior = &it->second;
    }
    AbortWithReport("lock-order cycle (potential deadlock)", detail, prior);
  }

  held.push_back(Held{mu, id, named});
}

void OnTryAcquire(const void* mu, const char* lock_class) {
  // A successful try-lock is a real hold (future edges start from it)
  // but adds no edge itself: it cannot block, so it cannot be the
  // acquisition that completes a deadlock. Recursive try-lock on a
  // held object is UB on std::mutex; flag it too.
  auto& held = HeldStack();
  GlobalState& s = State();
  std::unique_lock<std::mutex> lock(s.mu);
  const LockNodeId id = InternLocked(mu, lock_class, s);
  for (const Held& h : held) {
    if (h.mu == mu) {
      AbortWithReport("recursive try-acquisition",
                      "thread try-locks " + NodeNameLocked(id, s) +
                          " it already holds (undefined behavior on "
                          "std::mutex)",
                      nullptr);
    }
  }
  held.push_back(Held{mu, id, lock_class != nullptr});
}

void OnRelease(const void* mu) {
  auto& held = HeldStack();
  // Pop the most recent matching hold; out-of-LIFO-order release is
  // legal (e.g. hand-over-hand), so search from the top.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock we never saw acquired: the detector was enabled
  // mid-hold (ScopedDetectorForTesting) -- ignore.
}

void ResetForTesting() {
  GlobalState& s = State();
  std::unique_lock<std::mutex> lock(s.mu);
  s.graph.Clear();
  s.ids_by_name.clear();
  s.names.clear();
  s.edge_sites.clear();
}

std::string NodeNameForTesting(LockNodeId id) {
  GlobalState& s = State();
  std::unique_lock<std::mutex> lock(s.mu);
  return NodeNameLocked(id, s);
}

}  // namespace vsim::deadlock
