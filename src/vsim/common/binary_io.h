// Minimal binary (de)serialization helpers over iostreams. Fixed-width
// little-endian integers and raw IEEE-754 doubles; every reader returns
// false on a short read so callers can surface Status errors.
#ifndef VSIM_COMMON_BINARY_IO_H_
#define VSIM_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace vsim {

inline void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

inline void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 8);
}

inline void PutI32(std::ostream& out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

inline void PutDouble(std::ostream& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

inline void PutString(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline void PutDoubleVector(std::ostream& out, const std::vector<double>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (double d : v) PutDouble(out, d);
}

inline bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return true;
}

inline bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return true;
}

inline bool GetI32(std::istream& in, int32_t* v) {
  uint32_t u;
  if (!GetU32(in, &u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

inline bool GetDouble(std::istream& in, double* v) {
  uint64_t bits;
  if (!GetU64(in, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

inline bool GetString(std::istream& in, std::string* s, uint32_t max_len = 1u << 20) {
  uint32_t len;
  if (!GetU32(in, &len) || len > max_len) return false;
  s->resize(len);
  return static_cast<bool>(in.read(s->data(), len));
}

inline bool GetDoubleVector(std::istream& in, std::vector<double>* v,
                            uint32_t max_len = 1u << 24) {
  uint32_t len;
  if (!GetU32(in, &len) || len > max_len) return false;
  v->resize(len);
  for (double& d : *v) {
    if (!GetDouble(in, &d)) return false;
  }
  return true;
}

}  // namespace vsim

#endif  // VSIM_COMMON_BINARY_IO_H_
