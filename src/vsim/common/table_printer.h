// Plain-text table formatting used by the benchmark harness to print the
// same row/column structure as the paper's tables.
#ifndef VSIM_COMMON_TABLE_PRINTER_H_
#define VSIM_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace vsim {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);

  // Renders the table with column alignment to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  // Renders as comma-separated values (for plotting reachability series).
  void PrintCsv(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vsim

#endif  // VSIM_COMMON_TABLE_PRINTER_H_
