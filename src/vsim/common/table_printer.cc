#include "vsim/common/table_printer.h"

#include <algorithm>
#include <cassert>

namespace vsim {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fprintf(out, "|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  auto print_sep = [&]() {
    std::fprintf(out, "+");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::fprintf(out, "-");
      std::fprintf(out, "+");
    }
    std::fprintf(out, "\n");
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", row[c].c_str(),
                   c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace vsim
