// Clang thread-safety annotations plus annotated mutex/condvar wrappers
// over the std primitives: the compile-time half of the repo's
// concurrency story. Under Clang with -Wthread-safety (the
// VSIM_STATIC_ANALYSIS=ON build mode, enforced by
// tools/check_static.sh), every GUARDED_BY member access outside its
// mutex and every REQUIRES violation is a hard compile error; under
// other compilers the macros expand to nothing and the wrappers are
// zero-cost shims over std::mutex / std::condition_variable.
//
// Conventions for new code (see docs/ARCHITECTURE.md "Static analysis
// & lock discipline"):
//   - Protect shared members with a vsim::Mutex and tag each one
//     GUARDED_BY(mu_). Members that are immutable after construction
//     (or confined to one thread) get a comment saying so instead.
//   - Lock with vsim::MutexLock (scoped) in function bodies; annotate
//     private helpers that expect the lock held with REQUIRES(mu_).
//   - Public methods that take a lock internally are annotated
//     EXCLUDES(mu_) so callers cannot deadlock by re-entering.
//   - Condition waits use CondVar::Wait(&mu_) inside an explicit
//     `while (!predicate)` loop -- the analysis can then see that the
//     predicate reads happen under the lock (lambda predicates passed
//     into std::condition_variable::wait cannot be annotated).
#ifndef VSIM_COMMON_THREAD_ANNOTATIONS_H_
#define VSIM_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "vsim/common/deadlock_detector.h"

// -- Attribute macros -------------------------------------------------
// Names and semantics follow the Clang thread-safety-analysis docs
// (and the de-facto abseil spelling). Each expands to the underlying
// __attribute__ only when the compiler supports it.
#if defined(__clang__)
#define VSIM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define VSIM_THREAD_ANNOTATION__(x)
#endif

// On a data member: may only be read or written while holding `x`.
#define GUARDED_BY(x) VSIM_THREAD_ANNOTATION__(guarded_by(x))
// On a pointer member: the *pointee* is protected by `x`.
#define PT_GUARDED_BY(x) VSIM_THREAD_ANNOTATION__(pt_guarded_by(x))
// On a function: the caller must hold the listed capabilities.
#define REQUIRES(...) \
  VSIM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VSIM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
// On a function: the caller must NOT hold the listed capabilities
// (the function acquires them itself; prevents self-deadlock).
#define EXCLUDES(...) VSIM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
// On a function: acquires / releases the listed capabilities.
#define ACQUIRE(...) \
  VSIM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  VSIM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  VSIM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
// Shared (reader) forms: many readers may hold the capability at once;
// writers need the exclusive forms above. Guarded members may be READ
// under a shared hold but only WRITTEN under an exclusive one.
#define ACQUIRE_SHARED(...) \
  VSIM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VSIM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
// On a class: instances are a capability (a lock).
#define CAPABILITY(x) VSIM_THREAD_ANNOTATION__(capability(x))
// On a class: RAII object that holds a capability for its lifetime.
#define SCOPED_CAPABILITY VSIM_THREAD_ANNOTATION__(scoped_lockable)
// On a function: returns a reference to the capability guarding it.
#define RETURN_CAPABILITY(x) VSIM_THREAD_ANNOTATION__(lock_returned(x))
// Escape hatch; every use needs a comment justifying it.
#define NO_THREAD_SAFETY_ANALYSIS \
  VSIM_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace vsim {

// Annotated std::mutex. Lock discipline on members tagged
// GUARDED_BY(mu_) is compiler-checked under VSIM_STATIC_ANALYSIS=ON.
// Also satisfies Lockable (lowercase aliases), so std::scoped_lock and
// friends still work where a scoped MutexLock does not fit.
//
// The optional `lock_class` names the mutex's node in the runtime
// lock-order graph (deadlock_detector.h, VSIM_DEADLOCK_DETECT=1): all
// instances sharing a class collapse onto one node, so an ordering
// observed between two classes binds every instance pair. Convention:
// "<module>.<role>", e.g. "cache.shard", "net.conn". The string must
// outlive the mutex (use literals). Unnamed mutexes still participate,
// keyed per object.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* lock_class) : class_(lock_class) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    deadlock::NoteAcquire(this, class_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    deadlock::NoteRelease(this);
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) deadlock::NoteTryAcquire(this, class_);
    return ok;
  }

  // Lockable aliases.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* class_ = nullptr;
};

// Scoped lock over a vsim::Mutex. The analysis treats the guarded
// members as accessible exactly while a MutexLock on their mutex is in
// scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Annotated std::shared_mutex: many concurrent readers or one writer.
// The buffer-pool shards use this for their latch-per-partition scheme
// (page-table hits take the shared side, misses and evictions the
// exclusive side -- see src/vsim/cache/page_cache.h). Guarded members
// may be read under ReaderMutexLock and mutated only under
// WriterMutexLock; Clang checks both directions under
// VSIM_STATIC_ANALYSIS=ON.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* lock_class) : class_(lock_class) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // Shared and exclusive acquisitions feed the same lock-order node:
  // reader/writer order inversions deadlock just like writer/writer
  // ones (a writer blocks behind the reader that is waiting on the
  // lock the writer holds).
  void Lock() ACQUIRE() {
    deadlock::NoteAcquire(this, class_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    deadlock::NoteRelease(this);
  }
  void LockShared() ACQUIRE_SHARED() {
    deadlock::NoteAcquire(this, class_);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    deadlock::NoteRelease(this);
  }

 private:
  std::shared_mutex mu_;
  const char* class_ = nullptr;
};

// Scoped exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Scoped shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to vsim::Mutex. Wait() requires the mutex
// held (checked under Clang); it releases the mutex while blocked and
// reacquires it before returning, like std::condition_variable -- the
// adopt/release dance below keeps the fast std::mutex implementation
// instead of paying condition_variable_any's extra internal lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu and blocks until notified (spurious wakeups
  // possible: always call inside a `while (!predicate)` loop). The
  // mutex is held again when Wait returns.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    // The mutex is genuinely released while blocked: keep the
    // deadlock detector's held-lock stack truthful across the wait.
    deadlock::NoteRelease(mu);
    cv_.wait(lock);
    deadlock::NoteAcquire(mu, mu->class_);
    lock.release();  // caller's MutexLock keeps ownership
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vsim

#endif  // VSIM_COMMON_THREAD_ANNOTATIONS_H_
