// Runtime lock-order cycle detection for the annotated mutex wrappers
// (thread_annotations.h): the dynamic half of the deadlock story, next
// to Clang's order-blind static lock-discipline analysis.
//
// Design (the absl::Mutex deadlock-detector shape, adapted to our
// wrappers): each thread keeps a thread-local stack of the locks it
// currently holds; every *blocking* acquisition feeds a global
// directed graph of lock-order edges `held -> acquiring`. Edges are
// keyed by LOCK CLASS, not object: all instances constructed with the
// same class name (e.g. every `cache.shard` latch) collapse onto one
// node, so an ordering proven on one shard pair indicts every shard
// pair. On the FIRST observation of a new edge the detector runs a DFS
// cycle check; a cycle means two sites disagree about lock order -- a
// potential deadlock even if this particular run interleaved safely --
// and the process aborts with a report naming both sites: the
// acquisition stack that closed the cycle and the recorded stack of
// the first acquisition that established the reverse ordering.
//
// Additional invariants enforced while enabled:
//   - re-acquiring a mutex object the thread already holds aborts
//     (guaranteed self-deadlock on our non-recursive primitives);
//   - holding two locks of the same named class at once aborts (the
//     repo's sharded structures -- buffer-pool shards, result-cache
//     shards, per-connection state -- are designed never to nest
//     within a class; nesting would make the class order-ambiguous).
//
// Cost model: OFF (the default) is one relaxed atomic load per
// Lock/Unlock. ON serializes every acquisition through one internal
// mutex -- strictly a debug mode, enabled by the VSIM_DEADLOCK_DETECT
// environment variable (any value but "" or "0"; see
// docs/OPERATIONS.md "Build & debug knobs"). TryLock acquisitions are
// pushed on the held stack (they are real holds, and the held side of
// future edges) but never add edges themselves: a try-lock cannot
// block, so it cannot close a deadlock cycle.
//
// This header is deliberately tiny: thread_annotations.h inlines the
// Note* fast paths into every Lock/Unlock, so the OFF path must not
// drag in the graph machinery.
#ifndef VSIM_COMMON_DEADLOCK_DETECTOR_H_
#define VSIM_COMMON_DEADLOCK_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace vsim::deadlock {

// Process-wide switch. Initialized from VSIM_DEADLOCK_DETECT at static
// init; tests flip it with ScopedDetectorForTesting. Relaxed is enough:
// the flag gates pure instrumentation, not data visibility.
extern std::atomic<bool> g_enabled;

inline bool IsOn() { return g_enabled.load(std::memory_order_relaxed); }

// Node key in the order graph. Named lock classes intern to small ids;
// unnamed mutexes get a per-object id (their address, tagged), so
// anonymous locks still participate in ordering without aliasing each
// other.
using LockNodeId = std::uint64_t;

// The pure order graph, separated from the thread-local bookkeeping so
// tests can drive it directly. AddEdge(from, to) records the edge and
// returns, on the first observation that closes a cycle, the pre-
// existing path `to -> ... -> from` whose reversal the new edge
// contradicts. Self-edges (from == to) report a one-node path.
class LockOrderGraph {
 public:
  // Returns std::nullopt if the edge is consistent with every order
  // recorded so far (or was already present).
  std::optional<std::vector<LockNodeId>> AddEdge(LockNodeId from,
                                                 LockNodeId to);

  bool HasEdge(LockNodeId from, LockNodeId to) const;
  void Clear() { adj_.clear(); }

 private:
  std::unordered_map<LockNodeId, std::unordered_set<LockNodeId>> adj_;
};

// -- Hooks called by the Mutex/SharedMutex wrappers -------------------
// `mu` is the lock object's address (identity); `lock_class` is the
// class name given at construction, or nullptr for an unnamed lock.
// OnAcquire runs the edge/cycle check and aborts the process with a
// two-stack report on a violation. Shared (reader) acquisitions use the
// same hooks: reader/writer order inversions deadlock just as hard.
void OnAcquire(const void* mu, const char* lock_class);
void OnTryAcquire(const void* mu, const char* lock_class);  // held, no edges
void OnRelease(const void* mu);

// Inline fast paths: one relaxed load when the detector is off.
inline void NoteAcquire(const void* mu, const char* lock_class) {
  if (IsOn()) OnAcquire(mu, lock_class);
}
inline void NoteTryAcquire(const void* mu, const char* lock_class) {
  if (IsOn()) OnTryAcquire(mu, lock_class);
}
inline void NoteRelease(const void* mu) {
  if (IsOn()) OnRelease(mu);
}

// -- Test support -----------------------------------------------------
// Clears the global graph and class-name registry. Only meaningful
// while no instrumented locks are held anywhere; tests call it from
// quiescent fixtures.
void ResetForTesting();

// Human-readable name for a node id ("class 'cache.shard'" or
// "unnamed mutex @0x...").
std::string NodeNameForTesting(LockNodeId id);

// RAII enable/disable for tests (restores the previous value; resets
// detector state on both edges so one test's orderings cannot leak
// into another's).
class ScopedDetectorForTesting {
 public:
  explicit ScopedDetectorForTesting(bool enable)
      : prev_(g_enabled.exchange(enable, std::memory_order_relaxed)) {
    ResetForTesting();
  }
  ~ScopedDetectorForTesting() {
    g_enabled.store(prev_, std::memory_order_relaxed);
    ResetForTesting();
  }
  ScopedDetectorForTesting(const ScopedDetectorForTesting&) = delete;
  ScopedDetectorForTesting& operator=(const ScopedDetectorForTesting&) =
      delete;

 private:
  bool prev_;
};

}  // namespace vsim::deadlock

#endif  // VSIM_COMMON_DEADLOCK_DETECTOR_H_
