#include "vsim/common/status.h"

namespace vsim {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool StatusCodeFromName(const std::string& name, StatusCode* code) {
  for (int value = 0; value <= kMaxStatusCode; ++value) {
    const StatusCode candidate = static_cast<StatusCode>(value);
    if (name == StatusCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

bool StatusCodeFromInt(int value, StatusCode* code) {
  if (value < 0 || value > kMaxStatusCode) return false;
  *code = static_cast<StatusCode>(value);
  return true;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace vsim
