#ifndef VSIM_COMMON_MATH_UTIL_H_
#define VSIM_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace vsim {

inline constexpr double kPi = 3.14159265358979323846;

// True if |a - b| is within `abs_tol` or within `rel_tol` * max(|a|,|b|).
inline bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                        double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

template <typename T>
T Clamp(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

// Integer ceiling division for non-negative operands.
inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

inline double Square(double x) { return x * x; }

}  // namespace vsim

#endif  // VSIM_COMMON_MATH_UTIL_H_
