#ifndef VSIM_COMMON_STOPWATCH_H_
#define VSIM_COMMON_STOPWATCH_H_

#include <chrono>

namespace vsim {

// Wall-clock stopwatch used by the benchmark harness to measure CPU-side
// query cost (the paper's "CPU time" column; I/O time is simulated
// separately by PageCostModel).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vsim

#endif  // VSIM_COMMON_STOPWATCH_H_
