#include "vsim/data/dataset.h"

#include <functional>

namespace vsim {

namespace {

struct Family {
  const char* name;
  std::function<parts::MeshParts(Rng&)> make;
  double weight;  // relative frequency in the data set
};

Dataset BuildDataset(const std::string& name,
                     const std::vector<Family>& families, size_t count,
                     uint64_t seed) {
  Dataset ds;
  ds.name = name;
  for (const Family& f : families) ds.class_names.push_back(f.name);

  double total_weight = 0.0;
  for (const Family& f : families) total_weight += f.weight;

  Rng rng(seed);
  ds.objects.reserve(count);
  // Deterministic quota per class (largest-remainder style), then the
  // object order is shuffled so class blocks do not align with ids.
  std::vector<size_t> quota(families.size(), 0);
  size_t assigned = 0;
  for (size_t f = 0; f < families.size(); ++f) {
    quota[f] = static_cast<size_t>(families[f].weight / total_weight *
                                   static_cast<double>(count));
    assigned += quota[f];
  }
  for (size_t f = 0; assigned < count; f = (f + 1) % families.size()) {
    ++quota[f];
    ++assigned;
  }
  for (size_t f = 0; f < families.size(); ++f) {
    for (size_t i = 0; i < quota[f]; ++i) {
      CadObject obj;
      obj.class_name = families[f].name;
      obj.label = static_cast<int>(f);
      obj.parts = families[f].make(rng);
      ds.objects.push_back(std::move(obj));
    }
  }
  // Fisher-Yates shuffle with the same deterministic generator.
  for (size_t i = ds.objects.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(ds.objects[i - 1], ds.objects[j]);
  }
  return ds;
}

}  // namespace

std::vector<int> Dataset::Labels() const {
  std::vector<int> labels;
  labels.reserve(objects.size());
  for (const CadObject& o : objects) labels.push_back(o.label);
  return labels;
}

std::vector<int> Dataset::EvaluationLabels() const {
  std::vector<int> labels;
  labels.reserve(objects.size());
  int next_singleton = num_classes();
  for (const CadObject& o : objects) {
    labels.push_back(o.label == noise_class ? next_singleton++ : o.label);
  }
  return labels;
}

void ApplyRandomOrientations(Dataset* dataset, uint64_t seed,
                             bool with_reflections) {
  Rng rng(seed);
  const std::vector<Mat3>& group =
      with_reflections ? CubeRotationsWithReflections() : CubeRotations();
  for (CadObject& obj : dataset->objects) {
    const Mat3& m = group[rng.NextBounded(group.size())];
    for (TriangleMesh& mesh : obj.parts) {
      mesh.ApplyTransform(Transform::Linear(m));
    }
  }
}

Dataset MakeCarDataset(size_t count, uint64_t seed) {
  const std::vector<Family> families = {
      {"tire", parts::MakeTire, 1.4},
      {"wheel_rim", parts::MakeWheelRim, 1.0},
      {"door_panel", parts::MakeDoorPanel, 1.2},
      {"fender", parts::MakeFender, 1.0},
      {"engine_block", parts::MakeEngineBlock, 0.8},
      {"seat_envelope", parts::MakeSeatEnvelope, 1.0},
      {"exhaust_pipe", parts::MakeExhaustPipe, 0.8},
      {"brake_disk", parts::MakeBrakeDisk, 1.0},
      {"gear_wheel", parts::MakeGearWheel, 0.8},
      {"knob", parts::MakeKnob, 1.0},
      {"misc", parts::MakeMiscPart, 2.5},
  };
  Dataset ds = BuildDataset("car", families, count, seed);
  ds.noise_class = static_cast<int>(families.size()) - 1;
  return ds;
}

Dataset MakeAircraftDataset(size_t count, uint64_t seed) {
  // Skewed: fasteners dominate, large structural parts are rare.
  const std::vector<Family> families = {
      {"bolt", parts::MakeBolt, 7.0},
      {"nut", parts::MakeNut, 6.0},
      {"washer", parts::MakeWasher, 5.0},
      {"rivet", parts::MakeRivet, 8.0},
      {"bracket", parts::MakeBracket, 3.0},
      {"hinge", parts::MakeHinge, 2.0},
      {"stringer", parts::MakeStringer, 2.5},
      {"spar", parts::MakeSpar, 1.5},
      {"skin_panel", parts::MakeSkinPanel, 2.0},
      {"wing_section", parts::MakeWingSection, 0.6},
      {"fuselage_ring", parts::MakeFuselageRing, 0.8},
      {"turbine_disk", parts::MakeTurbineDisk, 0.6},
      {"misc", parts::MakeMiscPart, 6.0},
  };
  Dataset ds = BuildDataset("aircraft", families, count, seed);
  ds.noise_class = static_cast<int>(families.size()) - 1;
  return ds;
}

}  // namespace vsim
