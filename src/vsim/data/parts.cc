#include "vsim/data/parts.h"

#include <cmath>

#include "vsim/common/math_util.h"
#include "vsim/geometry/primitives.h"
#include "vsim/geometry/transform.h"

namespace vsim::parts {

namespace {

// Jitter helper: uniform in [v * (1 - amount), v * (1 + amount)].
double J(Rng& rng, double v, double amount = 0.35) {
  return v * rng.Uniform(1.0 - amount, 1.0 + amount);
}

TriangleMesh Moved(TriangleMesh mesh, Vec3 offset) {
  mesh.ApplyTransform(Transform::Translate(offset));
  return mesh;
}

TriangleMesh Rotated(TriangleMesh mesh, const Mat3& m) {
  mesh.ApplyTransform(Transform::Linear(m));
  return mesh;
}

}  // namespace

MeshParts MakeTire(Rng& rng) {
  const double major = J(rng, 1.0);
  const double minor = J(rng, 0.42, 0.2);
  return {MakeTorus(major, minor, 28, 14)};
}

MeshParts MakeWheelRim(Rng& rng) {
  const double outer = J(rng, 1.0);
  const double band_w = J(rng, 0.45, 0.2);
  const double hub_r = J(rng, 0.28, 0.2);
  MeshParts parts;
  parts.push_back(MakeTube(outer, outer * 0.82, band_w, 24));
  parts.push_back(MakeCylinder(hub_r, band_w * 0.8, 16));
  const int spokes = static_cast<int>(rng.UniformInt(3, 7));
  for (int s = 0; s < spokes; ++s) {
    TriangleMesh spoke = MakeBox({outer * 1.62, outer * 0.16, band_w * 0.5});
    parts.push_back(
        Rotated(std::move(spoke), Mat3::RotationZ(kPi * s / spokes)));
  }
  return parts;
}

MeshParts MakeDoorPanel(Rng& rng) {
  const double width = J(rng, 2.2);
  const double height = J(rng, 1.4);
  const double thick = J(rng, 0.12, 0.3);
  const double bend = rng.Uniform(0.35, 0.8);
  MeshParts parts;
  parts.push_back(MakeCurvedPanel(width, height, thick, bend, 14));
  // Window band: present on most doors, at a model-dependent position
  // and size. Moving bulk across histogram cells is exactly what rigid
  // space partitioning cannot absorb but cover matching can.
  if (rng.NextBool(0.85)) {
    TriangleMesh band = MakeCurvedPanel(width * rng.Uniform(0.5, 0.9),
                                        height * rng.Uniform(0.3, 0.6),
                                        thick * 0.7, bend, 10);
    parts.push_back(Moved(std::move(band),
                          {width * rng.Uniform(-0.15, 0.15), 0,
                           height * rng.Uniform(0.45, 0.8)}));
  }
  // Door handle / mirror mount blob at a random spot.
  TriangleMesh handle = MakeBox({width * 0.18, thick * 2.2, height * 0.1});
  parts.push_back(Moved(std::move(handle),
                        {width * rng.Uniform(-0.3, 0.3), thick,
                         height * rng.Uniform(-0.3, 0.25)}));
  return parts;
}

MeshParts MakeFender(Rng& rng) {
  const double radius = J(rng, 1.1);
  const double width = J(rng, 0.7, 0.25);
  const double thick = J(rng, 0.1, 0.3);
  const double arc = rng.Uniform(0.45, 0.62) * kPi;
  // Arch over the wheel: a block bent around the y axis.
  return {MakeDeformedBlock(
      [=](double u, double v, double w) {
        const double theta = (u - 0.5) * arc;
        const double r = radius + (w - 0.5) * thick;
        return Vec3{r * std::sin(theta), (v - 0.5) * width,
                    r * std::cos(theta) - radius * 0.7};
      },
      12, 1, 1)};
}

MeshParts MakeEngineBlock(Rng& rng) {
  const double width = J(rng, 2.0);
  const double depth = J(rng, 1.2);
  const double height = J(rng, 1.0);
  MeshParts parts;
  parts.push_back(MakeBox({width, depth, height}));
  const int bores = static_cast<int>(rng.UniformInt(2, 5));
  const double bore_r = width / (bores * rng.Uniform(2.4, 3.2));
  const double bore_h = height * rng.Uniform(0.35, 0.7);
  const double row_off = depth * rng.Uniform(-0.2, 0.2);
  for (int b = 0; b < bores; ++b) {
    const double x = (b + 0.5) / bores * width - width / 2.0;
    TriangleMesh bore = MakeCylinder(bore_r, bore_h, 12);
    parts.push_back(Moved(std::move(bore), {x, row_off, height * 0.55}));
  }
  // Optional sump / accessory block on a random side.
  if (rng.NextBool(0.6)) {
    TriangleMesh sump = MakeBox({width * 0.4, depth * 0.5, height * 0.4});
    parts.push_back(Moved(std::move(sump),
                          {width * rng.Uniform(-0.25, 0.25), 0,
                           -height * 0.6}));
  }
  return parts;
}

MeshParts MakeSeatEnvelope(Rng& rng) {
  const double seat_w = J(rng, 1.3);
  const double seat_d = J(rng, 1.2);
  const double seat_t = J(rng, 0.35, 0.25);
  const double back_h = J(rng, 1.5);
  const double recline = rng.Uniform(0.1, 0.35);
  MeshParts parts;
  parts.push_back(MakeBox({seat_w, seat_d, seat_t}));
  // Backrest: tilted slab rising from the rear edge.
  TriangleMesh back = MakeDeformedBlock(
      [=](double u, double v, double w) {
        const double z = v * back_h;
        return Vec3{(u - 0.5) * seat_w,
                    -seat_d / 2.0 + z * recline + (w - 0.5) * seat_t, z};
      },
      1, 6, 1);
  parts.push_back(std::move(back));
  return parts;
}

MeshParts MakeExhaustPipe(Rng& rng) {
  const double pipe_r = J(rng, 0.18, 0.25);
  const double pipe_len = J(rng, 2.6);
  MeshParts parts;
  parts.push_back(
      Rotated(MakeCylinder(pipe_r, pipe_len, 14), Mat3::RotationY(kPi / 2)));
  // Muffler: cigar-shaped lathe body at a model-dependent position.
  const double muf_r = pipe_r * rng.Uniform(2.2, 3.4);
  const double muf_len = pipe_len * rng.Uniform(0.25, 0.45);
  TriangleMesh muffler =
      MakeLathe({{0.0, -muf_len / 2}, {muf_r, -muf_len * 0.3},
                 {muf_r, muf_len * 0.3}, {0.0, muf_len / 2}},
                16);
  muffler.ApplyTransform(Transform::Linear(Mat3::RotationY(kPi / 2)));
  parts.push_back(Moved(std::move(muffler),
                        {pipe_len * rng.Uniform(-0.3, 0.3), 0, 0}));
  return parts;
}

MeshParts MakeBrakeDisk(Rng& rng) {
  const double outer = J(rng, 1.0);
  const double inner = outer * rng.Uniform(0.55, 0.7);
  const double thick = J(rng, 0.1, 0.3);
  MeshParts parts;
  parts.push_back(MakeTube(outer, inner, thick, 28));
  // Hat section: offset varies between vented and plain disk designs.
  parts.push_back(Moved(MakeTube(inner * 0.95, inner * 0.4, thick * 1.6, 20),
                        {0, 0, thick * rng.Uniform(-0.8, 0.8)}));
  return parts;
}

MeshParts MakeGearWheel(Rng& rng) {
  const double radius = J(rng, 1.0);
  const double thick = J(rng, 0.3, 0.25);
  MeshParts parts;
  parts.push_back(MakeCylinder(radius, thick, 24));
  const int teeth = static_cast<int>(rng.UniformInt(6, 16));
  for (int t = 0; t < teeth; ++t) {
    TriangleMesh tooth =
        MakeBox({radius * 0.25, radius * 2.0 * kPi / teeth * 0.45, thick});
    tooth.ApplyTransform(Transform::Translate({radius * 1.05, 0, 0}));
    parts.push_back(
        Rotated(std::move(tooth), Mat3::RotationZ(2.0 * kPi * t / teeth)));
  }
  return parts;
}

MeshParts MakeKnob(Rng& rng) {
  const double r = J(rng, 0.5);
  const double h = J(rng, 1.2);
  return {MakeLathe({{0.0, 0.0},
                     {r * 0.35, 0.05 * h},
                     {r * J(rng, 0.4, 0.3), 0.55 * h},
                     {r, 0.8 * h},
                     {r * 0.8, 0.97 * h},
                     {0.0, h}},
                    18)};
}

MeshParts MakeBolt(Rng& rng) {
  const double shaft_r = J(rng, 0.22, 0.2);
  const double shaft_len = J(rng, 1.6, 0.3);
  const double head_r = shaft_r * rng.Uniform(1.7, 2.1);
  const double head_h = shaft_r * rng.Uniform(0.9, 1.3);
  MeshParts parts;
  parts.push_back(MakeCylinder(shaft_r, shaft_len, 12));
  parts.push_back(
      Moved(MakePrism(6, head_r, head_h), {0, 0, shaft_len / 2 + head_h / 2}));
  return parts;
}

MeshParts MakeNut(Rng& rng) {
  const double r = J(rng, 0.5);
  const double h = J(rng, 0.4, 0.25);
  // Hex ring: 6-sided outer wall with a round hole.
  MeshParts parts;
  parts.push_back(MakeTube(r, r * rng.Uniform(0.45, 0.55), h, 6));
  return parts;
}

MeshParts MakeWasher(Rng& rng) {
  const double r = J(rng, 0.5);
  return {MakeTube(r, r * rng.Uniform(0.4, 0.6), J(rng, 0.08, 0.3), 20)};
}

MeshParts MakeRivet(Rng& rng) {
  const double shaft_r = J(rng, 0.18, 0.2);
  const double shaft_len = J(rng, 0.9, 0.3);
  const double head_r = shaft_r * rng.Uniform(1.8, 2.2);
  MeshParts parts;
  parts.push_back(MakeCylinder(shaft_r, shaft_len, 12));
  // Dome head: upper half of a squashed lathe profile.
  TriangleMesh head = MakeLathe(
      {{0.0, 0.0}, {head_r, 0.02}, {head_r * 0.8, shaft_r}, {0.0, shaft_r * 1.4}},
      14);
  parts.push_back(Moved(std::move(head), {0, 0, shaft_len / 2}));
  return parts;
}

MeshParts MakeBracket(Rng& rng) {
  const double leg_a = J(rng, 1.2);
  const double leg_b = J(rng, 0.9);
  const double width = J(rng, 0.6, 0.25);
  const double thick = J(rng, 0.12, 0.3);
  // Left- and right-handed variants exist (mirrored production parts).
  const double side = rng.NextBool() ? 1.0 : -1.0;
  MeshParts parts;
  parts.push_back(MakeBox({leg_a, width, thick}));
  parts.push_back(Moved(MakeBox({thick, width, leg_b}),
                        {side * (-leg_a / 2 + thick / 2), 0, leg_b / 2}));
  return parts;
}

MeshParts MakeHinge(Rng& rng) {
  const double plate_w = J(rng, 1.0);
  const double plate_h = J(rng, 0.7);
  const double thick = J(rng, 0.08, 0.3);
  const double barrel_r = J(rng, 0.14, 0.25);
  MeshParts parts;
  parts.push_back(MakeBox({plate_w, plate_h, thick}));
  TriangleMesh barrel = MakeCylinder(barrel_r, plate_h * 1.05, 10);
  barrel.ApplyTransform(Transform::Linear(Mat3::RotationX(kPi / 2)));
  parts.push_back(Moved(std::move(barrel), {plate_w / 2, 0, 0}));
  return parts;
}

MeshParts MakeStringer(Rng& rng) {
  return {MakeBox({J(rng, 3.0), J(rng, 0.25, 0.3), J(rng, 0.35, 0.3)})};
}

MeshParts MakeSpar(Rng& rng) {
  const double len = J(rng, 2.8);
  const double flange_w = J(rng, 0.6, 0.2);
  const double flange_t = J(rng, 0.1, 0.3);
  const double web_h = J(rng, 0.7, 0.2);
  MeshParts parts;
  parts.push_back(Moved(MakeBox({len, flange_w, flange_t}),
                        {0, 0, web_h / 2 + flange_t / 2}));
  parts.push_back(Moved(MakeBox({len, flange_w, flange_t}),
                        {0, 0, -web_h / 2 - flange_t / 2}));
  parts.push_back(MakeBox({len, flange_t, web_h * 1.02}));
  return parts;
}

MeshParts MakeSkinPanel(Rng& rng) {
  return {MakeCurvedPanel(J(rng, 2.2), J(rng, 1.6), J(rng, 0.06, 0.3),
                          rng.Uniform(0.05, 0.3), 10)};
}

MeshParts MakeWingSection(Rng& rng) {
  return {MakeWing(J(rng, 1.6), J(rng, 0.7), J(rng, 3.2), J(rng, 0.28, 0.25),
                   J(rng, 0.5, 0.5), 10)};
}

MeshParts MakeFuselageRing(Rng& rng) {
  const double r = J(rng, 1.4);
  return {MakeTube(r, r * rng.Uniform(0.86, 0.93), J(rng, 0.5, 0.3), 24)};
}

MeshParts MakeTurbineDisk(Rng& rng) {
  const double hub_r = J(rng, 0.45);
  const double thick = J(rng, 0.25, 0.25);
  MeshParts parts;
  parts.push_back(MakeCylinder(hub_r, thick, 18));
  const int blades = static_cast<int>(rng.UniformInt(10, 14));
  for (int b = 0; b < blades; ++b) {
    TriangleMesh blade = MakeBox({hub_r * 1.6, hub_r * 0.18, thick * 0.7});
    blade.ApplyTransform(Transform::Translate({hub_r * 1.5, 0, 0}));
    parts.push_back(
        Rotated(std::move(blade), Mat3::RotationZ(2.0 * kPi * b / blades)));
  }
  return parts;
}

MeshParts MakeMiscPart(Rng& rng) {
  MeshParts parts;
  const int pieces = static_cast<int>(rng.UniformInt(2, 5));
  for (int i = 0; i < pieces; ++i) {
    TriangleMesh piece;
    switch (rng.UniformInt(0, 5)) {
      case 0:
        piece = MakeBox({J(rng, 1.0, 0.6), J(rng, 1.0, 0.6), J(rng, 1.0, 0.6)});
        break;
      case 1:
        piece = MakeCylinder(J(rng, 0.5, 0.5), J(rng, 1.2, 0.5), 12);
        break;
      case 2:
        piece = MakeSphere(J(rng, 0.5, 0.4), 12, 6);
        break;
      case 3:
        piece = MakeFrustum(J(rng, 0.6, 0.4), J(rng, 0.25, 0.8), J(rng, 1.0, 0.5), 10);
        break;
      case 4:
        piece = MakeTorus(J(rng, 0.8, 0.3), J(rng, 0.25, 0.4), 16, 8);
        break;
      default:
        piece = MakePrism(static_cast<int>(rng.UniformInt(3, 8)),
                          J(rng, 0.6, 0.4), J(rng, 0.8, 0.5));
        break;
    }
    piece.ApplyTransform(Transform::Linear(
        Mat3::AxisAngle({rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                         rng.Uniform(-1, 1)},
                        rng.Uniform(0, 3.1))));
    piece.ApplyTransform(Transform::Translate({rng.Uniform(-0.7, 0.7),
                                               rng.Uniform(-0.7, 0.7),
                                               rng.Uniform(-0.7, 0.7)}));
    parts.push_back(std::move(piece));
  }
  return parts;
}

}  // namespace vsim::parts
