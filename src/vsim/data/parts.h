// Parametric CAD part generators. Each generator produces one part
// family with randomized proportions, mirroring the object classes the
// paper reports in its two industrial data sets (tires, doors, fenders,
// engine blocks, seat envelopes; nuts, bolts, wings, ...). Composite
// parts are returned as several closed meshes so the voxelizer can
// union them (see VoxelizeParts).
#ifndef VSIM_DATA_PARTS_H_
#define VSIM_DATA_PARTS_H_

#include <vector>

#include "vsim/common/rng.h"
#include "vsim/geometry/mesh.h"

namespace vsim::parts {

using MeshParts = std::vector<TriangleMesh>;

// --- Car-like part families ------------------------------------------
MeshParts MakeTire(Rng& rng);          // fat torus
MeshParts MakeWheelRim(Rng& rng);      // hub disk + outer band + spokes
MeshParts MakeDoorPanel(Rng& rng);     // curved panel + window band
MeshParts MakeFender(Rng& rng);        // quarter-arch swept panel
MeshParts MakeEngineBlock(Rng& rng);   // box + cylinder bores on top
MeshParts MakeSeatEnvelope(Rng& rng);  // L-shaped swept volume
MeshParts MakeExhaustPipe(Rng& rng);   // long tube + muffler body
MeshParts MakeBrakeDisk(Rng& rng);     // thin annulus with wide hole
MeshParts MakeGearWheel(Rng& rng);     // disk with teeth blocks
MeshParts MakeKnob(Rng& rng);          // lathe profile (shift knob)

// --- Aircraft-like part families ---------------------------------------
MeshParts MakeBolt(Rng& rng);            // hex head + shaft
MeshParts MakeNut(Rng& rng);             // hex ring
MeshParts MakeWasher(Rng& rng);          // thin annulus
MeshParts MakeRivet(Rng& rng);           // dome head + shaft
MeshParts MakeBracket(Rng& rng);         // L of two plates
MeshParts MakeHinge(Rng& rng);           // plate + barrel cylinder
MeshParts MakeStringer(Rng& rng);        // long slender box
MeshParts MakeSpar(Rng& rng);            // I-beam of three boxes
MeshParts MakeSkinPanel(Rng& rng);       // thin, slightly curved sheet
MeshParts MakeWingSection(Rng& rng);     // tapered swept airfoil slab
MeshParts MakeFuselageRing(Rng& rng);    // large short tube
MeshParts MakeTurbineDisk(Rng& rng);     // hub + blade blocks

// One-off miscellaneous part: a random composite of 2-5 primitives.
// Real CAD databases contain many unique parts that belong to no
// family; they fill the space between clusters and separate robust
// similarity models from brittle ones.
MeshParts MakeMiscPart(Rng& rng);

}  // namespace vsim::parts

#endif  // VSIM_DATA_PARTS_H_
