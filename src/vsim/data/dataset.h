// Synthetic CAD data sets standing in for the paper's proprietary Car
// (~200 parts) and Aircraft (5 000 parts) data sets. Each object is a
// randomized instance of a labeled part family; the labels provide the
// ground truth that the paper's authors established by visually
// inspecting cluster contents (Figure 10).
#ifndef VSIM_DATA_DATASET_H_
#define VSIM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vsim/data/parts.h"
#include "vsim/geometry/mesh.h"

namespace vsim {

struct CadObject {
  std::string class_name;
  int label = -1;
  parts::MeshParts parts;  // closed meshes; voxelized as a union
};

struct Dataset {
  std::string name;
  std::vector<CadObject> objects;
  std::vector<std::string> class_names;
  // Index of the "misc" family of unique one-off parts, or -1.
  int noise_class = -1;

  size_t size() const { return objects.size(); }
  int num_classes() const { return static_cast<int>(class_names.size()); }
  std::vector<int> Labels() const;

  // Labels for cluster evaluation: family ids, except that every member
  // of the noise family gets its own singleton label -- a unique part
  // should not cluster with anything, including other unique parts.
  std::vector<int> EvaluationLabels() const;
};

// Car-like data set: ~10 balanced part families (tires, rims, doors,
// fenders, engine blocks, seats, exhausts, brake disks, gears, knobs).
Dataset MakeCarDataset(size_t count = 200, uint64_t seed = 42);

// Aircraft-like data set: 12 families with a skewed size distribution --
// many small fasteners (bolts, nuts, washers, rivets), few large parts
// (wings, fuselage rings), as the paper describes.
Dataset MakeAircraftDataset(size_t count = 5000, uint64_t seed = 7);

// Rotates (and, if `with_reflections`, possibly mirrors) every object
// by a random element of the octahedral group. Simulates parts stored
// in arbitrary standardized poses -- e.g. the left and right front door
// -- which the paper's 90-degree-rotation and reflection invariances
// (Section 3.2) are designed to absorb.
void ApplyRandomOrientations(Dataset* dataset, uint64_t seed,
                             bool with_reflections);

}  // namespace vsim

#endif  // VSIM_DATA_DATASET_H_
