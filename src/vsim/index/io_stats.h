// Simulated I/O accounting. The paper's efficiency evaluation (Table 2)
// keeps data and indexes in main memory and *charges* 8 ms per page
// access and 200 ns per byte read; we reproduce exactly that cost model
// so the CPU-vs-I/O trade-off of the filter step is comparable.
#ifndef VSIM_INDEX_IO_STATS_H_
#define VSIM_INDEX_IO_STATS_H_

#include <cstddef>

namespace vsim {

struct IoCostParams {
  double seconds_per_page_access = 0.008;  // 8 ms (paper, Section 5.4)
  double seconds_per_byte = 200e-9;        // 200 ns (paper, Section 5.4)
  size_t page_size_bytes = 4096;
};

class IoStats {
 public:
  void AddPageAccesses(size_t n) { page_accesses_ += n; }
  void AddBytesRead(size_t n) { bytes_read_ += n; }

  size_t page_accesses() const { return page_accesses_; }
  size_t bytes_read() const { return bytes_read_; }

  double SimulatedSeconds(const IoCostParams& params = {}) const {
    return static_cast<double>(page_accesses_) * params.seconds_per_page_access +
           static_cast<double>(bytes_read_) * params.seconds_per_byte;
  }

  void Reset() {
    page_accesses_ = 0;
    bytes_read_ = 0;
  }

  IoStats& operator+=(const IoStats& o) {
    page_accesses_ += o.page_accesses_;
    bytes_read_ += o.bytes_read_;
    return *this;
  }

 private:
  size_t page_accesses_ = 0;
  size_t bytes_read_ = 0;
};

}  // namespace vsim

#endif  // VSIM_INDEX_IO_STATS_H_
