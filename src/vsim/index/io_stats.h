// Simulated I/O accounting. The paper's efficiency evaluation (Table 2)
// keeps data and indexes in main memory and *charges* 8 ms per page
// access and 200 ns per byte read; we reproduce exactly that cost model
// so the CPU-vs-I/O trade-off of the filter step is comparable.
//
// Thread-safety: counters are relaxed atomics, so concurrent refinement
// paths under the query service may charge I/O to a shared IoStats
// without racing (totals converge; no ordering is implied). Copying --
// QueryCost carries an IoStats by value -- takes a relaxed snapshot of
// each counter; copy a stats object only when no writer is mid-query on
// it if you need the two counters mutually consistent.
#ifndef VSIM_INDEX_IO_STATS_H_
#define VSIM_INDEX_IO_STATS_H_

#include <atomic>
#include <cstddef>

namespace vsim {

struct IoCostParams {
  double seconds_per_page_access = 0.008;  // 8 ms (paper, Section 5.4)
  double seconds_per_byte = 200e-9;        // 200 ns (paper, Section 5.4)
  size_t page_size_bytes = 4096;
};

class IoStats {
 public:
  IoStats() = default;
  IoStats(const IoStats& o)
      : page_accesses_(o.page_accesses()), bytes_read_(o.bytes_read()) {}
  IoStats& operator=(const IoStats& o) {
    page_accesses_.store(o.page_accesses(), std::memory_order_relaxed);
    bytes_read_.store(o.bytes_read(), std::memory_order_relaxed);
    return *this;
  }

  void AddPageAccesses(size_t n) {
    page_accesses_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBytesRead(size_t n) {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }

  size_t page_accesses() const {
    return page_accesses_.load(std::memory_order_relaxed);
  }
  size_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

  double SimulatedSeconds(const IoCostParams& params = {}) const {
    return static_cast<double>(page_accesses()) *
               params.seconds_per_page_access +
           static_cast<double>(bytes_read()) * params.seconds_per_byte;
  }

  void Reset() {
    page_accesses_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  IoStats& operator+=(const IoStats& o) {
    AddPageAccesses(o.page_accesses());
    AddBytesRead(o.bytes_read());
    return *this;
  }

 private:
  std::atomic<size_t> page_accesses_{0};
  std::atomic<size_t> bytes_read_{0};
};

}  // namespace vsim

#endif  // VSIM_INDEX_IO_STATS_H_
