#include "vsim/index/xtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace vsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double BoxVolumeNormalized(const FeatureVector& lo, const FeatureVector& hi,
                           const FeatureVector& ref_lo,
                           const FeatureVector& ref_hi) {
  // Product over dimensions of extent / reference extent, skipping
  // dimensions where the reference is degenerate. Robust proxy for
  // volume in high dimensions where exact volumes collapse to zero.
  double v = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    const double ref = ref_hi[d] - ref_lo[d];
    if (ref <= 0.0) continue;
    v *= std::max(0.0, (hi[d] - lo[d]) / ref);
  }
  return v;
}

double BoxMargin(const FeatureVector& lo, const FeatureVector& hi) {
  double m = 0.0;
  for (size_t d = 0; d < lo.size(); ++d) m += hi[d] - lo[d];
  return m;
}

void ExtendBox(FeatureVector* lo, FeatureVector* hi, const FeatureVector& elo,
               const FeatureVector& ehi) {
  for (size_t d = 0; d < lo->size(); ++d) {
    (*lo)[d] = std::min((*lo)[d], elo[d]);
    (*hi)[d] = std::max((*hi)[d], ehi[d]);
  }
}

double AreaEnlargement(const FeatureVector& lo, const FeatureVector& hi,
                       const FeatureVector& elo, const FeatureVector& ehi) {
  // Margin-based enlargement: how much the box boundary has to grow.
  // (Volume-based enlargement degenerates in high dimensions.)
  double grow = 0.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    grow += std::max(0.0, lo[d] - elo[d]) + std::max(0.0, ehi[d] - hi[d]);
  }
  return grow;
}

}  // namespace

XTree::XTree(int dim, XTreeOptions options)
    : dim_(dim), options_(options) {
  nodes_.push_back(Node{});  // empty leaf root
}

size_t XTree::LeafCapacity() const {
  const size_t entry = static_cast<size_t>(dim_) * sizeof(double) + sizeof(int);
  return std::max<size_t>(2, options_.page_size_bytes / entry);
}

size_t XTree::InternalCapacity() const {
  const size_t entry =
      2 * static_cast<size_t>(dim_) * sizeof(double) + sizeof(int);
  return std::max<size_t>(2, options_.page_size_bytes / entry);
}

size_t XTree::NodeCapacity(const Node& node) const {
  return (node.leaf ? LeafCapacity() : InternalCapacity()) *
         static_cast<size_t>(node.supernode_multiple);
}

size_t XTree::NodePages(const Node& node) const {
  return static_cast<size_t>(node.supernode_multiple);
}

size_t XTree::NodeBytes(const Node& node) const {
  const size_t entry = node.leaf
                           ? static_cast<size_t>(dim_) * sizeof(double) + sizeof(int)
                           : 2 * static_cast<size_t>(dim_) * sizeof(double) + sizeof(int);
  return node.entries.size() * entry;
}

void XTree::ChargeVisit(int node_index, IoStats* stats) const {
  if (stats == nullptr) return;
  const Node& node = nodes_[node_index];
  stats->AddPageAccesses(NodePages(node));
  stats->AddBytesRead(NodeBytes(node));
}

XTree::Entry XTree::NodeEntry(int node_index) const {
  const Node& node = nodes_[node_index];
  assert(!node.entries.empty());
  Entry e;
  e.child = node_index;
  e.lo = node.entries.front().lo;
  e.hi = node.entries.front().hi;
  for (const Entry& child : node.entries) {
    ExtendBox(&e.lo, &e.hi, child.lo, child.hi);
  }
  return e;
}

int XTree::ChooseSubtree(const Node& node, const Entry& entry) const {
  // R*-style: minimize margin enlargement, tie-break on smaller margin.
  int best = 0;
  double best_grow = kInf, best_margin = kInf;
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Entry& e = node.entries[i];
    const double grow = AreaEnlargement(e.lo, e.hi, entry.lo, entry.hi);
    const double margin = BoxMargin(e.lo, e.hi);
    if (grow < best_grow ||
        (grow == best_grow && margin < best_margin)) {
      best = static_cast<int>(i);
      best_grow = grow;
      best_margin = margin;
    }
  }
  return best;
}

Status XTree::Insert(const FeatureVector& point, int id) {
  if (static_cast<int>(point.size()) != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  Entry entry;
  entry.lo = point;
  entry.hi = point;
  entry.id = id;

  // Descend to a leaf, remembering the path.
  std::vector<int> path;
  int current = root_;
  for (;;) {
    path.push_back(current);
    Node& node = nodes_[current];
    if (node.leaf) break;
    const int slot = ChooseSubtree(node, entry);
    // Pre-extend the child MBR so ancestors stay consistent.
    ExtendBox(&node.entries[slot].lo, &node.entries[slot].hi, entry.lo,
              entry.hi);
    current = node.entries[slot].child;
  }
  nodes_[current].entries.push_back(std::move(entry));
  ++count_;
  HandleOverflow(path);
  return Status::OK();
}

void XTree::HandleOverflow(std::vector<int>& path) {
  // Walk from the leaf upward, splitting overflowing nodes.
  for (int level = static_cast<int>(path.size()) - 1; level >= 0; --level) {
    const int node_index = path[level];
    if (nodes_[node_index].entries.size() <= NodeCapacity(nodes_[node_index])) {
      continue;
    }
    Node left, right;
    if (!SplitNode(node_index, &left, &right)) {
      continue;  // became a supernode; no structural change
    }
    // Install the two halves. Reuse node_index for the left half.
    const int left_index = node_index;
    nodes_[left_index] = std::move(left);
    nodes_.push_back(std::move(right));
    const int right_index = static_cast<int>(nodes_.size()) - 1;

    if (level == 0) {
      // Split the root: create a fresh root above.
      Node new_root;
      new_root.leaf = false;
      new_root.entries.push_back(NodeEntry(left_index));
      new_root.entries.push_back(NodeEntry(right_index));
      nodes_.push_back(std::move(new_root));
      root_ = static_cast<int>(nodes_.size()) - 1;
      return;
    }
    // Update the parent: refresh the left child's entry, add the right.
    Node& parent = nodes_[path[level - 1]];
    for (Entry& e : parent.entries) {
      if (e.child == left_index) {
        const Entry refreshed = NodeEntry(left_index);
        e.lo = refreshed.lo;
        e.hi = refreshed.hi;
        break;
      }
    }
    parent.entries.push_back(NodeEntry(right_index));
    // Loop continues upward and handles the parent's overflow, if any.
  }
}

bool XTree::SplitNode(int node_index, Node* left_out, Node* right_out) {
  Node& node = nodes_[node_index];
  std::vector<Entry>& entries = node.entries;
  const size_t n = entries.size();
  const size_t min_fill = std::max<size_t>(1, n * 2 / 5);  // R* 40%

  // --- R* topological split ---------------------------------------
  // Choose the axis with minimal sum of margins over all distributions,
  // then the distribution with minimal overlap (normalized volume).
  FeatureVector all_lo = entries.front().lo, all_hi = entries.front().hi;
  for (const Entry& e : entries) ExtendBox(&all_lo, &all_hi, e.lo, e.hi);

  int best_axis = -1;
  double best_axis_margin = kInf;
  for (int axis = 0; axis < dim_; ++axis) {
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (entries[a].lo[axis] != entries[b].lo[axis]) {
        return entries[a].lo[axis] < entries[b].lo[axis];
      }
      return entries[a].hi[axis] < entries[b].hi[axis];
    });
    double margin_sum = 0.0;
    for (size_t k = min_fill; k <= n - min_fill; ++k) {
      FeatureVector llo = entries[order[0]].lo, lhi = entries[order[0]].hi;
      for (size_t i = 1; i < k; ++i) {
        ExtendBox(&llo, &lhi, entries[order[i]].lo, entries[order[i]].hi);
      }
      FeatureVector rlo = entries[order[k]].lo, rhi = entries[order[k]].hi;
      for (size_t i = k + 1; i < n; ++i) {
        ExtendBox(&rlo, &rhi, entries[order[i]].lo, entries[order[i]].hi);
      }
      margin_sum += BoxMargin(llo, lhi) + BoxMargin(rlo, rhi);
    }
    if (margin_sum < best_axis_margin) {
      best_axis_margin = margin_sum;
      best_axis = axis;
    }
  }

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (entries[a].lo[best_axis] != entries[b].lo[best_axis]) {
      return entries[a].lo[best_axis] < entries[b].lo[best_axis];
    }
    return entries[a].hi[best_axis] < entries[b].hi[best_axis];
  });

  size_t best_k = min_fill;
  double best_overlap = kInf, best_area = kInf;
  for (size_t k = min_fill; k <= n - min_fill; ++k) {
    FeatureVector llo = entries[order[0]].lo, lhi = entries[order[0]].hi;
    for (size_t i = 1; i < k; ++i) {
      ExtendBox(&llo, &lhi, entries[order[i]].lo, entries[order[i]].hi);
    }
    FeatureVector rlo = entries[order[k]].lo, rhi = entries[order[k]].hi;
    for (size_t i = k + 1; i < n; ++i) {
      ExtendBox(&rlo, &rhi, entries[order[i]].lo, entries[order[i]].hi);
    }
    // Intersection box.
    FeatureVector ilo(dim_), ihi(dim_);
    bool empty = false;
    for (int d = 0; d < dim_; ++d) {
      ilo[d] = std::max(llo[d], rlo[d]);
      ihi[d] = std::min(lhi[d], rhi[d]);
      if (ilo[d] > ihi[d]) empty = true;
    }
    const double overlap =
        empty ? 0.0 : BoxVolumeNormalized(ilo, ihi, all_lo, all_hi);
    const double area = BoxVolumeNormalized(llo, lhi, all_lo, all_hi) +
                        BoxVolumeNormalized(rlo, rhi, all_lo, all_hi);
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  int split_axis = best_axis;
  size_t split_k = best_k;

  if (best_overlap > options_.max_overlap) {
    // --- Overlap-minimal split (X-tree) ---------------------------
    // Look for an axis permitting an overlap-free partition; prefer
    // axes from the node's split history (their grouping tends to be
    // separable), then the rest.
    int free_axis = -1;
    size_t free_k = 0;
    double free_balance = -1.0;
    for (int pass = 0; pass < 2 && free_axis < 0; ++pass) {
      for (int axis = 0; axis < dim_; ++axis) {
        const bool in_history = (node.split_dims >> (axis % 64)) & 1;
        if ((pass == 0) != in_history) continue;
        std::vector<int> ord(n);
        std::iota(ord.begin(), ord.end(), 0);
        std::sort(ord.begin(), ord.end(), [&](int a, int b) {
          return entries[a].lo[axis] < entries[b].lo[axis];
        });
        // Prefix max of hi values.
        double prefix_hi = -kInf;
        for (size_t k = 1; k < n; ++k) {
          prefix_hi = std::max(prefix_hi, entries[ord[k - 1]].hi[axis]);
          if (prefix_hi <= entries[ord[k]].lo[axis]) {
            const double balance =
                static_cast<double>(std::min(k, n - k)) / n;
            if (balance > free_balance) {
              free_balance = balance;
              free_axis = axis;
              free_k = k;
            }
          }
        }
      }
    }
    if (free_axis >= 0 && free_balance >= options_.min_fanout * 0.5) {
      split_axis = free_axis;
      split_k = free_k;
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return entries[a].lo[split_axis] < entries[b].lo[split_axis];
      });
    } else {
      // --- Supernode ----------------------------------------------
      node.supernode_multiple += 1;
      return false;
    }
  }

  left_out->leaf = node.leaf;
  right_out->leaf = node.leaf;
  left_out->split_dims = node.split_dims | (1ull << (split_axis % 64));
  right_out->split_dims = left_out->split_dims;
  for (size_t i = 0; i < n; ++i) {
    (i < split_k ? left_out : right_out)
        ->entries.push_back(std::move(entries[order[i]]));
  }
  return true;
}

Status XTree::BulkLoad(const std::vector<FeatureVector>& points,
                       const std::vector<int>& ids) {
  if (count_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  if (points.size() != ids.size()) {
    return Status::InvalidArgument("points/ids size mismatch");
  }
  for (const FeatureVector& p : points) {
    if (static_cast<int>(p.size()) != dim_) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  if (points.empty()) return Status::OK();

  nodes_.clear();

  // Pack leaves by recursive widest-dimension median splits until each
  // chunk fits in a (90%-full) leaf: spatially tight, order-coherent.
  const size_t leaf_target = std::max<size_t>(2, LeafCapacity() * 9 / 10);
  std::vector<int> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> leaf_nodes;

  struct Range {
    size_t begin, end;
  };
  std::vector<Range> stack{{0, points.size()}};
  // Depth-first so that consecutive leaves stay spatially adjacent.
  while (!stack.empty()) {
    const Range range = stack.back();
    stack.pop_back();
    const size_t n = range.end - range.begin;
    if (n <= leaf_target) {
      Node leaf;
      leaf.leaf = true;
      for (size_t i = range.begin; i < range.end; ++i) {
        Entry e;
        e.lo = points[order[i]];
        e.hi = points[order[i]];
        e.id = ids[order[i]];
        leaf.entries.push_back(std::move(e));
      }
      nodes_.push_back(std::move(leaf));
      leaf_nodes.push_back(static_cast<int>(nodes_.size()) - 1);
      continue;
    }
    // Split along the widest dimension at the median.
    int axis = 0;
    double best_extent = -1.0;
    for (int d = 0; d < dim_; ++d) {
      double lo = points[order[range.begin]][d], hi = lo;
      for (size_t i = range.begin; i < range.end; ++i) {
        lo = std::min(lo, points[order[i]][d]);
        hi = std::max(hi, points[order[i]][d]);
      }
      if (hi - lo > best_extent) {
        best_extent = hi - lo;
        axis = d;
      }
    }
    // Split at a multiple of the leaf target so leaves pack (nearly)
    // full instead of the ~65% a plain median recursion would leave.
    const size_t leaves = (n + leaf_target - 1) / leaf_target;
    const size_t mid = range.begin + (leaves / 2) * leaf_target;
    std::nth_element(order.begin() + range.begin, order.begin() + mid,
                     order.begin() + range.end, [&](int a, int b) {
                       return points[a][axis] < points[b][axis];
                     });
    // Push right first so the left half is processed next (DFS order).
    stack.push_back({mid, range.end});
    stack.push_back({range.begin, mid});
  }

  // Build internal levels by grouping consecutive children.
  std::vector<int> level = std::move(leaf_nodes);
  const size_t fanout = std::max<size_t>(2, InternalCapacity() * 9 / 10);
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t begin = 0; begin < level.size(); begin += fanout) {
      const size_t end = std::min(level.size(), begin + fanout);
      Node parent;
      parent.leaf = false;
      for (size_t i = begin; i < end; ++i) {
        parent.entries.push_back(NodeEntry(level[i]));
      }
      nodes_.push_back(std::move(parent));
      next.push_back(static_cast<int>(nodes_.size()) - 1);
    }
    level = std::move(next);
  }
  root_ = level.front();
  count_ = points.size();
  return Status::OK();
}

double XTree::MinDistToBox(const FeatureVector& q, const Entry& e) const {
  double sum = 0.0;
  for (int d = 0; d < dim_; ++d) {
    const double below = e.lo[d] - q[d];
    const double above = q[d] - e.hi[d];
    const double delta = std::max({below, above, 0.0});
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

void XTree::RangeRecursive(int node_index, const FeatureVector& query,
                           double eps, IoStats* stats,
                           std::vector<int>* out) const {
  ChargeVisit(node_index, stats);
  const Node& node = nodes_[node_index];
  for (const Entry& e : node.entries) {
    if (MinDistToBox(query, e) > eps) continue;
    if (node.leaf) {
      out->push_back(e.id);
    } else {
      RangeRecursive(e.child, query, eps, stats, out);
    }
  }
}

std::vector<int> XTree::RangeQuery(const FeatureVector& query, double eps,
                                   IoStats* stats) const {
  std::vector<int> out;
  if (count_ == 0) return out;
  RangeRecursive(root_, query, eps, stats, &out);
  return out;
}

XTree::RankingCursor::RankingCursor(const XTree* tree, FeatureVector query,
                                    IoStats* stats)
    : tree_(tree), query_(std::move(query)), stats_(stats) {
  if (tree_->count_ > 0) {
    heap_.push(QueueItem{0.0, tree_->root_, -1});
  }
}

void XTree::RankingCursor::Settle() {
  while (!heap_.empty() && heap_.top().node >= 0) {
    const QueueItem item = heap_.top();
    heap_.pop();
    tree_->ChargeVisit(item.node, stats_);
    const Node& node = tree_->nodes_[item.node];
    for (const Entry& e : node.entries) {
      const double d = tree_->MinDistToBox(query_, e);
      heap_.push(node.leaf ? QueueItem{d, -1, e.id}
                           : QueueItem{d, e.child, -1});
    }
  }
}

bool XTree::RankingCursor::HasNext() {
  Settle();
  return !heap_.empty();
}

double XTree::RankingCursor::NextDistance() {
  Settle();
  return heap_.empty() ? kInf : heap_.top().distance;
}

Neighbor XTree::RankingCursor::Next() {
  Settle();
  assert(!heap_.empty());
  const QueueItem item = heap_.top();
  heap_.pop();
  return Neighbor{item.id, item.distance};
}

XTree::RankingCursor XTree::Rank(const FeatureVector& query,
                                 IoStats* stats) const {
  return RankingCursor(this, query, stats);
}

std::vector<Neighbor> XTree::KnnQuery(const FeatureVector& query, int k,
                                      IoStats* stats) const {
  std::vector<Neighbor> result;
  RankingCursor cursor = Rank(query, stats);
  while (static_cast<int>(result.size()) < k && cursor.HasNext()) {
    result.push_back(cursor.Next());
  }
  return result;
}

Status XTree::Validate() const {
  if (count_ == 0) return Status::OK();
  size_t reachable = 0;
  int leaf_depth = -1;
  // (node, depth, box from the parent entry; root has no parent box)
  struct Item {
    int node;
    int depth;
    bool has_box;
    FeatureVector lo, hi;
  };
  std::vector<Item> stack{{root_, 1, false, {}, {}}};
  while (!stack.empty()) {
    const Item item = std::move(stack.back());
    stack.pop_back();
    const Node& node = nodes_[item.node];
    if (node.entries.empty()) {
      return Status::Internal("empty node " + std::to_string(item.node));
    }
    if (node.entries.size() > NodeCapacity(node)) {
      return Status::Internal("node " + std::to_string(item.node) +
                              " exceeds its capacity");
    }
    for (const Entry& e : node.entries) {
      if (item.has_box) {
        for (int d = 0; d < dim_; ++d) {
          if (e.lo[d] < item.lo[d] - 1e-12 || e.hi[d] > item.hi[d] + 1e-12) {
            return Status::Internal("entry box escapes parent box in node " +
                                    std::to_string(item.node));
          }
        }
      }
      if (node.leaf) {
        ++reachable;
        for (int d = 0; d < dim_; ++d) {
          if (e.lo[d] != e.hi[d]) {
            return Status::Internal("leaf entry is not a point");
          }
        }
      } else {
        stack.push_back({e.child, item.depth + 1, true, e.lo, e.hi});
      }
    }
    if (node.leaf) {
      if (leaf_depth == -1) leaf_depth = item.depth;
      if (leaf_depth != item.depth) {
        return Status::Internal("leaves at different depths");
      }
    }
  }
  if (reachable != count_) {
    return Status::Internal("reachable points " + std::to_string(reachable) +
                            " != size " + std::to_string(count_));
  }
  return Status::OK();
}

int XTree::height() const {
  int h = 1;
  int current = root_;
  while (!nodes_[current].leaf) {
    ++h;
    current = nodes_[current].entries.front().child;
  }
  return h;
}

size_t XTree::supernode_count() const {
  size_t n = 0;
  for (const Node& node : nodes_) n += node.supernode_multiple > 1 ? 1 : 0;
  return n;
}

size_t XTree::total_pages() const {
  size_t pages = 0;
  for (const Node& node : nodes_) pages += NodePages(node);
  return pages;
}

}  // namespace vsim
