// M-tree (Ciaccia, Patella, Zezula, VLDB'97): a paged, balanced index
// for metric spaces. Section 4.3 of the paper names it as the direct
// way to index vector sets, because the minimal matching distance is a
// metric. This implementation is generic over the object type and
// metric, and is instantiated with VectorSet + minimal matching
// distance by the query engine.
//
// Split policy: mM_RAD promotion (the pair of promoted pivots that
// minimizes the larger covering radius) with generalized-hyperplane
// partitioning. Queries prune with the covering radii and count both
// simulated I/O and metric distance evaluations.
#ifndef VSIM_INDEX_MTREE_H_
#define VSIM_INDEX_MTREE_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "vsim/index/io_stats.h"
#include "vsim/index/xtree.h"  // for Neighbor

namespace vsim {

struct MTreeOptions {
  size_t node_capacity = 16;
  // Simulated storage size of one object (for I/O accounting).
  size_t object_bytes = 336;
  size_t page_size_bytes = 4096;
};

template <typename T>
class MTree {
 public:
  using DistanceFn = std::function<double(const T&, const T&)>;

  explicit MTree(DistanceFn distance, MTreeOptions options = {})
      : distance_(std::move(distance)), options_(options) {
    nodes_.push_back(Node{});
  }

  MTree(const MTree&) = delete;
  MTree& operator=(const MTree&) = delete;

  void Insert(T object, int id) {
    Entry entry;
    entry.object = std::move(object);
    entry.id = id;
    entry.radius = 0.0;
    entry.child = -1;

    std::vector<int> path;
    int current = root_;
    for (;;) {
      path.push_back(current);
      Node& node = nodes_[current];
      if (node.leaf) break;
      current = ChooseSubtree(&node, entry.object);
    }
    nodes_[current].entries.push_back(std::move(entry));
    ++count_;
    HandleOverflow(path);
  }

  size_t size() const { return count_; }
  size_t node_count() const { return nodes_.size(); }

  int height() const {
    int h = 1;
    int current = root_;
    while (!nodes_[current].leaf) {
      ++h;
      current = nodes_[current].entries.front().child;
    }
    return h;
  }

  // Structural invariant check (test aid): every routing entry's
  // covering radius bounds the distance from its pivot to every data
  // object in its subtree. O(n * height) distance evaluations.
  Status Validate() const {
    if (count_ == 0) return Status::OK();
    std::vector<const T*> all;
    return ValidateRecursive(root_, &all);
  }

  // All ids within distance `eps` of `query`.
  std::vector<int> RangeQuery(const T& query, double eps,
                              IoStats* stats = nullptr,
                              size_t* distance_evals = nullptr) const {
    std::vector<int> out;
    if (count_ == 0) return out;
    size_t evals = 0;
    RangeRecursive(root_, query, eps, stats, &evals, &out);
    if (distance_evals != nullptr) *distance_evals = evals;
    return out;
  }

  // k nearest ids, ascending by distance (best-first search with
  // covering-radius lower bounds).
  std::vector<Neighbor> KnnQuery(const T& query, int k,
                                 IoStats* stats = nullptr,
                                 size_t* distance_evals = nullptr) const {
    std::vector<Neighbor> result;
    if (count_ == 0 || k <= 0) return result;
    size_t evals = 0;

    struct Item {
      double bound;  // lower bound on distances below this item
      int node;      // -1 for object items
      int id;
      double distance;  // exact distance for object items
      bool operator<(const Item& o) const { return bound > o.bound; }
    };
    std::priority_queue<Item> heap;
    heap.push({0.0, root_, -1, 0.0});
    while (!heap.empty() && static_cast<int>(result.size()) < k) {
      const Item item = heap.top();
      heap.pop();
      if (item.node < 0) {
        result.push_back({item.id, item.distance});
        continue;
      }
      ChargeVisit(item.node, stats);
      const Node& node = nodes_[item.node];
      for (const Entry& e : node.entries) {
        const double d = distance_(query, e.object);
        ++evals;
        if (node.leaf) {
          heap.push({d, -1, e.id, d});
        } else {
          heap.push({std::max(0.0, d - e.radius), e.child, -1, 0.0});
        }
      }
    }
    if (distance_evals != nullptr) *distance_evals = evals;
    return result;
  }

 private:
  struct Entry {
    T object;            // pivot (internal) or data object (leaf)
    int id = -1;         // object id (leaf)
    double radius = 0.0;  // covering radius (internal)
    int child = -1;       // child node (internal)
  };

  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  void ChargeVisit(int node_index, IoStats* stats) const {
    if (stats == nullptr) return;
    const Node& node = nodes_[node_index];
    const size_t entry_bytes =
        options_.object_bytes + (node.leaf ? sizeof(int) : 2 * sizeof(double));
    const size_t bytes = node.entries.size() * entry_bytes;
    stats->AddPageAccesses(
        std::max<size_t>(1, (bytes + options_.page_size_bytes - 1) /
                                options_.page_size_bytes));
    stats->AddBytesRead(bytes);
  }

  int ChooseSubtree(Node* node, const T& object) {
    // Prefer a pivot whose radius already covers the object; otherwise
    // the one needing the least radius growth.
    int best = -1;
    double best_key = std::numeric_limits<double>::infinity();
    bool best_covers = false;
    std::vector<double> dist(node->entries.size());
    for (size_t i = 0; i < node->entries.size(); ++i) {
      dist[i] = distance_(object, node->entries[i].object);
      const bool covers = dist[i] <= node->entries[i].radius;
      const double key = covers ? dist[i] : dist[i] - node->entries[i].radius;
      if ((covers && !best_covers) ||
          (covers == best_covers && key < best_key)) {
        best = static_cast<int>(i);
        best_key = key;
        best_covers = covers;
      }
    }
    assert(best >= 0);
    Entry& chosen = node->entries[best];
    chosen.radius = std::max(chosen.radius, dist[best]);
    return chosen.child;
  }

  void HandleOverflow(std::vector<int>& path) {
    for (int level = static_cast<int>(path.size()) - 1; level >= 0; --level) {
      const int node_index = path[level];
      if (nodes_[node_index].entries.size() <= options_.node_capacity) {
        continue;
      }
      // --- mM_RAD promotion --------------------------------------
      std::vector<Entry> entries = std::move(nodes_[node_index].entries);
      const bool was_leaf = nodes_[node_index].leaf;
      const size_t n = entries.size();
      std::vector<double> d(n * n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          d[i * n + j] = d[j * n + i] =
              distance_(entries[i].object, entries[j].object);
        }
      }
      size_t p1 = 0, p2 = 1;
      double best_mm = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          // Generalized hyperplane: each entry goes to the closer pivot.
          double r1 = 0.0, r2 = 0.0;
          for (size_t e = 0; e < n; ++e) {
            const double child_extent =
                entries[e].child >= 0 ? entries[e].radius : 0.0;
            if (d[i * n + e] <= d[j * n + e]) {
              r1 = std::max(r1, d[i * n + e] + child_extent);
            } else {
              r2 = std::max(r2, d[j * n + e] + child_extent);
            }
          }
          const double mm = std::max(r1, r2);
          if (mm < best_mm) {
            best_mm = mm;
            p1 = i;
            p2 = j;
          }
        }
      }
      // Partition.
      Node left, right;
      left.leaf = right.leaf = was_leaf;
      double r1 = 0.0, r2 = 0.0;
      T pivot1 = entries[p1].object;
      T pivot2 = entries[p2].object;
      for (size_t e = 0; e < n; ++e) {
        const double child_extent =
            entries[e].child >= 0 ? entries[e].radius : 0.0;
        if (d[p1 * n + e] <= d[p2 * n + e]) {
          r1 = std::max(r1, d[p1 * n + e] + child_extent);
          left.entries.push_back(std::move(entries[e]));
        } else {
          r2 = std::max(r2, d[p2 * n + e] + child_extent);
          right.entries.push_back(std::move(entries[e]));
        }
      }
      const int left_index = node_index;
      nodes_[left_index] = std::move(left);
      nodes_.push_back(std::move(right));
      const int right_index = static_cast<int>(nodes_.size()) - 1;

      Entry left_entry;
      left_entry.object = std::move(pivot1);
      left_entry.radius = r1;
      left_entry.child = left_index;
      Entry right_entry;
      right_entry.object = std::move(pivot2);
      right_entry.radius = r2;
      right_entry.child = right_index;

      if (level == 0) {
        Node new_root;
        new_root.leaf = false;
        new_root.entries.push_back(std::move(left_entry));
        new_root.entries.push_back(std::move(right_entry));
        nodes_.push_back(std::move(new_root));
        root_ = static_cast<int>(nodes_.size()) - 1;
        return;
      }
      Node& parent = nodes_[path[level - 1]];
      for (Entry& e : parent.entries) {
        if (e.child == left_index) {
          e = std::move(left_entry);
          break;
        }
      }
      parent.entries.push_back(std::move(right_entry));
    }
  }

  // Returns the data objects under `node_index` in `*objects` and
  // verifies covering radii along the way.
  Status ValidateRecursive(int node_index, std::vector<const T*>* objects) const {
    const Node& node = nodes_[node_index];
    if (node.entries.empty()) {
      return Status::Internal("empty M-tree node");
    }
    if (node.entries.size() > options_.node_capacity) {
      return Status::Internal("M-tree node exceeds capacity");
    }
    if (node.leaf) {
      for (const Entry& e : node.entries) objects->push_back(&e.object);
      return Status::OK();
    }
    for (const Entry& e : node.entries) {
      std::vector<const T*> subtree;
      VSIM_RETURN_NOT_OK(ValidateRecursive(e.child, &subtree));
      for (const T* obj : subtree) {
        if (distance_(e.object, *obj) > e.radius + 1e-9) {
          return Status::Internal("covering radius violated");
        }
      }
      objects->insert(objects->end(), subtree.begin(), subtree.end());
    }
    return Status::OK();
  }

  void RangeRecursive(int node_index, const T& query, double eps,
                      IoStats* stats, size_t* evals,
                      std::vector<int>* out) const {
    ChargeVisit(node_index, stats);
    const Node& node = nodes_[node_index];
    for (const Entry& e : node.entries) {
      const double d = distance_(query, e.object);
      ++*evals;
      if (node.leaf) {
        if (d <= eps) out->push_back(e.id);
      } else if (d <= eps + e.radius) {
        RangeRecursive(e.child, query, eps, stats, evals, out);
      }
    }
  }

  DistanceFn distance_;
  MTreeOptions options_;
  std::vector<Node> nodes_;
  int root_ = 0;
  size_t count_ = 0;
};

}  // namespace vsim

#endif  // VSIM_INDEX_MTREE_H_
