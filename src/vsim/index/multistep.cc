#include "vsim/index/multistep.h"

#include <algorithm>
#include <limits>

#include "vsim/common/stopwatch.h"

namespace vsim {

std::vector<Neighbor> MultiStepKnn(const XTree& filter_index,
                                   const FeatureVector& filter_query,
                                   double filter_scale, int k,
                                   const ExactDistanceFn& exact_distance,
                                   IoStats* stats, MultiStepStats* msstats) {
  // Max-heap of the k best exact distances seen so far.
  std::vector<Neighbor> best;  // kept heapified, largest distance on top
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  };
  XTree::RankingCursor cursor = filter_index.Rank(filter_query, stats);
  MultiStepStats local;
  while (cursor.HasNext()) {
    const double next_bound = cursor.NextDistance() * filter_scale;
    if (static_cast<int>(best.size()) == k &&
        next_bound > best.front().distance) {
      break;  // optimal stopping condition (Seidl & Kriegel)
    }
    const Neighbor candidate = cursor.Next();
    ++local.filter_hits;
    Stopwatch refine_watch;
    const double exact = exact_distance(candidate.id, stats);
    local.refine_seconds += refine_watch.ElapsedSeconds();
    ++local.candidates_refined;
    if (static_cast<int>(best.size()) < k) {
      best.push_back({candidate.id, exact});
      std::push_heap(best.begin(), best.end(), cmp);
    } else if (exact < best.front().distance) {
      std::pop_heap(best.begin(), best.end(), cmp);
      best.back() = {candidate.id, exact};
      std::push_heap(best.begin(), best.end(), cmp);
    }
  }
  std::sort_heap(best.begin(), best.end(), cmp);
  if (msstats != nullptr) *msstats = local;
  return best;
}

std::vector<int> MultiStepRange(const XTree& filter_index,
                                const FeatureVector& filter_query,
                                double filter_scale, double eps,
                                const ExactDistanceFn& exact_distance,
                                IoStats* stats, MultiStepStats* msstats) {
  const std::vector<int> candidates =
      filter_index.RangeQuery(filter_query, eps / filter_scale, stats);
  MultiStepStats local;
  local.filter_hits = candidates.size();
  std::vector<int> result;
  for (int id : candidates) {
    Stopwatch refine_watch;
    const double exact = exact_distance(id, stats);
    local.refine_seconds += refine_watch.ElapsedSeconds();
    ++local.candidates_refined;
    if (exact <= eps) result.push_back(id);
  }
  if (msstats != nullptr) *msstats = local;
  return result;
}

std::vector<Neighbor> SortedBoundKnn(
    const std::vector<BoundedCandidate>& candidates, int k,
    const ExactDistanceFn& exact_distance, IoStats* stats,
    MultiStepStats* msstats) {
  std::vector<Neighbor> best;  // kept heapified, largest distance on top
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  };
  MultiStepStats local;
  for (const BoundedCandidate& candidate : candidates) {
    if (static_cast<int>(best.size()) == k &&
        candidate.bound > best.front().distance) {
      break;  // optimal stopping condition (Seidl & Kriegel)
    }
    ++local.filter_hits;
    Stopwatch refine_watch;
    const double exact = exact_distance(candidate.id, stats);
    local.refine_seconds += refine_watch.ElapsedSeconds();
    ++local.candidates_refined;
    if (static_cast<int>(best.size()) < k) {
      best.push_back({candidate.id, exact});
      std::push_heap(best.begin(), best.end(), cmp);
    } else if (exact < best.front().distance) {
      std::pop_heap(best.begin(), best.end(), cmp);
      best.back() = {candidate.id, exact};
      std::push_heap(best.begin(), best.end(), cmp);
    }
  }
  std::sort_heap(best.begin(), best.end(), cmp);
  if (msstats != nullptr) *msstats = local;
  return best;
}

std::vector<int> BoundedRange(const std::vector<BoundedCandidate>& candidates,
                              double eps,
                              const ExactDistanceFn& exact_distance,
                              IoStats* stats, MultiStepStats* msstats) {
  MultiStepStats local;
  std::vector<int> result;
  for (const BoundedCandidate& candidate : candidates) {
    if (candidate.bound > eps) continue;
    ++local.filter_hits;
    Stopwatch refine_watch;
    const double exact = exact_distance(candidate.id, stats);
    local.refine_seconds += refine_watch.ElapsedSeconds();
    ++local.candidates_refined;
    if (exact <= eps) result.push_back(candidate.id);
  }
  if (msstats != nullptr) *msstats = local;
  return result;
}

namespace {

void ChargeSequentialScan(size_t scan_bytes, size_t page_size,
                          IoStats* stats) {
  if (stats == nullptr) return;
  stats->AddPageAccesses((scan_bytes + page_size - 1) / page_size);
  stats->AddBytesRead(scan_bytes);
}

}  // namespace

std::vector<Neighbor> ScanKnn(int count, int k, size_t scan_bytes,
                              size_t page_size,
                              const ExactDistanceFn& exact_distance,
                              IoStats* stats) {
  ChargeSequentialScan(scan_bytes, page_size, stats);
  std::vector<Neighbor> all;
  all.reserve(count);
  for (int id = 0; id < count; ++id) {
    // Object bytes already charged by the sequential read: pass no
    // stats to the distance evaluation.
    all.push_back({id, exact_distance(id, nullptr)});
  }
  const int kk = std::min<int>(k, count);
  std::partial_sort(all.begin(), all.begin() + kk, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });
  all.resize(kk);
  return all;
}

std::vector<int> ScanRange(int count, double eps, size_t scan_bytes,
                           size_t page_size,
                           const ExactDistanceFn& exact_distance,
                           IoStats* stats) {
  ChargeSequentialScan(scan_bytes, page_size, stats);
  std::vector<int> result;
  for (int id = 0; id < count; ++id) {
    if (exact_distance(id, nullptr) <= eps) result.push_back(id);
  }
  return result;
}

}  // namespace vsim
