// Vector-Approximation file (Weber, Schek, Blott; VLDB'98): every point
// is quantized to `bits_per_dim` bits per dimension, and queries scan
// the compact approximation file sequentially, computing per-point
// lower bounds that prune most exact-vector fetches. Quantization-based
// scans are the classic alternative to R-tree descendants in high
// dimensions -- the IQ-tree cited by the paper (Berchtold et al., ICDE
// 2000) combines this idea with a tree directory.
//
// Like the X-tree here, the structure lives in memory and *charges*
// simulated I/O: the approximation file is read sequentially, candidate
// vectors are fetched with one random page access each.
#ifndef VSIM_INDEX_VAFILE_H_
#define VSIM_INDEX_VAFILE_H_

#include <cstdint>
#include <vector>

#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"
#include "vsim/index/io_stats.h"
#include "vsim/index/multistep.h"
#include "vsim/index/xtree.h"  // Neighbor

namespace vsim {

struct VaFileOptions {
  int bits_per_dim = 4;  // 2^bits cells per dimension (1..8)
  size_t page_size_bytes = 4096;
};

class VaFile {
 public:
  explicit VaFile(int dim, VaFileOptions options = {});

  // Builds the approximation file over the point set (replaces any
  // previous contents). Quantization cells are equi-width between the
  // per-dimension min/max of the data.
  Status Build(const std::vector<FeatureVector>& points,
               const std::vector<int>& ids);

  size_t size() const { return ids_.size(); }

  // Exact queries on the stored points (approximation scan + refine).
  std::vector<int> RangeQuery(const FeatureVector& query, double eps,
                              IoStats* stats = nullptr,
                              size_t* refined = nullptr) const;
  std::vector<Neighbor> KnnQuery(const FeatureVector& query, int k,
                                 IoStats* stats = nullptr,
                                 size_t* refined = nullptr) const;

  // Filter-and-refine against an *external* exact distance (e.g. the
  // minimal matching distance with the stored points being extended
  // centroids): `filter_scale` * (Euclidean lower bound from the
  // approximation) must lower-bound `exact_distance`. Optimal stopping
  // as in Seidl & Kriegel.
  std::vector<Neighbor> MultiStepKnn(const FeatureVector& query,
                                     double filter_scale, int k,
                                     const ExactDistanceFn& exact_distance,
                                     IoStats* stats = nullptr,
                                     size_t* refined = nullptr) const;
  std::vector<int> MultiStepRange(const FeatureVector& query,
                                  double filter_scale, double eps,
                                  const ExactDistanceFn& exact_distance,
                                  IoStats* stats = nullptr,
                                  size_t* refined = nullptr) const;

  // Bytes of one approximation record / of the whole approximation file
  // (what a query reads sequentially).
  size_t ApproximationBytes() const;

 private:
  // Squared Euclidean lower bound between `query` and the cell box of
  // approximation record `index`.
  double SquaredLowerBound(const FeatureVector& query, size_t index) const;

  void ChargeApproximationScan(IoStats* stats) const;
  void ChargeVectorFetch(IoStats* stats) const;

  int dim_;
  VaFileOptions options_;
  std::vector<double> lo_, cell_width_;  // per-dimension quantization grid
  std::vector<uint8_t> approx_;          // dim_ cells per record
  std::vector<FeatureVector> points_;    // exact vectors (refinement)
  std::vector<int> ids_;
};

}  // namespace vsim

#endif  // VSIM_INDEX_VAFILE_H_
