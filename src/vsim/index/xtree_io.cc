// Persistence for XTree (see XTree::Save/Load).
#include <cstring>
#include <fstream>

#include "vsim/common/binary_io.h"
#include "vsim/index/xtree.h"

namespace vsim {

namespace {
constexpr char kMagic[8] = {'V', 'S', 'X', 'T', 'R', 'E', '0', '1'};
}  // namespace

Status XTree::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  PutI32(out, dim_);
  PutU64(out, options_.page_size_bytes);
  PutDouble(out, options_.max_overlap);
  PutDouble(out, options_.min_fanout);
  PutI32(out, root_);
  PutU64(out, count_);
  PutU64(out, nodes_.size());
  for (const Node& node : nodes_) {
    PutU32(out, node.leaf ? 1 : 0);
    PutI32(out, node.supernode_multiple);
    PutU64(out, node.split_dims);
    PutU32(out, static_cast<uint32_t>(node.entries.size()));
    for (const Entry& e : node.entries) {
      PutDoubleVector(out, e.lo);
      PutDoubleVector(out, e.hi);
      PutI32(out, e.child);
      PutI32(out, e.id);
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<XTree> XTree::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a vsim X-tree file");
  }
  int32_t dim = 0;
  XTreeOptions options;
  uint64_t page_size = 0;
  if (!GetI32(in, &dim) || !GetU64(in, &page_size) ||
      !GetDouble(in, &options.max_overlap) ||
      !GetDouble(in, &options.min_fanout)) {
    return Status::IOError("truncated X-tree header: " + path);
  }
  options.page_size_bytes = static_cast<size_t>(page_size);
  if (dim < 1 || dim > 4096) {
    return Status::InvalidArgument("corrupt dimensionality in " + path);
  }
  XTree tree(dim, options);
  tree.nodes_.clear();
  int32_t root = 0;
  uint64_t count = 0, node_count = 0;
  if (!GetI32(in, &root) || !GetU64(in, &count) || !GetU64(in, &node_count) ||
      node_count > (1ull << 32)) {
    return Status::IOError("truncated X-tree metadata: " + path);
  }
  tree.root_ = root;
  tree.count_ = static_cast<size_t>(count);
  tree.nodes_.reserve(node_count);
  for (uint64_t n = 0; n < node_count; ++n) {
    Node node;
    uint32_t leaf = 0, entries = 0;
    uint64_t split_dims = 0;
    if (!GetU32(in, &leaf) || !GetI32(in, &node.supernode_multiple) ||
        !GetU64(in, &split_dims) || !GetU32(in, &entries) ||
        entries > (1u << 24)) {
      return Status::IOError("truncated X-tree node: " + path);
    }
    node.leaf = leaf != 0;
    node.split_dims = split_dims;
    node.entries.resize(entries);
    for (Entry& e : node.entries) {
      if (!GetDoubleVector(in, &e.lo) || !GetDoubleVector(in, &e.hi) ||
          !GetI32(in, &e.child) || !GetI32(in, &e.id)) {
        return Status::IOError("truncated X-tree entry: " + path);
      }
      if (static_cast<int>(e.lo.size()) != dim ||
          static_cast<int>(e.hi.size()) != dim) {
        return Status::InvalidArgument("corrupt entry dimensionality in " +
                                       path);
      }
    }
    tree.nodes_.push_back(std::move(node));
  }
  if (tree.root_ < 0 || tree.root_ >= static_cast<int>(tree.nodes_.size())) {
    return Status::InvalidArgument("corrupt root pointer in " + path);
  }
  VSIM_RETURN_NOT_OK(tree.Validate());
  return tree;
}

}  // namespace vsim
