#include "vsim/index/vafile.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace vsim {

VaFile::VaFile(int dim, VaFileOptions options)
    : dim_(dim), options_(options) {}

Status VaFile::Build(const std::vector<FeatureVector>& points,
                     const std::vector<int>& ids) {
  if (points.size() != ids.size()) {
    return Status::InvalidArgument("points/ids size mismatch");
  }
  if (options_.bits_per_dim < 1 || options_.bits_per_dim > 8) {
    return Status::InvalidArgument("bits_per_dim must be in [1, 8]");
  }
  for (const FeatureVector& p : points) {
    if (static_cast<int>(p.size()) != dim_) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  points_ = points;
  ids_ = ids;
  approx_.assign(points.size() * static_cast<size_t>(dim_), 0);
  lo_.assign(dim_, 0.0);
  cell_width_.assign(dim_, 1.0);
  if (points.empty()) return Status::OK();

  const int cells = 1 << options_.bits_per_dim;
  for (int d = 0; d < dim_; ++d) {
    double lo = points[0][d], hi = points[0][d];
    for (const FeatureVector& p : points) {
      lo = std::min(lo, p[d]);
      hi = std::max(hi, p[d]);
    }
    lo_[d] = lo;
    cell_width_[d] = (hi - lo) / cells;
    if (cell_width_[d] <= 0.0) cell_width_[d] = 1.0;  // degenerate dim
  }
  for (size_t i = 0; i < points.size(); ++i) {
    for (int d = 0; d < dim_; ++d) {
      int cell = static_cast<int>((points[i][d] - lo_[d]) / cell_width_[d]);
      cell = std::min(std::max(cell, 0), cells - 1);
      approx_[i * dim_ + d] = static_cast<uint8_t>(cell);
    }
  }
  return Status::OK();
}

size_t VaFile::ApproximationBytes() const {
  // bits_per_dim bits per dimension per record (rounded up per record).
  const size_t bits = static_cast<size_t>(dim_) * options_.bits_per_dim;
  return ids_.size() * ((bits + 7) / 8);
}

double VaFile::SquaredLowerBound(const FeatureVector& query,
                                 size_t index) const {
  double sum = 0.0;
  const uint8_t* cells = &approx_[index * dim_];
  for (int d = 0; d < dim_; ++d) {
    const double cell_lo = lo_[d] + cells[d] * cell_width_[d];
    const double cell_hi = cell_lo + cell_width_[d];
    double delta = 0.0;
    if (query[d] < cell_lo) {
      delta = cell_lo - query[d];
    } else if (query[d] > cell_hi) {
      delta = query[d] - cell_hi;
    }
    sum += delta * delta;
  }
  return sum;
}

void VaFile::ChargeApproximationScan(IoStats* stats) const {
  if (stats == nullptr) return;
  const size_t bytes = ApproximationBytes();
  stats->AddPageAccesses(
      std::max<size_t>(1, (bytes + options_.page_size_bytes - 1) /
                              options_.page_size_bytes));
  stats->AddBytesRead(bytes);
}

void VaFile::ChargeVectorFetch(IoStats* stats) const {
  if (stats == nullptr) return;
  stats->AddPageAccesses(1);
  stats->AddBytesRead(static_cast<size_t>(dim_) * sizeof(double));
}

std::vector<int> VaFile::RangeQuery(const FeatureVector& query, double eps,
                                    IoStats* stats, size_t* refined) const {
  ChargeApproximationScan(stats);
  std::vector<int> result;
  size_t fetched = 0;
  const double eps2 = eps * eps;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (SquaredLowerBound(query, i) > eps2) continue;
    ChargeVectorFetch(stats);
    ++fetched;
    double exact = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = query[d] - points_[i][d];
      exact += diff * diff;
    }
    if (exact <= eps2) result.push_back(ids_[i]);
  }
  if (refined != nullptr) *refined = fetched;
  return result;
}

namespace {

struct VaCandidate {
  double lower_bound;
  size_t index;
  bool operator<(const VaCandidate& o) const {
    return lower_bound < o.lower_bound;
  }
};

}  // namespace

std::vector<Neighbor> VaFile::MultiStepKnn(const FeatureVector& query,
                                           double filter_scale, int k,
                                           const ExactDistanceFn& exact,
                                           IoStats* stats,
                                           size_t* refined) const {
  ChargeApproximationScan(stats);
  std::vector<VaCandidate> candidates(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    candidates[i] = {filter_scale * std::sqrt(SquaredLowerBound(query, i)), i};
  }
  std::sort(candidates.begin(), candidates.end());

  std::vector<Neighbor> best;  // max-heap on distance
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  };
  size_t fetched = 0;
  for (const VaCandidate& cand : candidates) {
    if (static_cast<int>(best.size()) == k &&
        cand.lower_bound > best.front().distance) {
      break;  // optimal stopping
    }
    const double d = exact(ids_[cand.index], stats);
    ++fetched;
    if (static_cast<int>(best.size()) < k) {
      best.push_back({ids_[cand.index], d});
      std::push_heap(best.begin(), best.end(), cmp);
    } else if (d < best.front().distance) {
      std::pop_heap(best.begin(), best.end(), cmp);
      best.back() = {ids_[cand.index], d};
      std::push_heap(best.begin(), best.end(), cmp);
    }
  }
  std::sort_heap(best.begin(), best.end(), cmp);
  if (refined != nullptr) *refined = fetched;
  return best;
}

std::vector<int> VaFile::MultiStepRange(const FeatureVector& query,
                                        double filter_scale, double eps,
                                        const ExactDistanceFn& exact,
                                        IoStats* stats,
                                        size_t* refined) const {
  ChargeApproximationScan(stats);
  std::vector<int> result;
  size_t fetched = 0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    const double bound =
        filter_scale * std::sqrt(SquaredLowerBound(query, i));
    if (bound > eps) continue;
    const double d = exact(ids_[i], stats);
    ++fetched;
    if (d <= eps) result.push_back(ids_[i]);
  }
  if (refined != nullptr) *refined = fetched;
  return result;
}

std::vector<Neighbor> VaFile::KnnQuery(const FeatureVector& query, int k,
                                       IoStats* stats,
                                       size_t* refined) const {
  // Exact Euclidean k-NN on the stored vectors: refinement fetches the
  // vector and computes the distance directly.
  auto exact = [this, &query](int id, IoStats* s) {
    ChargeVectorFetch(s);
    // ids are unique positions; find the record (ids_ is typically the
    // identity permutation, so try the direct slot first).
    size_t index = 0;
    if (id >= 0 && static_cast<size_t>(id) < ids_.size() &&
        ids_[id] == id) {
      index = static_cast<size_t>(id);
    } else {
      index = static_cast<size_t>(
          std::find(ids_.begin(), ids_.end(), id) - ids_.begin());
    }
    double sum = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double diff = query[d] - points_[index][d];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  };
  // Reuse the multi-step machinery with scale 1 (the VA bound is a true
  // Euclidean lower bound). The approximation scan is charged inside.
  IoStats local;
  std::vector<Neighbor> result =
      MultiStepKnn(query, 1.0, k, exact, stats == nullptr ? &local : stats,
                   refined);
  return result;
}

}  // namespace vsim
