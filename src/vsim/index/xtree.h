// X-tree (Berchtold, Keim, Kriegel, VLDB'96): an R*-tree variant for
// high-dimensional point data that avoids high-overlap splits by
// (a) preferring overlap-free splits and (b) extending nodes into
// multi-page "supernodes" when no acceptable split exists. The paper
// indexes both the 6k-d one-vector representation and the 6-d extended
// centroids of the filter step with an X-tree.
//
// The tree lives in main memory; page accesses are *charged* to an
// IoStats according to how many simulated disk pages each visited node
// occupies (supernodes span several pages).
#ifndef VSIM_INDEX_XTREE_H_
#define VSIM_INDEX_XTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <queue>
#include <vector>

#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"
#include "vsim/index/io_stats.h"

namespace vsim {

struct XTreeOptions {
  size_t page_size_bytes = 4096;
  // Maximum tolerated overlap fraction of a topological (R*) split
  // before the overlap-minimal / supernode path is taken.
  double max_overlap = 0.2;
  // Minimum fill fraction an overlap-minimal split must achieve; below
  // this the node becomes a supernode instead.
  double min_fanout = 0.35;
};

struct Neighbor {
  int id = -1;
  double distance = 0.0;
  bool operator==(const Neighbor&) const = default;
};

class XTree {
 public:
  // `dim` is the dimensionality of the indexed points.
  explicit XTree(int dim, XTreeOptions options = {});

  XTree(const XTree&) = delete;
  XTree& operator=(const XTree&) = delete;
  XTree(XTree&&) = default;
  XTree& operator=(XTree&&) = default;

  // Inserts a point with a caller-chosen id.
  Status Insert(const FeatureVector& point, int id);

  // Bulk-loads a point set into an empty tree with Sort-Tile-Recursive
  // style packing: near-full leaves with little overlap, built in
  // O(n log n) -- the right way to index a whole CAD database at once.
  Status BulkLoad(const std::vector<FeatureVector>& points,
                  const std::vector<int>& ids);

  // All ids within Euclidean distance `eps` of `query` (inclusive).
  std::vector<int> RangeQuery(const FeatureVector& query, double eps,
                              IoStats* stats = nullptr) const;

  // The k nearest ids by Euclidean distance, ascending.
  std::vector<Neighbor> KnnQuery(const FeatureVector& query, int k,
                                 IoStats* stats = nullptr) const;

  // Incremental distance ranking (Hjaltason & Samet): yields stored
  // points in ascending distance from `query`, expanding index nodes
  // lazily. Used by the optimal multi-step k-NN algorithm.
  class RankingCursor {
   public:
    // True if another point is available (expands nodes as needed).
    bool HasNext();
    // Returns the next nearest point; call only if HasNext().
    Neighbor Next();
    // Distance of the next point without consuming it (inf if none).
    double NextDistance();

   private:
    friend class XTree;
    struct QueueItem {
      double distance;
      int node;  // node index, or -1 for points
      int id;
      bool operator<(const QueueItem& o) const {
        return distance > o.distance;  // min-heap via std::priority_queue
      }
    };
    RankingCursor(const XTree* tree, FeatureVector query, IoStats* stats);
    // Expands nodes until the heap top is a point (or the heap empties).
    void Settle();

    const XTree* tree_;
    FeatureVector query_;
    IoStats* stats_;
    std::priority_queue<QueueItem> heap_;
  };

  RankingCursor Rank(const FeatureVector& query, IoStats* stats = nullptr) const;

  // Persistence: writes/reads the exact tree structure (nodes, boxes,
  // supernode multiples, split history) in a versioned little-endian
  // format, so an index built once can be reused across sessions.
  Status Save(const std::string& path) const;
  static StatusOr<XTree> Load(const std::string& path);

  // Structural invariant check (test/debug aid): every child entry's
  // box is contained in its parent entry's box, entry counts respect
  // node capacities, every stored id is reachable exactly once, and all
  // leaves sit at the same depth.
  Status Validate() const;

  // Structure statistics.
  size_t size() const { return count_; }
  int height() const;
  size_t node_count() const { return nodes_.size(); }
  size_t supernode_count() const;
  // Total simulated pages of all nodes (the cost of a full scan of the
  // index, and the storage footprint reported by benches).
  size_t total_pages() const;

 private:
  friend class DiskXTree;  // read-only access for the disk writer

  struct Entry {
    FeatureVector lo, hi;  // MBR (lo == hi == point for leaf entries)
    int child = -1;        // node index (internal) or -1 (leaf entry)
    int id = -1;           // object id (leaf entry)
  };

  struct Node {
    bool leaf = true;
    int supernode_multiple = 1;  // capacity = multiple * base capacity
    std::vector<Entry> entries;
    // Split history: dimensions this node's content was split along.
    uint64_t split_dims = 0;
  };

  size_t LeafCapacity() const;
  size_t InternalCapacity() const;
  size_t NodeCapacity(const Node& node) const;
  size_t NodePages(const Node& node) const;
  size_t NodeBytes(const Node& node) const;

  void ChargeVisit(int node_index, IoStats* stats) const;

  // Insertion machinery.
  int ChooseSubtree(const Node& node, const Entry& entry) const;
  bool SplitNode(int node_index, Node* left_out, Node* right_out);
  void HandleOverflow(std::vector<int>& path);

  Entry NodeEntry(int node_index) const;

  double MinDistToBox(const FeatureVector& q, const Entry& e) const;

  void RangeRecursive(int node_index, const FeatureVector& query, double eps,
                      IoStats* stats, std::vector<int>* out) const;

  int dim_;
  XTreeOptions options_;
  std::vector<Node> nodes_;
  int root_ = 0;
  size_t count_ = 0;
};

}  // namespace vsim

#endif  // VSIM_INDEX_XTREE_H_
