// Disk-resident X-tree: the nodes of an in-memory XTree written into
// consecutive pages of a PagedFile and queried through the sharded
// buffer pool. Inner-node pages are promoted to the pool's hot tier on
// first parse (the filter step's working set stays resident while leaf
// pages churn in the cold tier). Together with VectorSetStore this makes the whole
// filter-and-refine pipeline operate on real pages: an index node visit
// costs a page access only when the pool actually misses, unlike the
// flat per-visit charge of the in-memory tree.
//
// The disk tree is read-only: build (or bulk-load) in memory, write
// once, query many times. Queries are safe from any number of threads
// concurrently (the node directory is immutable after Open; the pool
// and file underneath are fully concurrent).
#ifndef VSIM_INDEX_DISK_XTREE_H_
#define VSIM_INDEX_DISK_XTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "vsim/common/status.h"
#include "vsim/features/feature_vector.h"
#include "vsim/index/io_stats.h"
#include "vsim/index/xtree.h"
#include "vsim/cache/page_cache.h"
#include "vsim/storage/paged_file.h"

namespace vsim {

class DiskXTree {
 public:
  // Serializes `tree` into a fresh paged file at `path`. Every node
  // occupies ceil(bytes / page_size) consecutive pages (supernodes span
  // several pages naturally).
  static Status Write(const XTree& tree, const std::string& path,
                      size_t page_size = 4096);

  // Opens a previously written file. `pool_pages` is the buffer pool
  // capacity in pages.
  static StatusOr<DiskXTree> Open(const std::string& path,
                                  size_t pool_pages = 64);

  DiskXTree(DiskXTree&&) = default;
  DiskXTree& operator=(DiskXTree&&) = default;

  // Queries match the in-memory XTree's results exactly; `stats` is
  // charged one page access per buffer-pool miss plus the node bytes
  // actually parsed.
  std::vector<int> RangeQuery(const FeatureVector& query, double eps,
                              IoStats* stats = nullptr) const;
  std::vector<Neighbor> KnnQuery(const FeatureVector& query, int k,
                                 IoStats* stats = nullptr) const;

  size_t size() const { return count_; }
  int dim() const { return dim_; }
  const cache::ShardedBufferPool& pool() const { return *pool_; }
  cache::ShardedBufferPool& pool() { return *pool_; }

 private:
  DiskXTree() = default;

  struct NodeRef {
    PageId first_page = 0;
    uint32_t pages = 0;
    uint32_t bytes = 0;
  };

  struct DiskEntry {
    FeatureVector lo, hi;  // hi empty for leaf entries (point == lo)
    int32_t child = -1;
    int32_t id = -1;
  };

  struct DiskNode {
    bool leaf = true;
    std::vector<DiskEntry> entries;
  };

  StatusOr<DiskNode> FetchNode(uint32_t node_index, IoStats* stats) const;
  double MinDistToEntry(const FeatureVector& q, const DiskEntry& e) const;

  int dim_ = 0;
  uint32_t root_ = 0;
  size_t count_ = 0;
  std::vector<NodeRef> directory_;
  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<cache::ShardedBufferPool> pool_;
};

}  // namespace vsim

#endif  // VSIM_INDEX_DISK_XTREE_H_
