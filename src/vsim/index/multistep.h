// Filter-and-refine query processing (Section 4.3): a lower-bounding
// filter distance (the extended-centroid distance, indexed in an
// X-tree) prunes candidates before the exact minimal matching distance
// is computed.
//
//   - Range queries follow Korn et al.: filter with eps, refine.
//     (With the centroid filter the X-tree is queried with eps / k,
//     since the indexed centroid distance is the bound divided by k.)
//   - k-NN queries follow Seidl & Kriegel's *optimal multi-step* k-NN:
//     candidates are fetched in ascending filter-distance order and the
//     algorithm stops exactly when the next filter distance exceeds the
//     current k-th exact distance. No lower-bound-respecting algorithm
//     can refine fewer candidates.
#ifndef VSIM_INDEX_MULTISTEP_H_
#define VSIM_INDEX_MULTISTEP_H_

#include <functional>

#include "vsim/features/feature_vector.h"
#include "vsim/index/io_stats.h"
#include "vsim/index/xtree.h"

namespace vsim {

// Computes the exact distance of the query to the stored object `id`,
// charging any object-fetch I/O to `stats`.
using ExactDistanceFn = std::function<double(int id, IoStats* stats)>;

struct MultiStepStats {
  size_t candidates_refined = 0;  // exact distance evaluations
  size_t filter_hits = 0;         // candidates produced by the filter
  // Wall time spent inside exact_distance calls (the refinement stage);
  // the caller's total elapsed time minus this is the filter stage.
  double refine_seconds = 0.0;
};

// Optimal multi-step k-NN. `filter_index` must index a filter vector
// per object such that `filter_scale` * (Euclidean distance in the
// index) lower-bounds the exact distance (for the centroid filter:
// index the extended centroids and pass filter_scale = k).
std::vector<Neighbor> MultiStepKnn(const XTree& filter_index,
                                   const FeatureVector& filter_query,
                                   double filter_scale, int k,
                                   const ExactDistanceFn& exact_distance,
                                   IoStats* stats = nullptr,
                                   MultiStepStats* msstats = nullptr);

// Multi-step eps-range query: filter with eps / filter_scale, refine.
std::vector<int> MultiStepRange(const XTree& filter_index,
                                const FeatureVector& filter_query,
                                double filter_scale, double eps,
                                const ExactDistanceFn& exact_distance,
                                IoStats* stats = nullptr,
                                MultiStepStats* msstats = nullptr);

// A candidate with a precomputed lower bound on its exact distance
// (already scaled: `bound` <= exact distance). The approximate
// pre-filter pipeline produces these from the batched centroid kernel
// after the sketch prune (src/vsim/kernels/, docs/KERNELS.md).
struct BoundedCandidate {
  int id;
  double bound;
};

// Optimal multi-step k-NN over candidates whose lower bounds are
// already computed and sorted ascending by `bound`. Same stopping rule
// as MultiStepKnn, with the bound list standing in for the X-tree
// ranking cursor. filter_hits counts candidates popped before the stop.
std::vector<Neighbor> SortedBoundKnn(
    const std::vector<BoundedCandidate>& candidates, int k,
    const ExactDistanceFn& exact_distance, IoStats* stats = nullptr,
    MultiStepStats* msstats = nullptr);

// Range counterpart: refine every candidate whose lower bound is
// <= eps (candidates need not be sorted).
std::vector<int> BoundedRange(const std::vector<BoundedCandidate>& candidates,
                              double eps,
                              const ExactDistanceFn& exact_distance,
                              IoStats* stats = nullptr,
                              MultiStepStats* msstats = nullptr);

// Baselines: sequential scan over `count` objects (ids 0..count-1).
// `scan_bytes` is the total size of the scanned file; its pages are
// charged once per query (sequential read).
std::vector<Neighbor> ScanKnn(int count, int k, size_t scan_bytes,
                              size_t page_size,
                              const ExactDistanceFn& exact_distance,
                              IoStats* stats = nullptr);

std::vector<int> ScanRange(int count, double eps, size_t scan_bytes,
                           size_t page_size,
                           const ExactDistanceFn& exact_distance,
                           IoStats* stats = nullptr);

}  // namespace vsim

#endif  // VSIM_INDEX_MULTISTEP_H_
