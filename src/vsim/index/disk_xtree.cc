#include "vsim/index/disk_xtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

namespace vsim {

namespace {

constexpr char kMagic[8] = {'V', 'S', 'D', 'X', 'T', 'R', '0', '1'};

// --- little-endian buffer helpers ----------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status DiskXTree::Write(const XTree& tree, const std::string& path,
                        size_t page_size) {
  VSIM_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Create(path, page_size));

  // Serialize every node up front to know its size.
  const int dim = tree.dim_;
  std::vector<std::string> blobs;
  blobs.reserve(tree.nodes_.size());
  for (const XTree::Node& node : tree.nodes_) {
    std::string blob;
    PutU32(&blob, node.leaf ? 1 : 0);
    PutU32(&blob, static_cast<uint32_t>(node.entries.size()));
    for (const XTree::Entry& e : node.entries) {
      if (node.leaf) {
        PutU32(&blob, static_cast<uint32_t>(e.id));
        for (int d = 0; d < dim; ++d) PutF64(&blob, e.lo[d]);
      } else {
        PutU32(&blob, static_cast<uint32_t>(e.child));
        for (int d = 0; d < dim; ++d) PutF64(&blob, e.lo[d]);
        for (int d = 0; d < dim; ++d) PutF64(&blob, e.hi[d]);
      }
    }
    blobs.push_back(std::move(blob));
  }

  // Header + directory blob.
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(&header, static_cast<uint32_t>(dim));
  PutU32(&header, static_cast<uint32_t>(tree.root_));
  PutU64(&header, tree.count_);
  PutU64(&header, blobs.size());
  const size_t dir_fixed = header.size() + blobs.size() * 16;
  const size_t dir_pages = (dir_fixed + page_size - 1) / page_size;

  // Node pages start right after the directory pages.
  uint64_t next_page = 1 + dir_pages;
  for (const std::string& blob : blobs) {
    const uint64_t pages =
        std::max<uint64_t>(1, (blob.size() + page_size - 1) / page_size);
    PutU64(&header, next_page);
    PutU32(&header, static_cast<uint32_t>(pages));
    PutU32(&header, static_cast<uint32_t>(blob.size()));
    next_page += pages;
  }

  // Write directory pages then node pages (pages allocate sequentially,
  // so ids match the plan above).
  std::vector<char> page(page_size, 0);
  auto write_blob = [&](const std::string& blob) -> Status {
    for (size_t offset = 0; offset < blob.size() || offset == 0;
         offset += page_size) {
      VSIM_ASSIGN_OR_RETURN(PageId id, file.Allocate());
      std::fill(page.begin(), page.end(), 0);
      const size_t chunk = std::min(page_size, blob.size() - offset);
      if (blob.size() > offset) {
        std::memcpy(page.data(), blob.data() + offset, chunk);
      }
      VSIM_RETURN_NOT_OK(file.Write(id, page.data()));
      if (offset + page_size >= blob.size()) break;
    }
    return Status::OK();
  };
  // Directory occupies exactly dir_pages pages.
  {
    for (size_t p = 0; p < dir_pages; ++p) {
      VSIM_ASSIGN_OR_RETURN(PageId id, file.Allocate());
      std::fill(page.begin(), page.end(), 0);
      const size_t offset = p * page_size;
      if (offset < header.size()) {
        std::memcpy(page.data(), header.data() + offset,
                    std::min(page_size, header.size() - offset));
      }
      VSIM_RETURN_NOT_OK(file.Write(id, page.data()));
    }
  }
  for (const std::string& blob : blobs) {
    VSIM_RETURN_NOT_OK(write_blob(blob));
  }
  return file.Sync();
}

StatusOr<DiskXTree> DiskXTree::Open(const std::string& path,
                                    size_t pool_pages) {
  DiskXTree tree;
  VSIM_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(path));
  tree.file_ = std::make_unique<PagedFile>(std::move(file));
  const size_t page_size = tree.file_->page_size();

  // Read the directory with plain sequential reads (setup cost).
  std::string header;
  std::vector<char> page(page_size);
  for (PageId id = 1; id <= tree.file_->page_count(); ++id) {
    VSIM_RETURN_NOT_OK(tree.file_->Read(id, page.data()));
    header.append(page.data(), page_size);
    // Stop once we can know the directory size.
    if (header.size() >= 32) {
      Reader probe(header.data() + 8, header.size() - 8);
      uint32_t dim, root;
      uint64_t count, nodes;
      if (!probe.U32(&dim) || !probe.U32(&root) || !probe.U64(&count) ||
          !probe.U64(&nodes)) {
        return Status::IOError("unreadable directory in " + path);
      }
      const size_t need = 32 + nodes * 16;
      if (header.size() >= need) break;
    }
  }
  if (header.size() < 32 ||
      std::memcmp(header.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a vsim disk X-tree");
  }
  Reader reader(header.data() + 8, header.size() - 8);
  uint32_t dim = 0, root = 0;
  uint64_t count = 0, nodes = 0;
  // The node count sizes the directory allocation, so bound it by what
  // the file could actually hold (16 directory bytes per node) before
  // resizing -- a corrupt count must not turn into a huge resize.
  const uint64_t file_bytes =
      (1 + tree.file_->page_count()) * static_cast<uint64_t>(page_size);
  if (!reader.U32(&dim) || !reader.U32(&root) || !reader.U64(&count) ||
      !reader.U64(&nodes) || dim == 0 || dim > 4096 ||
      nodes > (file_bytes - 32) / 16) {
    return Status::InvalidArgument("corrupt disk X-tree header: " + path);
  }
  tree.dim_ = static_cast<int>(dim);
  tree.root_ = root;
  tree.count_ = static_cast<size_t>(count);
  tree.directory_.resize(nodes);
  for (NodeRef& ref : tree.directory_) {
    uint64_t first = 0;
    uint32_t pages = 0, bytes = 0;
    if (!reader.U64(&first) || !reader.U32(&pages) || !reader.U32(&bytes)) {
      return Status::IOError("truncated disk X-tree directory: " + path);
    }
    // Every node's pages must lie inside the file and be consistent
    // with its byte length (FetchNode's chunk arithmetic relies on
    // bytes <= pages * page_size).
    if (first == 0 || pages == 0 || pages > tree.file_->page_count() ||
        first > tree.file_->page_count() - pages + 1 ||
        static_cast<uint64_t>(bytes) > static_cast<uint64_t>(pages) *
                                           page_size) {
      return Status::InvalidArgument("corrupt disk X-tree directory: " + path);
    }
    ref.first_page = first;
    ref.pages = pages;
    ref.bytes = bytes;
  }
  if (root >= nodes && count > 0) {
    return Status::InvalidArgument("corrupt root pointer: " + path);
  }
  tree.pool_ = std::make_unique<cache::ShardedBufferPool>(tree.file_.get(),
                                                          pool_pages);
  return tree;
}

StatusOr<DiskXTree::DiskNode> DiskXTree::FetchNode(uint32_t node_index,
                                                   IoStats* stats) const {
  // Child pointers come off disk, so they are untrusted until checked:
  // a corrupt inner node must not index past the directory.
  if (node_index >= directory_.size()) {
    return Status::Internal("corrupt child pointer");
  }
  const NodeRef& ref = directory_[node_index];
  const size_t page_size = file_->page_size();
  std::string blob;
  blob.reserve(ref.bytes);
  // One pin at a time, released as soon as the chunk is copied: a
  // multi-page supernode must not demand `pages` frames of one shard at
  // once (tiny pools would spuriously exhaust). Misses are charged per
  // call (a pool-wide counter delta would misattribute concurrent
  // queries' misses).
  size_t misses = 0;
  for (uint32_t p = 0; p < ref.pages; ++p) {
    bool missed = false;
    VSIM_ASSIGN_OR_RETURN(
        cache::PageHandle handle,
        pool_->Fetch(ref.first_page + p, cache::PageTier::kCold, &missed));
    const size_t chunk =
        std::min(page_size, static_cast<size_t>(ref.bytes) - p * page_size);
    blob.append(handle.data(), chunk);
    misses += missed ? 1 : 0;
  }
  if (stats != nullptr) {
    stats->AddPageAccesses(misses);
    stats->AddBytesRead(ref.bytes);
  }

  DiskNode node;
  Reader reader(blob.data(), blob.size());
  uint32_t leaf = 0, entries = 0;
  if (!reader.U32(&leaf) || !reader.U32(&entries)) {
    return Status::Internal("corrupt node blob");
  }
  node.leaf = leaf != 0;
  if (!node.leaf) {
    // Promote the inner node's pages to the hot tier (pin-free retier;
    // a page already evicted between the copy and here is simply left
    // to re-enter cold on its next fetch). The filter step's working
    // set stays resident while leaf pages churn in the cold tier.
    for (uint32_t p = 0; p < ref.pages; ++p) {
      pool_->Retier(ref.first_page + p, cache::PageTier::kHot);
    }
  }
  node.entries.resize(entries);
  for (DiskEntry& e : node.entries) {
    uint32_t id_or_child = 0;
    if (!reader.U32(&id_or_child)) return Status::Internal("corrupt entry");
    e.lo.resize(dim_);
    for (int d = 0; d < dim_; ++d) {
      if (!reader.F64(&e.lo[d])) return Status::Internal("corrupt entry");
    }
    if (node.leaf) {
      e.id = static_cast<int32_t>(id_or_child);
    } else {
      e.child = static_cast<int32_t>(id_or_child);
      e.hi.resize(dim_);
      for (int d = 0; d < dim_; ++d) {
        if (!reader.F64(&e.hi[d])) return Status::Internal("corrupt entry");
      }
    }
  }
  return node;
}

double DiskXTree::MinDistToEntry(const FeatureVector& q,
                                 const DiskEntry& e) const {
  double sum = 0.0;
  for (int d = 0; d < dim_; ++d) {
    const double lo = e.lo[d];
    const double hi = e.hi.empty() ? e.lo[d] : e.hi[d];
    const double delta = std::max({lo - q[d], q[d] - hi, 0.0});
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

std::vector<int> DiskXTree::RangeQuery(const FeatureVector& query, double eps,
                                       IoStats* stats) const {
  std::vector<int> out;
  if (count_ == 0) return out;
  std::vector<uint32_t> stack{root_};
  // A healthy tree visits each node at most once per query; a corrupt
  // file whose child pointers form a cycle would otherwise traverse
  // forever (and grow the stack without bound).
  size_t fetch_budget = directory_.size();
  while (!stack.empty()) {
    const uint32_t index = stack.back();
    stack.pop_back();
    if (fetch_budget-- == 0) return out;  // cyclic corrupt file
    StatusOr<DiskNode> node = FetchNode(index, stats);
    if (!node.ok()) return out;  // corrupt file: return what we have
    for (const DiskEntry& e : node->entries) {
      if (MinDistToEntry(query, e) > eps) continue;
      if (node->leaf) {
        out.push_back(e.id);
      } else {
        stack.push_back(static_cast<uint32_t>(e.child));
      }
    }
  }
  return out;
}

std::vector<Neighbor> DiskXTree::KnnQuery(const FeatureVector& query, int k,
                                          IoStats* stats) const {
  std::vector<Neighbor> result;
  if (count_ == 0 || k <= 0) return result;
  struct Item {
    double distance;
    int32_t node;  // -1 for points
    int32_t id;
    bool operator<(const Item& o) const { return distance > o.distance; }
  };
  std::priority_queue<Item> heap;
  heap.push({0.0, static_cast<int32_t>(root_), -1});
  // Same cycle guard as RangeQuery: each node legitimately expands at
  // most once per query.
  size_t fetch_budget = directory_.size();
  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    const Item item = heap.top();
    heap.pop();
    if (item.node < 0) {
      result.push_back({item.id, item.distance});
      continue;
    }
    if (fetch_budget-- == 0) break;  // cyclic corrupt file
    StatusOr<DiskNode> node = FetchNode(static_cast<uint32_t>(item.node),
                                        stats);
    if (!node.ok()) break;
    for (const DiskEntry& e : node->entries) {
      const double d = MinDistToEntry(query, e);
      heap.push(node->leaf ? Item{d, -1, e.id} : Item{d, e.child, -1});
    }
  }
  return result;
}

}  // namespace vsim
