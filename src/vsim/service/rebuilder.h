// Rebuilder: the writer half of the snapshot-swap reindex scheme. A
// single background thread constructs fresh DbSnapshots (database +
// index build, the expensive part) completely off the serving path and
// publishes each one into a QueryService via SwapSnapshot, with a
// monotonically increasing generation number.
//
// The caller supplies a DatabaseFactory -- "how to produce the next
// database" (re-extract a data set with new r/k, load new objects from
// disk, or just copy the current one to rebuild indexes). The factory
// runs on the rebuilder thread only; it must not touch the service.
//
// Usage:
//   Rebuilder rebuilder(&service, [&] { return BuildNewDatabase(); });
//   std::future<Status> done = rebuilder.Trigger();  // async
//   ... keep serving; the swap lands when the build finishes ...
//   done.get();  // OK once published (or the factory's error)
//
// Thread-safety: Trigger() and stats() are safe from any thread.
// Triggers queue FIFO; each performs one full build + publish. The
// destructor stops after the in-progress rebuild (queued, not-yet-run
// triggers resolve with kUnavailable).
#ifndef VSIM_SERVICE_REBUILDER_H_
#define VSIM_SERVICE_REBUILDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "vsim/common/status.h"
#include "vsim/common/thread_annotations.h"
#include "vsim/service/db_snapshot.h"
#include "vsim/service/query_service.h"

namespace vsim {

class Rebuilder {
 public:
  using DatabaseFactory = std::function<StatusOr<CadDatabase>()>;

  // `service` must outlive the rebuilder. `params` configures the I/O
  // cost model of each rebuilt snapshot's engine.
  Rebuilder(QueryService* service, DatabaseFactory factory,
            IoCostParams params = {});
  ~Rebuilder();

  Rebuilder(const Rebuilder&) = delete;
  Rebuilder& operator=(const Rebuilder&) = delete;

  // Enqueues one rebuild. The future resolves OK after the new snapshot
  // has been published to the service, or with the factory's / swap's
  // error. Triggers are never coalesced: N triggers = N rebuilds.
  std::future<Status> Trigger() EXCLUDES(mu_);

  // Blocks until every rebuild triggered so far has finished.
  void Drain() EXCLUDES(mu_);

  struct Stats {
    uint64_t triggered = 0;
    uint64_t published = 0;
    uint64_t failed = 0;
    double last_build_seconds = 0.0;  // factory + index construction
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  // Runs one rebuild; returns the publish status.
  Status RebuildOnce() EXCLUDES(mu_);

  // Immutable after construction; read by the worker thread only.
  QueryService* service_;
  DatabaseFactory factory_;
  IoCostParams params_;

  mutable Mutex mu_{"service.rebuilder"};
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::promise<Status>> pending_ GUARDED_BY(mu_);
  bool busy_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);

  std::thread worker_;  // last: started after all state exists
};

}  // namespace vsim

#endif  // VSIM_SERVICE_REBUILDER_H_
