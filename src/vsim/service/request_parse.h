// Canonical name <-> enum round-trip maps for the request surface:
// QueryKind, QueryStrategy, cover-search mode and ModelType. This is
// the single source of truth shared by the CLI flag parsers
// (tools/vsim_cli.cc), the net/ wire protocol's human-readable side
// (docs/PROTOCOL.md status mapping) and the tests -- before this
// header, each vsim subcommand carried its own if-chain copy of these
// maps and they drifted independently.
//
// Every FlagName function round-trips through its Parse companion
// (request_parse_test.cc sweeps all enumerators), and every Parse
// error message lists the valid spellings, so a typo'd flag or wire
// field produces an actionable kInvalidArgument instead of a silent
// default.
#ifndef VSIM_SERVICE_REQUEST_PARSE_H_
#define VSIM_SERVICE_REQUEST_PARSE_H_

#include <string>

#include "vsim/common/status.h"
#include "vsim/core/query_engine.h"
#include "vsim/core/similarity.h"
#include "vsim/features/cover_sequence.h"
#include "vsim/service/query_service.h"

namespace vsim {

// --- QueryKind: "knn" | "range" | "invariant-knn" | "invariant-range"
// (the same spellings QueryKindName returns).
StatusOr<QueryKind> ParseQueryKind(const std::string& name);
// Space-separated list of valid spellings, for usage strings.
const char* QueryKindNames();

// --- QueryStrategy flag spellings: "filter" | "scan" | "mtree" |
// "vafile" | "onevector". Distinct from QueryStrategyName, which
// returns the paper-facing display names ("vector set + filter").
const char* QueryStrategyFlagName(QueryStrategy strategy);
StatusOr<QueryStrategy> ParseQueryStrategy(const std::string& name);
const char* QueryStrategyNames();

// --- Cover-search mode: "hillclimb" | "exhaustive" | "beam".
const char* CoverSearchFlagName(CoverSequenceOptions::Search search);
StatusOr<CoverSequenceOptions::Search> ParseCoverSearch(
    const std::string& name);
const char* CoverSearchNames();

// --- ModelType: "volume" | "solid-angle" | "cover-sequence" |
// "cover-sequence-permutation" | "vector-set" (the same spellings
// ModelTypeName returns).
StatusOr<ModelType> ParseModelType(const std::string& name);
const char* ModelTypeNames();

// --- QueryOptions (the versioned per-request knob struct declared next
// to ServiceRequest in query_service.h). This is the single validation
// point for the knob surface: QueryService::Validate, the wire decoder
// and the CLI all route through it, so bounds live in exactly one
// place. Checks the knobs relevant to `kind` (k >= 1 for k-NN kinds,
// eps >= 0 for range kinds) plus the kind-independent ones
// (timeout_seconds >= 0, approx_level in [0, kernels::kMaxApproxLevel]).
Status ValidateQueryOptions(QueryKind kind, const QueryOptions& options);

// Parses a decimal approx level and bounds it like ValidateQueryOptions
// does (the CLI's --approx flag parser).
StatusOr<int> ParseApproxLevel(const std::string& text);

}  // namespace vsim

#endif  // VSIM_SERVICE_REQUEST_PARSE_H_
