// Lock-free serving metrics: atomic request counters plus a fixed
// geometric-bucket latency histogram (no allocation, no locks on the
// record path), printable as a TablePrinter table.
#ifndef VSIM_SERVICE_SERVICE_STATS_H_
#define VSIM_SERVICE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "vsim/common/table_printer.h"
#include "vsim/service/result_cache.h"

namespace vsim {

// Buckets cover [2^i, 2^(i+1)) microseconds; bucket 0 additionally
// absorbs sub-microsecond samples and the last bucket absorbs
// everything past ~2^38 us (~3 days). Percentiles report a bucket's
// upper bound, so they over- rather than under-state latency by at
// most 2x -- plenty for a serving dashboard.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(double seconds) {
    const double us = seconds * 1e6;
    int bucket = 0;
    if (us >= 1.0) {
      bucket = static_cast<int>(std::log2(us)) + 1;
      if (bucket >= kBuckets) bucket = kBuckets - 1;
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    // Stash the running sum in nanoseconds for a cheap mean.
    total_ns_.fetch_add(static_cast<uint64_t>(us * 1e3),
                        std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  double MeanSeconds() const {
    const uint64_t n = TotalCount();
    if (n == 0) return 0.0;
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           static_cast<double>(n) * 1e-9;
  }

  // Upper bound (seconds) of the bucket holding the p-th percentile
  // sample, p in [0, 1].
  double PercentileSeconds(double p) const {
    const uint64_t n = TotalCount();
    if (n == 0) return 0.0;
    const uint64_t rank =
        static_cast<uint64_t>(std::ceil(p * static_cast<double>(n)));
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b].load(std::memory_order_relaxed);
      if (seen >= rank && seen > 0) {
        return std::ldexp(1.0, b) * 1e-6;  // 2^b us upper bound
      }
    }
    return std::ldexp(1.0, kBuckets - 1) * 1e-6;
  }

  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> total_ns_{0};
};

struct ServiceStatsSnapshot {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;   // admission-queue backpressure
  uint64_t timed_out = 0;  // deadline passed before execution
  uint64_t failed = 0;     // invalid requests etc.
  uint64_t snapshot_swaps = 0;  // reindex publications (SwapSnapshot)
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  ResultCacheStats cache;
};

// Thread-safety: every member is a relaxed atomic (or the lock-free
// histogram above); any thread may record, any thread may snapshot.
// Documented GUARDED_BY exclusion: there is no mutex here by design --
// the record path must stay allocation- and lock-free -- so the
// thread-safety analysis has nothing to check; std::atomic provides
// the synchronization.
class ServiceStats {
 public:
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> snapshot_swaps{0};
  LatencyHistogram latency;

  ServiceStatsSnapshot Snapshot(const ResultCacheStats& cache) const {
    ServiceStatsSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.timed_out = timed_out.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.snapshot_swaps = snapshot_swaps.load(std::memory_order_relaxed);
    s.latency_mean_s = latency.MeanSeconds();
    s.latency_p50_s = latency.PercentileSeconds(0.50);
    s.latency_p95_s = latency.PercentileSeconds(0.95);
    s.latency_p99_s = latency.PercentileSeconds(0.99);
    s.cache = cache;
    return s;
  }
};

inline void PrintServiceStats(const ServiceStatsSnapshot& s,
                              std::FILE* out = stdout) {
  TablePrinter table({"metric", "value"});
  table.AddRow({"requests submitted", std::to_string(s.submitted)});
  table.AddRow({"requests completed", std::to_string(s.completed)});
  table.AddRow({"rejected (queue full)", std::to_string(s.rejected)});
  table.AddRow({"timed out (deadline)", std::to_string(s.timed_out)});
  table.AddRow({"failed", std::to_string(s.failed)});
  table.AddRow({"snapshot swaps", std::to_string(s.snapshot_swaps)});
  table.AddRow({"cache hits", std::to_string(s.cache.hits)});
  table.AddRow({"cache misses", std::to_string(s.cache.misses)});
  table.AddRow({"cache evictions", std::to_string(s.cache.evictions)});
  table.AddRow(
      {"cache hit rate", TablePrinter::Num(100.0 * s.cache.HitRate()) + "%"});
  table.AddRow({"latency mean",
                TablePrinter::Num(s.latency_mean_s * 1e3, 3) + " ms"});
  table.AddRow({"latency p50 <=",
                TablePrinter::Num(s.latency_p50_s * 1e3, 3) + " ms"});
  table.AddRow({"latency p95 <=",
                TablePrinter::Num(s.latency_p95_s * 1e3, 3) + " ms"});
  table.AddRow({"latency p99 <=",
                TablePrinter::Num(s.latency_p99_s * 1e3, 3) + " ms"});
  table.Print(out);
}

}  // namespace vsim

#endif  // VSIM_SERVICE_SERVICE_STATS_H_
