// Lock-free serving metrics: atomic request counters plus a fixed
// geometric-bucket latency histogram (no allocation, no locks on the
// record path), printable as a TablePrinter table.
#ifndef VSIM_SERVICE_SERVICE_STATS_H_
#define VSIM_SERVICE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "vsim/common/table_printer.h"
#include "vsim/obs/metrics.h"
#include "vsim/service/result_cache.h"

namespace vsim {

// The latency histogram is the generalized obs::Histogram (geometric
// buckets over seconds, lock-free record path); the alias keeps the
// service-layer name that predates the observability module.
using LatencyHistogram = obs::Histogram;

struct ServiceStatsSnapshot {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;   // admission-queue backpressure
  uint64_t timed_out = 0;  // deadline passed before execution
  uint64_t failed = 0;     // invalid requests etc.
  uint64_t snapshot_swaps = 0;  // reindex publications (SwapSnapshot)
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  ResultCacheStats cache;
};

// Thread-safety: every member is a relaxed atomic (or the lock-free
// histogram above); any thread may record, any thread may snapshot.
// Documented GUARDED_BY exclusion: there is no mutex here by design --
// the record path must stay allocation- and lock-free -- so the
// thread-safety analysis has nothing to check; std::atomic provides
// the synchronization.
class ServiceStats {
 public:
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> snapshot_swaps{0};
  LatencyHistogram latency;

  ServiceStatsSnapshot Snapshot(const ResultCacheStats& cache) const {
    ServiceStatsSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.timed_out = timed_out.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.snapshot_swaps = snapshot_swaps.load(std::memory_order_relaxed);
    s.latency_mean_s = latency.MeanSeconds();
    s.latency_p50_s = latency.PercentileSeconds(0.50);
    s.latency_p95_s = latency.PercentileSeconds(0.95);
    s.latency_p99_s = latency.PercentileSeconds(0.99);
    s.cache = cache;
    return s;
  }
};

inline void PrintServiceStats(const ServiceStatsSnapshot& s,
                              std::FILE* out = stdout) {
  TablePrinter table({"metric", "value"});
  table.AddRow({"requests submitted", std::to_string(s.submitted)});
  table.AddRow({"requests completed", std::to_string(s.completed)});
  table.AddRow({"rejected (queue full)", std::to_string(s.rejected)});
  table.AddRow({"timed out (deadline)", std::to_string(s.timed_out)});
  table.AddRow({"failed", std::to_string(s.failed)});
  table.AddRow({"snapshot swaps", std::to_string(s.snapshot_swaps)});
  table.AddRow({"cache hits", std::to_string(s.cache.hits)});
  table.AddRow({"cache misses", std::to_string(s.cache.misses)});
  table.AddRow({"cache evictions", std::to_string(s.cache.evictions)});
  table.AddRow(
      {"cache hit rate", TablePrinter::Num(100.0 * s.cache.HitRate()) + "%"});
  table.AddRow({"latency mean",
                TablePrinter::Num(s.latency_mean_s * 1e3, 3) + " ms"});
  table.AddRow({"latency p50 <=",
                TablePrinter::Num(s.latency_p50_s * 1e3, 3) + " ms"});
  table.AddRow({"latency p95 <=",
                TablePrinter::Num(s.latency_p95_s * 1e3, 3) + " ms"});
  table.AddRow({"latency p99 <=",
                TablePrinter::Num(s.latency_p99_s * 1e3, 3) + " ms"});
  table.Print(out);
}

}  // namespace vsim

#endif  // VSIM_SERVICE_SERVICE_STATS_H_
