#include "vsim/service/request_parse.h"

#include <exception>
#include <string>

#include "vsim/kernels/sketch.h"

namespace vsim {

namespace {

// Shared error shape: "unknown <what> '<name>' (valid: a b c)".
Status UnknownName(const char* what, const std::string& name,
                   const char* valid) {
  return Status::InvalidArgument("unknown " + std::string(what) + " '" +
                                 name + "' (valid: " + valid + ")");
}

}  // namespace

StatusOr<QueryKind> ParseQueryKind(const std::string& name) {
  for (QueryKind kind : {QueryKind::kKnn, QueryKind::kRange,
                         QueryKind::kInvariantKnn,
                         QueryKind::kInvariantRange}) {
    if (name == QueryKindName(kind)) return kind;
  }
  return UnknownName("query kind", name, QueryKindNames());
}

const char* QueryKindNames() {
  return "knn range invariant-knn invariant-range";
}

const char* QueryStrategyFlagName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kOneVectorXTree:
      return "onevector";
    case QueryStrategy::kVectorSetFilter:
      return "filter";
    case QueryStrategy::kVectorSetScan:
      return "scan";
    case QueryStrategy::kVectorSetMTree:
      return "mtree";
    case QueryStrategy::kVectorSetVaFilter:
      return "vafile";
  }
  return "unknown";
}

StatusOr<QueryStrategy> ParseQueryStrategy(const std::string& name) {
  for (QueryStrategy strategy :
       {QueryStrategy::kOneVectorXTree, QueryStrategy::kVectorSetFilter,
        QueryStrategy::kVectorSetScan, QueryStrategy::kVectorSetMTree,
        QueryStrategy::kVectorSetVaFilter}) {
    if (name == QueryStrategyFlagName(strategy)) return strategy;
  }
  return UnknownName("strategy", name, QueryStrategyNames());
}

const char* QueryStrategyNames() {
  return "filter scan mtree vafile onevector";
}

const char* CoverSearchFlagName(CoverSequenceOptions::Search search) {
  switch (search) {
    case CoverSequenceOptions::Search::kHillClimb:
      return "hillclimb";
    case CoverSequenceOptions::Search::kExhaustive:
      return "exhaustive";
    case CoverSequenceOptions::Search::kBeam:
      return "beam";
  }
  return "unknown";
}

StatusOr<CoverSequenceOptions::Search> ParseCoverSearch(
    const std::string& name) {
  for (CoverSequenceOptions::Search search :
       {CoverSequenceOptions::Search::kHillClimb,
        CoverSequenceOptions::Search::kExhaustive,
        CoverSequenceOptions::Search::kBeam}) {
    if (name == CoverSearchFlagName(search)) return search;
  }
  return UnknownName("cover search", name, CoverSearchNames());
}

const char* CoverSearchNames() { return "hillclimb exhaustive beam"; }

StatusOr<ModelType> ParseModelType(const std::string& name) {
  for (ModelType model :
       {ModelType::kVolume, ModelType::kSolidAngle, ModelType::kCoverSequence,
        ModelType::kCoverSequencePermutation, ModelType::kVectorSet}) {
    if (name == ModelTypeName(model)) return model;
  }
  return UnknownName("model", name, ModelTypeNames());
}

const char* ModelTypeNames() {
  return "volume solid-angle cover-sequence cover-sequence-permutation "
         "vector-set";
}

Status ValidateQueryOptions(QueryKind kind, const QueryOptions& options) {
  const bool is_knn =
      kind == QueryKind::kKnn || kind == QueryKind::kInvariantKnn;
  if (is_knn && options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (!is_knn && options.eps < 0.0) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  if (options.timeout_seconds < 0.0) {
    return Status::InvalidArgument("timeout_seconds must be >= 0");
  }
  if (options.approx_level < 0 ||
      options.approx_level > kernels::kMaxApproxLevel) {
    return Status::InvalidArgument(
        "approx_level must be in [0, " +
        std::to_string(kernels::kMaxApproxLevel) + "]");
  }
  return Status::OK();
}

StatusOr<int> ParseApproxLevel(const std::string& text) {
  size_t consumed = 0;
  int level = 0;
  try {
    level = std::stoi(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != text.size() || text.empty()) {
    return Status::InvalidArgument("approx level must be an integer: '" +
                                   text + "'");
  }
  if (level < 0 || level > kernels::kMaxApproxLevel) {
    return Status::InvalidArgument(
        "approx level must be in [0, " +
        std::to_string(kernels::kMaxApproxLevel) + "]");
  }
  return level;
}

}  // namespace vsim
