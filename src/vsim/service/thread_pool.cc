#include "vsim/service/thread_pool.h"

#include <atomic>

#include "vsim/common/math_util.h"

namespace vsim {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = Clamp<int>(num_threads, 1, 64);
  workers_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    paused_ = false;  // a paused pool still drains on destruction
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::QueuedTasks() const {
  MutexLock lock(&mu_);
  return tasks_.size();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Pause() {
  MutexLock lock(&mu_);
  paused_ = true;
}

void ThreadPool::Resume() {
  {
    MutexLock lock(&mu_);
    paused_ = false;
  }
  cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      // Explicit predicate loop so the analysis sees the guarded reads
      // under the lock (see thread_annotations.h conventions).
      while (!((!paused_ && !tasks_.empty()) || stop_)) cv_.Wait(&mu_);
      // On shutdown, drain whatever is still queued before exiting so
      // every Submit()ed future is fulfilled.
      if (tasks_.empty()) return;  // only reachable when stop_ is set
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t spawn = std::min(n, workers_.size());
  std::vector<std::future<void>> done;
  done.reserve(spawn);
  for (size_t t = 0; t < spawn; ++t) {
    done.push_back(Submit([next, n, &fn]() {
      for (;;) {
        const size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (std::future<void>& f : done) f.get();
}

}  // namespace vsim
