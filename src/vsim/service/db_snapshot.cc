#include "vsim/service/db_snapshot.h"

namespace vsim {

std::shared_ptr<const DbSnapshot> DbSnapshot::Create(CadDatabase db,
                                                     uint64_t generation,
                                                     IoCostParams params) {
  auto snapshot = std::shared_ptr<DbSnapshot>(new DbSnapshot());
  auto owned_db = std::make_unique<const CadDatabase>(std::move(db));
  snapshot->db_ = owned_db.get();
  snapshot->owned_db_ = std::move(owned_db);
  auto owned_engine =
      std::make_unique<const QueryEngine>(snapshot->db_, params);
  snapshot->engine_ = owned_engine.get();
  snapshot->owned_engine_ = std::move(owned_engine);
  snapshot->generation_ = generation;
  return snapshot;
}

StatusOr<std::shared_ptr<const DbSnapshot>> DbSnapshot::CreateDiskBacked(
    CadDatabase db, const std::string& store_path, uint64_t generation,
    IoCostParams params, size_t pool_pages, bool keep_ram_sets) {
  auto snapshot = std::shared_ptr<DbSnapshot>(new DbSnapshot());
  // Kept mutable until after the engine build so the RAM vector sets
  // can be demoted below; the pointer is stable across the move into
  // owned_db_, and the snapshot is published (and frozen) only after
  // this function returns.
  auto owned_db = std::make_unique<CadDatabase>(std::move(db));
  snapshot->db_ = owned_db.get();

  // Materialize the store file: same objects in the same order as the
  // database, so stored ids line up with engine ids.
  VSIM_ASSIGN_OR_RETURN(VectorSetStore store,
                        VectorSetStore::Create(store_path, 4096, pool_pages));
  for (size_t i = 0; i < snapshot->db_->size(); ++i) {
    VSIM_ASSIGN_OR_RETURN(
        int id,
        store.Append(snapshot->db_->object(static_cast<int>(i)).vector_set));
    if (id != static_cast<int>(i)) {
      return Status::Internal("store id drifted from database id");
    }
  }
  VSIM_RETURN_NOT_OK(store.Flush());
  snapshot->owned_store_ = std::make_unique<VectorSetStore>(std::move(store));

  auto owned_engine = std::make_unique<QueryEngine>(snapshot->db_, params);
  owned_engine->AttachStore(snapshot->owned_store_.get());
  snapshot->engine_ = owned_engine.get();
  snapshot->owned_engine_ = std::move(owned_engine);
  // The engine build was the last consumer of the RAM vector sets (it
  // copied what it keeps: M-tree entries, sketches, centroid block).
  // From here on the store holds the only full copies; QueryService
  // hydrates stored-id queries from it.
  if (!keep_ram_sets) owned_db->ReleaseVectorSets();
  snapshot->owned_db_ = std::move(owned_db);
  snapshot->generation_ = generation;
  return std::shared_ptr<const DbSnapshot>(snapshot);
}

std::shared_ptr<const DbSnapshot> DbSnapshot::Wrap(const CadDatabase* db,
                                                   const QueryEngine* engine,
                                                   uint64_t generation) {
  auto snapshot = std::shared_ptr<DbSnapshot>(new DbSnapshot());
  snapshot->db_ = db;
  snapshot->engine_ = engine;
  snapshot->generation_ = generation;
  return snapshot;
}

}  // namespace vsim
