#include "vsim/service/db_snapshot.h"

namespace vsim {

std::shared_ptr<const DbSnapshot> DbSnapshot::Create(CadDatabase db,
                                                     uint64_t generation,
                                                     IoCostParams params) {
  auto snapshot = std::shared_ptr<DbSnapshot>(new DbSnapshot());
  auto owned_db = std::make_unique<const CadDatabase>(std::move(db));
  snapshot->db_ = owned_db.get();
  snapshot->owned_db_ = std::move(owned_db);
  auto owned_engine =
      std::make_unique<const QueryEngine>(snapshot->db_, params);
  snapshot->engine_ = owned_engine.get();
  snapshot->owned_engine_ = std::move(owned_engine);
  snapshot->generation_ = generation;
  return snapshot;
}

std::shared_ptr<const DbSnapshot> DbSnapshot::Wrap(const CadDatabase* db,
                                                   const QueryEngine* engine,
                                                   uint64_t generation) {
  auto snapshot = std::shared_ptr<DbSnapshot>(new DbSnapshot());
  snapshot->db_ = db;
  snapshot->engine_ = engine;
  snapshot->generation_ = generation;
  return snapshot;
}

}  // namespace vsim
