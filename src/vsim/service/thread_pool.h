// A fixed-size worker pool with a task queue. The serving layer's
// QueryService schedules query execution on it; CadDatabase's parallel
// feature extraction and the benches reuse it for fan-out work that
// previously hand-rolled std::thread chunking.
#ifndef VSIM_SERVICE_THREAD_POOL_H_
#define VSIM_SERVICE_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "vsim/common/thread_annotations.h"

namespace vsim {

class ThreadPool {
 public:
  // num_threads = 0 uses the hardware concurrency; the count is clamped
  // to [1, 64].
  explicit ThreadPool(int num_threads = 0);

  // Drains gracefully: every task already queued still runs before the
  // workers exit (so no future returned by Submit is ever abandoned).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Tasks queued but not yet picked up by a worker.
  size_t QueuedTasks() const EXCLUDES(mu_);

  // Schedules `fn` for execution and returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  // Runs fn(0) .. fn(n-1) across the pool and blocks until all
  // iterations finished. Indices are claimed one at a time from a
  // shared counter, so per-index results must not depend on which
  // thread runs which index. Must not be called from inside a pool
  // task (the caller would wait on workers it is occupying).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Quiesce: workers finish their current task and stop dequeuing until
  // Resume(). Submissions while paused queue up normally. Used to drain
  // the service for admin operations and to make queue-full behavior
  // deterministic in tests.
  void Pause() EXCLUDES(mu_);
  void Resume() EXCLUDES(mu_);

 private:
  void Enqueue(std::function<void()> task) EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_{"service.thread_pool"};
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  bool paused_ GUARDED_BY(mu_) = false;
  // Written only by the constructor, joined only by the destructor;
  // between those points it is read-only (num_threads, ParallelFor).
  std::vector<std::thread> workers_;
};

}  // namespace vsim

#endif  // VSIM_SERVICE_THREAD_POOL_H_
