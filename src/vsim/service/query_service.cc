#include "vsim/service/query_service.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace vsim {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kInvariantKnn:
      return "invariant-knn";
    case QueryKind::kInvariantRange:
      return "invariant-range";
  }
  return "unknown";
}

QueryService::QueryService(std::shared_ptr<const DbSnapshot> snapshot,
                           QueryServiceOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      cache_(options.cache_bytes, options.cache_shards),
      pool_(options.num_threads) {}

QueryService::QueryService(const CadDatabase* db, const QueryEngine* engine,
                           QueryServiceOptions options)
    : QueryService(DbSnapshot::Wrap(db, engine, 0), options) {}

QueryService::~QueryService() = default;

void QueryService::Pause() { pool_.Pause(); }
void QueryService::Resume() { pool_.Resume(); }

std::shared_ptr<const DbSnapshot> QueryService::snapshot() const {
  MutexLock lock(&snapshot_mu_);
  return snapshot_;
}

Status QueryService::SwapSnapshot(std::shared_ptr<const DbSnapshot> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot swap in a null snapshot");
  }
  MutexLock lock(&snapshot_mu_);
  if (next->generation() <= snapshot_->generation()) {
    return Status::FailedPrecondition(
        "snapshot generation " + std::to_string(next->generation()) +
        " is not newer than current generation " +
        std::to_string(snapshot_->generation()));
  }
  snapshot_ = std::move(next);
  stats_.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status QueryService::Validate(const ServiceRequest& request,
                              const CadDatabase& db) const {
  const bool knn_kind = request.kind == QueryKind::kKnn ||
                        request.kind == QueryKind::kInvariantKnn;
  const bool invariant_kind = request.kind == QueryKind::kInvariantKnn ||
                              request.kind == QueryKind::kInvariantRange;
  if (knn_kind && request.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (!knn_kind && request.eps < 0.0) {
    return Status::InvalidArgument("eps must be non-negative");
  }
  if (invariant_kind && request.strategy == QueryStrategy::kOneVectorXTree) {
    return Status::InvalidArgument(
        "invariant queries are not defined for the one-vector strategy");
  }
  if (request.object_id >= 0) {
    if (request.object_id >= static_cast<int>(db.size())) {
      return Status::OutOfRange("object_id " +
                                std::to_string(request.object_id) +
                                " out of range");
    }
    return Status::OK();
  }
  // External query: the strategy determines which representation the
  // engine reads.
  if (request.strategy == QueryStrategy::kOneVectorXTree) {
    if (request.query.cover_vector.empty()) {
      return Status::InvalidArgument(
          "external one-vector query needs a cover_vector");
    }
    return Status::OK();
  }
  if (request.query.vector_set.empty()) {
    return Status::InvalidArgument("external query needs a vector_set");
  }
  if ((request.strategy == QueryStrategy::kVectorSetFilter ||
       request.strategy == QueryStrategy::kVectorSetVaFilter) &&
      request.query.centroid.empty()) {
    return Status::InvalidArgument(
        "external filtered query needs an extended centroid");
  }
  return Status::OK();
}

ResultCacheKey QueryService::MakeKey(const ServiceRequest& request,
                                     const ObjectRepr& query,
                                     uint64_t generation) const {
  const bool knn_kind = request.kind == QueryKind::kKnn ||
                        request.kind == QueryKind::kInvariantKnn;
  const bool invariant_kind = request.kind == QueryKind::kInvariantKnn ||
                              request.kind == QueryKind::kInvariantRange;
  ResultCacheKey key;
  key.digest = DigestQueryObject(query);
  key.generation = generation;
  key.kind = static_cast<uint8_t>(request.kind);
  key.strategy = static_cast<uint8_t>(request.strategy);
  key.invariance =
      invariant_kind ? (request.with_reflections ? 2 : 1) : 0;
  key.k = knn_kind ? request.k : 0;
  key.eps = knn_kind ? 0.0 : request.eps;
  return key;
}

StatusOr<ServiceResponse> QueryService::RunRequest(
    const ServiceRequest& request) {
  // One acquisition per request: everything below -- validation, cache
  // key, query execution -- sees this snapshot and only this snapshot,
  // even if SwapSnapshot publishes a newer one mid-query.
  const std::shared_ptr<const DbSnapshot> snap = snapshot();
  const CadDatabase& db = snap->db();
  const QueryEngine& engine = snap->engine();

  VSIM_RETURN_NOT_OK(Validate(request, db));
  const ObjectRepr& query =
      request.object_id >= 0 ? db.object(request.object_id) : request.query;

  ServiceResponse response;
  response.generation = snap->generation();
  ResultCacheKey key;
  if (cache_.enabled()) {
    key = MakeKey(request, query, snap->generation());
    CachedResult hit;
    if (cache_.Lookup(key, &hit)) {
      response.neighbors = std::move(hit.neighbors);
      response.ids = std::move(hit.ids);
      response.cache_hit = true;
      return response;
    }
  }

  switch (request.kind) {
    case QueryKind::kKnn:
      response.neighbors =
          engine.Knn(request.strategy, query, request.k, &response.cost);
      break;
    case QueryKind::kRange:
      response.ids =
          engine.Range(request.strategy, query, request.eps, &response.cost);
      break;
    case QueryKind::kInvariantKnn:
      response.neighbors =
          engine.InvariantKnn(request.strategy, query, request.k,
                              request.with_reflections, &response.cost);
      break;
    case QueryKind::kInvariantRange:
      response.ids =
          engine.InvariantRange(request.strategy, query, request.eps,
                                request.with_reflections, &response.cost);
      break;
  }

  if (cache_.enabled()) {
    cache_.Insert(key, CachedResult{response.neighbors, response.ids});
  }
  if (options_.simulate_io_wait) {
    const double io_seconds = response.cost.IoSeconds(options_.io_params);
    if (io_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(io_seconds));
    }
  }
  return response;
}

StatusOr<std::future<StatusOr<ServiceResponse>>> QueryService::Submit(
    ServiceRequest request) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (queued_.fetch_add(1, std::memory_order_acq_rel) >= options_.max_queue) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "admission queue full (bound " + std::to_string(options_.max_queue) +
        "); retry with backoff");
  }
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      request.timeout_seconds > 0.0
          ? submitted + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                request.timeout_seconds))
          : Clock::time_point::max();
  return pool_.Submit([this, request = std::move(request), submitted,
                       deadline]() -> StatusOr<ServiceResponse> {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    if (Clock::now() > deadline) {
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          "request deadline passed before a worker picked it up");
    }
    StatusOr<ServiceResponse> response = RunRequest(request);
    if (response.ok()) {
      const double latency =
          std::chrono::duration<double>(Clock::now() - submitted).count();
      response.value().latency_seconds = latency;
      stats_.completed.fetch_add(1, std::memory_order_relaxed);
      stats_.latency.Record(latency);
    } else {
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
    }
    return response;
  });
}

StatusOr<ServiceResponse> QueryService::Execute(ServiceRequest request) {
  StatusOr<std::future<StatusOr<ServiceResponse>>> submitted =
      Submit(std::move(request));
  VSIM_RETURN_NOT_OK(submitted.status());
  return submitted.value().get();
}

}  // namespace vsim
