#include "vsim/service/query_service.h"

#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "vsim/cache/metrics_adapter.h"
#include "vsim/service/request_parse.h"

namespace vsim {

namespace {

// SplitMix64 finalizer, used to stretch the per-service random salt
// into per-request trace ids without an RNG on the request path.
uint64_t MixTraceWord(uint64_t value) {
  uint64_t z = value + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline constexpr uint64_t kNoDeadlineNs = UINT64_MAX;

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kInvariantKnn:
      return "invariant-knn";
    case QueryKind::kInvariantRange:
      return "invariant-range";
  }
  return "unknown";
}

QueryService::QueryService(std::shared_ptr<const DbSnapshot> snapshot,
                           QueryServiceOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      cache_(options.cache_bytes, options.cache_shards),
      recorder_(options.flight_recorder_capacity, options.slow_trace_seconds,
                options.slow_ring_capacity),
      span_ring_(options.span_ring_capacity),
      pool_(options.num_threads) {
  std::random_device rd;
  trace_seed_hi_ = (static_cast<uint64_t>(rd()) << 32) | rd();
  trace_seed_lo_ = (static_cast<uint64_t>(rd()) << 32) | rd();
  if ((trace_seed_hi_ | trace_seed_lo_) == 0) trace_seed_lo_ = 1;
  RegisterMetrics();
}

void QueryService::RegisterMetrics() {
  latency_hist_ = metrics_.RegisterHistogram(
      "vsim_request_latency_seconds",
      "End-to-end request latency, admission to completion");
  queue_wait_hist_ = metrics_.RegisterHistogram(
      "vsim_queue_wait_seconds",
      "Time a request waited in the admission queue for a worker");
  filter_stage_hist_ = metrics_.RegisterHistogram(
      "vsim_filter_stage_seconds",
      "CPU time in the filter stage (Lemma-2 centroid bound lookup)");
  refine_stage_hist_ = metrics_.RegisterHistogram(
      "vsim_refine_stage_seconds",
      "CPU time in the refinement stage (exact minimal matching)");
  approx_pruned_total_ = metrics_.RegisterCounter(
      "vsim_approx_pruned_total",
      "Candidates examined by the approximate sketch pre-filter");
  filter_hits_total_ = metrics_.RegisterCounter(
      "vsim_filter_hits_total",
      "Candidates produced by the filter step across all queries");
  candidates_refined_total_ = metrics_.RegisterCounter(
      "vsim_candidates_refined_total",
      "Candidates that reached the exact distance refinement");
  hungarian_total_ = metrics_.RegisterCounter(
      "vsim_hungarian_invocations_total",
      "Kuhn-Munkres minimal-matching runs");
  io_pages_total_ = metrics_.RegisterCounter(
      "vsim_io_page_accesses_total",
      "Charged page accesses of the paper cost model (8 ms/page)");
  io_bytes_total_ = metrics_.RegisterCounter(
      "vsim_io_bytes_read_total",
      "Charged bytes read of the paper cost model (200 ns/byte)");
  generation_gauge_ = metrics_.RegisterGauge(
      "vsim_snapshot_generation",
      "Generation of the snapshot new requests execute on");
  for (int s = 0; s < static_cast<int>(queries_by_strategy_.size()); ++s) {
    queries_by_strategy_[s] = metrics_.RegisterCounter(
        "vsim_queries_total", "Completed queries by execution strategy",
        std::string("strategy=\"") +
            QueryStrategyFlagName(static_cast<QueryStrategy>(s)) + "\"");
  }
  {
    MutexLock lock(&snapshot_mu_);
    generation_gauge_->Set(static_cast<double>(snapshot_->generation()));
  }
  // The pre-existing ad-hoc stat blocks (ServiceStats, ResultCacheStats)
  // keep their relaxed atomics; a collector folds them into the same
  // exposition instead of double-counting them into owned instruments.
  metrics_.RegisterCollector([this](std::vector<obs::MetricSample>* out) {
    auto add = [out](const char* name, const char* help, double value,
                     obs::MetricSample::Type type =
                         obs::MetricSample::Type::kCounter) {
      obs::MetricSample s;
      s.name = name;
      s.help = help;
      s.type = type;
      s.value = value;
      out->push_back(std::move(s));
    };
    add("vsim_requests_submitted_total", "Requests offered to admission",
        static_cast<double>(stats_.submitted.load(std::memory_order_relaxed)));
    add("vsim_requests_completed_total", "Requests completed successfully",
        static_cast<double>(stats_.completed.load(std::memory_order_relaxed)));
    add("vsim_requests_rejected_total",
        "Requests rejected by admission backpressure",
        static_cast<double>(stats_.rejected.load(std::memory_order_relaxed)));
    add("vsim_requests_timed_out_total",
        "Requests whose deadline passed while queued",
        static_cast<double>(stats_.timed_out.load(std::memory_order_relaxed)));
    add("vsim_requests_failed_total", "Requests failed (validation etc.)",
        static_cast<double>(stats_.failed.load(std::memory_order_relaxed)));
    add("vsim_snapshot_swaps_total", "Reindex snapshot publications",
        static_cast<double>(
            stats_.snapshot_swaps.load(std::memory_order_relaxed)));
    const ResultCacheStats cache = cache_.stats();
    add("vsim_cache_hits_total", "Result cache hits",
        static_cast<double>(cache.hits));
    add("vsim_cache_misses_total", "Result cache misses",
        static_cast<double>(cache.misses));
    add("vsim_cache_insertions_total", "Result cache insertions",
        static_cast<double>(cache.insertions));
    add("vsim_cache_evictions_total", "Result cache evictions",
        static_cast<double>(cache.evictions));
    add("vsim_flight_recorder_recorded_total", "Traces recorded",
        static_cast<double>(recorder_.recorded()));
    add("vsim_flight_recorder_dropped_total",
        "Traces dropped on slot contention",
        static_cast<double>(recorder_.dropped()));
    add("vsim_flight_recorder_slow_threshold_seconds",
        "Latency at or above which a trace enters the slow ring",
        recorder_.slow_threshold_seconds(), obs::MetricSample::Type::kGauge);
    add("vsim_span_trees_recorded_total",
        "Span trees published into the span ring",
        static_cast<double>(span_ring_.recorded()));
    add("vsim_span_trees_dropped_total",
        "Span trees dropped on span-ring slot contention",
        static_cast<double>(span_ring_.dropped()));
    add("vsim_spans_truncated_total",
        "Spans dropped because a request outgrew its span arena",
        static_cast<double>(
            spans_truncated_.load(std::memory_order_relaxed)));
    // Disk-backed snapshots expose their buffer pool's hot/cold tier
    // counters (vsim_cache_pool_*; distinct from the result-cache
    // vsim_cache_* series above). Lock order here is registry mutex ->
    // snapshot_mu_; nothing takes them in the other order.
    std::shared_ptr<const DbSnapshot> snap = snapshot();
    if (snap != nullptr && snap->store() != nullptr) {
      cache::AppendPoolSamples(snap->store()->pool(), out);
      // RAM still held by the database's vector-set copies: 0 once
      // CreateDiskBacked demoted them, the full duplicate footprint
      // under keep_ram_sets (the regression this gauge watches for).
      add("vsim_cache_pool_resident_bytes",
          "RAM bytes of vector-set copies duplicated beside the store",
          static_cast<double>(snap->db().VectorSetResidentBytes()),
          obs::MetricSample::Type::kGauge);
    }
  });
}

void QueryService::RecordTrace(const obs::QueryTrace& trace) {
  recorder_.Record(trace);
  queue_wait_hist_->Record(trace.queue_seconds);
  latency_hist_->Record(trace.total_seconds);
  if (trace.status_code != 0) return;  // failures carry no stage data
  queries_by_strategy_[trace.strategy]->Increment();
  if (trace.cache_hit != 0) return;  // hits skipped the pipeline
  filter_stage_hist_->Record(trace.filter_seconds);
  refine_stage_hist_->Record(trace.refine_seconds);
  approx_pruned_total_->Increment(trace.approx_pruned);
  filter_hits_total_->Increment(trace.filter_hits);
  candidates_refined_total_->Increment(trace.candidates_refined);
  hungarian_total_->Increment(trace.hungarian_invocations);
  io_pages_total_->Increment(trace.page_accesses);
  io_bytes_total_->Increment(trace.bytes_read);
}

QueryService::QueryService(const CadDatabase* db, const QueryEngine* engine,
                           QueryServiceOptions options)
    : QueryService(DbSnapshot::Wrap(db, engine, 0), options) {}

QueryService::~QueryService() = default;

void QueryService::Pause() { pool_.Pause(); }
void QueryService::Resume() { pool_.Resume(); }

std::shared_ptr<const DbSnapshot> QueryService::snapshot() const {
  MutexLock lock(&snapshot_mu_);
  return snapshot_;
}

Status QueryService::SwapSnapshot(std::shared_ptr<const DbSnapshot> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot swap in a null snapshot");
  }
  MutexLock lock(&snapshot_mu_);
  if (next->generation() <= snapshot_->generation()) {
    return Status::FailedPrecondition(
        "snapshot generation " + std::to_string(next->generation()) +
        " is not newer than current generation " +
        std::to_string(snapshot_->generation()));
  }
  snapshot_ = std::move(next);
  stats_.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
  generation_gauge_->Set(static_cast<double>(snapshot_->generation()));
  return Status::OK();
}

Status QueryService::Validate(const ServiceRequest& request,
                              const CadDatabase& db) const {
  const bool invariant_kind = request.kind == QueryKind::kInvariantKnn ||
                              request.kind == QueryKind::kInvariantRange;
  // The knob surface (k, eps, timeout, approx level) has exactly one
  // validation point: ValidateQueryOptions in service/request_parse.h.
  VSIM_RETURN_NOT_OK(ValidateQueryOptions(request.kind, request.options));
  if (invariant_kind && request.strategy == QueryStrategy::kOneVectorXTree) {
    return Status::InvalidArgument(
        "invariant queries are not defined for the one-vector strategy");
  }
  if (request.object_id >= 0) {
    if (request.object_id >= static_cast<int>(db.size())) {
      return Status::OutOfRange("object_id " +
                                std::to_string(request.object_id) +
                                " out of range");
    }
    return Status::OK();
  }
  // External query: the strategy determines which representation the
  // engine reads.
  if (request.strategy == QueryStrategy::kOneVectorXTree) {
    if (request.query.cover_vector.empty()) {
      return Status::InvalidArgument(
          "external one-vector query needs a cover_vector");
    }
    return Status::OK();
  }
  if (request.query.vector_set.empty()) {
    return Status::InvalidArgument("external query needs a vector_set");
  }
  if ((request.strategy == QueryStrategy::kVectorSetFilter ||
       request.strategy == QueryStrategy::kVectorSetVaFilter) &&
      request.query.centroid.empty()) {
    return Status::InvalidArgument(
        "external filtered query needs an extended centroid");
  }
  return Status::OK();
}

ResultCacheKey QueryService::MakeKey(const ServiceRequest& request,
                                     const ObjectRepr& query,
                                     uint64_t generation) const {
  const bool knn_kind = request.kind == QueryKind::kKnn ||
                        request.kind == QueryKind::kInvariantKnn;
  const bool invariant_kind = request.kind == QueryKind::kInvariantKnn ||
                              request.kind == QueryKind::kInvariantRange;
  ResultCacheKey key;
  key.digest = DigestQueryObject(query);
  key.generation = generation;
  key.kind = static_cast<uint8_t>(request.kind);
  key.strategy = static_cast<uint8_t>(request.strategy);
  key.invariance =
      invariant_kind ? (request.with_reflections ? 2 : 1) : 0;
  key.approx_level = static_cast<uint8_t>(request.options.approx_level);
  key.k = knn_kind ? request.options.k : 0;
  key.eps = knn_kind ? 0.0 : request.options.eps;
  return key;
}

StatusOr<ServiceResponse> QueryService::RunRequest(
    const ServiceRequest& request) {
  // One acquisition per request: everything below -- validation, cache
  // key, query execution -- sees this snapshot and only this snapshot,
  // even if SwapSnapshot publishes a newer one mid-query.
  const std::shared_ptr<const DbSnapshot> snap = snapshot();
  const CadDatabase& db = snap->db();
  const QueryEngine& engine = snap->engine();

  VSIM_RETURN_NOT_OK(Validate(request, db));
  // Stored-id queries on a disk-backed snapshot whose RAM vector sets
  // were demoted (DbSnapshot::CreateDiskBacked default): rebuild the
  // query's set from the store, so the exact pipeline and the cache
  // digest see the same representation a RAM-resident snapshot would.
  ObjectRepr hydrated;
  const ObjectRepr* query_ptr = &request.query;
  if (request.object_id >= 0) {
    const ObjectRepr& stored = db.object(request.object_id);
    query_ptr = &stored;
    if (stored.vector_set.empty() && snap->store() != nullptr) {
      StatusOr<VectorSet> set = snap->store()->Get(request.object_id);
      VSIM_RETURN_NOT_OK(set.status());
      hydrated = stored;
      hydrated.vector_set = std::move(set).value();
      query_ptr = &hydrated;
    }
  }
  const ObjectRepr& query = *query_ptr;

  ServiceResponse response;
  response.generation = snap->generation();
  ResultCacheKey key;
  if (cache_.enabled()) {
    key = MakeKey(request, query, snap->generation());
    CachedResult hit;
    if (cache_.Lookup(key, &hit)) {
      response.neighbors = std::move(hit.neighbors);
      response.ids = std::move(hit.ids);
      response.cache_hit = true;
      return response;
    }
  }

  const QueryOptions& opt = request.options;
  switch (request.kind) {
    case QueryKind::kKnn:
      response.neighbors = engine.Knn(request.strategy, query, opt.k,
                                      &response.cost, opt.approx_level);
      break;
    case QueryKind::kRange:
      response.ids = engine.Range(request.strategy, query, opt.eps,
                                  &response.cost, opt.approx_level);
      break;
    case QueryKind::kInvariantKnn:
      response.neighbors =
          engine.InvariantKnn(request.strategy, query, opt.k,
                              request.with_reflections, &response.cost,
                              opt.approx_level);
      break;
    case QueryKind::kInvariantRange:
      response.ids =
          engine.InvariantRange(request.strategy, query, opt.eps,
                                request.with_reflections, &response.cost,
                                opt.approx_level);
      break;
  }

  if (cache_.enabled()) {
    cache_.Insert(key, CachedResult{response.neighbors, response.ids});
  }
  if (options_.simulate_io_wait) {
    const double io_seconds = response.cost.IoSeconds(options_.io_params);
    if (io_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(io_seconds));
    }
  }
  return response;
}

Status QueryService::Admit() {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (queued_.fetch_add(1, std::memory_order_acq_rel) >= options_.max_queue) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "admission queue full (bound " + std::to_string(options_.max_queue) +
        "); retry with backoff");
  }
  return Status::OK();
}

void QueryService::PublishSpans(const obs::TraceContext& context,
                                const obs::QueryTrace& trace,
                                uint64_t submitted_ns, uint64_t pickup_ns,
                                uint64_t end_ns) {
  obs::SpanArena arena(context, trace.trace_id);
  const int root =
      arena.Add(obs::SpanName::kRequest, context.parent_span_id, submitted_ns,
                end_ns, trace.candidates_refined);
  const uint64_t root_id = arena.span_id(root);
  arena.Add(obs::SpanName::kQueue, root_id, submitted_ns, pickup_ns);
  arena.Add(obs::SpanName::kAdmission, root_id, pickup_ns, pickup_ns);
  if (trace.status_code == 0 && trace.cache_hit == 0) {
    // The engine ran inside [pickup, end]; reconstruct the filter and
    // refine children from the measured stage splits (the engine
    // itself stays span-unaware -- its QueryCost is the measurement).
    const uint64_t filter_ns =
        static_cast<uint64_t>(trace.filter_seconds * 1e9);
    const uint64_t refine_ns =
        static_cast<uint64_t>(trace.refine_seconds * 1e9);
    uint64_t filter_end = pickup_ns + filter_ns;
    if (filter_end > end_ns) filter_end = end_ns;
    uint64_t refine_start = end_ns > refine_ns ? end_ns - refine_ns : end_ns;
    if (refine_start < filter_end) refine_start = filter_end;
    const int filter = arena.Add(obs::SpanName::kFilter, root_id, pickup_ns,
                                 filter_end, trace.filter_hits);
    if (trace.approx_level > 0) {
      arena.Add(obs::SpanName::kApproxPrune, arena.span_id(filter), pickup_ns,
                pickup_ns, trace.approx_pruned);
    }
    arena.Add(obs::SpanName::kRefine, root_id, refine_start, end_ns,
              trace.hungarian_invocations);
  }
  obs::SpanTreeRecord record;
  obs::RenderSpanTree(arena, trace.trace_id, &record);
  if (arena.dropped() > 0) {
    spans_truncated_.fetch_add(arena.dropped(), std::memory_order_relaxed);
  }
  span_ring_.Record(record);
}

StatusOr<ServiceResponse> QueryService::RunAdmitted(
    const ServiceRequest& request, uint64_t submitted_ns,
    uint64_t deadline_ns) {
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  const uint64_t pickup_ns = obs::MonotonicNowNs();
  // Every picked-up request leaves a trace, successful or not: the
  // flight recorder is most valuable precisely when requests fail.
  obs::QueryTrace trace;
  trace.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.kind = static_cast<uint8_t>(request.kind);
  trace.strategy = static_cast<uint8_t>(request.strategy);
  trace.k = request.options.k;
  trace.eps = request.options.eps;
  trace.approx_level = request.options.approx_level;
  trace.queue_seconds = static_cast<double>(pickup_ns - submitted_ns) * 1e-9;
  // Adopt the wire-propagated trace identity, or mint one so local
  // callers still get correlatable span trees.
  obs::TraceContext context = request.trace;
  if (!context.valid()) {
    context.trace_hi = MixTraceWord(trace_seed_hi_ ^ trace.trace_id);
    context.trace_lo = MixTraceWord(trace_seed_lo_ + trace.trace_id);
    context.parent_span_id = 0;
  }
  trace.trace_hi = context.trace_hi;
  trace.trace_lo = context.trace_lo;
  if (pickup_ns > deadline_ns) {
    stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
    Status expired = Status::DeadlineExceeded(
        "request deadline passed before a worker picked it up");
    trace.status_code = static_cast<uint8_t>(expired.code());
    const uint64_t end_ns = obs::MonotonicNowNs();
    trace.total_seconds = static_cast<double>(end_ns - submitted_ns) * 1e-9;
    RecordTrace(trace);
    if (options_.enable_spans) {
      PublishSpans(context, trace, submitted_ns, pickup_ns, end_ns);
    }
    return expired;
  }
  StatusOr<ServiceResponse> response = RunRequest(request);
  const uint64_t end_ns = obs::MonotonicNowNs();
  const double latency = static_cast<double>(end_ns - submitted_ns) * 1e-9;
  trace.total_seconds = latency;
  if (response.ok()) {
    const ServiceResponse& r = response.value();
    response.value().latency_seconds = latency;
    response.value().trace_hi = context.trace_hi;
    response.value().trace_lo = context.trace_lo;
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    stats_.latency.Record(latency);
    trace.generation = r.generation;
    trace.cache_hit = r.cache_hit ? 1 : 0;
    trace.cpu_seconds = r.cost.cpu_seconds;
    trace.filter_seconds = r.cost.filter_seconds;
    trace.refine_seconds = r.cost.refine_seconds;
    trace.approx_pruned = r.cost.approx_pruned;
    trace.filter_hits = r.cost.filter_hits;
    trace.candidates_refined = r.cost.candidates_refined;
    trace.hungarian_invocations = r.cost.hungarian_invocations;
    trace.page_accesses = r.cost.io.page_accesses();
    trace.bytes_read = r.cost.io.bytes_read();
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
    trace.status_code = static_cast<uint8_t>(response.status().code());
  }
  RecordTrace(trace);
  if (options_.enable_spans) {
    PublishSpans(context, trace, submitted_ns, pickup_ns, end_ns);
  }
  return response;
}

namespace {

// Deadline resolution shared by both submission forms: 0 means "no
// deadline", represented as kNoDeadlineNs.
uint64_t DeadlineForNs(double timeout_seconds, uint64_t submitted_ns) {
  return timeout_seconds > 0.0
             ? submitted_ns + static_cast<uint64_t>(timeout_seconds * 1e9)
             : kNoDeadlineNs;
}

}  // namespace

StatusOr<std::future<StatusOr<ServiceResponse>>> QueryService::Submit(
    ServiceRequest request) {
  VSIM_RETURN_NOT_OK(Admit());
  const uint64_t submitted_ns = obs::MonotonicNowNs();
  const uint64_t deadline_ns =
      DeadlineForNs(request.options.timeout_seconds, submitted_ns);
  return pool_.Submit([this, request = std::move(request), submitted_ns,
                       deadline_ns]() -> StatusOr<ServiceResponse> {
    return RunAdmitted(request, submitted_ns, deadline_ns);
  });
}

Status QueryService::SubmitWithCallback(
    ServiceRequest request, std::function<void(StatusOr<ServiceResponse>)> done) {
  if (done == nullptr) {
    return Status::InvalidArgument("SubmitWithCallback needs a callback");
  }
  VSIM_RETURN_NOT_OK(Admit());
  const uint64_t submitted_ns = obs::MonotonicNowNs();
  const uint64_t deadline_ns =
      DeadlineForNs(request.options.timeout_seconds, submitted_ns);
  // The future from pool_.Submit is discarded deliberately: the result
  // is delivered through `done` on the worker thread, and a discarded
  // future neither blocks nor cancels the task.
  pool_.Submit([this, request = std::move(request), done = std::move(done),
                submitted_ns, deadline_ns]() {
    done(RunAdmitted(request, submitted_ns, deadline_ns));
  });
  return Status::OK();
}

StatusOr<ServiceResponse> QueryService::Execute(ServiceRequest request) {
  StatusOr<std::future<StatusOr<ServiceResponse>>> submitted =
      Submit(std::move(request));
  VSIM_RETURN_NOT_OK(submitted.status());
  return submitted.value().get();
}

}  // namespace vsim
