// Thread-safe concurrent query service over an atomically swappable
// DbSnapshot (database + indexes + generation): the serving layer
// between the paper's single-query engine and a front-end handling many
// simultaneous users, kept online while the data set or the extraction
// parameters (r, k, cover strategy) change underneath it.
//
//   - Requests are executed on a fixed-size ThreadPool; reads run truly
//     concurrently because each snapshot's database + indexes are
//     immutable after construction (the engine's query methods are
//     const and touch no mutable state -- see docs/ARCHITECTURE.md).
//   - Snapshot-swap reindex: the service holds a shared_ptr<const
//     DbSnapshot> published under a mutex (RCU-style). A worker
//     acquires the current snapshot once per request and keeps its
//     reference for the request's whole execution, so every request
//     observes exactly one generation end-to-end; SwapSnapshot()
//     installs a rebuilt snapshot without draining in-flight queries
//     (see Rebuilder for the off-thread construction half).
//   - Admission control: at most `max_queue` requests may be waiting
//     for a worker. Submissions past the bound are rejected immediately
//     with kUnavailable instead of queueing unboundedly (backpressure
//     the caller can act on).
//   - Deadlines: a request whose deadline passes while still queued
//     fails fast with kDeadlineExceeded without occupying a worker for
//     the query itself.
//   - Results of refined queries are memoized in a sharded LRU
//     ResultCache. Keys carry the snapshot's generation, so a swap
//     logically invalidates every older entry without a stop-the-world
//     flush: stale entries simply stop matching and age out via LRU.
//
// Thread-safety: all public methods are safe to call concurrently from
// any thread. Disk-backed snapshots (QueryEngine::AttachStore /
// DbSnapshot::CreateDiskBacked) serve concurrently like RAM-resident
// ones: refinement fetches go through the sharded buffer pool
// (src/vsim/cache/page_cache.h), whose fetch path is fully concurrent.
// A disk-backed snapshot's pool counters surface in the registry as the
// vsim_cache_pool_* series (docs/OBSERVABILITY.md).
#ifndef VSIM_SERVICE_QUERY_SERVICE_H_
#define VSIM_SERVICE_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>

#include "vsim/common/status.h"
#include "vsim/common/thread_annotations.h"
#include "vsim/core/query_engine.h"
#include "vsim/core/similarity.h"
#include "vsim/obs/flight_recorder.h"
#include "vsim/obs/metrics.h"
#include "vsim/obs/query_trace.h"
#include "vsim/obs/span.h"
#include "vsim/service/db_snapshot.h"
#include "vsim/service/result_cache.h"
#include "vsim/service/service_stats.h"
#include "vsim/service/thread_pool.h"

namespace vsim {

enum class QueryKind {
  kKnn,
  kRange,
  kInvariantKnn,    // Definition-2 pose-invariant k-NN
  kInvariantRange,
};

const char* QueryKindName(QueryKind kind);

// The per-request knob surface, gathered into one versioned struct
// instead of parallel positional parameters threaded through
// QueryService / Client / the CLI. Validation lives in exactly one
// place -- ValidateQueryOptions() in service/request_parse.h -- and the
// wire encoding in net/protocol.cc appends new fields as tolerant
// trailing data, so old peers keep decoding (docs/PROTOCOL.md).
//
// kQueryOptionsVersion is bumped whenever a field is added; it is a
// source-level evolution marker (tests pin the field set per version),
// not a wire tag -- the wire stays versionless by the trailing-field
// rule.
inline constexpr int kQueryOptionsVersion = 1;

struct QueryOptions {
  int k = 10;        // k-NN kinds
  double eps = 0.0;  // range kinds

  // 0 = no deadline. The deadline is checked when a worker picks the
  // request up; execution itself is not interrupted.
  double timeout_seconds = 0.0;

  // Approximate pre-filter aggressiveness for the kVectorSetFilter
  // strategy: 0 = exact (paper-faithful pipeline), 1..
  // kernels::kMaxApproxLevel trade recall for latency via the sketch
  // prune + batched centroid bounds (docs/KERNELS.md). Other
  // strategies ignore the knob.
  int approx_level = 0;
};

// A request is a plain value: safe to copy between threads, no
// references into service state.
struct ServiceRequest {
  QueryKind kind = QueryKind::kKnn;
  QueryStrategy strategy = QueryStrategy::kVectorSetFilter;

  // Query object: a stored id (>= 0), or an external representation in
  // `query` when object_id < 0. Stored ids are validated against the
  // snapshot the request executes on -- after a swap that shrank the
  // database, a previously valid id can fail with kOutOfRange.
  int object_id = -1;
  ObjectRepr query;

  QueryOptions options;
  bool with_reflections = false;  // invariant kinds: 48- vs 24-group

  // Distributed trace identity (docs/PROTOCOL.md §12). Propagated from
  // the wire by the transports; zero (invalid) for local callers that
  // do not trace, in which case the service mints one per request so
  // every span tree has an id.
  obs::TraceContext trace;
};

struct ServiceResponse {
  std::vector<Neighbor> neighbors;  // k-NN kinds
  std::vector<int> ids;             // range kinds
  QueryCost cost;                   // zero for cache hits
  bool cache_hit = false;
  double latency_seconds = 0.0;  // submission -> completion
  // Generation of the snapshot that produced (or cached) this result.
  // Always a generation that was current at some point between the
  // request's admission and its completion.
  uint64_t generation = 0;
  // Trace id echo (docs/PROTOCOL.md §12): the id the request carried,
  // or the one the service minted when it carried none. Transports
  // append it to the response's final chunk so the client can correlate.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
};

struct QueryServiceOptions {
  int num_threads = 0;        // 0 = hardware concurrency
  size_t max_queue = 1024;    // admission bound (queued, not running)
  size_t cache_bytes = 32ull << 20;  // 0 disables the result cache
  int cache_shards = 16;

  // Deployment emulation: after executing a request, the worker sleeps
  // the request's simulated I/O time (cost.IoSeconds(io_params)). This
  // turns the paper's *charged* cost model into real wall-clock
  // latency, so concurrent queries overlap their I/O waits exactly the
  // way a disk-backed server would; cache hits skip the sleep along
  // with the computation. Off by default (pure CPU execution).
  bool simulate_io_wait = false;
  IoCostParams io_params;  // conversion constants for the emulated wait

  // Observability (docs/OBSERVABILITY.md): every request leaves a
  // QueryTrace in the flight recorder; traces at or above the slow
  // threshold are additionally retained in a separate slow ring.
  size_t flight_recorder_capacity = 256;
  size_t slow_ring_capacity = 64;
  double slow_trace_seconds = 0.100;

  // Hierarchical span tracing (obs/span.h). When enabled every request
  // publishes a span tree into the span ring; the record path stays
  // lock- and allocation-free either way, disabling only skips the
  // arena bookkeeping and the ring publication.
  bool enable_spans = true;
  size_t span_ring_capacity = 128;
};

class QueryService {
 public:
  // Serves `snapshot` (which the service holds a reference to until the
  // first swap; an owning snapshot from DbSnapshot::Create keeps its
  // database and engine alive for exactly as long as needed).
  explicit QueryService(std::shared_ptr<const DbSnapshot> snapshot,
                        QueryServiceOptions options = {});

  // Legacy convenience: wraps `db` and `engine` in a non-owning
  // generation-0 snapshot. They must outlive the service (and any
  // in-flight request) and are never mutated.
  QueryService(const CadDatabase* db, const QueryEngine* engine,
               QueryServiceOptions options = {});

  // Blocks until every queued and in-flight request has completed (the
  // pool drains; all futures returned by Submit resolve first).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Asynchronous submission. Returns kUnavailable immediately when the
  // admission queue is full; otherwise a future that resolves to the
  // response or a per-request error (kDeadlineExceeded, validation).
  StatusOr<std::future<StatusOr<ServiceResponse>>> Submit(
      ServiceRequest request);

  // Callback form of Submit for event-driven front-ends (the epoll
  // reactor transport in src/vsim/net/): instead of returning a future
  // someone must block on, invokes `done` exactly once, on the worker
  // thread that executed the request, with the same result Submit's
  // future would have carried. The admission contract is identical --
  // a full queue rejects synchronously with kUnavailable and `done` is
  // never invoked, so the caller can turn the rejection into a
  // backpressure signal (a kUnavailable wire frame) without waiting.
  // `done` must not block for long and must not call back into Submit
  // (it runs on a pool worker; a slow callback occupies a query slot).
  Status SubmitWithCallback(
      ServiceRequest request,
      std::function<void(StatusOr<ServiceResponse>)> done);

  // Synchronous convenience: submit + wait.
  StatusOr<ServiceResponse> Execute(ServiceRequest request);

  // Publishes a rebuilt snapshot. Returns kFailedPrecondition unless
  // `next->generation()` is strictly greater than the current
  // generation (monotonicity is what lets cache keys double as
  // invalidation tags). In-flight requests keep the snapshot they
  // already acquired; new requests see `next`. The displaced snapshot
  // is destroyed when its last in-flight request finishes. Safe to call
  // concurrently with Submit/Execute; concurrent swappers serialize on
  // the snapshot mutex.
  Status SwapSnapshot(std::shared_ptr<const DbSnapshot> next)
      EXCLUDES(snapshot_mu_);

  // The snapshot new requests would execute on right now (the reference
  // keeps it alive even across a subsequent swap).
  std::shared_ptr<const DbSnapshot> snapshot() const EXCLUDES(snapshot_mu_);
  uint64_t generation() const { return snapshot()->generation(); }

  // Quiesce the workers (in-flight tasks finish, queued ones wait).
  // Queued requests can still time out while paused.
  void Pause();
  void Resume();

  int num_threads() const { return pool_.num_threads(); }
  ServiceStatsSnapshot Stats() const {
    return stats_.Snapshot(cache_.stats());
  }
  const ResultCache& cache() const { return cache_; }
  void PrintStats(std::FILE* out = stdout) const {
    PrintServiceStats(Stats(), out);
  }

  // The unified metric namespace (Prometheus text exposition via
  // metrics().TextExposition()). The registry is also the attachment
  // point for front-end collectors: net::Server registers its own
  // connection counters here so one scrape covers the whole stack.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Recent / slow query traces (docs/OBSERVABILITY.md trace schema).
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }

  // Recent span trees (docs/OBSERVABILITY.md "Tracing"). Transports
  // publish their net-layer trees here too, so one ring holds every
  // layer of a trace.
  obs::SpanRing& span_ring() { return span_ring_; }
  const obs::SpanRing& span_ring() const { return span_ring_; }
  bool spans_enabled() const { return options_.enable_spans; }

 private:
  void RegisterMetrics();
  // Records the trace into the flight recorder and rolls its counters
  // and stage timings into the registry instruments.
  void RecordTrace(const obs::QueryTrace& trace);

  // Admission-control check shared by Submit and SubmitWithCallback:
  // accounts the submission and either reserves a queue slot (OK) or
  // rejects with kUnavailable.
  Status Admit();
  // The worker-side body shared by both submission forms: deadline
  // check, execution, stats, trace and span recording. Runs on a pool
  // thread with the queue slot from Admit() held. Timestamps are
  // obs::MonotonicNowNs() nanoseconds (deadline_ns = UINT64_MAX means
  // no deadline) so every stage boundary is span-attributable.
  StatusOr<ServiceResponse> RunAdmitted(const ServiceRequest& request,
                                        uint64_t submitted_ns,
                                        uint64_t deadline_ns);
  // Builds the service-layer span tree for one picked-up request
  // (request root, queue/admission children, engine-stage children
  // synthesized from the trace's measured stage splits) and publishes
  // it into the span ring. Allocation-free.
  void PublishSpans(const obs::TraceContext& context,
                    const obs::QueryTrace& trace, uint64_t submitted_ns,
                    uint64_t pickup_ns, uint64_t end_ns);
  StatusOr<ServiceResponse> RunRequest(const ServiceRequest& request);
  Status Validate(const ServiceRequest& request,
                  const CadDatabase& db) const;
  ResultCacheKey MakeKey(const ServiceRequest& request,
                         const ObjectRepr& query,
                         uint64_t generation) const;

  // RCU publication point: workers copy the shared_ptr under the mutex
  // (cheap refcount bump), swappers replace it. The mutex is held only
  // for the pointer copy, never during query execution.
  mutable Mutex snapshot_mu_{"service.snapshot"};
  std::shared_ptr<const DbSnapshot> snapshot_ GUARDED_BY(snapshot_mu_);

  // Immutable after construction (options_) or internally synchronized
  // (cache_, stats_, metrics_, recorder_, queued_, pool_); no mutex
  // needed.
  QueryServiceOptions options_;
  ResultCache cache_;
  ServiceStats stats_;
  obs::MetricsRegistry metrics_;
  obs::FlightRecorder recorder_;
  obs::SpanRing span_ring_;
  // Spans dropped by arena-capacity truncation, accumulated across
  // requests (surfaced as vsim_spans_truncated_total).
  std::atomic<uint64_t> spans_truncated_{0};

  // Registry-owned instruments recorded on the request path (the
  // pointers are stable for the registry's lifetime; recording through
  // them is lock- and allocation-free). Set once in RegisterMetrics().
  obs::Histogram* latency_hist_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* filter_stage_hist_ = nullptr;
  obs::Histogram* refine_stage_hist_ = nullptr;
  obs::Counter* approx_pruned_total_ = nullptr;
  obs::Counter* filter_hits_total_ = nullptr;
  obs::Counter* candidates_refined_total_ = nullptr;
  obs::Counter* hungarian_total_ = nullptr;
  obs::Counter* io_pages_total_ = nullptr;
  obs::Counter* io_bytes_total_ = nullptr;
  obs::Gauge* generation_gauge_ = nullptr;
  std::array<obs::Counter*, 5> queries_by_strategy_{};

  std::atomic<size_t> queued_{0};
  std::atomic<uint64_t> next_trace_id_{0};
  // Random per-service salt for minting trace ids when a request
  // carries none (set once at construction; not a clock, so the record
  // path stays raw-clock-free per the vsim-lint rule).
  uint64_t trace_seed_hi_ = 0;
  uint64_t trace_seed_lo_ = 0;
  // Declared last: destroyed first, so queued tasks drain while every
  // member they touch is still alive.
  ThreadPool pool_;
};

}  // namespace vsim

#endif  // VSIM_SERVICE_QUERY_SERVICE_H_
