#include "vsim/service/rebuilder.h"

#include <utility>

#include "vsim/common/stopwatch.h"

namespace vsim {

Rebuilder::Rebuilder(QueryService* service, DatabaseFactory factory,
                     IoCostParams params)
    : service_(service),
      factory_(std::move(factory)),
      params_(params),
      worker_([this]() { WorkerLoop(); }) {}

Rebuilder::~Rebuilder() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
  // Triggers that never ran still need their futures resolved. Take
  // them out under the lock: the worker is gone, but a stray Trigger()
  // racing destruction would otherwise read pending_ concurrently with
  // this drain. (Lock-discipline finding surfaced by the thread-safety
  // annotations: this loop used to touch pending_ with no lock held.)
  std::deque<std::promise<Status>> orphaned;
  {
    MutexLock lock(&mu_);
    orphaned.swap(pending_);
  }
  for (std::promise<Status>& promise : orphaned) {
    promise.set_value(
        Status::Unavailable("rebuilder destroyed before rebuild ran"));
  }
}

std::future<Status> Rebuilder::Trigger() {
  std::future<Status> result;
  {
    MutexLock lock(&mu_);
    if (stop_) {
      std::promise<Status> rejected;
      rejected.set_value(Status::Unavailable("rebuilder is shutting down"));
      return rejected.get_future();
    }
    pending_.emplace_back();
    result = pending_.back().get_future();
    ++stats_.triggered;
  }
  cv_.NotifyOne();
  return result;
}

void Rebuilder::Drain() {
  MutexLock lock(&mu_);
  while (!(pending_.empty() && !busy_)) idle_cv_.Wait(&mu_);
}

Rebuilder::Stats Rebuilder::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Status Rebuilder::RebuildOnce() {
  Stopwatch watch;
  StatusOr<CadDatabase> db = factory_();
  if (!db.ok()) return db.status();
  // Generation assignment: only this thread publishes, so current + 1
  // is free of races and keeps the sequence strictly monotonic.
  const uint64_t next_generation = service_->generation() + 1;
  std::shared_ptr<const DbSnapshot> snapshot =
      DbSnapshot::Create(std::move(db).value(), next_generation, params_);
  const Status published = service_->SwapSnapshot(std::move(snapshot));
  {
    MutexLock lock(&mu_);
    stats_.last_build_seconds = watch.ElapsedSeconds();
  }
  return published;
}

void Rebuilder::WorkerLoop() {
  for (;;) {
    std::promise<Status> promise;
    {
      MutexLock lock(&mu_);
      while (!(!pending_.empty() || stop_)) cv_.Wait(&mu_);
      if (stop_) return;  // unrun promises resolve in the destructor
      promise = std::move(pending_.front());
      pending_.pop_front();
      busy_ = true;
    }
    const Status status = RebuildOnce();
    {
      MutexLock lock(&mu_);
      busy_ = false;
      status.ok() ? ++stats_.published : ++stats_.failed;
    }
    promise.set_value(status);
    idle_cv_.NotifyAll();
  }
}

}  // namespace vsim
