// DbSnapshot: an immutable (database, index) pair tagged with a
// monotonically increasing generation number -- the unit of publication
// for online reindexing.
//
// The serving layer never mutates a database or an index in place.
// Instead, a rebuild (new objects, different r/k, different cover
// strategy) constructs a *fresh* CadDatabase + QueryEngine off-thread,
// wraps them in a DbSnapshot with the next generation number, and
// atomically swaps the service's current-snapshot pointer
// (QueryService::SwapSnapshot). This is the classic RCU-via-shared_ptr
// scheme:
//
//   - Readers (worker threads) acquire the current snapshot once per
//     request and hold a shared_ptr reference for the request's whole
//     execution, so a request observes exactly one generation
//     end-to-end even if a swap lands mid-query.
//   - The writer (one Rebuilder thread, or any external coordinator)
//     publishes a new snapshot; the old one is destroyed when the last
//     in-flight request drops its reference. No reader is ever blocked
//     and nothing is freed under a reader.
//
// Thread-safety: a DbSnapshot is immutable after construction and safe
// to share across any number of threads without synchronization (the
// same snapshot-immutable contract the engine's const query methods
// rely on; see docs/ARCHITECTURE.md "Snapshot lifecycle").
// Documented GUARDED_BY exclusion: every member is written exactly once
// inside Create/Wrap before the shared_ptr is published and never
// again; cross-thread visibility and lifetime are carried by the
// shared_ptr control block (acquire/release on the refcount), so no
// mutex exists for the analysis to check. The publication pointer
// itself lives in QueryService and *is* annotated
// (QueryService::snapshot_, GUARDED_BY(snapshot_mu_)).
#ifndef VSIM_SERVICE_DB_SNAPSHOT_H_
#define VSIM_SERVICE_DB_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "vsim/core/query_engine.h"
#include "vsim/core/similarity.h"

namespace vsim {

class DbSnapshot {
 public:
  // Owning constructor: moves the database in and builds the engine's
  // index structures over it (the expensive step a Rebuilder runs
  // off-thread). The returned snapshot is self-contained.
  static std::shared_ptr<const DbSnapshot> Create(CadDatabase db,
                                                  uint64_t generation,
                                                  IoCostParams params = {});

  // Owning constructor for disk-backed serving: like Create, but also
  // writes every object's vector set into a fresh VectorSetStore file
  // at `store_path` (`pool_pages` frames of sharded buffer pool) and
  // attaches it to the engine, so refinement fetches candidates through
  // real page I/O instead of the flat per-candidate simulation. The
  // snapshot owns the store; it is serveable concurrently exactly like
  // a RAM-resident snapshot (the pool's fetch path is thread-safe).
  //
  // By default the RAM copies of the demoted vector sets are released
  // after the engine's index build (the store holds the authoritative
  // copies; keeping both doubled the resident footprint). QueryService
  // hydrates stored-id queries back from the store, so serving is
  // unaffected. Pass keep_ram_sets = true to retain the duplicates --
  // for callers that hit the engine's stored-id overloads directly,
  // bypassing the service.
  static StatusOr<std::shared_ptr<const DbSnapshot>> CreateDiskBacked(
      CadDatabase db, const std::string& store_path, uint64_t generation,
      IoCostParams params = {}, size_t pool_pages = 64,
      bool keep_ram_sets = false);

  // Non-owning wrapper for callers that manage db/engine lifetime
  // themselves (the legacy QueryService constructor). `db` and `engine`
  // must outlive every reference to the snapshot.
  static std::shared_ptr<const DbSnapshot> Wrap(const CadDatabase* db,
                                                const QueryEngine* engine,
                                                uint64_t generation = 0);

  const CadDatabase& db() const { return *db_; }
  const QueryEngine& engine() const { return *engine_; }
  uint64_t generation() const { return generation_; }
  // The attached disk store, or nullptr for RAM-resident snapshots.
  // Exposed so the service's metrics collector can scrape the buffer
  // pool's counters (vsim_cache_pool_*).
  const VectorSetStore* store() const { return owned_store_.get(); }

  DbSnapshot(const DbSnapshot&) = delete;
  DbSnapshot& operator=(const DbSnapshot&) = delete;

 private:
  DbSnapshot() = default;

  // Owned storage (null for wrapped snapshots). The database lives in a
  // unique_ptr so its address is stable for the engine that indexes it;
  // same for the store the engine's refinement path reads through.
  std::unique_ptr<const CadDatabase> owned_db_;
  std::unique_ptr<VectorSetStore> owned_store_;
  std::unique_ptr<const QueryEngine> owned_engine_;

  const CadDatabase* db_ = nullptr;
  const QueryEngine* engine_ = nullptr;
  uint64_t generation_ = 0;
};

}  // namespace vsim

#endif  // VSIM_SERVICE_DB_SNAPSHOT_H_
