#include "vsim/service/result_cache.h"

namespace vsim {

uint64_t Fnv1aHash(const void* data, size_t bytes, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

uint64_t DigestDoubles(const std::vector<double>& v, uint64_t h) {
  const size_t n = v.size();
  h = Fnv1aHash(&n, sizeof(n), h);
  if (!v.empty()) h = Fnv1aHash(v.data(), n * sizeof(double), h);
  return h;
}

}  // namespace

uint64_t DigestQueryObject(const ObjectRepr& query) {
  uint64_t h = 0xcbf29ce484222325ull;
  const size_t sets = query.vector_set.size();
  h = Fnv1aHash(&sets, sizeof(sets), h);
  for (const FeatureVector& v : query.vector_set.vectors) {
    h = DigestDoubles(v, h);
  }
  h = DigestDoubles(query.centroid, h);
  h = DigestDoubles(query.cover_vector, h);
  return h;
}

ResultCache::ResultCache(size_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes) {
  if (num_shards < 1) num_shards = 1;
  size_t shards = 1;
  while (shards < static_cast<size_t>(num_shards)) shards <<= 1;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = capacity_bytes_ / shards;
  if (capacity_bytes_ > 0 && shard_capacity_ == 0) shard_capacity_ = 1;
}

bool ResultCache::Lookup(const ResultCacheKey& key, CachedResult* out) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key, CachedResult value) {
  if (!enabled()) return;
  const size_t value_bytes = value.ApproxBytes();
  if (value_bytes > shard_capacity_) return;  // would evict a whole shard
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->second.ApproxBytes();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->second = std::move(value);
    shard.bytes += value_bytes;
  } else {
    shard.lru.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += value_bytes;
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim.second.ApproxBytes();
    shard.map.erase(victim.first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

size_t ResultCache::ApproxBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->bytes;
  }
  return total;
}

size_t ResultCache::entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->lru.size();
  }
  return total;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vsim
