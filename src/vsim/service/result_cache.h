// Sharded LRU cache for refined query results. Refinement cost is
// dominated by the O(k^3) Hungarian matching per candidate, so repeated
// and near-duplicate queries (the common case in interactive CAD
// sessions: the same part re-queried with the same k) are served from
// the cache without touching the engine at all.
//
// Keys combine a 64-bit digest of the query's feature payload with the
// full query shape (kind, strategy, k / eps, invariance flags, approx
// level) AND the
// database snapshot's generation; two requests collide only if every
// field including the digest matches. Tagging keys with the generation
// is what makes snapshot swaps safe without a stop-the-world flush: a
// result computed against generation g can only ever be replayed to a
// request that also executed on generation g, so entries from a
// displaced snapshot simply stop matching and age out via LRU. (Before
// generation tagging, rebuilding the database behind the service
// silently served stale hits -- see SnapshotSwapTest.)
//
// Thread-safety: all public methods are safe to call concurrently.
// Shards are independent mutex + LRU-list + hash-map triples, so
// concurrent lookups on different shards never contend; statistics
// counters are relaxed atomics.
#ifndef VSIM_SERVICE_RESULT_CACHE_H_
#define VSIM_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vsim/common/thread_annotations.h"
#include "vsim/core/similarity.h"
#include "vsim/index/xtree.h"

namespace vsim {

// FNV-1a over an arbitrary byte range.
uint64_t Fnv1aHash(const void* data, size_t bytes, uint64_t seed = 0xcbf29ce484222325ull);

// Digest of everything about a query object that the engine's distance
// computations can observe (vector set, centroid, cover vector).
uint64_t DigestQueryObject(const ObjectRepr& query);

struct ResultCacheKey {
  uint64_t digest = 0;
  uint64_t generation = 0;  // DbSnapshot generation the result came from
  uint8_t kind = 0;        // QueryKind underlying value
  uint8_t strategy = 0;    // QueryStrategy underlying value
  uint8_t invariance = 0;  // 0 none, 1 rotations, 2 rotations+reflections
  uint8_t approx_level = 0;  // approximate pre-filter level (QueryOptions)
  int32_t k = 0;           // k-NN parameter, 0 for range queries
  double eps = 0.0;        // range parameter, 0 for k-NN

  bool operator==(const ResultCacheKey&) const = default;
};

struct ResultCacheKeyHash {
  size_t operator()(const ResultCacheKey& key) const {
    uint64_t h = key.digest;
    h = Fnv1aHash(&key.generation, sizeof(key.generation), h);
    const uint32_t shape = (static_cast<uint32_t>(key.approx_level) << 24) |
                           (static_cast<uint32_t>(key.kind) << 16) |
                           (static_cast<uint32_t>(key.strategy) << 8) |
                           key.invariance;
    h = Fnv1aHash(&shape, sizeof(shape), h);
    h = Fnv1aHash(&key.k, sizeof(key.k), h);
    h = Fnv1aHash(&key.eps, sizeof(key.eps), h);
    return static_cast<size_t>(h);
  }
};

// Cached payload: neighbors for k-NN kinds, ids for range kinds.
struct CachedResult {
  std::vector<Neighbor> neighbors;
  std::vector<int> ids;

  size_t ApproxBytes() const {
    return sizeof(CachedResult) + neighbors.capacity() * sizeof(Neighbor) +
           ids.capacity() * sizeof(int);
  }
};

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ResultCache {
 public:
  // capacity_bytes = 0 disables the cache (Lookup always misses,
  // Insert is a no-op). num_shards is rounded up to a power of two.
  explicit ResultCache(size_t capacity_bytes, int num_shards = 16);

  bool enabled() const { return capacity_bytes_ > 0; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Copies the cached value into *out and returns true on a hit.
  // Takes (only) the target shard's mutex.
  bool Lookup(const ResultCacheKey& key, CachedResult* out);

  // Inserts (or refreshes) an entry, evicting least-recently-used
  // entries of the target shard until it fits its byte budget. Values
  // larger than a whole shard are not cached.
  void Insert(const ResultCacheKey& key, CachedResult value);

  void Clear();

  size_t ApproxBytes() const;
  size_t entries() const;
  ResultCacheStats stats() const;

 private:
  struct Shard {
    Mutex mu{"service.result_cache.shard"};
    // Most-recently-used at the front.
    std::list<std::pair<ResultCacheKey, CachedResult>> lru GUARDED_BY(mu);
    std::unordered_map<ResultCacheKey, decltype(lru)::iterator,
                       ResultCacheKeyHash>
        map GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const ResultCacheKey& key) {
    const size_t h = ResultCacheKeyHash()(key);
    // The low bits feed the hash map's bucket choice; use high bits
    // for the shard so the two are decorrelated.
    return *shards_[(h >> 48) & (shards_.size() - 1)];
  }

  // capacity_bytes_/shard_capacity_/shards_ (the vector itself, not the
  // shard contents) are immutable after construction; the statistics
  // counters are relaxed atomics deliberately outside the shard locks
  // -- they are monotone telemetry, and stats() may observe a count a
  // step ahead of the shard state it races with.
  size_t capacity_bytes_ = 0;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace vsim

#endif  // VSIM_SERVICE_RESULT_CACHE_H_
