// Bridges a ShardedBufferPool's counters into MetricsRegistry scrapes.
// The pool keeps its own relaxed atomics (no double bookkeeping on the
// fetch hot path); a QueryService collector calls AppendPoolSamples at
// scrape time to emit the vsim_cache_pool_* series documented in
// docs/OBSERVABILITY.md. Tiered counters carry a tier="hot"/"cold"
// label so dashboards can plot the split without separate families.
#ifndef VSIM_CACHE_METRICS_ADAPTER_H_
#define VSIM_CACHE_METRICS_ADAPTER_H_

#include <vector>

#include "vsim/cache/page_cache.h"
#include "vsim/obs/metrics.h"

namespace vsim::cache {

// Appends one sample per vsim_cache_pool_* series from a stats
// snapshot. Safe wherever `pool` is alive: Stats() is internally
// synchronized. Callable from a registry collector (it only appends to
// `out`, never re-enters the registry).
void AppendPoolSamples(const ShardedBufferPool& pool,
                       std::vector<obs::MetricSample>* out);

}  // namespace vsim::cache

#endif  // VSIM_CACHE_METRICS_ADAPTER_H_
