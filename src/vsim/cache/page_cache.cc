#include "vsim/cache/page_cache.h"

#include <cassert>
#include <cstring>
#include <thread>
#include <utility>

namespace vsim::cache {

// -- PageHandle -------------------------------------------------------

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    if (frame_ != nullptr) {
      frame_->pin_count.fetch_sub(1, std::memory_order_release);
    }
    frame_ = std::exchange(other.frame_, nullptr);
    page_ = std::exchange(other.page_, 0);
  }
  return *this;
}

PageHandle::~PageHandle() {
  if (frame_ != nullptr) {
    // Release ordering publishes the holder's reads/writes of the frame
    // data to the evictor, which observes pin_count == 0 with acquire
    // semantics under the shard's exclusive lock.
    frame_->pin_count.fetch_sub(1, std::memory_order_release);
  }
}

char* PageHandle::data() {
  assert(frame_ != nullptr);
  return frame_->data.data();
}

const char* PageHandle::data() const {
  assert(frame_ != nullptr);
  return frame_->data.data();
}

void PageHandle::MarkDirty() {
  assert(frame_ != nullptr);
  frame_->dirty.store(true, std::memory_order_release);
}

PageTier PageHandle::tier() const {
  assert(frame_ != nullptr);
  return static_cast<PageTier>(frame_->tier.load(std::memory_order_relaxed));
}

void PageHandle::SetTier(PageTier tier) {
  assert(frame_ != nullptr);
  frame_->tier.store(static_cast<uint8_t>(tier), std::memory_order_relaxed);
}

// -- ShardedBufferPool ------------------------------------------------

namespace {

size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

ShardedBufferPool::ShardedBufferPool(PagedFile* file, PoolOptions options)
    : file_(file) {
  capacity_ = options.capacity == 0 ? 1 : options.capacity;
  size_t want = options.shards == 0 ? std::min<size_t>(8, capacity_)
                                    : options.shards;
  size_t nshards = FloorPow2(std::min(std::max<size_t>(want, 1), capacity_));

  shards_.reserve(nshards);
  // Distribute frames round-robin so every shard gets at least one.
  size_t base = capacity_ / nshards;
  size_t extra = capacity_ % nshards;
  for (size_t s = 0; s < nshards; ++s) {
    auto shard = std::make_unique<Shard>();
    size_t frames = base + (s < extra ? 1 : 0);
    shard->frames = std::vector<Frame>(frames);
    shard->free_frames.reserve(frames);
    // Hand out free frames in index order (pop from the back).
    for (size_t i = frames; i-- > 0;) {
      shard->frames[i].data.resize(file_->page_size());
      shard->free_frames.push_back(i);
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedBufferPool::~ShardedBufferPool() {
  // Best effort, mirroring PagedFile's close-time header write. Errors
  // surface on the explicit FlushAll path, not in a destructor.
  (void)FlushAll();
}

ShardedBufferPool::Shard& ShardedBufferPool::ShardOf(PageId page) {
  // Shard count is a power of two; a multiplicative hash spreads the
  // sequential PageIds PagedFile allocates across shards.
  uint64_t h = page * 0x9e3779b97f4a7c15ULL;
  return *shards_[(h >> 32) & (shards_.size() - 1)];
}

PageHandle ShardedBufferPool::PinResident(Frame& frame, PageId page) {
  frame.pin_count.fetch_add(1, std::memory_order_acquire);
  bool hot = static_cast<PageTier>(frame.tier.load(
                 std::memory_order_relaxed)) == PageTier::kHot;
  if (hot) {
    counters_.hot_hits.fetch_add(1, std::memory_order_relaxed);
    frame.referenced.store(true, std::memory_order_relaxed);
  } else {
    counters_.cold_hits.fetch_add(1, std::memory_order_relaxed);
    // A repeat hit on a cold page proves re-use: the false -> true
    // clock-bit flip promotes the page into the hot tier, where the
    // sweep spares it while any cold victim exists. This is the
    // hot-key-retention half of the tiering policy -- index pages are
    // retiered explicitly (Retier/SetTier); data pages earn hotness.
    if (!frame.referenced.exchange(true, std::memory_order_relaxed)) {
      frame.tier.store(static_cast<uint8_t>(PageTier::kHot),
                       std::memory_order_relaxed);
      counters_.promotions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return PageHandle(&frame, page);
}

StatusOr<size_t> ShardedBufferPool::GrabFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t idx = shard.free_frames.back();
    shard.free_frames.pop_back();
    return idx;
  }

  const size_t n = shard.frames.size();
  // Two passes: cold-only first, then (when the cold tier had no
  // unpinned candidate at all) a hot sweep. Each pass is a CLOCK
  // second-chance scan: a set reference bit buys one more lap.
  for (int pass = 0; pass < 2; ++pass) {
    const bool cold_only = pass == 0;
    // 2N steps: worst case every frame's reference bit must be cleared
    // once before the second lap finds a victim.
    for (size_t step = 0; step < 2 * n; ++step) {
      Frame& frame = shard.frames[shard.clock_hand];
      size_t idx = shard.clock_hand;
      shard.clock_hand = (shard.clock_hand + 1) % n;

      if (frame.pin_count.load(std::memory_order_acquire) != 0) continue;
      bool hot = static_cast<PageTier>(frame.tier.load(
                     std::memory_order_relaxed)) == PageTier::kHot;
      if (cold_only && hot) continue;
      if (frame.referenced.exchange(false, std::memory_order_relaxed)) {
        continue;  // second chance
      }

      // Victim. pin_count can no longer rise: new pins require at
      // least the shared lock, excluded by our exclusive hold.
      if (frame.dirty.load(std::memory_order_acquire)) {
        VSIM_RETURN_NOT_OK(
            file_->Write(frame.page, frame.data.data()));
        frame.dirty.store(false, std::memory_order_relaxed);
        counters_.writebacks.fetch_add(1, std::memory_order_relaxed);
      }
      shard.table.erase(frame.page);
      frame.page = 0;
      if (hot) {
        counters_.hot_evictions.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters_.cold_evictions.fetch_add(1, std::memory_order_relaxed);
      }
      return idx;
    }
  }
  return Status(StatusCode::kFailedPrecondition,
                "buffer pool shard exhausted: all frames pinned");
}

StatusOr<PageHandle> ShardedBufferPool::Fetch(PageId page, PageTier tier,
                                              bool* miss) {
  if (miss != nullptr) *miss = false;
  Shard& shard = ShardOf(page);

  // Fast path: page-table hit under the shared (reader) lock.
  {
    ReaderMutexLock lock(&shard.mu);
    auto it = shard.table.find(page);
    if (it != shard.table.end()) {
      return PinResident(shard.frames[it->second], page);
    }
  }

  // Miss path: exclusive lock, re-check (another thread may have loaded
  // the page between our unlock and relock), then evict + read. When
  // every frame of the shard is transiently pinned by concurrent
  // readers, yield and retry a bounded number of times before giving
  // up: pins on the serving path are held only for the duration of one
  // record copy, so a victim frees up almost immediately. Callers hold
  // at most one pin at a time (VectorSetStore::Get, DiskXTree's
  // FetchNode), so a retrying thread holds no pins and cannot deadlock
  // the shard it is waiting on.
  constexpr int kPinWaitAttempts = 256;
  for (int attempt = 0;; ++attempt) {
    {
      WriterMutexLock lock(&shard.mu);
      auto it = shard.table.find(page);
      if (it != shard.table.end()) {
        return PinResident(shard.frames[it->second], page);
      }

      StatusOr<size_t> grabbed = GrabFrame(shard);
      if (!grabbed.ok() && grabbed.status().code() ==
                               StatusCode::kFailedPrecondition &&
          attempt < kPinWaitAttempts) {
        // Fall through to the yield below, outside the lock.
      } else {
        VSIM_RETURN_NOT_OK(grabbed.status());
        size_t idx = *grabbed;
        Frame& frame = shard.frames[idx];
        // The file read runs under the exclusive shard lock: same-shard
        // hits stall behind it, other shards proceed (see header
        // trade-off note).
        Status read = file_->Read(page, frame.data.data());
        if (!read.ok()) {
          shard.free_frames.push_back(idx);
          return read;
        }
        frame.page = page;
        frame.dirty.store(false, std::memory_order_relaxed);
        frame.referenced.store(false, std::memory_order_relaxed);
        frame.tier.store(static_cast<uint8_t>(tier),
                         std::memory_order_relaxed);
        frame.pin_count.store(1, std::memory_order_relaxed);
        shard.table.emplace(page, idx);
        counters_.misses.fetch_add(1, std::memory_order_relaxed);
        if (miss != nullptr) *miss = true;
        return PageHandle(&frame, page);
      }
    }
    std::this_thread::yield();
  }
}

StatusOr<PageHandle> ShardedBufferPool::Allocate(PageTier tier) {
  // PagedFile::Allocate is internally synchronized; the page id it
  // returns is not yet in any shard's table, so no other thread can
  // race us to bind it.
  VSIM_ASSIGN_OR_RETURN(PageId page, file_->Allocate());
  Shard& shard = ShardOf(page);

  WriterMutexLock lock(&shard.mu);
  VSIM_ASSIGN_OR_RETURN(size_t idx, GrabFrame(shard));
  Frame& frame = shard.frames[idx];
  std::memset(frame.data.data(), 0, frame.data.size());
  frame.page = page;
  frame.dirty.store(true, std::memory_order_relaxed);
  frame.referenced.store(false, std::memory_order_relaxed);
  frame.tier.store(static_cast<uint8_t>(tier), std::memory_order_relaxed);
  frame.pin_count.store(1, std::memory_order_relaxed);
  shard.table.emplace(page, idx);
  return PageHandle(&frame, page);
}

void ShardedBufferPool::Retier(PageId page, PageTier tier) {
  Shard& shard = ShardOf(page);
  ReaderMutexLock lock(&shard.mu);
  auto it = shard.table.find(page);
  if (it == shard.table.end()) return;
  shard.frames[it->second].tier.store(static_cast<uint8_t>(tier),
                                      std::memory_order_relaxed);
}

Status ShardedBufferPool::FlushAll() {
  for (auto& shard : shards_) {
    WriterMutexLock lock(&shard->mu);
    for (Frame& frame : shard->frames) {
      if (frame.page == 0) continue;
      if (!frame.dirty.load(std::memory_order_acquire)) continue;
      VSIM_RETURN_NOT_OK(file_->Write(frame.page, frame.data.data()));
      frame.dirty.store(false, std::memory_order_relaxed);
      counters_.writebacks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return file_->Sync();
}

PoolStatsSnapshot ShardedBufferPool::Stats() const {
  PoolStatsSnapshot snap;
  snap.hot_hits = counters_.hot_hits.load(std::memory_order_relaxed);
  snap.cold_hits = counters_.cold_hits.load(std::memory_order_relaxed);
  snap.misses = counters_.misses.load(std::memory_order_relaxed);
  snap.hot_evictions =
      counters_.hot_evictions.load(std::memory_order_relaxed);
  snap.cold_evictions =
      counters_.cold_evictions.load(std::memory_order_relaxed);
  snap.promotions = counters_.promotions.load(std::memory_order_relaxed);
  snap.writebacks = counters_.writebacks.load(std::memory_order_relaxed);
  snap.capacity_frames = capacity_;
  snap.shard_count = shards_.size();
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(&shard->mu);
    for (const Frame& frame : shard->frames) {
      if (frame.page == 0) continue;
      bool hot = static_cast<PageTier>(frame.tier.load(
                     std::memory_order_relaxed)) == PageTier::kHot;
      (hot ? snap.resident_hot : snap.resident_cold) += 1;
      if (frame.pin_count.load(std::memory_order_relaxed) > 0) {
        snap.pinned_frames += 1;
      }
    }
  }
  return snap;
}

void ShardedBufferPool::ResetStats() {
  counters_.hot_hits.store(0, std::memory_order_relaxed);
  counters_.cold_hits.store(0, std::memory_order_relaxed);
  counters_.misses.store(0, std::memory_order_relaxed);
  counters_.hot_evictions.store(0, std::memory_order_relaxed);
  counters_.cold_evictions.store(0, std::memory_order_relaxed);
  counters_.promotions.store(0, std::memory_order_relaxed);
  counters_.writebacks.store(0, std::memory_order_relaxed);
}

}  // namespace vsim::cache
