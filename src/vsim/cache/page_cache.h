// Concurrent sharded buffer pool with hot/cold page tiering: the
// storage layer's replacement for the old single-thread LRU BufferPool,
// built so the disk-backed query path (QueryEngine::AttachStore,
// DiskXTree) can be served by many worker threads at once.
//
// Structure (latch per partition):
//
//   - PageIds hash onto N shards. Each shard owns a fixed slice of the
//     frame budget, a page table (PageId -> frame), and one SharedMutex.
//     Threads touching different shards never contend.
//   - The page-table HIT path takes only the shard's *shared* lock: the
//     table cannot change under a reader, pinning is an atomic
//     increment, and the clock reference bit is an atomic store -- so
//     any number of hits on one shard proceed in parallel.
//   - Misses, evictions and allocations take the shard's exclusive
//     lock. Page I/O runs under it; sharding bounds the collateral
//     stall to one partition (the classic latch-per-partition
//     trade-off, chosen over per-frame I/O latches for provability).
//
// Tiering (hot/cold, in the style of RAM-hot / disk-cold key-value
// splits): every resident frame is tagged kHot or kCold. Eviction runs
// a CLOCK sweep over *cold* frames first and touches hot frames only
// when no unpinned cold frame exists, so the filter step's working set
// (X-tree inner nodes, centroid pages -- fetched with a kHot hint or
// retiered via PageHandle::SetTier) stays resident while bulky
// vector-set leaf pages churn underneath. A cold page that takes a
// repeat hit while resident has proven re-use and is *promoted* into
// the hot tier (counted in `promotions`): retention is earned by
// access, exactly the hot-key split's admission rule, while index
// pages can be retiered explicitly up front (Retier / SetTier).
//
// Pin semantics: Fetch/Allocate return a pin-counted PageHandle that is
// safe to hold, move and destroy on any thread (unpin is one atomic
// decrement, no lock). A pinned frame is never evicted; when every
// frame of the target shard is pinned, Fetch yields and retries
// briefly (momentary pin spikes are the common case under concurrent
// serving), failing with kFailedPrecondition only when the shard stays
// saturated by held pins.
//
// Thread-safety: all public methods of ShardedBufferPool and PageHandle
// are safe to call concurrently from any thread. The one carve-out is
// writes through a handle's data(): the caller must not race FlushAll
// with its own writes to a pinned dirty page (the build phase is
// single-writer by construction; serving is read-only).
#ifndef VSIM_CACHE_PAGE_CACHE_H_
#define VSIM_CACHE_PAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vsim/common/status.h"
#include "vsim/common/thread_annotations.h"
#include "vsim/storage/paged_file.h"

namespace vsim::cache {

// Retention class of a resident page (see tiering notes above).
enum class PageTier : uint8_t { kCold = 0, kHot = 1 };

struct PoolOptions {
  // Total frames across all shards (>= 1; each frame holds one page).
  size_t capacity = 64;
  // Number of latch partitions; 0 picks min(8, capacity), and any value
  // is clamped to [1, capacity] and rounded down to a power of two.
  size_t shards = 0;
};

// Scrape-time view of the pool's counters and occupancy. Counters are
// monotone (relaxed atomics underneath: totals converge, a snapshot may
// lag in-flight operations by design); occupancy is sampled per shard
// under its shared lock.
struct PoolStatsSnapshot {
  uint64_t hot_hits = 0;        // page-table hits on hot frames
  uint64_t cold_hits = 0;       // page-table hits on cold frames
  uint64_t misses = 0;          // fetches that read the file
  uint64_t hot_evictions = 0;   // hot frames reclaimed (cold tier empty)
  uint64_t cold_evictions = 0;  // cold frames reclaimed
  uint64_t promotions = 0;      // cold pages promoted to the hot tier
                                // by a repeat hit while resident
  uint64_t writebacks = 0;      // dirty pages written on eviction/flush
  uint64_t resident_hot = 0;    // occupancy at snapshot time
  uint64_t resident_cold = 0;
  uint64_t pinned_frames = 0;
  uint64_t capacity_frames = 0;
  uint64_t shard_count = 0;

  uint64_t hits() const { return hot_hits + cold_hits; }
  uint64_t evictions() const { return hot_evictions + cold_evictions; }
};

class ShardedBufferPool;

namespace internal {

// One page-sized buffer plus its control word(s). Frames live in a
// per-shard vector sized at construction: addresses are stable, so a
// PageHandle can hold a bare Frame* across its lifetime.
struct Frame {
  // Which page the frame holds (0 = unbound). Bound/unbound only under
  // the owning shard's exclusive lock; stable while any shared or
  // exclusive hold is live, which is what lets the hit path trust the
  // page-table entry it found.
  PageId page = 0;
  // Lock-free control bits. pin_count gates eviction (checked under the
  // exclusive lock; incremented under at least a shared lock, so the
  // check cannot race a new pin). referenced is the CLOCK bit. dirty
  // and tier are plain state with atomic access so handle methods need
  // no lock.
  std::atomic<int> pin_count{0};
  std::atomic<bool> dirty{false};
  std::atomic<bool> referenced{false};
  std::atomic<uint8_t> tier{static_cast<uint8_t>(PageTier::kCold)};
  std::vector<char> data;
};

}  // namespace internal

// RAII pin on a resident page. While alive, the frame cannot be evicted
// and data() stays valid. Move-only; destruction (unpin) is one atomic
// decrement and may happen on any thread.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  char* data();
  const char* data() const;
  PageId page() const { return page_; }

  // Marks the frame dirty: written back on eviction / FlushAll.
  void MarkDirty();

  // Retention tier of the underlying frame.
  PageTier tier() const;
  // Retiers the frame (e.g. a DiskXTree node parsed as an inner node is
  // promoted to the hot tier for its next residency decision).
  void SetTier(PageTier tier);

  bool valid() const { return frame_ != nullptr; }

 private:
  friend class ShardedBufferPool;
  PageHandle(internal::Frame* frame, PageId page)
      : frame_(frame), page_(page) {}

  internal::Frame* frame_ = nullptr;
  PageId page_ = 0;
};

class ShardedBufferPool {
 public:
  // `file` must outlive the pool and is shared with all other users of
  // the pool (PagedFile is internally synchronized). All frames are
  // allocated up front.
  ShardedBufferPool(PagedFile* file, PoolOptions options);
  // Convenience: `capacity` frames, auto shard count.
  ShardedBufferPool(PagedFile* file, size_t capacity)
      : ShardedBufferPool(file, PoolOptions{capacity, 0}) {}

  ShardedBufferPool(const ShardedBufferPool&) = delete;
  ShardedBufferPool& operator=(const ShardedBufferPool&) = delete;
  ~ShardedBufferPool();

  // Pins the page, reading it from the file on a miss (a newly loaded
  // page enters at `tier`; a resident page keeps its current tier --
  // use PageHandle::SetTier to retier). `miss`, when given, reports
  // whether THIS call read the file, which is what the I/O cost
  // accounting charges (a global miss-counter delta would misattribute
  // concurrent callers' misses). When every frame of the page's shard
  // is pinned, yields and retries a bounded number of times (pins on
  // the read path are momentary), then fails with kFailedPrecondition
  // if the shard stays saturated -- i.e. when frames are *held* pinned,
  // not merely in transit.
  StatusOr<PageHandle> Fetch(PageId page, PageTier tier = PageTier::kCold,
                             bool* miss = nullptr);

  // Allocates a fresh page in the file and pins it (zeroed, dirty).
  StatusOr<PageHandle> Allocate(PageTier tier = PageTier::kCold);

  // Retiers `page` if it is currently resident (no-op otherwise; the
  // next Fetch can pass the tier as its hint instead). Cheaper than
  // holding a PageHandle just to SetTier: a shared-lock table lookup
  // plus one atomic store, no pin. DiskXTree uses this to promote an
  // inner node's pages after parsing without pinning a multi-page
  // supernode's frames all at once.
  void Retier(PageId page, PageTier tier);

  // Writes back every dirty frame and syncs the file. Not to be raced
  // with writes through pinned handles (see class comment).
  Status FlushAll();

  // Counter + occupancy snapshot (see PoolStatsSnapshot).
  PoolStatsSnapshot Stats() const;

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  // Aggregate convenience accessors (kept API-compatible with the old
  // single-thread pool for benches and the ablation harness).
  uint64_t hits() const { return Stats().hits(); }
  uint64_t misses() const {
    return counters_.misses.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const { return Stats().evictions(); }
  void ResetStats();

 private:
  using Frame = internal::Frame;

  struct Shard {
    mutable SharedMutex mu{"cache.shard"};
    // PageId -> index into `frames`. Reads under at least a shared
    // hold; inserts/erases under the exclusive hold.
    std::unordered_map<PageId, size_t> table GUARDED_BY(mu);
    // Fixed at construction (vector never resizes; Frame addresses are
    // stable). Frame *bindings* (page member) follow the table's lock
    // regime; frame control bits are atomics.
    std::vector<Frame> frames;
    std::vector<size_t> free_frames GUARDED_BY(mu);  // never-bound frames
    size_t clock_hand GUARDED_BY(mu) = 0;
  };

  // Monotone pool-wide counters (relaxed; totals converge).
  struct Counters {
    std::atomic<uint64_t> hot_hits{0};
    std::atomic<uint64_t> cold_hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> hot_evictions{0};
    std::atomic<uint64_t> cold_evictions{0};
    std::atomic<uint64_t> promotions{0};
    std::atomic<uint64_t> writebacks{0};
  };

  Shard& ShardOf(PageId page);

  // Pins `frame` and records the hit/promotion counters. Requires at
  // least a shared hold on the owning shard (the annotation is the
  // stronger exclusive REQUIRES on the miss path's re-check; the hit
  // path inlines the same logic under its shared hold).
  PageHandle PinResident(Frame& frame, PageId page);

  // Finds a frame for a new page under the shard's exclusive lock: a
  // never-bound frame, else a CLOCK sweep over unpinned cold frames,
  // else (only when no cold candidate exists) over unpinned hot frames.
  // Writes back the victim if dirty.
  StatusOr<size_t> GrabFrame(Shard& shard) REQUIRES(shard.mu);

  PagedFile* file_;
  size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable Counters counters_;
};

}  // namespace vsim::cache

#endif  // VSIM_CACHE_PAGE_CACHE_H_
