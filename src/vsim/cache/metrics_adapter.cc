#include "vsim/cache/metrics_adapter.h"

namespace vsim::cache {

void AppendPoolSamples(const ShardedBufferPool& pool,
                       std::vector<obs::MetricSample>* out) {
  const PoolStatsSnapshot s = pool.Stats();
  using Type = obs::MetricSample::Type;
  auto counter = [out](const char* name, const char* help, const char* labels,
                       uint64_t v) {
    out->push_back({name, help, labels, Type::kCounter,
                    static_cast<double>(v)});
  };
  auto gauge = [out](const char* name, const char* help, const char* labels,
                     uint64_t v) {
    out->push_back(
        {name, help, labels, Type::kGauge, static_cast<double>(v)});
  };

  counter("vsim_cache_pool_hits_total",
          "Buffer-pool page-table hits by frame tier.", "tier=\"hot\"",
          s.hot_hits);
  counter("vsim_cache_pool_hits_total", "", "tier=\"cold\"", s.cold_hits);
  counter("vsim_cache_pool_misses_total",
          "Buffer-pool fetches that read the paged file.", "", s.misses);
  counter("vsim_cache_pool_evictions_total",
          "Buffer-pool frames reclaimed by the clock sweep, by the "
          "evicted frame's tier.",
          "tier=\"hot\"", s.hot_evictions);
  counter("vsim_cache_pool_evictions_total", "", "tier=\"cold\"",
          s.cold_evictions);
  counter("vsim_cache_pool_promotions_total",
          "Cold pages promoted to the hot tier by a repeat hit while "
          "resident.",
          "", s.promotions);
  counter("vsim_cache_pool_writebacks_total",
          "Dirty pages written back on eviction or flush.", "",
          s.writebacks);
  gauge("vsim_cache_pool_resident_pages",
        "Resident buffer-pool frames by tier at scrape time.",
        "tier=\"hot\"", s.resident_hot);
  gauge("vsim_cache_pool_resident_pages", "", "tier=\"cold\"",
        s.resident_cold);
  gauge("vsim_cache_pool_pinned_frames",
        "Frames pinned by live PageHandles at scrape time.", "",
        s.pinned_frames);
  gauge("vsim_cache_pool_capacity_frames",
        "Total frames across all shards (fixed at pool construction).", "",
        s.capacity_frames);
  gauge("vsim_cache_pool_shards",
        "Latch partitions in the pool (fixed at pool construction).", "",
        s.shard_count);
}

}  // namespace vsim::cache
