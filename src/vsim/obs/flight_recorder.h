// Flight recorder: a fixed-size lock-free ring of recent QueryTrace
// summaries, plus a second ring that retains only traces at or above a
// slow-query threshold (so a burst of fast queries cannot evict the
// slow one you are hunting). `vsim stats` pulls both over the wire;
// docs/OBSERVABILITY.md covers the operational model.
//
// Concurrency design. Record() must be callable from every service
// worker on the query hot path, so it is allocation- and lock-free:
//
//   - A global ticket counter (fetch_add) assigns each record a slot
//     round-robin.
//   - Each slot is a per-slot *seqlock*: an atomic sequence number that
//     is odd while a write is in progress, plus the trace payload
//     stored as relaxed atomic 64-bit words (a plain struct would be a
//     data race under concurrent snapshot reads). Writers claim a slot
//     by CAS-ing the sequence from even to odd; if another writer got
//     there first (possible only when >= capacity records race at
//     once), the trace is dropped -- the recorder is lossy by design,
//     never blocking.
//   - Snapshot() reads a slot's words between two sequence loads and
//     discards the slot if the sequence changed or was odd (torn read).
//
// Thread-safety: Record and Snapshot are safe from any thread, any
// number of threads, with no locks anywhere.
#ifndef VSIM_OBS_FLIGHT_RECORDER_H_
#define VSIM_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsim/obs/query_trace.h"

namespace vsim::obs {

class FlightRecorder {
 public:
  // `capacity` slots in the recent ring; `slow_capacity` in the slow
  // ring; traces with total_seconds >= slow_threshold_seconds are
  // recorded in both. Capacities are clamped to >= 1.
  explicit FlightRecorder(size_t capacity = 256,
                          double slow_threshold_seconds = 0.100,
                          size_t slow_capacity = 64);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Lock-free, allocation-free; drops the trace only when >= capacity
  // concurrent writers collide on one slot.
  void Record(const QueryTrace& trace);

  // Most-recent-first traces, at most `max_traces`; slow_only reads the
  // slow ring. Reads race benignly with concurrent Records: a slot
  // being overwritten mid-read is skipped, not torn.
  std::vector<QueryTrace> Snapshot(size_t max_traces,
                                   bool slow_only = false) const;

  double slow_threshold_seconds() const { return slow_threshold_; }
  size_t capacity() const { return ring_.slots.size(); }
  size_t slow_capacity() const { return slow_ring_.slots.size(); }
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kTraceWords = sizeof(QueryTrace) / 8;

  struct Slot {
    std::atomic<uint64_t> seq{0};  // odd while a write is in progress
    std::array<std::atomic<uint64_t>, kTraceWords> words{};
  };

  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::atomic<uint64_t> tickets{0};  // total records attempted
    std::vector<Slot> slots;
  };

  // Returns false when the slot was contended and the trace dropped.
  static bool WriteSlot(Slot* slot, const QueryTrace& trace);
  static bool ReadSlot(const Slot& slot, QueryTrace* trace);
  static void RecordInto(Ring* ring, const QueryTrace& trace,
                         std::atomic<uint64_t>* dropped);
  static std::vector<QueryTrace> SnapshotRing(const Ring& ring,
                                              size_t max_traces);

  const double slow_threshold_;
  Ring ring_;
  Ring slow_ring_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace vsim::obs

#endif  // VSIM_OBS_FLIGHT_RECORDER_H_
