#include "vsim/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <set>

namespace vsim::obs {

namespace {

// %.17g round-trips doubles; trims to a short form for integral values.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendFamilyHeader(std::string* out, std::set<std::string>* emitted,
                        const std::string& name, const std::string& help,
                        const char* type) {
  if (!emitted->insert(name).second) return;  // one header per family
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void AppendSampleLine(std::string* out, const std::string& name,
                      const std::string& labels, const std::string& value) {
  out->append(name);
  if (!labels.empty()) out->append("{").append(labels).append("}");
  out->append(" ").append(value).append("\n");
}

// `le` label value for a bucket upper bound in seconds.
std::string FormatLe(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", seconds);
  return buf;
}

template <typename Entry>
auto Find(const std::vector<Entry>& entries, const std::string& name,
          const std::string& labels) {
  using Ptr = decltype(entries.front().instrument);
  for (const Entry& e : entries) {
    if (e.name == name && e.labels == labels) return e.instrument;
  }
  return static_cast<Ptr>(nullptr);
}

}  // namespace

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          const std::string& labels) {
  MutexLock lock(&mu_);
  if (Counter* existing = Find(counter_entries_, name, labels)) {
    return existing;
  }
  counters_.emplace_back();
  counter_entries_.push_back({name, help, labels, &counters_.back()});
  return &counters_.back();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels) {
  MutexLock lock(&mu_);
  if (Gauge* existing = Find(gauge_entries_, name, labels)) {
    return existing;
  }
  gauges_.emplace_back();
  gauge_entries_.push_back({name, help, labels, &gauges_.back()});
  return &gauges_.back();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help,
                                              const std::string& labels) {
  MutexLock lock(&mu_);
  if (Histogram* existing = Find(histogram_entries_, name, labels)) {
    return existing;
  }
  histograms_.emplace_back();
  histogram_entries_.push_back({name, help, labels, &histograms_.back()});
  return &histograms_.back();
}

int MetricsRegistry::RegisterCollector(CollectorFn fn) {
  MutexLock lock(&mu_);
  const int id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::UnregisterCollector(int id) {
  MutexLock lock(&mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

std::string MetricsRegistry::TextExposition() const {
  MutexLock lock(&mu_);
  std::string out;
  std::set<std::string> emitted;

  for (const auto& e : counter_entries_) {
    AppendFamilyHeader(&out, &emitted, e.name, e.help, "counter");
    AppendSampleLine(&out, e.name, e.labels,
                     FormatValue(static_cast<double>(e.instrument->Value())));
  }
  for (const auto& e : gauge_entries_) {
    AppendFamilyHeader(&out, &emitted, e.name, e.help, "gauge");
    AppendSampleLine(&out, e.name, e.labels, FormatValue(e.instrument->Value()));
  }
  for (const auto& e : histogram_entries_) {
    AppendFamilyHeader(&out, &emitted, e.name, e.help, "histogram");
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += e.instrument->BucketCount(b);
      std::string le_labels = e.labels;
      if (!le_labels.empty()) le_labels.append(",");
      le_labels.append("le=\"")
          .append(FormatLe(Histogram::BucketUpperBoundSeconds(b)))
          .append("\"");
      AppendSampleLine(&out, e.name + "_bucket", le_labels,
                       FormatValue(static_cast<double>(cumulative)));
    }
    std::string inf_labels = e.labels;
    if (!inf_labels.empty()) inf_labels.append(",");
    inf_labels.append("le=\"+Inf\"");
    AppendSampleLine(&out, e.name + "_bucket", inf_labels,
                     FormatValue(static_cast<double>(cumulative)));
    AppendSampleLine(&out, e.name + "_sum", e.labels,
                     FormatValue(e.instrument->SumSeconds()));
    AppendSampleLine(&out, e.name + "_count", e.labels,
                     FormatValue(static_cast<double>(cumulative)));
  }

  std::vector<MetricSample> samples;
  for (const auto& [id, fn] : collectors_) {
    (void)id;
    fn(&samples);
  }
  for (const MetricSample& s : samples) {
    AppendFamilyHeader(&out, &emitted, s.name, s.help,
                       s.type == MetricSample::Type::kCounter ? "counter"
                                                              : "gauge");
    AppendSampleLine(&out, s.name, s.labels, FormatValue(s.value));
  }
  return out;
}

}  // namespace vsim::obs
