#include "vsim/obs/trace_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

namespace vsim::obs {
namespace {

void AppendFormat(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) out->append(buffer, static_cast<size_t>(n) < sizeof(buffer)
                                     ? static_cast<size_t>(n)
                                     : sizeof(buffer) - 1);
}

}  // namespace

std::string RenderChromeTrace(const std::vector<SpanTreeRecord>& trees) {
  // Assign one synthetic tid per distinct trace id, ordered by id so
  // the output is deterministic regardless of snapshot order.
  std::map<std::pair<uint64_t, uint64_t>, int> tids;
  for (const SpanTreeRecord& tree : trees) {
    tids.emplace(std::make_pair(tree.trace_hi, tree.trace_lo), 0);
  }
  int next_tid = 1;
  for (auto& entry : tids) entry.second = next_tid++;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& entry : tids) {
    if (!first) out += ',';
    first = false;
    AppendFormat(&out,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                 "\"thread_name\",\"args\":{\"name\":"
                 "\"trace %016" PRIx64 "%016" PRIx64 "\"}}",
                 entry.second, entry.first.first, entry.first.second);
  }
  for (const SpanTreeRecord& tree : trees) {
    const int tid = tids.at(std::make_pair(tree.trace_hi, tree.trace_lo));
    const uint32_t count = tree.span_count <= kSpanArenaCapacity
                               ? tree.span_count
                               : static_cast<uint32_t>(kSpanArenaCapacity);
    for (uint32_t i = 0; i < count; ++i) {
      const SpanRecord& span = tree.spans[i];
      const uint64_t end_ns =
          span.end_ns >= span.start_ns ? span.end_ns : span.start_ns;
      if (!first) out += ',';
      first = false;
      // Chrome trace-event timestamps are microseconds (doubles); keep
      // sub-microsecond precision with three decimals.
      AppendFormat(
          &out,
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
          "\"ts\":%" PRIu64 ".%03" PRIu64 ",\"dur\":%" PRIu64 ".%03" PRIu64
          ",\"args\":{\"span_id\":\"%016" PRIx64 "\",\"parent_span_id\":"
          "\"%016" PRIx64 "\",\"counter\":%" PRIu64 ",\"query_trace_id\":%" PRIu64
          "}}",
          tid, SpanNameString(static_cast<SpanName>(span.name)),
          span.start_ns / 1000, span.start_ns % 1000,
          (end_ns - span.start_ns) / 1000, (end_ns - span.start_ns) % 1000,
          span.span_id, span.parent_span_id, span.counter,
          tree.query_trace_id);
    }
  }
  // Trailing newline: the string is written verbatim to export files.
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace vsim::obs
