// Chrome trace-event JSON rendering of span-ring snapshots, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. One JSON object
// per span as a "complete" event ("ph":"X", microsecond ts/dur); all
// spans sharing a trace id land on one synthetic thread so the
// accept -> decode -> ... -> flush pipeline nests visually, with the
// paper-native counter and span ids attached as event args.
//
// Used by `vsim stats --trace-export FILE` (server-side snapshot
// shipped over the stats frame) and by `vsim serve --trace-export`
// (periodic ring dumps). Pure rendering: no locks, no clocks, no
// I/O -- callers pass a SpanRing snapshot and write the string out.
#ifndef VSIM_OBS_TRACE_EXPORT_H_
#define VSIM_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "vsim/obs/span.h"

namespace vsim::obs {

// Renders the trees as a self-contained Chrome trace-event JSON
// document ({"traceEvents":[...]}). Trees are grouped by 16-byte trace
// id; each group gets a synthetic tid plus a thread_name metadata
// event carrying the hex trace id. Deterministic for a given input.
std::string RenderChromeTrace(const std::vector<SpanTreeRecord>& trees);

}  // namespace vsim::obs

#endif  // VSIM_OBS_TRACE_EXPORT_H_
