// Opt-in, in-process on-CPU sampling profiler (docs/OBSERVABILITY.md
// "Tracing" -> profiler workflow). Default off; armed at startup via
// `vsim serve --profile-hz N` or at runtime through the kStats profile
// sub-request (`vsim stats --profile-seconds N`), so a production
// server can answer "*why* is this stage slow" without an external
// profiler attached.
//
// Mechanism: ITIMER_PROF delivers SIGPROF at the requested rate while
// the process consumes CPU; the handler captures a backtrace() into a
// fixed lock-free sample ring (per-slot seqlock claim, same discipline
// as FlightRecorder/SpanRing) and returns. Symbolization
// (backtrace_symbols) and collapsing happen only at collect time, off
// the signal path. backtrace() is pre-warmed at Arm() because its
// first call may lazily load libgcc, which is not async-signal-safe.
//
// Output is collapsed-stack text, one "frame;frame;... count" line per
// unique stack -- directly consumable by flamegraph.pl or speedscope.
//
// The profiler is process-global (signal disposition and ITIMER_PROF
// are process-wide resources); Arm/Disarm are serialized by a mutex,
// the sampling hot path is lock- and allocation-free.
#ifndef VSIM_OBS_PROFILER_H_
#define VSIM_OBS_PROFILER_H_

#include <signal.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "vsim/common/thread_annotations.h"

namespace vsim::obs {

class Profiler {
 public:
  static constexpr size_t kMaxFrames = 48;
  static constexpr size_t kRingCapacity = 4096;

  // The process-wide instance (SIGPROF has a single disposition).
  static Profiler& Instance();

  // Starts sampling at `hz` (clamped to [1, 1000]). Re-arming while
  // armed restarts at the new rate and clears prior samples. Returns
  // false if the timer or handler could not be installed.
  bool Arm(int hz);
  // Stops the timer and restores the previous SIGPROF disposition.
  // Captured samples remain available to CollapsedStacks().
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Renders every captured sample as collapsed-stack lines
  // ("a;b;c 12\n"), innermost frame last per flamegraph convention.
  // Allocates and symbolizes; never call from the signal path.
  std::string CollapsedStacks() const;

  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Sample {
    std::atomic<uint64_t> seq{0};  // odd while the handler owns the slot
    std::atomic<uint32_t> depth{0};
    std::array<std::atomic<uintptr_t>, kMaxFrames> pcs{};
  };

  Profiler() = default;

  static void HandleSignal(int signum);
  void CaptureSample();

  Mutex arm_mu_;  // serializes Arm/Disarm only
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> tickets_{0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> dropped_{0};
  std::array<Sample, kRingCapacity> ring_{};
  bool handler_installed_ GUARDED_BY(arm_mu_) = false;
  struct sigaction previous_action_ GUARDED_BY(arm_mu_) {};
};

}  // namespace vsim::obs

#endif  // VSIM_OBS_PROFILER_H_
