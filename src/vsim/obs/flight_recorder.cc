#include "vsim/obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

namespace vsim::obs {

FlightRecorder::FlightRecorder(size_t capacity, double slow_threshold_seconds,
                               size_t slow_capacity)
    : slow_threshold_(slow_threshold_seconds),
      ring_(std::max<size_t>(1, capacity)),
      slow_ring_(std::max<size_t>(1, slow_capacity)) {}

bool FlightRecorder::WriteSlot(Slot* slot, const QueryTrace& trace) {
  uint64_t seq = slot->seq.load(std::memory_order_relaxed);
  if (seq & 1) return false;  // another writer mid-flight
  if (!slot->seq.compare_exchange_strong(seq, seq + 1,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  uint64_t words[kTraceWords];
  std::memcpy(words, &trace, sizeof(trace));
  for (size_t i = 0; i < kTraceWords; ++i) {
    slot->words[i].store(words[i], std::memory_order_relaxed);
  }
  slot->seq.store(seq + 2, std::memory_order_release);
  return true;
}

bool FlightRecorder::ReadSlot(const Slot& slot, QueryTrace* trace) {
  const uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
  if (seq1 == 0 || (seq1 & 1) != 0) return false;  // empty or mid-write
  uint64_t words[kTraceWords];
  for (size_t i = 0; i < kTraceWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != seq1) return false;
  std::memcpy(trace, words, sizeof(*trace));
  return true;
}

void FlightRecorder::RecordInto(Ring* ring, const QueryTrace& trace,
                                std::atomic<uint64_t>* dropped) {
  const uint64_t ticket =
      ring->tickets.fetch_add(1, std::memory_order_relaxed);
  Slot* slot = &ring->slots[ticket % ring->slots.size()];
  if (!WriteSlot(slot, trace)) {
    dropped->fetch_add(1, std::memory_order_relaxed);
  }
}

void FlightRecorder::Record(const QueryTrace& trace) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  RecordInto(&ring_, trace, &dropped_);
  if (trace.total_seconds >= slow_threshold_) {
    RecordInto(&slow_ring_, trace, &dropped_);
  }
}

std::vector<QueryTrace> FlightRecorder::SnapshotRing(const Ring& ring,
                                                     size_t max_traces) {
  std::vector<QueryTrace> out;
  const uint64_t tickets = ring.tickets.load(std::memory_order_acquire);
  const size_t capacity = ring.slots.size();
  const uint64_t scan = std::min<uint64_t>(tickets, capacity);
  out.reserve(std::min<uint64_t>(scan, max_traces));
  // Newest first: walk backwards from the most recently claimed slot.
  for (uint64_t i = 0; i < scan && out.size() < max_traces; ++i) {
    const uint64_t ticket = tickets - 1 - i;
    QueryTrace trace;
    if (ReadSlot(ring.slots[ticket % capacity], &trace)) {
      out.push_back(trace);
    }
  }
  return out;
}

std::vector<QueryTrace> FlightRecorder::Snapshot(size_t max_traces,
                                                 bool slow_only) const {
  return SnapshotRing(slow_only ? slow_ring_ : ring_, max_traces);
}

}  // namespace vsim::obs
