#include "vsim/obs/profiler.h"

#include <errno.h>
#include <execinfo.h>
#include <string.h>
#include <sys/time.h>

#include <cstdlib>
#include <map>
#include <vector>

namespace vsim::obs {

Profiler& Profiler::Instance() {
  static Profiler* instance = new Profiler();  // never destroyed: signal-safe
  return *instance;
}

void Profiler::HandleSignal(int /*signum*/) {
  // Preserve errno across the handler: backtrace() may clobber it and
  // the interrupted code may be mid inspection of a syscall result.
  const int saved_errno = errno;
  Instance().CaptureSample();
  errno = saved_errno;
}

void Profiler::CaptureSample() {
  if (!armed_.load(std::memory_order_relaxed)) return;
  void* frames[kMaxFrames];
  const int depth = backtrace(frames, static_cast<int>(kMaxFrames));
  if (depth <= 0) return;

  const uint64_t ticket = tickets_.fetch_add(1, std::memory_order_relaxed);
  Sample& slot = ring_[ticket % kRingCapacity];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq & 1) {
    // Another thread's handler owns this slot: lossy, counted drop.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.depth.store(static_cast<uint32_t>(depth), std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    slot.pcs[static_cast<size_t>(i)].store(
        reinterpret_cast<uintptr_t>(frames[i]), std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  samples_.fetch_add(1, std::memory_order_relaxed);
}

bool Profiler::Arm(int hz) {
  MutexLock lock(&arm_mu_);
  if (hz < 1) hz = 1;
  if (hz > 1000) hz = 1000;

  // First backtrace() may dlopen libgcc, which allocates and takes
  // loader locks; do it here, outside any signal context.
  void* warm[4];
  backtrace(warm, 4);

  // Clear prior samples so a fresh Arm starts a fresh profile.
  tickets_.store(0, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (Sample& slot : ring_) {
    slot.seq.store(0, std::memory_order_relaxed);
  }

  if (!handler_installed_) {
    struct sigaction action;
    memset(&action, 0, sizeof(action));
    action.sa_handler = &Profiler::HandleSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &action, &previous_action_) != 0) return false;
    handler_installed_ = true;
  }

  armed_.store(true, std::memory_order_release);

  // Split into sec/usec: setitimer rejects tv_usec >= 1e6, which the
  // 1 Hz floor would otherwise produce.
  const long interval_usec = 1000000L / hz;
  struct itimerval timer;
  memset(&timer, 0, sizeof(timer));
  timer.it_interval.tv_sec = interval_usec / 1000000L;
  timer.it_interval.tv_usec = interval_usec % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    armed_.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void Profiler::Disarm() {
  MutexLock lock(&arm_mu_);
  struct itimerval timer;
  memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  armed_.store(false, std::memory_order_release);
  if (handler_installed_) {
    sigaction(SIGPROF, &previous_action_, nullptr);
    handler_installed_ = false;
  }
}

std::string Profiler::CollapsedStacks() const {
  // Stable snapshot of every readable slot, then symbolize once per
  // unique program counter (symbolization is the expensive part).
  struct RawStack {
    std::vector<uintptr_t> pcs;
  };
  std::vector<RawStack> stacks;
  const uint64_t newest = tickets_.load(std::memory_order_acquire);
  const uint64_t walk = newest < kRingCapacity ? newest : kRingCapacity;
  stacks.reserve(static_cast<size_t>(walk));
  for (uint64_t i = 0; i < walk; ++i) {
    const Sample& slot = ring_[i % kRingCapacity];
    const uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1)) continue;
    const uint32_t depth = slot.depth.load(std::memory_order_relaxed);
    if (depth == 0 || depth > kMaxFrames) continue;
    RawStack stack;
    stack.pcs.reserve(depth);
    for (uint32_t f = 0; f < depth; ++f) {
      stack.pcs.push_back(slot.pcs[f].load(std::memory_order_relaxed));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;
    stacks.push_back(std::move(stack));
  }

  std::map<uintptr_t, std::string> symbols;
  for (const RawStack& stack : stacks) {
    for (uintptr_t pc : stack.pcs) symbols.emplace(pc, std::string());
  }
  {
    std::vector<void*> addrs;
    addrs.reserve(symbols.size());
    for (const auto& entry : symbols) {
      addrs.push_back(reinterpret_cast<void*>(entry.first));
    }
    if (!addrs.empty()) {
      char** names =
          backtrace_symbols(addrs.data(), static_cast<int>(addrs.size()));
      if (names != nullptr) {
        size_t i = 0;
        for (auto& entry : symbols) {
          // backtrace_symbols yields "module(function+0x..) [addr]";
          // keep the function token when present, else the whole line.
          std::string line = names[i++];
          const size_t open = line.find('(');
          const size_t plus = line.find('+', open);
          if (open != std::string::npos && plus != std::string::npos &&
              plus > open + 1) {
            entry.second = line.substr(open + 1, plus - open - 1);
          } else {
            entry.second = line;
          }
        }
        free(names);
      }
    }
  }

  // Collapse: innermost frame is pcs[0] from backtrace(), flamegraph
  // wants root-first, so emit the frames reversed.
  std::map<std::string, uint64_t> collapsed;
  for (const RawStack& stack : stacks) {
    std::string line;
    for (size_t f = stack.pcs.size(); f-- > 0;) {
      const std::string& symbol = symbols[stack.pcs[f]];
      if (!line.empty()) line += ';';
      line += symbol.empty() ? "?" : symbol;
    }
    ++collapsed[line];
  }

  std::string out;
  for (const auto& entry : collapsed) {
    out += entry.first;
    out += ' ';
    out += std::to_string(entry.second);
    out += '\n';
  }
  return out;
}

}  // namespace vsim::obs
